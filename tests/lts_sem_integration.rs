//! Cross-crate integration: LTS-Newmark driving the real 3-D SEM operators.

use wave_lts::lts::energy::discrete_energy;
use wave_lts::lts::reference::ReferenceLts;
use wave_lts::lts::{LtsNewmark, LtsSetup, Newmark};
use wave_lts::mesh::{HexMesh, Levels};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::{AcousticOperator, ElasticOperator};

fn two_region_mesh() -> (HexMesh, Levels) {
    let mut m = HexMesh::uniform(6, 3, 3, 1.0, 1.0);
    m.paint_box((4, 6), (0, 3), (0, 3), 2.0, 1.0);
    let lv = Levels::assign(&m, 0.5, 4);
    (m, lv)
}

fn smooth_init(ndof: usize) -> Vec<f64> {
    (0..ndof)
        .map(|i| (-((i as f64 / ndof as f64 - 0.4) * 12.0).powi(2)).exp())
        .collect()
}

/// The masked production stepper must reproduce the literal full-vector
/// Algorithm 1 on the 3-D acoustic SEM to round-off.
#[test]
fn acoustic_masked_equals_reference() {
    let (m, lv) = two_region_mesh();
    let op = AcousticOperator::new(&m, 3);
    let setup = LtsSetup::new(&op, &lv.elem_level);
    assert!(setup.n_levels >= 2);
    let ndof = op.dofmap.n_nodes();
    let dt = lv.dt_global * cfl_dt_scale(3, 3);

    let u0 = smooth_init(ndof);
    let mut u1 = u0.clone();
    let mut v1 = vec![0.0; ndof];
    let mut u2 = u0;
    let mut v2 = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    let rf = ReferenceLts::new(&op, &setup, dt);
    for s in 0..5 {
        let t = s as f64 * dt;
        lts.step(&mut u1, &mut v1, t, &[]);
        rf.step(&mut u2, &mut v2, t, &[]);
    }
    let scale = u2.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    for i in 0..ndof {
        assert!(
            (u1[i] - u2[i]).abs() < 1e-10 * scale,
            "dof {i}: masked {} vs reference {}",
            u1[i],
            u2[i]
        );
    }
}

/// Same for the elastic operator (vector DOFs).
#[test]
fn elastic_masked_equals_reference() {
    let (m, lv) = two_region_mesh();
    let op = ElasticOperator::poisson(&m, 2);
    let setup = LtsSetup::new(&op, &lv.elem_level);
    let ndof = 3 * op.dofmap.n_nodes();
    let dt = lv.dt_global * cfl_dt_scale(2, 3);

    let u0 = smooth_init(ndof);
    let mut u1 = u0.clone();
    let mut v1 = vec![0.0; ndof];
    let mut u2 = u0;
    let mut v2 = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    let rf = ReferenceLts::new(&op, &setup, dt);
    for s in 0..4 {
        let t = s as f64 * dt;
        lts.step(&mut u1, &mut v1, t, &[]);
        rf.step(&mut u2, &mut v2, t, &[]);
    }
    let scale = u2.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    for i in 0..ndof {
        assert!(
            (u1[i] - u2[i]).abs() < 1e-10 * scale,
            "dof {i}: {} vs {}",
            u1[i],
            u2[i]
        );
    }
}

/// LTS at the coarse step converges (2nd order) to the resolved solution.
#[test]
fn acoustic_lts_converges_to_fine_newmark() {
    let (m, lv) = two_region_mesh();
    let op = AcousticOperator::new(&m, 2);
    let setup = LtsSetup::new(&op, &lv.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt0 = lv.dt_global * cfl_dt_scale(2, 3);
    let u0 = smooth_init(ndof);
    let t_end = 8.0 * dt0;

    // resolved reference (staggered start)
    let mut u_ref = u0.clone();
    let mut v_ref = vec![0.0; ndof];
    let fine = 16usize;
    Newmark::stagger_velocity(&op, dt0 / fine as f64, &u_ref, &mut v_ref, &[]);
    let mut nm = Newmark::new(&op, dt0 / fine as f64);
    nm.run(&mut u_ref, &mut v_ref, 0.0, 8 * fine, &[]);

    let mut errs = Vec::new();
    for halvings in 0..3 {
        let dt = dt0 / (1 << halvings) as f64;
        let steps = (t_end / dt).round() as usize;
        let mut u = u0.clone();
        let mut v = vec![0.0; ndof];
        Newmark::stagger_velocity(&op, dt, &u, &mut v, &[]);
        let mut lts = LtsNewmark::new(&op, &setup, dt);
        lts.run(&mut u, &mut v, 0.0, steps, &[]);
        let err: f64 = (0..ndof)
            .map(|i| (u[i] - u_ref[i]).abs())
            .fold(0.0, f64::max);
        errs.push(err);
    }
    // second order: each halving reduces the error ~4×; the first point at
    // the CFL limit is pre-asymptotic (measured ratios ≈ 2.9, 4.6)
    assert!(errs[0] / errs[1] > 2.4, "errors {errs:?}");
    assert!(errs[1] / errs[2] > 3.5, "errors {errs:?}");
}

/// Long-run stability + bounded energy oscillation on the SEM.
#[test]
fn acoustic_lts_energy_bounded() {
    let (m, lv) = two_region_mesh();
    let op = AcousticOperator::new(&m, 2);
    let setup = LtsSetup::new(&op, &lv.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = lv.dt_global * cfl_dt_scale(2, 3);
    let mut u = smooth_init(ndof);
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    let mut u_prev = u.clone();
    lts.step(&mut u, &mut v, 0.0, &[]);
    let e0 = discrete_energy(&op, &u_prev, &u, &v);
    assert!(e0 > 0.0);
    let mut max_dev = 0.0f64;
    for s in 1..400 {
        u_prev.copy_from_slice(&u);
        lts.step(&mut u, &mut v, s as f64 * dt, &[]);
        if s % 20 == 0 {
            let e = discrete_energy(&op, &u_prev, &u, &v);
            max_dev = max_dev.max(((e - e0) / e0).abs());
        }
    }
    // bounded oscillation, no secular growth: the amplitude is O((ωΔt)²) of
    // the modified-energy mismatch, ≈ 6 % at this CFL number
    assert!(max_dev < 1.5e-1, "energy oscillation {max_dev}");
}

/// LTS on a *geometrically* refined mesh (squeezed surface elements, the
/// paper's actual mechanism): variable element heights in the SEM kernels,
/// masked stepper still matches the reference, stable over a long run.
#[test]
fn geometric_crust_lts_runs_correctly() {
    use wave_lts::mesh::BenchmarkMesh;
    let b = BenchmarkMesh::crust_geometric(500);
    assert_eq!(b.levels.n_levels, 2);
    let op = AcousticOperator::new(&b.mesh, 2);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(2, 3);

    // masked == reference on the graded geometry
    let u0 = smooth_init(ndof);
    let mut u1 = u0.clone();
    let mut v1 = vec![0.0; ndof];
    let mut u2 = u0.clone();
    let mut v2 = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    let rf = ReferenceLts::new(&op, &setup, dt);
    for s in 0..3 {
        let t = s as f64 * dt;
        lts.step(&mut u1, &mut v1, t, &[]);
        rf.step(&mut u2, &mut v2, t, &[]);
    }
    let scale = u2.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    for i in 0..ndof {
        assert!((u1[i] - u2[i]).abs() < 1e-10 * scale, "dof {i}");
    }

    // long-run stability at the coarse step
    let mut u = u0;
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    lts.run(&mut u, &mut v, 0.0, 200, &[]);
    let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    assert!(norm.is_finite() && norm < 1e3, "norm {norm}");
}

/// Newmark at the LTS coarse step is unstable (that is the whole point of
/// the CFL bottleneck), while LTS is stable at the same Δt.
#[test]
fn global_newmark_unstable_at_coarse_dt() {
    let (m, lv) = two_region_mesh();
    let op = AcousticOperator::new(&m, 3);
    let setup = LtsSetup::new(&op, &lv.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = lv.dt_global * cfl_dt_scale(3, 3);

    let mut u = smooth_init(ndof);
    let mut v = vec![0.0; ndof];
    let mut nm = Newmark::new(&op, dt);
    nm.run(&mut u, &mut v, 0.0, 300, &[]);
    let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    assert!(
        norm.is_nan() || norm >= 1e4,
        "expected instability at coarse dt, norm {norm}"
    );

    let mut u = smooth_init(ndof);
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    lts.run(&mut u, &mut v, 0.0, 300, &[]);
    let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    assert!(norm < 1e3, "LTS should be stable, norm {norm}");
}
