//! Integration tests of the deterministic observability counters.
//!
//! The runtime's per-rank `elem_ops` / `msgs_sent` / `dofs_sent` counters are
//! exact integers independent of timing, so they can be asserted *exactly*
//! against two independent oracles:
//!
//! * the closed-form [`exchange_oracle`] computed from the mesh, the level
//!   assignment and the partition alone (no execution), and
//! * the serial [`LtsNewmark`] stepper's own operation count.
//!
//! Exactness requires DOFs ≡ corner nodes, i.e. SEM order 1.

use wave_lts::lts::{LtsNewmark, LtsSetup, Operator};
use wave_lts::mesh::{HexMesh, Levels};
use wave_lts::obs::MetricsRegistry;
use wave_lts::partition::{exchange_oracle, partition_mesh, Strategy};
use wave_lts::runtime::stats::names;
use wave_lts::runtime::{run_distributed_local_acoustic_observed, DistributedConfig};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::AcousticOperator;

const ORDER: usize = 1; // oracle is exact only when DOFs are corner nodes

struct Fixture {
    mesh: HexMesh,
    levels: Levels,
    dt: f64,
    u0: Vec<f64>,
    ndof: usize,
}

fn fixture() -> Fixture {
    // 6×4×2 box with a fast slab on the left third → two CFL levels
    let mut mesh = HexMesh::uniform(6, 4, 2, 1.0, 1.0);
    mesh.paint_box((0, 2), (0, 4), (0, 2), 2.0, 1.0);
    let levels = Levels::assign(&mesh, 0.5, 3);
    assert!(
        levels.n_levels >= 2,
        "fixture must exercise multiple levels"
    );
    let op = AcousticOperator::new(&mesh, ORDER);
    let ndof = Operator::ndof(&op);
    assert_eq!(
        ndof,
        mesh.n_corner_nodes(),
        "order-1 DOFs must be corner nodes"
    );
    let dt = levels.dt_global * cfl_dt_scale(ORDER, 3);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.13).sin()).collect();
    Fixture {
        mesh,
        levels,
        dt,
        u0,
        ndof,
    }
}

fn serial_elem_ops(f: &Fixture, steps: usize) -> u64 {
    let op = AcousticOperator::new(&f.mesh, ORDER);
    let setup = LtsSetup::new(&op, &f.levels.elem_level);
    let mut u = f.u0.clone();
    let mut v = vec![0.0; f.ndof];
    let mut lts = LtsNewmark::new(&op, &setup, f.dt);
    lts.run(&mut u, &mut v, 0.0, steps, &[]);
    lts.stats.elem_ops
}

/// Run the distributed-memory runtime and return the merged host registry.
fn run_observed(f: &Fixture, part: &[u32], n_ranks: usize, steps: usize) -> MetricsRegistry {
    run_observed_threads(f, part, n_ranks, steps, 1)
}

/// As [`run_observed`], with `threads` intra-rank workers per rank.
fn run_observed_threads(
    f: &Fixture,
    part: &[u32],
    n_ranks: usize,
    steps: usize,
    threads: usize,
) -> MetricsRegistry {
    let cfg = DistributedConfig {
        threads_per_rank: threads,
        ..DistributedConfig::new(n_ranks)
    };
    let v0 = vec![0.0; f.ndof];
    let mut host = MetricsRegistry::new();
    let (_, _, stats) = run_distributed_local_acoustic_observed(
        &f.mesh,
        &f.levels,
        ORDER,
        part,
        f.dt,
        &f.u0,
        &v0,
        steps,
        &cfg,
        &[],
        &mut host,
    )
    .unwrap();
    // the RankStats view must agree with the merged registry
    let by_view: u64 = stats.iter().map(|s| s.elem_ops).sum();
    assert_eq!(by_view, host.counter_total(names::ELEM_OPS));
    let by_view: u64 = stats.iter().map(|s| s.dofs_sent).sum();
    assert_eq!(by_view, host.counter_total(names::DOFS_SENT));
    let by_view: u64 = stats.iter().map(|s| s.msgs_sent).sum();
    assert_eq!(by_view, host.counter_total(names::MSGS_SENT));
    host
}

#[test]
fn distributed_counters_match_closed_form_oracle_exactly() {
    let f = fixture();
    let steps = 3;
    let n_ranks = 3;
    let part = partition_mesh(&f.mesh, &f.levels, n_ranks, Strategy::ScotchP, 1);
    let host = run_observed(&f, &part, n_ranks, steps);
    let o = exchange_oracle(&f.mesh, &f.levels, &part);
    assert!(
        o.total_dofs_sent() > 0,
        "fixture partition must cut the mesh"
    );

    for l in 0..f.levels.n_levels {
        let per_step_elem = o.elem_ops[l];
        let per_step_dofs = o.dofs_sent[l];
        let per_step_msgs = o.msgs_sent[l];
        let s = steps as u64;
        assert_eq!(
            host.counter(names::ELEM_OPS, Some(l as u8)),
            per_step_elem * s,
            "elem_ops at level {l}"
        );
        assert_eq!(
            host.counter(names::DOFS_SENT, Some(l as u8)),
            per_step_dofs * s,
            "dofs_sent at level {l}"
        );
        assert_eq!(
            host.counter(names::MSGS_SENT, Some(l as u8)),
            per_step_msgs * s,
            "msgs_sent at level {l}"
        );
    }
    assert_eq!(
        host.counter_total(names::DOFS_SENT),
        o.total_dofs_sent() * steps as u64
    );
    assert_eq!(
        host.counter_total(names::MSGS_SENT),
        o.total_msgs_sent() * steps as u64
    );
}

/// `threads_per_rank > 1` must be invisible to observability: the colored
/// scatter keeps fields bitwise identical, so every deterministic counter
/// still matches the closed-form oracle exactly — and the computed solution
/// matches the serial run bit for bit.
#[test]
fn threaded_ranks_keep_counters_and_fields_exact() {
    let f = fixture();
    let steps = 3;
    let n_ranks = 2;
    let part = partition_mesh(&f.mesh, &f.levels, n_ranks, Strategy::ScotchP, 1);
    let o = exchange_oracle(&f.mesh, &f.levels, &part);

    let host = run_observed_threads(&f, &part, n_ranks, steps, 2);
    for l in 0..f.levels.n_levels {
        assert_eq!(
            host.counter(names::ELEM_OPS, Some(l as u8)),
            o.elem_ops[l] * steps as u64,
            "elem_ops at level {l} with 2 worker threads"
        );
    }
    assert_eq!(
        host.counter_total(names::DOFS_SENT),
        o.total_dofs_sent() * steps as u64
    );
    assert_eq!(
        host.counter_total(names::MSGS_SENT),
        o.total_msgs_sent() * steps as u64
    );

    // fields: serial vs threaded runs agree bit for bit
    let v0 = vec![0.0; f.ndof];
    let run = |threads: usize| {
        let cfg = DistributedConfig {
            threads_per_rank: threads,
            ..DistributedConfig::new(n_ranks)
        };
        let mut host = MetricsRegistry::new();
        run_distributed_local_acoustic_observed(
            &f.mesh,
            &f.levels,
            ORDER,
            &part,
            f.dt,
            &f.u0,
            &v0,
            steps,
            &cfg,
            &[],
            &mut host,
        )
        .unwrap()
    };
    let (u1, v1, _) = run(1);
    let (u2, v2, _) = run(2);
    for i in 0..f.ndof {
        assert_eq!(u1[i].to_bits(), u2[i].to_bits(), "u[{i}]");
        assert_eq!(v1[i].to_bits(), v2[i].to_bits(), "v[{i}]");
    }
}

#[test]
fn distributed_elem_ops_sum_to_serial_count() {
    let f = fixture();
    let steps = 4;
    for n_ranks in [2usize, 3] {
        let part: Vec<u32> = (0..f.mesh.n_elems())
            .map(|e| (e % n_ranks) as u32)
            .collect();
        let host = run_observed(&f, &part, n_ranks, steps);
        let serial = serial_elem_ops(&f, steps);
        assert_eq!(
            host.counter_total(names::ELEM_OPS),
            serial,
            "{n_ranks} ranks: distributed element work must equal serial"
        );
        let o = exchange_oracle(&f.mesh, &f.levels, &part);
        assert_eq!(
            o.total_elem_ops() * steps as u64,
            serial,
            "oracle vs serial stepper"
        );
    }
}

#[test]
fn single_rank_sends_nothing() {
    let f = fixture();
    let steps = 2;
    let part = vec![0u32; f.mesh.n_elems()];
    let host = run_observed(&f, &part, 1, steps);
    assert_eq!(host.counter_total(names::DOFS_SENT), 0);
    assert_eq!(host.counter_total(names::MSGS_SENT), 0);
    assert_eq!(
        host.counter_total(names::ELEM_OPS),
        serial_elem_ops(&f, steps)
    );
}

#[test]
fn deterministic_counters_are_run_to_run_identical() {
    let f = fixture();
    let steps = 2;
    let n_ranks = 2;
    let part: Vec<u32> = (0..f.mesh.n_elems())
        .map(|e| (e % n_ranks) as u32)
        .collect();
    let a = run_observed(&f, &part, n_ranks, steps);
    let b = run_observed(&f, &part, n_ranks, steps);
    for name in [
        names::ELEM_OPS,
        names::EXCHANGES,
        names::MSGS_SENT,
        names::DOFS_SENT,
    ] {
        assert_eq!(a.counter_by_level(name), b.counter_by_level(name), "{name}");
        assert_eq!(a.counter_total(name), b.counter_total(name), "{name}");
    }
}

#[test]
fn chrome_trace_round_trips_and_matches_timeline() {
    use wave_lts::obs::{validate_trace, Json};
    use wave_lts::runtime::stats::chrome_trace;

    let f = fixture();
    let n_ranks = 2;
    let part = partition_mesh(&f.mesh, &f.levels, n_ranks, Strategy::ScotchP, 1);
    let cfg = DistributedConfig {
        record_timeline: true,
        ..DistributedConfig::new(n_ranks)
    };
    let v0 = vec![0.0; f.ndof];
    let mut host = MetricsRegistry::new();
    let (_, _, stats) = run_distributed_local_acoustic_observed(
        &f.mesh,
        &f.levels,
        ORDER,
        &part,
        f.dt,
        &f.u0,
        &v0,
        2,
        &cfg,
        &[],
        &mut host,
    )
    .unwrap();
    let rendered = chrome_trace(&[("integration", &stats)]).render();
    // the exporter's own parser/validator must accept its output
    let n_events = validate_trace(&rendered).expect("structurally valid trace");
    assert!(n_events > 0);
    let doc = Json::parse(&rendered).expect("round-trip");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), n_events);
    // one busy slice per timeline event, on the right rank's track
    let timeline_total: usize = stats.iter().map(|s| s.timeline.len()).sum();
    let busy_slices = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("busy"))
        .count();
    assert_eq!(busy_slices, timeline_total);
    for (r, s) in stats.iter().enumerate() {
        let on_track = events
            .iter()
            .filter(|e| {
                e.get("tid").and_then(|t| t.as_u64()) == Some(r as u64)
                    && e.get("name").and_then(|n| n.as_str()) == Some("exchange")
            })
            .count();
        assert_eq!(on_track as u64, s.n_exchanges, "exchange markers rank {r}");
    }
    // counter tracks carry the cumulative deterministic counters
    let last_elem_ops = events
        .iter()
        .rev()
        .find(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("C")
                && e.get("name")
                    .and_then(|n| n.as_str())
                    .is_some_and(|n| n.starts_with("elem_ops"))
        })
        .expect("elem_ops counter track");
    let v = last_elem_ops
        .get("args")
        .and_then(|a| a.get("elem_ops"))
        .and_then(|x| x.as_f64())
        .unwrap();
    assert!(v > 0.0);
}
