//! The p-level DOF grouping (Sec. IV-D) is a pure renumbering: runs with and
//! without it must agree exactly (up to the permutation), and the grouped
//! index sets must be contiguous.

use wave_lts::lts::{Chain1d, LtsNewmark, LtsSetup};
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::{AcousticOperator, ElasticOperator};

fn is_contiguous(v: &[u32]) -> bool {
    v.windows(2).all(|w| w[1] == w[0] + 1)
}

#[test]
fn grouped_sets_are_contiguous_runs() {
    let b = BenchmarkMesh::build(MeshKind::Trench, 1_000);
    let mut op = AcousticOperator::new(&b.mesh, 3);
    let setup0 = LtsSetup::new(&op, &b.levels.elem_level);
    let perm = setup0.grouping_permutation();
    op.set_permutation(&perm);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    for l in 0..setup.n_levels {
        assert!(is_contiguous(&setup.leaf[l]), "leaf[{l}] not contiguous");
        if l >= 1 {
            assert!(
                is_contiguous(&setup.active[l]),
                "active[{l}] not contiguous"
            );
        }
    }
    // active[l] is a suffix of the DOF range
    let ndof = op.dofmap.n_nodes() as u32;
    for l in 1..setup.n_levels {
        assert_eq!(*setup.active[l].last().unwrap(), ndof - 1);
    }
}

#[test]
fn grouped_acoustic_run_matches_ungrouped() {
    let b = BenchmarkMesh::build(MeshKind::Trench, 800);
    let order = 2;
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);

    // ungrouped
    let op0 = AcousticOperator::new(&b.mesh, order);
    let setup0 = LtsSetup::new(&op0, &b.levels.elem_level);
    let ndof = op0.dofmap.n_nodes();
    let u_init: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.31).sin()).collect();
    let mut u0 = u_init.clone();
    let mut v0 = vec![0.0; ndof];
    let mut lts0 = LtsNewmark::new(&op0, &setup0, dt);
    lts0.run(&mut u0, &mut v0, 0.0, 3, &[]);

    // grouped: same initial state, mapped through the permutation
    let mut op1 = AcousticOperator::new(&b.mesh, order);
    let perm = setup0.grouping_permutation();
    op1.set_permutation(&perm);
    let setup1 = LtsSetup::new(&op1, &b.levels.elem_level);
    let mut u1 = vec![0.0; ndof];
    for (old, &new) in perm.iter().enumerate() {
        u1[new as usize] = u_init[old];
    }
    let mut v1 = vec![0.0; ndof];
    let mut lts1 = LtsNewmark::new(&op1, &setup1, dt);
    lts1.run(&mut u1, &mut v1, 0.0, 3, &[]);

    // identical arithmetic → bitwise identical results (modulo renumbering)
    for old in 0..ndof {
        let new = perm[old] as usize;
        assert_eq!(u0[old], u1[new], "dof {old}");
        assert_eq!(v0[old], v1[new], "dof {old}");
    }
    // and the same masked work was done
    assert_eq!(lts0.stats.elem_ops, lts1.stats.elem_ops);
}

#[test]
fn grouped_elastic_run_matches_ungrouped() {
    let b = BenchmarkMesh::build(MeshKind::Embedding, 400);
    let order = 2;
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);

    let op0 = ElasticOperator::poisson(&b.mesh, order);
    let setup0 = LtsSetup::new(&op0, &b.levels.elem_level);
    let ndof = 3 * op0.dofmap.n_nodes();
    let u_init: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.17).cos()).collect();
    let mut u0 = u_init.clone();
    let mut v0 = vec![0.0; ndof];
    let mut lts0 = LtsNewmark::new(&op0, &setup0, dt);
    lts0.run(&mut u0, &mut v0, 0.0, 2, &[]);

    let mut op1 = ElasticOperator::poisson(&b.mesh, order);
    let perm = setup0.grouping_permutation();
    op1.set_permutation(&perm);
    let setup1 = LtsSetup::new(&op1, &b.levels.elem_level);
    let mut u1 = vec![0.0; ndof];
    for (old, &new) in perm.iter().enumerate() {
        u1[new as usize] = u_init[old];
    }
    let mut v1 = vec![0.0; ndof];
    let mut lts1 = LtsNewmark::new(&op1, &setup1, dt);
    lts1.run(&mut u1, &mut v1, 0.0, 2, &[]);

    for old in 0..ndof {
        let new = perm[old] as usize;
        assert_eq!(u0[old], u1[new], "dof {old}");
    }
}

#[test]
fn grouped_chain_matches_ungrouped() {
    let mut vel = vec![1.0; 20];
    for v in vel.iter_mut().skip(14) {
        *v = 4.0;
    }
    let c0 = Chain1d::with_velocities(vel.clone(), 1.0);
    let (lv, dt) = c0.assign_levels(0.5, 3);
    let setup0 = LtsSetup::new(&c0, &lv);
    let n = 21;
    let u_init: Vec<f64> = (0..n)
        .map(|i| (-((i as f64 - 7.0) / 2.0f64).powi(2)).exp())
        .collect();
    let mut u0 = u_init.clone();
    let mut v0 = vec![0.0; n];
    let mut lts0 = LtsNewmark::new(&c0, &setup0, dt);
    lts0.run(&mut u0, &mut v0, 0.0, 25, &[]);

    let mut c1 = Chain1d::with_velocities(vel, 1.0);
    let perm = setup0.grouping_permutation();
    c1.set_permutation(&perm);
    let setup1 = LtsSetup::new(&c1, &lv);
    let mut u1 = vec![0.0; n];
    for (old, &new) in perm.iter().enumerate() {
        u1[new as usize] = u_init[old];
    }
    let mut v1 = vec![0.0; n];
    let mut lts1 = LtsNewmark::new(&c1, &setup1, dt);
    lts1.run(&mut u1, &mut v1, 0.0, 25, &[]);
    for old in 0..n {
        assert_eq!(u0[old], u1[perm[old] as usize]);
    }
}
