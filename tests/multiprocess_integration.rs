//! The multi-process backend against the in-process reference: real
//! `wave-lts worker` OS processes, spawned through the coordinator, must
//! reproduce the channel-transport fields **bitwise** and the deterministic
//! counters **exactly** — the payload `f64`s cross the wire as raw bit
//! patterns and the workers rebuild the same plans, so nothing may differ.

#![cfg(unix)]

use std::time::Duration;
use wave_lts::lts::{LtsSetup, Operator};
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{partition_mesh, Strategy};
use wave_lts::runtime::process::{run_coordinator, ProcSpec};
use wave_lts::runtime::{run_distributed, DistributedConfig};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::AcousticOperator;

const ELEMENTS: usize = 600;
const ORDER: usize = 2;
const STEPS: usize = 3;

fn worker_args(dt: f64, overlap: bool) -> Vec<String> {
    [
        "worker",
        "--mesh",
        "trench",
        "--elements",
        &ELEMENTS.to_string(),
        "--order",
        &ORDER.to_string(),
        "--steps",
        &STEPS.to_string(),
        "--strategy",
        "scotch-p",
        "--seed",
        "1",
        "--overlap",
        &overlap.to_string(),
        "--dt-bits",
        &dt.to_bits().to_string(),
        "--u0-bits",
        &0.003f64.to_bits().to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn worker_processes_match_in_process_bitwise() {
    let b = BenchmarkMesh::build(MeshKind::Trench, ELEMENTS);
    let op = AcousticOperator::new(&b.mesh, ORDER);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = Operator::ndof(&op);
    let dt = b.levels.dt_global * cfl_dt_scale(ORDER, 3);
    // must match the worker's --u0-bits initial condition
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.003).sin()).collect();
    let v0 = vec![0.0; ndof];

    for (ranks, overlap) in [(2usize, false), (3, true)] {
        let part = partition_mesh(&b.mesh, &b.levels, ranks, Strategy::ScotchP, 1);
        let cfg = DistributedConfig {
            overlap,
            ..DistributedConfig::new(ranks)
        };
        let (u_ref, v_ref, stats_ref) =
            run_distributed(&op, &setup, &part, dt, &u0, &v0, STEPS, &cfg).unwrap();

        let spec = ProcSpec {
            bin: env!("CARGO_BIN_EXE_wave-lts").into(),
            args: worker_args(dt, overlap),
            n_ranks: ranks,
            timeout: Duration::from_secs(300),
        };
        let (u, v, stats) = run_coordinator(&spec)
            .unwrap_or_else(|e| panic!("{ranks} ranks overlap={overlap}: {e}"));

        assert_eq!(u.len(), ndof, "{ranks} ranks: assembled field size");
        for i in 0..ndof {
            assert_eq!(
                u_ref[i].to_bits(),
                u[i].to_bits(),
                "{ranks} ranks overlap={overlap}: u[{i}]"
            );
            assert_eq!(
                v_ref[i].to_bits(),
                v[i].to_bits(),
                "{ranks} ranks overlap={overlap}: v[{i}]"
            );
        }
        assert_eq!(stats.len(), ranks);
        for (a, b) in stats_ref.iter().zip(&stats) {
            assert_eq!(a.elem_ops, b.elem_ops, "elem_ops rank {}", a.rank);
            assert_eq!(a.n_exchanges, b.n_exchanges, "n_exchanges rank {}", a.rank);
            assert_eq!(a.msgs_sent, b.msgs_sent, "msgs_sent rank {}", a.rank);
            assert_eq!(a.dofs_sent, b.dofs_sent, "dofs_sent rank {}", a.rank);
        }
    }
}

#[test]
fn coordinator_reports_worker_failure_cleanly() {
    // a worker launched with an unknown mesh exits nonzero before dialling
    // in; the coordinator must return an error, not hang
    let spec = ProcSpec {
        bin: env!("CARGO_BIN_EXE_wave-lts").into(),
        args: vec!["worker".into(), "--mesh".into(), "bogus".into()],
        n_ranks: 2,
        timeout: Duration::from_secs(60),
    };
    assert!(run_coordinator(&spec).is_err());
}
