//! Property-based tests of the partitioners and their metrics on randomised
//! meshes and partitions.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wave_lts::mesh::{HexMesh, Levels, NodalHypergraph};
use wave_lts::partition::{load_imbalance, mpi_volume, partition_mesh, Strategy as PartStrategy};

/// Random small meshes with random fast boxes painted in.
fn mesh_strategy() -> impl Strategy<Value = (HexMesh, Levels)> {
    ((3usize..9), (3usize..9), (3usize..7), 0u64..1000).prop_map(|(nx, ny, nz, seed)| {
        let mut m = HexMesh::uniform(nx, ny, nz, 1.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..rng.gen_range(0..3) {
            let i0 = rng.gen_range(0..nx);
            let j0 = rng.gen_range(0..ny);
            let k0 = rng.gen_range(0..nz);
            let di = rng.gen_range(1..=nx - i0);
            let dj = rng.gen_range(1..=ny - j0);
            let dk = rng.gen_range(1..=nz - k0);
            let v = [2.0, 4.0][rng.gen_range(0..2)];
            m.paint_box((i0, i0 + di), (j0, j0 + dj), (k0, k0 + dk), v, 1.0);
        }
        let lv = Levels::assign(&m, 0.5, 4);
        (m, lv)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every strategy yields a complete partition with non-empty parts on
    /// arbitrary level layouts.
    #[test]
    fn partitions_always_valid((m, lv) in mesh_strategy(), seed in 0u64..100) {
        let k = 4.min(m.n_elems());
        for s in [PartStrategy::ScotchBaseline, PartStrategy::ScotchP,
                  PartStrategy::MetisMc, PartStrategy::Patoh { final_imbal: 0.05 }] {
            let part = partition_mesh(&m, &lv, k, s, seed);
            prop_assert_eq!(part.len(), m.n_elems());
            let mut counts = vec![0usize; k];
            for &p in &part {
                prop_assert!((p as usize) < k);
                counts[p as usize] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c > 0), "{}: {:?}", s.name(), counts);
        }
    }

    /// The MPI volume metric equals a brute-force recomputation from the
    /// definition (Σ_n c[h'_n](λ_n − 1)).
    #[test]
    fn mpi_volume_matches_bruteforce((m, lv) in mesh_strategy(), seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = 3;
        let part: Vec<u32> = (0..m.n_elems()).map(|_| rng.gen_range(0..k)).collect();
        let fast = mpi_volume(&m, &lv, &part);
        // brute force straight from the definition
        let mut slow = 0u64;
        for nid in 0..m.n_corner_nodes() as u32 {
            let elems = m.node_elems(nid);
            let mut parts: Vec<u32> = elems.iter().map(|&e| part[e as usize]).collect();
            parts.sort_unstable();
            parts.dedup();
            if parts.len() > 1 {
                let cost: u64 = elems.iter().map(|&e| lv.p_of(e)).sum();
                slow += cost * (parts.len() as u64 - 1);
            }
        }
        prop_assert_eq!(fast, slow);
    }

    /// Load imbalance is 0 exactly when all per-part loads are equal, and
    /// the per-part loads always sum to the total work.
    #[test]
    fn imbalance_metric_consistent((m, lv) in mesh_strategy(), seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = 2;
        let part: Vec<u32> = (0..m.n_elems()).map(|_| rng.gen_range(0..k as u32)).collect();
        let rep = load_imbalance(&lv, &part, k);
        let total: u64 = rep.part_load.iter().sum();
        let expect: u64 = (0..m.n_elems() as u32).map(|e| lv.p_of(e)).sum();
        prop_assert_eq!(total, expect);
        let max = *rep.part_load.iter().max().unwrap();
        let min = *rep.part_load.iter().min().unwrap();
        prop_assert!((rep.total_pct == 0.0) == (max == min));
        prop_assert!(rep.total_pct >= 0.0 && rep.total_pct <= 100.0);
    }

    /// Hypergraph cut is monotone under merging parts (coarsening a
    /// partition can only reduce connectivity).
    #[test]
    fn cut_monotone_under_merging((m, lv) in mesh_strategy(), seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part4: Vec<u32> = (0..m.n_elems()).map(|_| rng.gen_range(0..4)).collect();
        let part2: Vec<u32> = part4.iter().map(|&p| p / 2).collect();
        let h = NodalHypergraph::build(&m, Some(&lv));
        prop_assert!(h.cut_size(&part2) <= h.cut_size(&part4));
    }

    /// Levels from CFL assignment always admit a stable Δt/2^k per element
    /// and conform across faces.
    #[test]
    fn levels_always_valid((m, lv) in mesh_strategy()) {
        for e in 0..m.n_elems() as u32 {
            let dt_e = lv.dt_global / lv.p_of(e) as f64;
            prop_assert!(dt_e <= 0.5 * m.elem_cfl_ratio(e) + 1e-12);
            for nb in m.face_neighbors(e) {
                let d = (lv.elem_level[e as usize] as i32 - lv.elem_level[nb as usize] as i32).abs();
                prop_assert!(d <= 1);
            }
        }
    }
}
