//! Every transport backend must pass the same conformance battery — the
//! "pluggable" in "pluggable transport" is this file.
//!
//! The suite itself lives in `runtime::transport::conformance` so backends
//! added later inherit it; these tests just instantiate it per backend,
//! including a fault-wrapped fabric whose injected delays must not change
//! any observable semantics.

use wave_lts::runtime::transport::conformance::{run_suite, Checks};
use wave_lts::runtime::transport::faulty::{wrap, FaultPlan};
use wave_lts::runtime::transport::{channel, make_cluster, ring, Transport, TransportKind};

#[test]
fn channel_backend_conforms() {
    run_suite(
        |n| make_cluster(TransportKind::Channel, n),
        Checks::default(),
    );
}

#[test]
fn shm_ring_backend_conforms() {
    run_suite(
        |n| make_cluster(TransportKind::SharedRing, n),
        Checks::default(),
    );
}

/// A deliberately tiny ring (2 slots) forces the backpressure path through
/// the whole battery, not just the backpressure check.
#[test]
fn shm_ring_backend_conforms_under_tiny_capacity() {
    run_suite(|n| ring::ring_cluster(n, 2), Checks::default());
}

#[cfg(unix)]
#[test]
fn unix_socket_backend_conforms() {
    run_suite(
        |n| make_cluster(TransportKind::UnixSocket, n),
        Checks::default(),
    );
}

/// Link-latency shaping (delivery matures `latency` after the send was
/// posted) delays observation only; FIFO, addressing, integrity and
/// disconnect semantics must survive unchanged.
#[test]
fn latency_shaped_channel_conforms() {
    run_suite(
        |n| channel::channel_cluster_with_latency(n, std::time::Duration::from_micros(500)),
        Checks::default(),
    );
}

/// Injected send delays shape timing only; every conformance property must
/// survive unchanged.
#[test]
fn delay_injecting_wrapper_changes_nothing() {
    let plan = FaultPlan {
        send_delay_us: 200,
        ..FaultPlan::default()
    };
    run_suite(
        |n| {
            make_cluster(TransportKind::Channel, n)
                .into_iter()
                .map(|ep| wrap(ep, plan))
                .collect::<Vec<Box<dyn Transport>>>()
        },
        Checks::default(),
    );
}

/// Flight-recorder seq matching must survive injected drops and forced
/// recv timeouts: gaps in the delivered seq stream are fine, desyncs (a
/// recv matching the wrong send) are not — asserted per backend via the
/// causal merge's lamport ordering.
mod seq_integrity {
    use wave_lts::runtime::transport::conformance::seq_integrity_under_faults;
    use wave_lts::runtime::transport::{make_cluster, ring, TransportKind};

    #[test]
    fn channel_seqs_survive_faults() {
        seq_integrity_under_faults(|n| make_cluster(TransportKind::Channel, n));
    }

    #[test]
    fn shm_ring_seqs_survive_faults() {
        seq_integrity_under_faults(|n| ring::ring_cluster(n, 4));
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_seqs_survive_faults() {
        seq_integrity_under_faults(|n| make_cluster(TransportKind::UnixSocket, n));
    }
}
