//! The pluggable-transport contract on the real 3-D SEM: every backend, in
//! both communication modes, must reproduce the channel/blocking reference
//! **bit for bit** — fields via `to_bits`, deterministic counters exactly.
//! Anything weaker would let a backend silently reorder the interface
//! assembly.

use wave_lts::lts::{LtsSetup, Operator};
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{partition_mesh, Strategy};
use wave_lts::runtime::{run_distributed, DistributedConfig, RankStats, TransportKind};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::AcousticOperator;

const BACKENDS: [TransportKind; 3] = [
    TransportKind::Channel,
    TransportKind::SharedRing,
    TransportKind::UnixSocket,
];

#[allow(clippy::too_many_arguments)] // a test harness knob per axis beats a one-use config struct
fn run_case(
    op: &AcousticOperator,
    setup: &LtsSetup,
    part: &[u32],
    dt: f64,
    u0: &[f64],
    steps: usize,
    ranks: usize,
    kind: TransportKind,
    overlap: bool,
) -> (Vec<f64>, Vec<f64>, Vec<RankStats>) {
    let cfg = DistributedConfig {
        transport: kind,
        overlap,
        ..DistributedConfig::new(ranks)
    };
    run_distributed(op, setup, part, dt, u0, &vec![0.0; u0.len()], steps, &cfg)
        .unwrap_or_else(|e| panic!("{kind:?} overlap={overlap} ranks={ranks}: {e}"))
}

fn assert_identical(
    label: &str,
    reference: &(Vec<f64>, Vec<f64>, Vec<RankStats>),
    got: &(Vec<f64>, Vec<f64>, Vec<RankStats>),
) {
    let (ur, vr, sr) = reference;
    let (u, v, s) = got;
    for i in 0..ur.len() {
        assert_eq!(ur[i].to_bits(), u[i].to_bits(), "{label}: u[{i}]");
        assert_eq!(vr[i].to_bits(), v[i].to_bits(), "{label}: v[{i}]");
    }
    for (a, b) in sr.iter().zip(s) {
        assert_eq!(a.elem_ops, b.elem_ops, "{label}: elem_ops rank {}", a.rank);
        assert_eq!(
            a.n_exchanges, b.n_exchanges,
            "{label}: n_exchanges rank {}",
            a.rank
        );
        assert_eq!(
            a.msgs_sent, b.msgs_sent,
            "{label}: msgs_sent rank {}",
            a.rank
        );
        assert_eq!(
            a.dofs_sent, b.dofs_sent,
            "{label}: dofs_sent rank {}",
            a.rank
        );
    }
}

fn sweep(elements: usize, order: usize, rank_counts: &[usize], steps: usize) {
    let b = BenchmarkMesh::build(MeshKind::Trench, elements);
    let op = AcousticOperator::new(&b.mesh, order);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = Operator::ndof(&op);
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.07).sin()).collect();
    for &ranks in rank_counts {
        let part = partition_mesh(&b.mesh, &b.levels, ranks, Strategy::ScotchP, 1);
        let reference = run_case(
            &op,
            &setup,
            &part,
            dt,
            &u0,
            steps,
            ranks,
            TransportKind::Channel,
            false,
        );
        assert!(reference.2.iter().any(|s| s.n_exchanges > 0));
        for kind in BACKENDS {
            for overlap in [false, true] {
                if kind == TransportKind::Channel && !overlap {
                    continue; // that's the reference itself
                }
                let got = run_case(&op, &setup, &part, dt, &u0, steps, ranks, kind, overlap);
                assert_identical(
                    &format!("order {order}, {ranks} ranks, {kind:?}, overlap={overlap}"),
                    &reference,
                    &got,
                );
            }
        }
    }
}

#[test]
fn order2_all_transports_all_rank_counts_bitwise() {
    sweep(600, 2, &[2, 4, 8], 2);
}

#[test]
fn order3_all_transports_bitwise() {
    sweep(200, 3, &[4], 2);
}

#[test]
fn order4_all_transports_bitwise() {
    sweep(80, 4, &[4], 2);
}
