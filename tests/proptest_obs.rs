//! Property-based tests of the observability counters: for random small
//! meshes, level paintings and partitions, the distributed runtime's
//! deterministic counters must equal the closed-form [`exchange_oracle`] and
//! the serial stepper's element-operation count *exactly*.
//!
//! SEM order 1 throughout — the oracle counts corner nodes.

use proptest::prelude::*;
use wave_lts::lts::{LtsNewmark, LtsSetup, Operator};
use wave_lts::mesh::{HexMesh, Levels};
use wave_lts::obs::MetricsRegistry;
use wave_lts::partition::exchange_oracle;
use wave_lts::runtime::stats::names;
use wave_lts::runtime::{run_distributed_local_acoustic_observed, DistributedConfig};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::AcousticOperator;

const ORDER: usize = 1;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Per-level and total exchange volumes and message counts of a real
    /// distributed run equal `steps ×` the no-execution oracle; summed
    /// element work equals the serial stepper's count.
    #[test]
    fn distributed_counters_equal_oracle_and_serial(
        nx in 2usize..5, ny in 2usize..4, nz in 1usize..3,
        paint in 0usize..3, k in 2usize..4, steps in 1usize..4,
    ) {
        let mut mesh = HexMesh::uniform(nx, ny, nz, 1.0, 1.0);
        if paint > 0 {
            mesh.paint_box((0, paint.min(nx)), (0, ny), (0, nz), 2.0, 1.0);
        }
        let levels = Levels::assign(&mesh, 0.5, 3);
        let part: Vec<u32> = (0..mesh.n_elems()).map(|e| (e % k) as u32).collect();

        let op = AcousticOperator::new(&mesh, ORDER);
        let setup = LtsSetup::new(&op, &levels.elem_level);
        let ndof = Operator::ndof(&op);
        prop_assert_eq!(ndof, mesh.n_corner_nodes());
        let dt = levels.dt_global * cfl_dt_scale(ORDER, 3);
        let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.13).sin()).collect();
        let v0 = vec![0.0; ndof];

        // serial reference operation count
        let mut u_ref = u0.clone();
        let mut v_ref = v0.clone();
        let mut lts = LtsNewmark::new(&op, &setup, dt);
        lts.run(&mut u_ref, &mut v_ref, 0.0, steps, &[]);

        // distributed run with merged host registry
        let cfg = DistributedConfig::new(k);
        let mut host = MetricsRegistry::new();
        let (u, _, stats) = run_distributed_local_acoustic_observed(
            &mesh, &levels, ORDER, &part, dt, &u0, &v0, steps, &cfg, &[], &mut host,
        )
        .unwrap();

        let o = exchange_oracle(&mesh, &levels, &part);
        let s = steps as u64;
        for l in 0..levels.n_levels {
            prop_assert_eq!(
                host.counter(names::DOFS_SENT, Some(l as u8)), o.dofs_sent[l] * s,
                "dofs_sent at level {}", l
            );
            prop_assert_eq!(
                host.counter(names::MSGS_SENT, Some(l as u8)), o.msgs_sent[l] * s,
                "msgs_sent at level {}", l
            );
            prop_assert_eq!(
                host.counter(names::ELEM_OPS, Some(l as u8)), o.elem_ops[l] * s,
                "elem_ops at level {}", l
            );
        }
        prop_assert_eq!(host.counter_total(names::ELEM_OPS), lts.stats.elem_ops);
        prop_assert_eq!(o.total_elem_ops() * s, lts.stats.elem_ops);
        let rank_sum: u64 = stats.iter().map(|r| r.elem_ops).sum();
        prop_assert_eq!(rank_sum, lts.stats.elem_ops);

        // the physics must agree too (the counters are not a side theory)
        let scale = u_ref.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for i in 0..ndof {
            prop_assert!((u[i] - u_ref[i]).abs() <= 1e-12 * scale, "dof {}", i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging histograms is lossless for the discrete state: bucket counts,
    /// observation count and sum add, min/max take the extremes — so
    /// post-join registry merging never distorts p50/p95/p99 inputs.
    #[test]
    fn histogram_merge_preserves_bucket_counts(
        xs in prop::collection::vec(1e-9f64..10.0, 0..40),
        ys in prop::collection::vec(1e-9f64..10.0, 0..40),
    ) {
        use wave_lts::obs::Histogram;
        let mut a = Histogram::default();
        for &x in &xs { a.observe(x); }
        let mut b = Histogram::default();
        for &y in &ys { b.observe(y); }
        let mut joint = Histogram::default();
        for &z in xs.iter().chain(&ys) { joint.observe(z); }

        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(&merged.buckets[..], &joint.buckets[..]);
        prop_assert_eq!(merged.count, joint.count);
        prop_assert!((merged.sum - joint.sum).abs() <= 1e-9 * joint.sum.abs().max(1.0));
        if joint.count > 0 {
            prop_assert_eq!(merged.min, joint.min);
            prop_assert_eq!(merged.max, joint.max);
            // quantiles computed from identical buckets must agree exactly
            prop_assert_eq!(merged.p50(), joint.p50());
            prop_assert_eq!(merged.p95(), joint.p95());
            prop_assert_eq!(merged.p99(), joint.p99());
        }
    }
}
