//! The threaded message-passing runtime must agree with the serial stepper
//! on the real 3-D SEM, across partitioning strategies.

use wave_lts::lts::{LtsNewmark, LtsSetup};
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{partition_mesh, Strategy};
use wave_lts::runtime::{run_distributed, DistributedConfig};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::AcousticOperator;

fn serial_run(
    op: &AcousticOperator,
    setup: &LtsSetup,
    dt: f64,
    u0: &[f64],
    steps: usize,
) -> Vec<f64> {
    let mut u = u0.to_vec();
    let mut v = vec![0.0; u0.len()];
    let mut lts = LtsNewmark::new(op, setup, dt);
    lts.run(&mut u, &mut v, 0.0, steps, &[]);
    u
}

#[test]
fn distributed_sem_matches_serial_all_strategies() {
    let b = BenchmarkMesh::build(MeshKind::Trench, 600);
    let order = 2;
    let op = AcousticOperator::new(&b.mesh, order);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.07).sin()).collect();
    let reference = serial_run(&op, &setup, dt, &u0, 4);

    for strategy in [
        Strategy::ScotchBaseline,
        Strategy::ScotchP,
        Strategy::MetisMc,
    ] {
        let n_ranks = 3;
        let part = partition_mesh(&b.mesh, &b.levels, n_ranks, strategy, 1);
        let cfg = DistributedConfig::new(n_ranks);
        let (u, _, stats) =
            run_distributed(&op, &setup, &part, dt, &u0, &vec![0.0; ndof], 4, &cfg).unwrap();
        let scale = reference.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for i in 0..ndof {
            assert!(
                (u[i] - reference[i]).abs() < 1e-12 * scale,
                "{}: dof {i}: {} vs {}",
                strategy.name(),
                u[i],
                reference[i]
            );
        }
        assert!(stats.iter().all(|s| s.elem_ops > 0));
    }
}

#[test]
fn distributed_scales_to_many_ranks() {
    let b = BenchmarkMesh::build(MeshKind::Embedding, 600);
    let order = 2;
    let op = AcousticOperator::new(&b.mesh, order);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.03).cos()).collect();
    let reference = serial_run(&op, &setup, dt, &u0, 3);

    for n_ranks in [2usize, 6, 8] {
        let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
        let cfg = DistributedConfig::new(n_ranks);
        let (u, _, _) =
            run_distributed(&op, &setup, &part, dt, &u0, &vec![0.0; ndof], 3, &cfg).unwrap();
        let scale = reference.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        let max_dev = (0..ndof)
            .map(|i| (u[i] - reference[i]).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_dev < 1e-12 * scale,
            "{n_ranks} ranks: deviation {max_dev}"
        );
    }
}

#[test]
fn distributed_with_sources_matches_serial() {
    use wave_lts::lts::Source;
    use wave_lts::runtime::distributed::run_distributed_with_sources;
    let b = BenchmarkMesh::build(MeshKind::Trench, 600);
    let order = 2;
    let op = AcousticOperator::new(&b.mesh, order);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    // one source in the coarse region (leaf level 0), one at the finest level
    let coarse_dof = setup.leaf[0][setup.leaf[0].len() / 2];
    let fine_dof = *setup.leaf.last().unwrap().first().unwrap();
    let mk = || {
        vec![
            Source::ricker(coarse_dof, 0.2, 2.0, 1.0),
            Source::ricker(fine_dof, 0.2, 2.0, 0.5),
        ]
    };
    let steps = 5;
    let mut u_ref = vec![0.0; ndof];
    let mut v_ref = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    lts.run(&mut u_ref, &mut v_ref, 0.0, steps, &mk());

    let n_ranks = 3;
    let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
    let cfg = DistributedConfig::new(n_ranks);
    let srcs = mk();
    let (u, _, _) = run_distributed_with_sources(
        &op,
        &setup,
        &part,
        dt,
        &vec![0.0; ndof],
        &vec![0.0; ndof],
        steps,
        &cfg,
        &srcs,
    )
    .unwrap();
    let scale = u_ref.iter().fold(1e-30f64, |m, &x| m.max(x.abs()));
    for i in 0..ndof {
        assert!(
            (u[i] - u_ref[i]).abs() <= 1e-12 * scale,
            "dof {i}: {} vs {}",
            u[i],
            u_ref[i]
        );
    }
}

#[test]
fn work_accounting_matches_partition() {
    let b = BenchmarkMesh::build(MeshKind::Trench, 600);
    let op = AcousticOperator::new(&b.mesh, 2);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(2, 3);
    let u0 = vec![0.0; ndof];
    let n_ranks = 2;
    let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
    let cfg = DistributedConfig::new(n_ranks);
    let steps = 2;
    let (_, _, stats) =
        run_distributed(&op, &setup, &part, dt, &u0, &vec![0.0; ndof], steps, &cfg).unwrap();
    // total distributed element-ops = serial masked ops
    let total: u64 = stats.iter().map(|s| s.elem_ops).sum();
    assert_eq!(total, steps as u64 * setup.lts_elem_ops());
}
