//! The threaded message-passing runtime must agree with the serial stepper
//! on the real 3-D SEM, across partitioning strategies.

use wave_lts::lts::{LtsNewmark, LtsSetup};
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{partition_mesh, Strategy};
use wave_lts::runtime::{run_distributed, DistributedConfig};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::AcousticOperator;

fn serial_run(
    op: &AcousticOperator,
    setup: &LtsSetup,
    dt: f64,
    u0: &[f64],
    steps: usize,
) -> Vec<f64> {
    let mut u = u0.to_vec();
    let mut v = vec![0.0; u0.len()];
    let mut lts = LtsNewmark::new(op, setup, dt);
    lts.run(&mut u, &mut v, 0.0, steps, &[]);
    u
}

#[test]
fn distributed_sem_matches_serial_all_strategies() {
    let b = BenchmarkMesh::build(MeshKind::Trench, 600);
    let order = 2;
    let op = AcousticOperator::new(&b.mesh, order);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.07).sin()).collect();
    let reference = serial_run(&op, &setup, dt, &u0, 4);

    for strategy in [
        Strategy::ScotchBaseline,
        Strategy::ScotchP,
        Strategy::MetisMc,
    ] {
        let n_ranks = 3;
        let part = partition_mesh(&b.mesh, &b.levels, n_ranks, strategy, 1);
        let cfg = DistributedConfig::new(n_ranks);
        let (u, _, stats) =
            run_distributed(&op, &setup, &part, dt, &u0, &vec![0.0; ndof], 4, &cfg).unwrap();
        let scale = reference.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for i in 0..ndof {
            assert!(
                (u[i] - reference[i]).abs() < 1e-12 * scale,
                "{}: dof {i}: {} vs {}",
                strategy.name(),
                u[i],
                reference[i]
            );
        }
        assert!(stats.iter().all(|s| s.elem_ops > 0));
    }
}

#[test]
fn distributed_scales_to_many_ranks() {
    let b = BenchmarkMesh::build(MeshKind::Embedding, 600);
    let order = 2;
    let op = AcousticOperator::new(&b.mesh, order);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.03).cos()).collect();
    let reference = serial_run(&op, &setup, dt, &u0, 3);

    for n_ranks in [2usize, 6, 8] {
        let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
        let cfg = DistributedConfig::new(n_ranks);
        let (u, _, _) =
            run_distributed(&op, &setup, &part, dt, &u0, &vec![0.0; ndof], 3, &cfg).unwrap();
        let scale = reference.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        let max_dev = (0..ndof)
            .map(|i| (u[i] - reference[i]).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_dev < 1e-12 * scale,
            "{n_ranks} ranks: deviation {max_dev}"
        );
    }
}

#[test]
fn distributed_with_sources_matches_serial() {
    use wave_lts::lts::Source;
    use wave_lts::runtime::distributed::run_distributed_with_sources;
    let b = BenchmarkMesh::build(MeshKind::Trench, 600);
    let order = 2;
    let op = AcousticOperator::new(&b.mesh, order);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    // one source in the coarse region (leaf level 0), one at the finest level
    let coarse_dof = setup.leaf[0][setup.leaf[0].len() / 2];
    let fine_dof = *setup.leaf.last().unwrap().first().unwrap();
    let mk = || {
        vec![
            Source::ricker(coarse_dof, 0.2, 2.0, 1.0),
            Source::ricker(fine_dof, 0.2, 2.0, 0.5),
        ]
    };
    let steps = 5;
    let mut u_ref = vec![0.0; ndof];
    let mut v_ref = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    lts.run(&mut u_ref, &mut v_ref, 0.0, steps, &mk());

    let n_ranks = 3;
    let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
    let cfg = DistributedConfig::new(n_ranks);
    let srcs = mk();
    let (u, _, _) = run_distributed_with_sources(
        &op,
        &setup,
        &part,
        dt,
        &vec![0.0; ndof],
        &vec![0.0; ndof],
        steps,
        &cfg,
        &srcs,
    )
    .unwrap();
    let scale = u_ref.iter().fold(1e-30f64, |m, &x| m.max(x.abs()));
    for i in 0..ndof {
        assert!(
            (u[i] - u_ref[i]).abs() <= 1e-12 * scale,
            "dof {i}: {} vs {}",
            u[i],
            u_ref[i]
        );
    }
}

// ---- fault injection ------------------------------------------------------
//
// The PR-4 claim "a dead rank surfaces as RuntimeError everywhere, no
// deadlock" becomes a tested property here: a FaultyTransport kills one
// rank at a chosen LTS level, and every rank must come back with an error
// before a wall-clock deadline.

use std::time::Duration;
use wave_lts::lts::Chain1d;
use wave_lts::runtime::transport::{self, faulty, TransportKind};
use wave_lts::runtime::{run_distributed_endpoints, RuntimeError};

/// A 3-level chain with an interleaved partition: every rank owns elements
/// at every level and talks to every other rank, so a victim has sends to
/// die on at any level.
fn chain_world() -> (Chain1d, LtsSetup, Vec<u32>, f64) {
    let mut vel = vec![1.0; 24];
    for (i, v) in vel.iter_mut().enumerate() {
        if i >= 20 {
            *v = 4.0;
        } else if i >= 17 {
            *v = 2.0;
        }
    }
    let c = Chain1d::with_velocities(vel, 1.0);
    let (lv, dt) = c.assign_levels(0.5, 3);
    let setup = LtsSetup::new(&c, &lv);
    assert_eq!(setup.n_levels, 3);
    let part: Vec<u32> = (0..24).map(|e| (e % 3) as u32).collect();
    (c, setup, part, dt)
}

/// Run a 3-rank chain with rank 1's endpoint wrapped in the given fault
/// plan (every endpoint additionally gets `base` applied), on a watchdog
/// thread so a deadlock fails the test instead of hanging it.
fn run_with_faults(
    kind: TransportKind,
    overlap: bool,
    victim_plan: faulty::FaultPlan,
    all_plan: Option<faulty::FaultPlan>,
) -> Vec<wave_lts::runtime::RankRun> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let (c, setup, part, dt) = chain_world();
        let ndof = 25;
        let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.37).sin()).collect();
        let mut endpoints = transport::make_cluster(kind, 3);
        if let Some(plan) = all_plan {
            endpoints = endpoints
                .into_iter()
                .map(|ep| faulty::wrap(ep, plan))
                .collect();
        }
        let ep = endpoints.remove(1);
        endpoints.insert(1, faulty::wrap(ep, victim_plan));
        let cfg = DistributedConfig {
            overlap,
            ..DistributedConfig::new(3)
        };
        let outcomes = run_distributed_endpoints(
            &c,
            &setup,
            &part,
            dt,
            &u0,
            &vec![0.0; ndof],
            10,
            &cfg,
            &[],
            endpoints,
        );
        let _ = tx.send(outcomes);
    });
    rx.recv_timeout(Duration::from_secs(60))
        .unwrap_or_else(|_| panic!("{kind:?} overlap={overlap}: runtime deadlocked"))
}

#[test]
fn killed_rank_cascades_error_to_every_rank_at_every_level() {
    // full level sweep on the channel backend in both comm modes; one level
    // on the heavier backends to keep the suite fast
    let scenarios: [(TransportKind, bool, std::ops::Range<usize>); 4] = [
        (TransportKind::Channel, false, 0..3),
        (TransportKind::Channel, true, 0..3),
        (TransportKind::SharedRing, false, 1..2),
        (TransportKind::UnixSocket, false, 1..2),
    ];
    for (kind, overlap, levels) in scenarios {
        for level in levels {
            let outcomes = run_with_faults(
                kind,
                overlap,
                faulty::FaultPlan {
                    die_on_send_at_level: Some(level as u8),
                    ..Default::default()
                },
                None,
            );
            assert_eq!(outcomes.len(), 3);
            for (rank, o) in outcomes.iter().enumerate() {
                let err = match o {
                    Err(e) => e,
                    Ok(_) => panic!(
                        "{kind:?} overlap={overlap} die@{level}: rank {rank} finished cleanly"
                    ),
                };
                assert!(
                    !matches!(err, RuntimeError::RankPanicked { .. }),
                    "{kind:?} die@{level}: rank {rank} panicked instead of erroring: {err}"
                );
            }
            // the victim reports the injected fault at the right level...
            match &outcomes[1] {
                Err(RuntimeError::FaultInjected { rank, level: l }) => {
                    assert_eq!((*rank, *l), (1, level));
                }
                other => panic!("{kind:?} die@{level}: victim outcome {other:?}"),
            }
            // ...and the survivors observe the disconnect, not the fault
            for rank in [0usize, 2] {
                match &outcomes[rank] {
                    Err(
                        RuntimeError::PeerDisconnected { .. } | RuntimeError::ChannelClosed { .. },
                    ) => {}
                    other => panic!("{kind:?} die@{level}: rank {rank} outcome {other:?}"),
                }
            }
        }
    }
}

#[test]
fn dropped_messages_with_recv_timeout_error_instead_of_hanging() {
    // rank 1 silently drops every 5th send; every rank's receives time out
    // rather than block forever — the lossy-network failure mode
    let outcomes = run_with_faults(
        TransportKind::Channel,
        false,
        faulty::FaultPlan {
            drop_every: Some(5),
            ..Default::default()
        },
        Some(faulty::FaultPlan {
            recv_timeout_ms: Some(1_000),
            ..Default::default()
        }),
    );
    for (rank, o) in outcomes.iter().enumerate() {
        let err = match o {
            Err(e) => e,
            Ok(_) => panic!("rank {rank} finished despite dropped partials"),
        };
        // a drop either times out the receiver or — when a later message
        // from the same peer arrives first — desyncs the per-sender FIFO,
        // which the level tag detects as a malformed partial
        assert!(
            matches!(
                err,
                RuntimeError::ExchangeTimeout { .. }
                    | RuntimeError::PeerDisconnected { .. }
                    | RuntimeError::ChannelClosed { .. }
                    | RuntimeError::FaultInjected { .. }
                    | RuntimeError::BadPayload { .. }
            ),
            "rank {rank}: unexpected failure mode {err}"
        );
    }
}

// ---- crash reports --------------------------------------------------------
//
// The flight recorder's acceptance contract: every injected failure mode
// (die-at-level, die-after-k, forced timeout) on every transport backend
// must yield a crash report whose per-rank recordings merge into one
// causally-ordered event stream and survive a JSON round trip.

mod crash_reports {
    use super::chain_world;
    use std::time::Duration;
    use wave_lts::obs::{merge_recordings, EventKind, Json, RankRecording};
    use wave_lts::runtime::postmortem::{reason_for, CrashReport};
    use wave_lts::runtime::transport::{self, faulty, TransportKind};
    use wave_lts::runtime::{run_distributed_endpoints_recorded, DistributedConfig, RankRun};

    /// `run_with_faults`, but through the recorded entry point so the
    /// drained flight rings come back alongside the outcomes.
    fn run_recorded(
        kind: TransportKind,
        victim_plan: faulty::FaultPlan,
        all_plan: Option<faulty::FaultPlan>,
    ) -> (Vec<RankRun>, Vec<RankRecording>) {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let (c, setup, part, dt) = chain_world();
            let ndof = 25;
            let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.37).sin()).collect();
            let mut endpoints = transport::make_cluster(kind, 3);
            if let Some(plan) = all_plan {
                endpoints = endpoints
                    .into_iter()
                    .map(|ep| faulty::wrap(ep, plan))
                    .collect();
            }
            let ep = endpoints.remove(1);
            endpoints.insert(1, faulty::wrap(ep, victim_plan));
            let cfg = DistributedConfig {
                flight_capacity: 512,
                ..DistributedConfig::new(3)
            };
            let out = run_distributed_endpoints_recorded(
                &c,
                &setup,
                &part,
                dt,
                &u0,
                &vec![0.0; ndof],
                10,
                &cfg,
                &[],
                endpoints,
            );
            let _ = tx.send(out);
        });
        rx.recv_timeout(Duration::from_secs(60))
            .unwrap_or_else(|_| panic!("{kind:?}: runtime deadlocked"))
    }

    fn assert_crash_report(
        kind: TransportKind,
        name: &str,
        victim: faulty::FaultPlan,
        all: Option<faulty::FaultPlan>,
    ) {
        let (outcomes, recordings) = run_recorded(kind, victim, all);
        assert_eq!(
            recordings.len(),
            3,
            "{kind:?} {name}: expected a recording per rank"
        );
        let err = outcomes
            .iter()
            .find_map(|o| o.as_ref().err())
            .unwrap_or_else(|| panic!("{kind:?} {name}: no rank failed"));
        let report = CrashReport::new(reason_for(err), err.to_string(), recordings);

        // merged and causally ordered: the merge is a linear extension of
        // happens-before — program order per rank is preserved, and every
        // matched recv comes after (and lamport-above) its send
        let merged = merge_recordings(&report.recordings)
            .unwrap_or_else(|e| panic!("{kind:?} {name}: causal merge failed: {e}"));
        assert!(!merged.is_empty(), "{kind:?} {name}: empty merge");
        let mut last_t = std::collections::BTreeMap::new();
        for m in &merged {
            if let Some(&prev) = last_t.get(&m.rank) {
                assert!(
                    m.ev.t_ns >= prev,
                    "{kind:?} {name}: rank {} program order violated in merge",
                    m.rank
                );
            }
            last_t.insert(m.rank, m.ev.t_ns);
        }
        for (ri, r) in merged
            .iter()
            .enumerate()
            .filter(|(_, m)| m.ev.kind == EventKind::Recv)
        {
            let send = merged.iter().enumerate().find(|(_, m)| {
                m.ev.kind == EventKind::Send
                    && m.rank == r.ev.peer
                    && m.ev.peer == r.rank
                    && m.ev.seq == r.ev.seq
            });
            if let Some((si, s)) = send {
                assert!(
                    si < ri && s.lamport < r.lamport,
                    "{kind:?} {name}: recv seq {} from rank {} not after its send",
                    r.ev.seq,
                    r.ev.peer
                );
            }
        }

        // at least one rank's ring ends on the fault marker — the recorder
        // stamps it as the final event before the error propagates out
        let faulted = report
            .recordings
            .iter()
            .filter(|r| r.events.last().map(|e| e.kind) == Some(EventKind::Fault))
            .count();
        assert!(
            faulted >= 1,
            "{kind:?} {name}: no rank recorded a terminal fault event"
        );

        // the document round-trips losslessly and renders a merge verdict
        let parsed = Json::parse(&report.to_json().render_pretty())
            .unwrap_or_else(|e| panic!("{kind:?} {name}: report JSON unparseable: {e}"));
        let back = CrashReport::from_json(&parsed)
            .unwrap_or_else(|e| panic!("{kind:?} {name}: report rejected: {e}"));
        assert_eq!(back, report, "{kind:?} {name}: round trip changed report");
        let text = report.render_text();
        assert!(
            text.contains("causal merge : OK"),
            "{kind:?} {name}: {text}"
        );
        assert!(text.contains(&report.reason), "{kind:?} {name}: {text}");
    }

    fn all_scenarios(kind: TransportKind) {
        assert_crash_report(
            kind,
            "die-at-level",
            faulty::FaultPlan {
                die_on_send_at_level: Some(1),
                ..Default::default()
            },
            None,
        );
        assert_crash_report(
            kind,
            "die-after-k",
            faulty::FaultPlan {
                die_after_sends: Some(7),
                ..Default::default()
            },
            None,
        );
        assert_crash_report(
            kind,
            "forced-timeout",
            faulty::FaultPlan {
                drop_every: Some(4),
                ..Default::default()
            },
            Some(faulty::FaultPlan {
                recv_timeout_ms: Some(1_000),
                ..Default::default()
            }),
        );
    }

    #[test]
    fn channel_faults_produce_causal_crash_reports() {
        all_scenarios(TransportKind::Channel);
    }

    #[test]
    fn shm_ring_faults_produce_causal_crash_reports() {
        all_scenarios(TransportKind::SharedRing);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_faults_produce_causal_crash_reports() {
        all_scenarios(TransportKind::UnixSocket);
    }
}

#[test]
fn work_accounting_matches_partition() {
    let b = BenchmarkMesh::build(MeshKind::Trench, 600);
    let op = AcousticOperator::new(&b.mesh, 2);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(2, 3);
    let u0 = vec![0.0; ndof];
    let n_ranks = 2;
    let part = partition_mesh(&b.mesh, &b.levels, n_ranks, Strategy::ScotchP, 1);
    let cfg = DistributedConfig::new(n_ranks);
    let steps = 2;
    let (_, _, stats) =
        run_distributed(&op, &setup, &part, dt, &u0, &vec![0.0; ndof], steps, &cfg).unwrap();
    // total distributed element-ops = serial masked ops
    let total: u64 = stats.iter().map(|s| s.elem_ops).sum();
    assert_eq!(total, steps as u64 * setup.lts_elem_ops());
}
