//! Cross-crate integration: every partitioning strategy on every benchmark
//! mesh, with the paper's quality relationships.

use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{edge_cut, load_imbalance, mpi_volume, partition_mesh, Strategy};

fn all_meshes() -> Vec<BenchmarkMesh> {
    vec![
        BenchmarkMesh::build(MeshKind::Trench, 4_000),
        BenchmarkMesh::build(MeshKind::Embedding, 4_000),
        BenchmarkMesh::build(MeshKind::Crust, 4_000),
    ]
}

#[test]
fn every_strategy_partitions_every_mesh() {
    let k = 8;
    for b in all_meshes() {
        let mut strategies = Strategy::paper_set();
        strategies.push(Strategy::ScotchBaseline);
        for s in strategies {
            let part = partition_mesh(&b.mesh, &b.levels, k, s, 3);
            let mut counts = vec![0usize; k];
            for &p in &part {
                assert!((p as usize) < k);
                counts[p as usize] += 1;
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "{} on {}: {counts:?}",
                s.name(),
                b.kind.name()
            );
        }
    }
}

#[test]
fn scotch_baseline_balances_total_but_not_levels() {
    let b = BenchmarkMesh::build(MeshKind::Trench, 8_000);
    let k = 8;
    let part = partition_mesh(&b.mesh, &b.levels, k, Strategy::ScotchBaseline, 1);
    let rep = load_imbalance(&b.levels, &part, k);
    // total (p-weighted) load is balanced…
    assert!(rep.total_pct < 15.0, "total {}%", rep.total_pct);
    // …but the finest level is badly unbalanced (the Fig. 1 pathology)
    let finest = b.levels.n_levels - 1;
    assert!(
        rep.per_level_pct[finest] > 50.0,
        "finest level {}% — baseline should NOT balance levels",
        rep.per_level_pct[finest]
    );
}

#[test]
fn level_aware_strategies_balance_every_level() {
    let b = BenchmarkMesh::build(MeshKind::Trench, 8_000);
    let k = 8;
    for s in [Strategy::ScotchP, Strategy::Patoh { final_imbal: 0.01 }] {
        let part = partition_mesh(&b.mesh, &b.levels, k, s, 1);
        let rep = load_imbalance(&b.levels, &part, k);
        for (l, &pct) in rep.per_level_pct.iter().enumerate() {
            let count = b.levels.histogram()[l];
            if count >= 8 * k {
                assert!(
                    pct < 50.0,
                    "{} level {l}: {pct}% ({count} elements)",
                    s.name()
                );
            }
        }
    }
}

#[test]
fn patoh_cut_is_volume_aware() {
    // the hypergraph partitioner optimises the exact MPI volume; on the
    // trench it must not lose badly to the graph partitioners on volume
    let b = BenchmarkMesh::build(MeshKind::Trench, 8_000);
    let k = 8;
    let patoh = partition_mesh(
        &b.mesh,
        &b.levels,
        k,
        Strategy::Patoh { final_imbal: 0.05 },
        1,
    );
    let metis = partition_mesh(&b.mesh, &b.levels, k, Strategy::MetisMc, 1);
    let vol_p = mpi_volume(&b.mesh, &b.levels, &patoh);
    let vol_m = mpi_volume(&b.mesh, &b.levels, &metis);
    assert!(
        (vol_p as f64) < 1.5 * vol_m as f64,
        "PaToH volume {vol_p} should be competitive with MeTiS {vol_m}"
    );
}

#[test]
fn metrics_are_internally_consistent() {
    let b = BenchmarkMesh::build(MeshKind::Embedding, 3_000);
    let k = 4;
    let part = partition_mesh(&b.mesh, &b.levels, k, Strategy::ScotchP, 2);
    // unsplit partition has zero cut and volume
    let one = vec![0u32; b.mesh.n_elems()];
    assert_eq!(edge_cut(&b.mesh, &b.levels, &one), 0);
    assert_eq!(mpi_volume(&b.mesh, &b.levels, &one), 0);
    // volume is at least the cut (each cut face has ≥ 4 shared nodes with
    // cost ≥ edge weight share)…  sanity: both positive for a real partition
    assert!(edge_cut(&b.mesh, &b.levels, &part) > 0);
    assert!(mpi_volume(&b.mesh, &b.levels, &part) > 0);
    // part loads sum to the total work
    let rep = load_imbalance(&b.levels, &part, k);
    let total: u64 = rep.part_load.iter().sum();
    let expect: u64 = (0..b.mesh.n_elems() as u32).map(|e| b.levels.p_of(e)).sum();
    assert_eq!(total, expect);
}

#[test]
fn seeds_change_partitions_but_not_validity() {
    let b = BenchmarkMesh::build(MeshKind::Crust, 3_000);
    let k = 4;
    let a = partition_mesh(
        &b.mesh,
        &b.levels,
        k,
        Strategy::Patoh { final_imbal: 0.05 },
        1,
    );
    let c = partition_mesh(
        &b.mesh,
        &b.levels,
        k,
        Strategy::Patoh { final_imbal: 0.05 },
        99,
    );
    assert_ne!(a, c, "different seeds should explore different partitions");
    for part in [&a, &c] {
        let rep = load_imbalance(&b.levels, part, k);
        assert!(rep.total_pct < 30.0);
    }
}
