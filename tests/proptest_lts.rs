//! Property-based tests of the LTS core invariants on randomised problems.

use proptest::prelude::*;
use wave_lts::lts::reference::ReferenceLts;
use wave_lts::lts::{Chain1d, LtsNewmark, LtsSetup, Newmark};

/// Random piecewise velocity profiles (1–8×) on chains of 8–40 elements.
fn chain_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (8usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(
                prop_oneof![Just(1.0f64), Just(2.0), Just(4.0), Just(8.0)],
                n,
            ),
            prop::collection::vec(-1.0f64..1.0, n + 1),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The masked production stepper always matches the literal full-vector
    /// Algorithm 1 — whatever the level layout.
    #[test]
    fn masked_matches_reference((vel, u0) in chain_strategy()) {
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.4, 4);
        let setup = LtsSetup::new(&c, &lv);
        let n = u0.len();
        let mut u1 = u0.clone();
        let mut v1 = vec![0.0; n];
        let mut u2 = u0;
        let mut v2 = vec![0.0; n];
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        let rf = ReferenceLts::new(&c, &setup, dt);
        for s in 0..6 {
            let t = s as f64 * dt;
            lts.step(&mut u1, &mut v1, t, &[]);
            rf.step(&mut u2, &mut v2, t, &[]);
        }
        let scale = u2.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
        for i in 0..n {
            prop_assert!((u1[i] - u2[i]).abs() < 1e-9 * scale,
                "dof {}: {} vs {}", i, u1[i], u2[i]);
        }
    }

    /// LTS at the CFL-safe coarse step stays bounded on any profile
    /// (stability), for hundreds of steps.
    #[test]
    fn lts_stays_bounded((vel, u0) in chain_strategy()) {
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 4);
        let setup = LtsSetup::new(&c, &lv);
        let n = u0.len();
        let mut u = u0;
        let mut v = vec![0.0; n];
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        lts.run(&mut u, &mut v, 0.0, 300, &[]);
        let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(norm.is_finite() && norm < 1e4, "norm {}", norm);
    }

    /// A single-level problem steps identically through the LTS and the
    /// plain Newmark code paths.
    #[test]
    fn single_level_is_newmark(u0 in prop::collection::vec(-1.0f64..1.0, 9..30)) {
        let n = u0.len() - 1;
        let c = Chain1d::uniform(n, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &vec![0u8; n]);
        let dt = 0.5;
        let mut u1 = u0.clone();
        let mut v1 = vec![0.0; n + 1];
        let mut u2 = u0;
        let mut v2 = vec![0.0; n + 1];
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        let mut nm = Newmark::new(&c, dt);
        for s in 0..10 {
            lts.step(&mut u1, &mut v1, s as f64 * dt, &[]);
            nm.step(&mut u2, &mut v2, s as f64 * dt, &[]);
        }
        prop_assert_eq!(u1, u2);
        prop_assert_eq!(v1, v2);
    }

    /// Leaf sets always partition the DOFs and active sets nest.
    #[test]
    fn setup_sets_are_consistent((vel, _) in chain_strategy()) {
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, _) = c.assign_levels(0.5, 5);
        let setup = LtsSetup::new(&c, &lv);
        let n = c.h.len() + 1;
        // leaf sets partition all DOFs
        let mut seen = vec![0usize; n];
        for leaf in &setup.leaf {
            for &d in leaf {
                seen[d as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1), "leaf sets not a partition: {:?}", seen);
        // active sets nest
        for k in 2..setup.n_levels {
            for d in &setup.active[k] {
                prop_assert!(setup.active[k - 1].contains(d));
            }
        }
        // masked products sum to the full apply
        let u: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) / 17.0 - 0.5).collect();
        let mut full = vec![0.0; n];
        wave_lts::lts::Operator::apply(&c, &u, &mut full);
        let mut sum = vec![0.0; n];
        for k in 0..setup.n_levels {
            wave_lts::lts::Operator::apply_masked(&c, &u, &mut sum, &setup.elems[k], &setup.dof_level, k as u8);
        }
        for i in 0..n {
            prop_assert!((full[i] - sum[i]).abs() < 1e-11, "dof {}", i);
        }
    }
}

// ---- cross-transport identity --------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On any random chain and interleaved partition, every transport
    /// backend in both communication modes reproduces the channel/blocking
    /// run bit for bit, with identical deterministic counters.
    #[test]
    fn transports_agree_bitwise_on_random_chains((vel, u0) in chain_strategy()) {
        use wave_lts::runtime::{run_distributed, DistributedConfig, TransportKind};
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.4, 3);
        let setup = LtsSetup::new(&c, &lv);
        let nelem = c.h.len();
        let n = u0.len();
        let n_ranks = 2 + nelem % 2; // 2 or 3 ranks, interleaved ownership
        let part: Vec<u32> = (0..nelem).map(|e| (e % n_ranks) as u32).collect();
        let run = |kind: TransportKind, overlap: bool| {
            let cfg = DistributedConfig { transport: kind, overlap,
                ..DistributedConfig::new(n_ranks) };
            run_distributed(&c, &setup, &part, dt, &u0, &vec![0.0; n], 6, &cfg)
                .expect("distributed run")
        };
        let (ur, vr, sr) = run(TransportKind::Channel, false);
        for kind in [TransportKind::Channel, TransportKind::SharedRing, TransportKind::UnixSocket] {
            for overlap in [false, true] {
                if kind == TransportKind::Channel && !overlap { continue; }
                let (u, v, s) = run(kind, overlap);
                for i in 0..n {
                    prop_assert_eq!(ur[i].to_bits(), u[i].to_bits(),
                        "{:?} overlap={} u[{}]", kind, overlap, i);
                    prop_assert_eq!(vr[i].to_bits(), v[i].to_bits(),
                        "{:?} overlap={} v[{}]", kind, overlap, i);
                }
                for (a, b) in sr.iter().zip(&s) {
                    prop_assert_eq!(a.elem_ops, b.elem_ops);
                    prop_assert_eq!(a.n_exchanges, b.n_exchanges);
                    prop_assert_eq!(a.msgs_sent, b.msgs_sent);
                    prop_assert_eq!(a.dofs_sent, b.dofs_sent);
                }
            }
        }
    }
}
