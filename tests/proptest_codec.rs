//! Property-based tests of the transport wire codec: round-trips are
//! bit-exact for arbitrary payloads (including NaNs, infinities, signed
//! zeros and subnormals), and malformed input — truncation, corruption,
//! random garbage — always surfaces a [`CodecError`], never a panic or an
//! unbounded allocation.

use proptest::prelude::*;
use wave_lts::runtime::transport::codec::{
    self, decode, encode_vec, CodecError, Frame, HEADER_LEN,
};

/// Arbitrary `f64`s drawn from raw bit patterns: hits NaN payloads, both
/// zeros, subnormals and infinities — everything the wire must preserve.
fn payload_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u64..u64::MAX).prop_map(f64::from_bits), 0..64)
}

fn halo_strategy() -> impl Strategy<Value = Frame> {
    (
        0u32..64,
        0u32..64,
        0u8..8,
        0u64..u64::MAX,
        payload_strategy(),
    )
        .prop_map(|(src, dst, level, seq, payload)| Frame::Halo {
            src,
            dst,
            level,
            seq,
            payload,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode reproduces the exact frame bytes (bit patterns of
    /// every `f64` included) and consumes exactly the encoded length.
    #[test]
    fn halo_round_trip_is_bit_exact(frame in halo_strategy()) {
        let bytes = encode_vec(&frame);
        let (back, used) = decode(&bytes).expect("decode");
        prop_assert_eq!(used, bytes.len());
        // NaN payloads defeat PartialEq; re-encoding must be byte-identical
        prop_assert_eq!(encode_vec(&back), bytes);
    }

    /// Every proper prefix of a valid frame is `Truncated` — the "feed me
    /// more bytes" signal a stream reassembler relies on. Never a panic.
    #[test]
    fn any_truncation_reports_truncated(frame in halo_strategy(), frac in 0.0f64..1.0) {
        let bytes = encode_vec(&frame);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(cut < bytes.len());
        match decode(&bytes[..cut]) {
            Err(CodecError::Truncated) => {}
            other => prop_assert!(false, "cut {} of {}: {:?}", cut, bytes.len(), other),
        }
    }

    /// Flipping any byte of a valid frame either still decodes (payload
    /// bytes are opaque) or yields a structured error — never a panic, and
    /// never an allocation sized by the corrupt bytes.
    #[test]
    fn single_byte_corruption_never_panics(
        frame in halo_strategy(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_vec(&frame);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= flip;
        if let Ok((_, used)) = decode(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Random garbage is rejected with an error (or decodes only if it
    /// happens to be a valid frame, which the magic makes astronomically
    /// unlikely) — the decoder is total.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = decode(&bytes);
        if bytes.len() >= HEADER_LEN {
            let _ = codec::decode_header(&bytes[..HEADER_LEN]);
        }
    }

    /// A corrupt internal count (claiming more elements than the body
    /// holds) must fail structurally instead of allocating.
    #[test]
    fn inflated_counts_are_malformed(frame in halo_strategy(), claimed in 1024u32..u32::MAX) {
        let mut bytes = encode_vec(&frame);
        // the payload count sits after src + dst + level + seq in the body
        let at = HEADER_LEN + 17;
        bytes[at..at + 4].copy_from_slice(&claimed.to_le_bytes());
        match decode(&bytes) {
            Err(CodecError::Malformed(_)) | Err(CodecError::Truncated) => {}
            other => prop_assert!(false, "claimed {}: {:?}", claimed, other),
        }
    }
}
