//! Measure the stall reduction from communication/computation overlap at
//! 8 ranks: sends posted after the full apply (blocking) vs. between the
//! boundary and interior applies (overlap).
//!
//! Two regimes, each repeated and averaged:
//!
//! * **zero-latency** — raw in-process channels. On a single-CPU host the
//!   aggregate wait fraction is pinned near `(ranks-1)/ranks` by
//!   time-sharing (the busy sums equal the wall clock), so overlap cannot
//!   move it; this run documents the floor.
//! * **emulated wire latency** — messages mature `T` after they were
//!   posted ([`channel_cluster_with_latency`]), like an in-flight MPI
//!   message; the sender is never blocked. In blocking mode every rank
//!   posts at the end of its apply and the whole fabric idles while the
//!   last partials mature; with overlap they are posted before the
//!   interior apply and mature *during* it. This is exactly the latency
//!   the paper's asynchronous exchange hides.
//!
//! The committed numbers live in EXPERIMENTS.md ("Comm/compute overlap at
//! 8 ranks"). Both modes must produce bitwise-identical fields.
//!
//! ```sh
//! cargo run --release --example overlap_wait -- 2000 12 5 300
//! ```
//! (elements, global steps, repetitions, wire latency in µs — all optional)

use std::time::Duration;
use wave_lts::lts::LtsSetup;
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{partition_mesh, Strategy};
use wave_lts::runtime::stats::names;
use wave_lts::runtime::transport::channel::channel_cluster_with_latency;
use wave_lts::runtime::{run_distributed_endpoints, DistributedConfig};
use wave_lts::sem::AcousticOperator;

const RANKS: usize = 8;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct World {
    bench: BenchmarkMesh,
    op: AcousticOperator,
    setup: LtsSetup,
    part: Vec<u32>,
    u0: Vec<f64>,
    v0: Vec<f64>,
    steps: usize,
}

struct Cell {
    wait_fraction: f64,
    wait_sum_s: f64,
    wall_s: f64,
    /// Fraction of received partials that were already delivered when the
    /// receiver reached its exchange point (`exchange.partials_ready` /
    /// `msgs_sent`) — the scheduler-independent witness of overlap.
    ready_fraction: f64,
    norm_bits: u64,
}

/// Run one configuration `reps` times; means over the repetitions.
fn measure(w: &World, overlap: bool, latency: Duration, reps: usize) -> Cell {
    let cfg = DistributedConfig {
        overlap,
        ..DistributedConfig::new(RANKS)
    };
    let (mut frac_sum, mut wall_sum, mut wait_sums, mut ready_sum) = (0.0, 0.0, 0.0, 0.0);
    let mut norm_bits = 0u64;
    for _ in 0..reps {
        let endpoints = channel_cluster_with_latency(RANKS, latency);
        let started = std::time::Instant::now();
        let outcomes = run_distributed_endpoints(
            &w.op,
            &w.setup,
            &w.part,
            w.bench.levels.dt_global,
            &w.u0,
            &w.v0,
            w.steps,
            &cfg,
            &[],
            endpoints,
        );
        wall_sum += started.elapsed().as_secs_f64();
        let (mut busy, mut wait) = (0.0, 0.0);
        let (mut ready, mut partials) = (0u64, 0u64);
        let mut norm2 = 0.0;
        for (rank, out) in outcomes.into_iter().enumerate() {
            let (u, _, stats) = out.unwrap_or_else(|e| panic!("rank {rank}: {e}"));
            busy += stats.busy_s;
            wait += stats.wait_s;
            ready += stats.registry.counter_total(names::EXCHANGE_READY);
            partials += stats.msgs_sent;
            norm2 += u.iter().map(|x| x * x).sum::<f64>();
        }
        frac_sum += wait / (busy + wait);
        wait_sums += wait;
        ready_sum += ready as f64 / partials.max(1) as f64;
        norm_bits = norm2.sqrt().to_bits();
    }
    Cell {
        wait_fraction: frac_sum / reps as f64,
        wait_sum_s: wait_sums / reps as f64,
        wall_s: wall_sum / reps as f64,
        ready_fraction: ready_sum / reps as f64,
        norm_bits,
    }
}

fn main() {
    let elements = arg(1, 2_000);
    let steps = arg(2, 12);
    let reps = arg(3, 5);
    let latency_us = arg(4, 300) as u64;

    let bench = BenchmarkMesh::build(MeshKind::Trench, elements);
    let op = AcousticOperator::new(&bench.mesh, 2);
    let setup = LtsSetup::new(&op, &bench.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let part = partition_mesh(&bench.mesh, &bench.levels, RANKS, Strategy::ScotchP, 1);
    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.013).sin()).collect();
    let v0 = vec![0.0; ndof];
    println!(
        "trench {} elems, order 2, {} levels, {RANKS} ranks (scotch-p), \
         {steps} steps x {reps} reps per cell\n",
        bench.mesh.n_elems(),
        setup.n_levels,
    );
    let w = World {
        bench,
        op,
        setup,
        part,
        u0,
        v0,
        steps,
    };

    for latency_case in [0u64, latency_us] {
        let latency = Duration::from_micros(latency_case);
        let label = if latency_case == 0 {
            "zero-latency (single-CPU time-sharing floor)".to_string()
        } else {
            format!("emulated {latency_case} us wire latency")
        };
        let bl = measure(&w, false, latency, reps);
        let ov = measure(&w, true, latency, reps);
        assert_eq!(
            bl.norm_bits, ov.norm_bits,
            "{label}: overlap changed the solution"
        );
        println!("== {label} ==");
        println!(
            "  blocking: wait fraction {:.3}   wait sum {:.3}s   wall {:.3}s   ready partials {:.3}",
            bl.wait_fraction, bl.wait_sum_s, bl.wall_s, bl.ready_fraction
        );
        println!(
            "  overlap : wait fraction {:.3}   wait sum {:.3}s   wall {:.3}s   ready partials {:.3}",
            ov.wait_fraction, ov.wait_sum_s, ov.wall_s, ov.ready_fraction
        );
        println!(
            "  wait-sum change {:+.1}%   wall change {:+.1}%   ready-partials change {:+.3}\n",
            100.0 * (ov.wait_sum_s / bl.wait_sum_s - 1.0),
            100.0 * (ov.wall_s / bl.wall_s - 1.0),
            ov.ready_fraction - bl.ready_fraction,
        );
    }
}
