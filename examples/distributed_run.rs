//! Run partitioned LTS on the real threaded message-passing runtime and
//! watch the stall behaviour of Fig. 1: a level-oblivious partition leaves
//! one rank waiting at every sub-step; SCOTCH-P removes the stall.
//!
//! ```sh
//! cargo run --release --example distributed_run
//! ```

use wave_lts::lts::LtsSetup;
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{partition_mesh, Strategy};
use wave_lts::runtime::stats::ascii_timeline;
use wave_lts::runtime::{run_distributed, DistributedConfig};
use wave_lts::sem::AcousticOperator;

fn main() {
    let bench = BenchmarkMesh::build(MeshKind::Trench, 1_200);
    let op = AcousticOperator::new(&bench.mesh, 3);
    let setup = LtsSetup::new(&op, &bench.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    println!(
        "trench: {} elements, {} levels, {} DOF (order 3)\n",
        bench.mesh.n_elems(),
        setup.n_levels,
        ndof
    );

    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.013).sin()).collect();
    let v0 = vec![0.0; ndof];
    let n_ranks = 4;
    let steps = 10;
    let cfg = DistributedConfig::new(n_ranks);

    for strategy in [Strategy::ScotchBaseline, Strategy::ScotchP] {
        let part = partition_mesh(&bench.mesh, &bench.levels, n_ranks, strategy, 1);
        let (u, _, stats) = run_distributed(
            &op,
            &setup,
            &part,
            bench.levels.dt_global,
            &u0,
            &v0,
            steps,
            &cfg,
        )
        .expect("distributed run failed");
        println!(
            "== {} on {n_ranks} ranks, {steps} global steps ==",
            strategy.name()
        );
        print!("{}", ascii_timeline(&stats, 44));
        let worst = stats
            .iter()
            .map(|s| s.wait_fraction())
            .fold(0.0f64, f64::max);
        println!("worst stall fraction: {:.0}%", 100.0 * worst);
        let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        println!("‖u‖ after run: {norm:.6} (identical across partitions)\n");
    }
}
