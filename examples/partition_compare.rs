//! Compare the paper's four partitioning strategies on one mesh: per-level
//! balance, edge cut, exact MPI volume, and the modelled LTS cycle time on
//! the CPU cluster.
//!
//! ```sh
//! cargo run --release --example partition_compare -- [elements] [parts]
//! ```

use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::partition::{edge_cut, load_imbalance, mpi_volume, partition_mesh, Strategy};
use wave_lts::perfmodel::cluster::{simulate, MachineModel, PartitionShape};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let elements: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let k: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);

    let b = BenchmarkMesh::build(MeshKind::Trench, elements);
    println!(
        "trench mesh: {} elements, {} levels, model speed-up {:.2}x, K = {k}\n",
        b.mesh.n_elems(),
        b.levels.n_levels,
        b.speedup()
    );

    let machine =
        MachineModel::cpu_node().scaled(b.mesh.n_elems(), MeshKind::Trench.paper_elements());
    let mut strategies = Strategy::paper_set();
    strategies.insert(0, Strategy::ScotchBaseline);

    println!(
        "{:<12} {:>10} {:>14} {:>10} {:>12} {:>12}",
        "strategy", "imbalance", "finest-level", "edge cut", "MPI volume", "cycle (ms)"
    );
    for s in strategies {
        let part = partition_mesh(&b.mesh, &b.levels, k, s, 1);
        let rep = load_imbalance(&b.levels, &part, k);
        let cut = edge_cut(&b.mesh, &b.levels, &part);
        let vol = mpi_volume(&b.mesh, &b.levels, &part);
        let shape = PartitionShape::new(&b.mesh, &b.levels, &part, k);
        let cycle = simulate(&shape, &machine).lts_cycle;
        println!(
            "{:<12} {:>9.1}% {:>13.1}% {:>10} {:>12} {:>12.3}",
            s.name(),
            rep.total_pct,
            rep.per_level_pct.last().unwrap(),
            cut,
            vol,
            1e3 * cycle
        );
    }
    println!(
        "\nthe level-oblivious SCOTCH baseline balances the *total* but leaves the finest level"
    );
    println!("on few ranks — the modelled cycle time shows the resulting stall (Fig. 1).");
}
