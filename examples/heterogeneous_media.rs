//! LTS on a smooth random medium: velocity varies continuously (synthetic
//! crustal heterogeneity), so p-levels emerge from the material alone —
//! the general case the mesh benchmarks idealise.
//!
//! ```sh
//! cargo run --release --example heterogeneous_media
//! ```

use wave_lts::lts::spectral::exact_stable_dt;
use wave_lts::lts::{LtsNewmark, LtsSetup};
use wave_lts::mesh::random_media::{random_media_cube, MediumConfig};
use wave_lts::mesh::Levels;
use wave_lts::partition::{load_imbalance, partition_mesh, Strategy};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::AcousticOperator;

fn main() {
    let cfg = MediumConfig {
        c_min: 1.0,
        c_max: 4.5,
        n_modes: 30,
        max_wavenumber: 2.5,
        seed: 7,
    };
    let mesh = random_media_cube(4_000, &cfg);
    let levels = Levels::assign(&mesh, 0.5, 4);
    println!(
        "random medium: {} elements, c ∈ [{:.1}, {:.1}], {} LTS levels, histogram {:?}",
        mesh.n_elems(),
        cfg.c_min,
        cfg.c_max,
        levels.n_levels,
        levels.histogram()
    );
    println!(
        "Eq. 9 model speed-up: {:.2}x",
        levels.speedup_model().speedup()
    );

    // partition it — smooth media still balance cleanly per level
    let k = 8;
    let part = partition_mesh(&mesh, &levels, k, Strategy::ScotchP, 1);
    let rep = load_imbalance(&levels, &part, k);
    println!(
        "SCOTCH-P on {k} ranks: total imbalance {:.1}%, per-level {:?}",
        rep.total_pct,
        rep.per_level_pct
            .iter()
            .map(|p| format!("{p:.0}%"))
            .collect::<Vec<_>>()
    );

    // run it: LTS at the coarse step, verified against the spectral bound
    let order = 2;
    let op = AcousticOperator::new(&mesh, order);
    let setup = LtsSetup::new(&op, &levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = levels.dt_global * cfl_dt_scale(order, 3);
    let dt_global_bound = exact_stable_dt(&op, 60);
    println!(
        "\nSEM order {order}: {ndof} DOF; LTS coarse Δt = {dt:.4} vs global Newmark bound {dt_global_bound:.4}",
    );
    assert!(
        dt > dt_global_bound,
        "LTS should step beyond the global stability bound"
    );

    let mut u: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.01).sin()).collect();
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    let t0 = std::time::Instant::now();
    lts.run(&mut u, &mut v, 0.0, 20, &[]);
    let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    println!(
        "20 LTS steps in {:.2?} ({} masked element-ops), ‖u‖ = {norm:.4e} — stable beyond the CFL wall",
        t0.elapsed(),
        lts.stats.elem_ops
    );
}
