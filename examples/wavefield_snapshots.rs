//! Record seismograms and wavefield snapshots from an LTS run: an acoustic
//! Ricker source under the surface of the *geometrically* refined crust mesh
//! (squeezed surface elements — the paper's refinement mechanism), sampled
//! by a small receiver array, with PGM snapshots of the surface wavefield.
//!
//! Outputs land in `target/wavefield/`.
//!
//! ```sh
//! cargo run --release --example wavefield_snapshots
//! ```

use std::fs;
use wave_lts::lts::{LtsNewmark, LtsSetup, Source};
use wave_lts::mesh::BenchmarkMesh;
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::record::{slice_z, write_pgm, SeismogramRecorder};
use wave_lts::sem::AcousticOperator;

fn main() -> std::io::Result<()> {
    let bench = BenchmarkMesh::crust_geometric(20_000);
    let mesh = &bench.mesh;
    println!(
        "geometric crust: {}x{}x{} elements ({} squeezed surface layers), {} levels, speed-up {:.2}x",
        mesh.nx,
        mesh.ny,
        mesh.nz,
        mesh.zs.len() - 1 - 38,
        bench.levels.n_levels,
        bench.speedup()
    );

    let order = 2;
    let op = AcousticOperator::new(mesh, order);
    let setup = LtsSetup::new(&op, &bench.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = bench.levels.dt_global * cfl_dt_scale(order, 3);

    // Ricker source below the surface center.
    let (cx, cy) = (mesh.xs[mesh.nx] / 2.0, mesh.ys[mesh.ny] / 2.0);
    let z_top = *mesh.zs.last().unwrap();
    let src = op
        .dofmap
        .nearest_node(mesh, cx, cy, z_top - 4.0, &op.basis.points);
    let f0 = 0.15;
    let sources = vec![Source::ricker(src, f0, 1.2 / f0, 1.0)];

    // A line of receivers on the surface.
    let mut rec = SeismogramRecorder::new(vec![]);
    for (i, offset) in [0.0, 3.0, 6.0, 9.0].iter().enumerate() {
        rec.add_at(
            &format!("sta{i}"),
            mesh,
            &op.dofmap,
            &op.basis.points,
            (cx + offset, cy, z_top),
            0,
            1,
        );
    }

    let outdir = std::path::Path::new("target/wavefield");
    fs::create_dir_all(outdir)?;

    let steps = 480usize;
    let snap_every = 120usize;
    let mut u = vec![0.0; ndof];
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    for s in 0..steps {
        lts.step(&mut u, &mut v, s as f64 * dt, &sources);
        rec.record((s + 1) as f64 * dt, &u);
        if (s + 1) % snap_every == 0 {
            let surf = slice_z(&op.dofmap, &u, op.dofmap.gz - 1, 1, 0);
            let path = outdir.join(format!("surface_{:04}.pgm", s + 1));
            write_pgm(fs::File::create(&path)?, &surf, op.dofmap.gx, op.dofmap.gy)?;
            println!("wrote {}", path.display());
        }
    }
    rec.write_csv(fs::File::create(outdir.join("seismograms.csv"))?)?;
    println!("wrote {}", outdir.join("seismograms.csv").display());

    let peaks = rec.peaks();
    println!("\nreceiver peak amplitudes (decaying with offset):");
    for (r, p) in rec.receivers.iter().zip(&peaks) {
        println!("  {:<6} {:.3e}", r.name, p);
    }
    assert!(peaks[0] > 0.0, "no signal arrived at the nearest receiver");
    // direct wave must arrive at the near station first
    let first_arrival = |trace: &[f64], thresh: f64| {
        trace
            .iter()
            .position(|&x| x.abs() > thresh)
            .unwrap_or(usize::MAX)
    };
    let t0 = first_arrival(&rec.traces[0], 0.05 * peaks[0]);
    let t3 = first_arrival(&rec.traces[3], 0.05 * peaks[0]);
    println!("\nfirst arrivals: sta0 at step {t0}, sta3 at step {t3} (moveout visible)");
    Ok(())
}
