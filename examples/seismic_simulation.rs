//! A small end-to-end seismic simulation: elastic waves from a Ricker point
//! source in a crust-like mesh with a free surface, absorbing sides, and a
//! surface receiver — run with LTS-Newmark and cross-checked against the
//! fine-step reference.
//!
//! ```sh
//! cargo run --release --example seismic_simulation
//! ```

use wave_lts::lts::{LtsNewmark, LtsSetup, Newmark, Source};
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::sem::boundary::AbsorbingFaces;
use wave_lts::sem::{ElasticOperator, Sponge};

fn main() {
    let bench = BenchmarkMesh::build(MeshKind::Crust, 1_500);
    let mesh = &bench.mesh;
    println!(
        "crust mesh: {}x{}x{} elements, {} levels, model speed-up {:.2}x",
        mesh.nx,
        mesh.ny,
        mesh.nz,
        bench.levels.n_levels,
        bench.speedup()
    );

    let order = 3;
    let op = ElasticOperator::poisson(mesh, order);
    let setup = LtsSetup::new(&op, &bench.levels.elem_level);
    let ndof = 3 * op.dofmap.n_nodes();

    // Ricker source: vertical force just below the surface centre.
    let cx = 0.5 * (mesh.xs[0] + mesh.xs[mesh.nx]);
    let cy = 0.5 * (mesh.ys[0] + mesh.ys[mesh.ny]);
    let z_src = mesh.zs[mesh.nz] - 3.0;
    let src_node = op
        .dofmap
        .nearest_node(mesh, cx, cy, z_src, &op.basis.points);
    let dt = bench.levels.dt_global * wave_lts::sem::gll::cfl_dt_scale(order, 3);
    let f0 = 0.25; // peak frequency, resolved by the mesh
    let t0 = 1.2 / f0;
    let make_source = || vec![Source::ricker(3 * src_node + 2, f0, t0, 1.0)];

    // Receiver: on the free surface, offset from the source.
    let rx_node = op
        .dofmap
        .nearest_node(mesh, cx + 8.0, cy, mesh.zs[mesh.nz], &op.basis.points);
    let rx_dof = (3 * rx_node + 2) as usize;

    // Sponge on the sides and bottom; free surface on top. Restricted to
    // coarse-level DOFs — damping sub-stepped DOFs destabilises the LTS
    // velocity recovery (see Sponge::restrict_to_coarse).
    let mut sponge = Sponge::new(
        mesh,
        &op.dofmap,
        &op.basis.points,
        AbsorbingFaces::seismic(),
        4.0,
        0.8,
        dt,
        3,
    );
    sponge.restrict_to_coarse(&setup.leaf_level);

    let steps = 500usize;
    println!(
        "source at GLL node {src_node} (Ricker f0 = {f0}), receiver at node {rx_node}, Δt = {dt:.3}, {steps} steps"
    );

    // --- LTS run
    let mut u = vec![0.0; ndof];
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    let mut seismogram = Vec::with_capacity(steps);
    for s in 0..steps {
        lts.step(&mut u, &mut v, s as f64 * dt, &make_source());
        sponge.apply(&mut v);
        seismogram.push(u[rx_dof]);
    }

    // --- reference: classic Newmark at Δt / p_max (same physics)
    let p_max = 1usize << (setup.n_levels - 1);
    let mut u_ref = vec![0.0; ndof];
    let mut v_ref = vec![0.0; ndof];
    let mut nm = Newmark::new(&op, dt / p_max as f64);
    let mut seis_ref = Vec::with_capacity(steps);
    for s in 0..steps {
        for ss in 0..p_max {
            let t = (s * p_max + ss) as f64 * dt / p_max as f64;
            nm.step(&mut u_ref, &mut v_ref, t, &make_source());
        }
        sponge.apply(&mut v_ref);
        seis_ref.push(u_ref[rx_dof]);
    }

    // compare seismograms
    let peak = seis_ref.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    let max_dev = seismogram
        .iter()
        .zip(&seis_ref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nvertical-displacement seismogram at the receiver (every 32nd sample):");
    println!("{:>6}  {:>12}  {:>12}", "step", "LTS", "reference");
    for s in (0..steps).step_by(32) {
        println!("{:>6}  {:>12.4e}  {:>12.4e}", s, seismogram[s], seis_ref[s]);
    }
    println!("\npeak |u_z| = {peak:.3e}; max LTS-vs-reference deviation = {max_dev:.3e} ({:.1}% of peak)",
        100.0 * max_dev / peak.max(1e-300));
    assert!(
        max_dev < 0.1 * peak,
        "LTS seismogram diverged from the reference"
    );
    println!("seismograms agree — LTS delivers the same physics at a fraction of the steps");
}
