//! Quickstart: build a refined mesh, assign LTS levels, and time
//! LTS-Newmark against the classic Newmark scheme that must step at the
//! globally smallest `Δt`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;
use wave_lts::lts::{LtsNewmark, LtsSetup, Newmark};
use wave_lts::mesh::{BenchmarkMesh, MeshKind};
use wave_lts::sem::AcousticOperator;

fn main() {
    // A small trench mesh: a strip of fast (= CFL-limited) elements at the
    // surface forces a 4-level LTS hierarchy.
    let bench = BenchmarkMesh::build(MeshKind::Trench, 8_000);
    let model = bench.levels.speedup_model();
    println!(
        "mesh: {} elements, {} LTS levels, level histogram {:?}",
        bench.mesh.n_elems(),
        bench.levels.n_levels,
        bench.levels.histogram()
    );
    println!("Eq. 9 model speed-up: {:.2}x", model.speedup());

    // Spectral elements of order 4 (125 nodes per element), as in SPECFEM3D.
    let op = AcousticOperator::new(&bench.mesh, 4);
    let setup = LtsSetup::new(&op, &bench.levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    println!("order-4 SEM: {ndof} DOF");

    // A smooth (in space!) initial displacement: a Gaussian bump.
    let d = &op.dofmap;
    let u0: Vec<f64> = (0..ndof)
        .map(|i| {
            let ix = i % d.gx;
            let iy = (i / d.gx) % d.gy;
            let iz = i / (d.gx * d.gy);
            let r2 = [(ix, d.gx), (iy, d.gy), (iz, d.gz)]
                .iter()
                .map(|&(a, g)| {
                    let x = a as f64 / g as f64 - 0.5;
                    x * x
                })
                .sum::<f64>();
            (-60.0 * r2).exp()
        })
        .collect();
    // the corner-mesh CFL bound must pay the order-4 GLL spacing factor
    let dt = bench.levels.dt_global * wave_lts::sem::gll::cfl_dt_scale(4, 3);
    let cycles = 2;

    // --- LTS-Newmark: big steps everywhere, sub-steps only near the strip.
    let mut u = u0.clone();
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    let t0 = Instant::now();
    lts.run(&mut u, &mut v, 0.0, cycles, &[]);
    let t_lts = t0.elapsed();
    let u_lts = u.clone();

    // --- classic Newmark: everyone steps at Δt / p_max.
    let p_max = 1usize << (setup.n_levels - 1);
    let mut u = u0.clone();
    let mut v = vec![0.0; ndof];
    let mut nm = Newmark::new(&op, dt / p_max as f64);
    let t0 = Instant::now();
    nm.run(&mut u, &mut v, 0.0, cycles * p_max, &[]);
    let t_ref = t0.elapsed();

    let max_dev = u_lts
        .iter()
        .zip(&u)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nsimulated {} global steps (Δt = {:.3}):", cycles, dt);
    println!("  LTS-Newmark      {:>8.1?}", t_lts);
    println!("  Newmark @ Δt/{p_max}   {:>8.1?}", t_ref);
    println!(
        "  measured speed-up {:.2}x (model {:.2}x, efficiency {:.0}%)",
        t_ref.as_secs_f64() / t_lts.as_secs_f64(),
        model.speedup(),
        100.0 * t_ref.as_secs_f64() / t_lts.as_secs_f64() / model.speedup()
    );
    println!("  max |u_LTS − u_ref| = {max_dev:.2e} (both are O(Δt²) schemes)");
}
