//! The decompose → solve workflow through files, as SPECFEM3D users run it:
//! export a mesh and its partition to disk, read them back, and simulate —
//! demonstrating `lts_mesh::io`.
//!
//! ```sh
//! cargo run --release --example file_workflow
//! ```

use wave_lts::lts::{LtsNewmark, LtsSetup};
use wave_lts::mesh::io::{read_ids, read_mesh, write_ids, write_levels, write_mesh};
use wave_lts::mesh::{BenchmarkMesh, Levels, MeshKind};
use wave_lts::partition::{load_imbalance, partition_mesh, Strategy};
use wave_lts::sem::gll::cfl_dt_scale;
use wave_lts::sem::AcousticOperator;

fn main() -> std::io::Result<()> {
    let dir = std::path::Path::new("target/file_workflow");
    std::fs::create_dir_all(dir)?;
    let mesh_path = dir.join("embedding.wlts");
    let part_path = dir.join("embedding.part");
    let level_path = dir.join("embedding.levels");

    // --- "decomposer" process: build, partition, write
    {
        let b = BenchmarkMesh::build(MeshKind::Embedding, 2_000);
        let part = partition_mesh(&b.mesh, &b.levels, 4, Strategy::ScotchP, 1);
        write_mesh(std::fs::File::create(&mesh_path)?, &b.mesh)?;
        write_ids(std::fs::File::create(&part_path)?, &part)?;
        write_levels(std::fs::File::create(&level_path)?, &b.levels)?;
        println!(
            "decomposer: wrote {} ({} elements), partition and levels",
            mesh_path.display(),
            b.mesh.n_elems()
        );
    }

    // --- "solver" process: read everything back and run
    let mesh = read_mesh(std::fs::File::open(&mesh_path)?)?;
    let part = read_ids(std::fs::File::open(&part_path)?)?;
    let elem_level: Vec<u8> = read_ids(std::fs::File::open(&level_path)?)?
        .into_iter()
        .map(|l| l as u8)
        .collect();
    let levels = Levels::from_levels(&mesh, elem_level, 0.5); // dt re-derived below
    let levels = Levels::assign(&mesh, 0.5, levels.n_levels); // recompute dt from CFL
    println!(
        "solver: read {} elements, {} levels, partition over {} ranks",
        mesh.n_elems(),
        levels.n_levels,
        part.iter().max().unwrap() + 1
    );
    let rep = load_imbalance(&levels, &part, (*part.iter().max().unwrap() + 1) as usize);
    println!("         partition imbalance {:.1}%", rep.total_pct);

    let order = 2;
    let op = AcousticOperator::new(&mesh, order);
    let setup = LtsSetup::new(&op, &levels.elem_level);
    let ndof = op.dofmap.n_nodes();
    let dt = levels.dt_global * cfl_dt_scale(order, 3);
    let mut u: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.02).sin()).collect();
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    lts.run(&mut u, &mut v, 0.0, 10, &[]);
    let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    println!("         10 LTS steps at Δt = {dt:.4}, ‖u‖ = {norm:.4e} — round trip complete");
    Ok(())
}
