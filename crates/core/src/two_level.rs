//! The original *two-level* LTS-Newmark scheme (Sec. II-A, Eqs. 10–14),
//! with an **arbitrary** sub-step ratio `p ∈ ℕ` — not restricted to powers
//! of two like the recursive multi-level scheme (which needs nested ratios).
//!
//! This is the Diaz–Grote LTS-leap-frog in Newmark form: the mesh splits
//! into coarse (`I − P`) and fine (`P`) DOFs; per global step the fine
//! auxiliary system (Eq. 11) is integrated with `p` leap-frog sub-steps of
//! `Δt/p` while the coarse contribution `A(I−P)uⁿ` stays frozen, and the
//! velocity is recovered from the displacement difference (Eq. 14).
//!
//! Useful both in its own right (a mesh with a single refinement ratio of,
//! say, 3 wastes stability margin when forced to p = 4) and as an
//! independently-derived cross-check of the recursive implementation at
//! p = 2.

use crate::operator::{Operator, Source, Workspace};
use crate::setup::LtsSetup;

/// Two-level LTS-Newmark stepper with sub-step ratio `p`.
pub struct TwoLevelLts<'a, O: Operator> {
    pub op: &'a O,
    /// Built from a 2-level element map (levels 0 and 1 only).
    pub setup: &'a LtsSetup,
    pub dt: f64,
    /// Fine sub-steps per global step (`≥ 1`).
    pub p: usize,
    ut: Vec<f64>,
    vt: Vec<f64>,
    f0: Vec<f64>,
    f1: Vec<f64>,
    ws: Workspace,
}

impl<'a, O: Operator> TwoLevelLts<'a, O> {
    pub fn new(op: &'a O, setup: &'a LtsSetup, dt: f64, p: usize) -> Self {
        assert!(
            setup.n_levels <= 2,
            "two-level scheme needs a 2-level setup"
        );
        assert!(p >= 1);
        let n = op.ndof();
        TwoLevelLts {
            op,
            setup,
            dt,
            p,
            ut: vec![0.0; n],
            vt: vec![0.0; n],
            f0: vec![0.0; n],
            f1: vec![0.0; n],
            ws: Workspace::new(),
        }
    }

    /// Advance one global step (`u = uⁿ`, `v = vⁿ⁻¹ᐟ²` on entry).
    pub fn step(&mut self, u: &mut [f64], v: &mut [f64], t: f64, sources: &[Source]) {
        let s = self.setup;
        let dt = self.dt;
        // coarse contribution, frozen: f₀ = A P₀ uⁿ
        for &i in &s.touched[0] {
            self.f0[i as usize] = 0.0;
        }
        self.op
            .apply_masked_ws(u, &mut self.f0, &s.elems[0], &s.dof_level, 0, &mut self.ws);

        if s.n_levels == 1 {
            for (vi, f) in v.iter_mut().zip(&self.f0) {
                *vi -= dt * f;
            }
            self.inject(sources, 0, v, dt, t, 1.0);
            for (ui, vi) in u.iter_mut().zip(v.iter()) {
                *ui += dt * vi;
            }
            return;
        }

        let dtau = dt / self.p as f64;
        // fine auxiliary system on active(1), ṽ(0) = 0
        for &i in &s.active[1] {
            self.ut[i as usize] = u[i as usize];
        }
        for m in 0..self.p {
            let tm = t + m as f64 * dtau;
            for &i in &s.touched[1] {
                self.f1[i as usize] = 0.0;
            }
            self.op.apply_masked_ws(
                &self.ut,
                &mut self.f1,
                &s.elems[1],
                &s.dof_level,
                1,
                &mut self.ws,
            );
            for &i in &s.active[1] {
                let i = i as usize;
                let f = self.f0[i] + self.f1[i];
                if m == 0 {
                    self.vt[i] = -0.5 * dtau * f;
                } else {
                    self.vt[i] -= dtau * f;
                }
            }
            {
                let mut vt = std::mem::take(&mut self.vt);
                self.inject(
                    sources,
                    1,
                    &mut vt,
                    dtau,
                    tm,
                    if m == 0 { 0.5 } else { 1.0 },
                );
                self.vt = vt;
            }
            for &i in &s.active[1] {
                let i = i as usize;
                self.ut[i] += dtau * self.vt[i];
            }
        }
        // recovery on active(1); plain Newmark on leaf(0)
        for &i in &s.active[1] {
            let i = i as usize;
            v[i] += 2.0 * (self.ut[i] - u[i]) / dt;
        }
        for &i in &s.leaf[0] {
            let i = i as usize;
            v[i] -= dt * self.f0[i];
        }
        self.inject(sources, 0, v, dt, t, 1.0);
        for (ui, vi) in u.iter_mut().zip(v.iter()) {
            *ui += dt * vi;
        }
    }

    fn inject(&self, sources: &[Source], level: u8, v: &mut [f64], dt: f64, t: f64, half: f64) {
        for src in sources {
            let d = src.dof as usize;
            if self.setup.leaf_level[d] == level {
                v[d] += half * dt * (src.amplitude)(t) / self.op.mass()[d];
            }
        }
    }

    /// Run `n` global steps starting at `t0`.
    pub fn run(
        &mut self,
        u: &mut [f64],
        v: &mut [f64],
        t0: f64,
        n: usize,
        sources: &[Source],
    ) -> f64 {
        let mut t = t0;
        for _ in 0..n {
            self.step(u, v, t, sources);
            t += self.dt;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain1d::Chain1d;
    use crate::lts::LtsNewmark;
    use crate::newmark::Newmark;
    use crate::setup::LtsSetup;

    fn two_level_chain(ratio: f64, n: usize, fine_from: usize) -> (Chain1d, Vec<u8>) {
        let mut vel = vec![1.0; n];
        for v in vel.iter_mut().skip(fine_from) {
            *v = ratio;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let lv: Vec<u8> = (0..n).map(|e| u8::from(e >= fine_from)).collect();
        (c, lv)
    }

    #[test]
    fn p2_matches_recursive_implementation() {
        let (c, lv) = two_level_chain(2.0, 14, 9);
        let setup = LtsSetup::new(&c, &lv);
        let dt = 0.4;
        let n = 15;
        let u0: Vec<f64> = (0..n)
            .map(|i| (-((i as f64 - 5.0) / 2.0f64).powi(2)).exp())
            .collect();
        let mut u1 = u0.clone();
        let mut v1 = vec![0.0; n];
        let mut u2 = u0;
        let mut v2 = vec![0.0; n];
        let mut two = TwoLevelLts::new(&c, &setup, dt, 2);
        let mut rec = LtsNewmark::new(&c, &setup, dt);
        for s in 0..30 {
            two.step(&mut u1, &mut v1, s as f64 * dt, &[]);
            rec.step(&mut u2, &mut v2, s as f64 * dt, &[]);
        }
        for i in 0..n {
            assert!(
                (u1[i] - u2[i]).abs() < 1e-12,
                "dof {i}: two-level {} vs recursive {}",
                u1[i],
                u2[i]
            );
        }
    }

    #[test]
    fn p3_is_stable_where_p2_is_not() {
        // velocity ratio 3: p = 2 under-steps the fine region (Δτ = Δt/2
        // too big), p = 3 is exactly right
        let (c, lv) = two_level_chain(3.0, 16, 11);
        let setup = LtsSetup::new(&c, &lv);
        // coarse stable limit: dt = 2·h/c? use the chain's actual bound:
        // lumped P1 limit is dt = h/c = 1 for the coarse region
        let dt = 0.85;
        let n = 17;
        let init = |u: &mut Vec<f64>| {
            for (i, x) in u.iter_mut().enumerate() {
                *x = (-((i as f64 - 5.0) / 2.0f64).powi(2)).exp();
            }
        };
        let norm_after = |p: usize| -> f64 {
            let mut u = vec![0.0; n];
            init(&mut u);
            let mut v = vec![0.0; n];
            let mut two = TwoLevelLts::new(&c, &setup, dt, p);
            two.run(&mut u, &mut v, 0.0, 400, &[]);
            u.iter().map(|x| x * x).sum::<f64>().sqrt()
        };
        let with_p2 = norm_after(2);
        let with_p3 = norm_after(3);
        assert!(
            with_p3.is_finite() && with_p3 < 100.0,
            "p=3 should be stable: {with_p3}"
        );
        assert!(
            with_p2.is_nan() || with_p2 >= 1e3,
            "p=2 should be unstable at ratio 3: {with_p2}"
        );
    }

    #[test]
    fn p1_equals_plain_newmark() {
        let (c, lv) = two_level_chain(1.0, 10, 10); // all coarse… make 2-level anyway
        let mut lv = lv;
        lv[9] = 0;
        let setup = LtsSetup::new(&c, &lv);
        let dt = 0.5;
        let n = 11;
        let u0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.6).sin()).collect();
        let mut u1 = u0.clone();
        let mut v1 = vec![0.0; n];
        let mut u2 = u0;
        let mut v2 = vec![0.0; n];
        let mut two = TwoLevelLts::new(&c, &setup, dt, 1);
        let mut nm = Newmark::new(&c, dt);
        for s in 0..15 {
            two.step(&mut u1, &mut v1, s as f64 * dt, &[]);
            nm.step(&mut u2, &mut v2, s as f64 * dt, &[]);
        }
        for i in 0..n {
            assert_eq!(u1[i], u2[i], "dof {i}");
        }
    }

    #[test]
    fn odd_p_converges_second_order() {
        let (c, lv) = two_level_chain(3.0, 12, 8);
        let setup = LtsSetup::new(&c, &lv);
        let n = 13;
        let u0: Vec<f64> = (0..n)
            .map(|i| (-((i as f64 - 4.0) / 1.5f64).powi(2)).exp())
            .collect();
        // resolved reference
        let mut u_ref = u0.clone();
        let mut v_ref = vec![0.0; n];
        Newmark::stagger_velocity(&c, 0.4 / 64.0, &u_ref, &mut v_ref, &[]);
        let mut nm = Newmark::new(&c, 0.4 / 64.0);
        nm.run(&mut u_ref, &mut v_ref, 0.0, 8 * 64, &[]);

        let mut errs = Vec::new();
        for halvings in 0..3 {
            let dt = 0.4 / (1 << halvings) as f64;
            let steps = 8 * (1 << halvings);
            let mut u = u0.clone();
            // proper staggered start: v^{-1/2} = v⁰ + (Δt/2)·A u⁰
            let mut v = vec![0.0; n];
            Newmark::stagger_velocity(&c, dt, &u, &mut v, &[]);
            let mut two = TwoLevelLts::new(&c, &setup, dt, 3);
            two.run(&mut u, &mut v, 0.0, steps, &[]);
            let err: f64 = (0..n).map(|i| (u[i] - u_ref[i]).abs()).fold(0.0, f64::max);
            errs.push(err);
        }
        assert!(errs[0] / errs[1] > 3.0, "errors {errs:?}");
        assert!(errs[1] / errs[2] > 2.5, "errors {errs:?}");
    }

    #[test]
    fn large_p_saves_proportionally() {
        // stats-free check: a p=5 run takes 5 masked fine products per step
        let (c, lv) = two_level_chain(5.0, 12, 9);
        let setup = LtsSetup::new(&c, &lv);
        // operation counting via elems lists
        let fine_cost = setup.elems[1].len() * 5;
        let coarse_cost = setup.elems[0].len();
        let global_cost = 12 * 5;
        assert!(fine_cost + coarse_cost < global_cost);
    }
}
