//! Per-level DOF sets of the LTS scheme (Sec. II-C).
//!
//! Node (DOF) level = the finest level of any element containing it (the
//! paper's `P_k` selections, with interface nodes owned by the finer side).
//! For every level `k` the scheme needs:
//!
//! * `elems[k]` — elements containing at least one level-`k` DOF: the
//!   element list over which `A·P_k·u` must be assembled (level-`k` elements
//!   plus their coarser neighbours);
//! * `active[k]` — DOFs integrated by the level-`k` auxiliary system: DOFs
//!   of level ≥ `k` plus the "gray" halo (DOFs sharing an element with one);
//! * `leaf[k]` — DOFs whose *own* sub-stepping happens at level `k`
//!   (`active[k] \ active[k+1]`); every DOF is in exactly one leaf set;
//! * `touched[k]` — DOFs written by the masked product (those of `elems[k]`),
//!   the entries of the force buffer that must be re-zeroed per sub-step.

use crate::operator::DofTopology;

/// Precomputed level structure for a discretization + element level map.
#[derive(Debug, Clone)]
pub struct LtsSetup {
    /// Number of levels `L` (coarsest = 0).
    pub n_levels: usize,
    /// Level of every DOF: the max level of any element containing it.
    pub dof_level: Vec<u8>,
    /// Level of every element (as given).
    pub elem_level: Vec<u8>,
    /// `elems[k]`: elements containing ≥ 1 DOF of level exactly `k`.
    pub elems: Vec<Vec<u32>>,
    /// `active[k]`: DOFs integrated by level `k`'s auxiliary system
    /// (`active[0]` is the full DOF range and is stored empty as a sentinel —
    /// use [`LtsSetup::is_full_level`]).
    pub active: Vec<Vec<u32>>,
    /// `leaf[k] = active[k] \ active[k+1]`.
    pub leaf: Vec<Vec<u32>>,
    /// `touched[k]`: union of DOFs of `elems[k]`.
    pub touched: Vec<Vec<u32>>,
    /// Per-DOF leaf level: the level whose sub-stepping integrates this DOF
    /// (the largest `k` with the DOF in `active[k]`, 0 otherwise).
    pub leaf_level: Vec<u8>,
}

impl LtsSetup {
    /// `active[0]`/`leaf`-set handling: level 0 integrates all DOFs.
    pub fn is_full_level(&self, level: usize) -> bool {
        level == 0
    }

    pub fn new<T: DofTopology>(topo: &T, elem_level: &[u8]) -> Self {
        assert_eq!(elem_level.len(), topo.n_elems());
        let ndof = topo.n_dofs();
        let n_levels = elem_level.iter().copied().max().unwrap_or(0) as usize + 1;
        assert!(n_levels <= 16, "more than 16 LTS levels is never useful");
        let mut dof_level = vec![0u8; ndof];
        let mut dofs = Vec::new();

        // DOF level = max adjacent element level
        for e in 0..topo.n_elems() as u32 {
            let le = elem_level[e as usize];
            if le == 0 {
                continue;
            }
            topo.elem_dofs(e, &mut dofs);
            for &d in &dofs {
                if dof_level[d as usize] < le {
                    dof_level[d as usize] = le;
                }
            }
        }

        // max DOF level within each element (element + finer neighbours)
        let mut elem_max_dof = vec![0u8; topo.n_elems()];
        let mut elems: Vec<Vec<u32>> = vec![Vec::new(); n_levels];
        for e in 0..topo.n_elems() as u32 {
            topo.elem_dofs(e, &mut dofs);
            let mut present = [false; 16];
            let mut maxl = 0u8;
            for &d in &dofs {
                let l = dof_level[d as usize];
                present[l as usize] = true;
                maxl = maxl.max(l);
            }
            elem_max_dof[e as usize] = maxl;
            for (k, elems_k) in elems.iter_mut().enumerate() {
                if present[k] {
                    elems_k.push(e);
                }
            }
        }

        // active[k]: DOFs of elements whose max DOF level ≥ k
        let mut active: Vec<Vec<u32>> = vec![Vec::new(); n_levels];
        let mut mark = vec![0u8; ndof];
        for k in (1..n_levels).rev() {
            for e in 0..topo.n_elems() as u32 {
                if elem_max_dof[e as usize] >= k as u8 {
                    topo.elem_dofs(e, &mut dofs);
                    for &d in &dofs {
                        if mark[d as usize] < k as u8 {
                            mark[d as usize] = k as u8;
                        }
                    }
                }
            }
        }
        for (d, &m) in mark.iter().enumerate() {
            for lvl in active.iter_mut().take(m as usize + 1).skip(1) {
                lvl.push(d as u32);
            }
        }

        // leaf[k] = active[k] \ active[k+1]  (leaf[0] = complement of active[1])
        let mut leaf: Vec<Vec<u32>> = vec![Vec::new(); n_levels];
        for d in 0..ndof as u32 {
            let m = mark[d as usize] as usize;
            leaf[m].push(d);
        }

        // touched[k] = DOFs of elems[k]
        let mut touched: Vec<Vec<u32>> = vec![Vec::new(); n_levels];
        let mut stamp = vec![u32::MAX; ndof];
        for (k, (elems_k, touched_k)) in elems.iter().zip(touched.iter_mut()).enumerate() {
            for &e in elems_k {
                topo.elem_dofs(e, &mut dofs);
                for &d in &dofs {
                    if stamp[d as usize] != k as u32 {
                        stamp[d as usize] = k as u32;
                        touched_k.push(d);
                    }
                }
            }
        }

        LtsSetup {
            n_levels,
            dof_level,
            elem_level: elem_level.to_vec(),
            elems,
            active,
            leaf,
            touched,
            leaf_level: mark,
        }
    }

    /// The paper's cache optimization (Sec. IV-D): "the nodal degrees of
    /// freedom are grouped by p-level in order to utilize vector operations,
    /// which additionally improves cache performance." Returns the
    /// permutation `new_id = perm[old_id]` that orders DOFs by leaf level
    /// (coarsest first, stable within a level), making every per-level index
    /// set of this setup a contiguous ascending run.
    ///
    /// Apply it to the discretization (e.g.
    /// [`set_permutation`](`crate::chain1d::Chain1d::set_permutation`)) and
    /// rebuild the `LtsSetup`; the stepper then streams through consecutive
    /// memory in every sub-step update.
    pub fn grouping_permutation(&self) -> Vec<u32> {
        let n = self.dof_level.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&d| (self.leaf_level[d as usize], d));
        let mut perm = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            perm[old as usize] = new as u32;
        }
        perm
    }

    /// Element-operations per global `Δt` performed by the masked LTS
    /// stepper: level `k`'s product runs `2^k` times over `elems[k]`.
    pub fn lts_elem_ops(&self) -> u64 {
        self.elems
            .iter()
            .enumerate()
            .map(|(k, e)| (1u64 << k) * e.len() as u64)
            .sum()
    }

    /// Element-operations per `Δt` of the ideal Eq. 9 model (`Σ_e 2^l_e`).
    pub fn model_elem_ops(&self) -> u64 {
        self.elem_level.iter().map(|&l| 1u64 << l).sum()
    }

    /// Element-operations per `Δt` of the non-LTS scheme (`E · 2^(L−1)`).
    pub fn global_elem_ops(&self) -> u64 {
        (self.elem_level.len() as u64) << (self.n_levels - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain1d::Chain1d;

    /// 8-element chain, elements 5..8 at level 1.
    fn chain() -> (Chain1d, Vec<u8>) {
        let c = Chain1d::uniform(8, 1.0, 1.0);
        let lv = vec![0, 0, 0, 0, 0, 1, 1, 1];
        (c, lv)
    }

    #[test]
    fn dof_levels_take_finer_side() {
        let (c, lv) = chain();
        let s = LtsSetup::new(&c, &lv);
        // dofs 0..=4 level 0; dof 5 shared between elem 4 (l0) and 5 (l1) → 1
        assert_eq!(&s.dof_level[..5], &[0, 0, 0, 0, 0]);
        assert_eq!(&s.dof_level[5..], &[1, 1, 1, 1]);
    }

    #[test]
    fn elems_k_include_coarse_neighbors() {
        let (c, lv) = chain();
        let s = LtsSetup::new(&c, &lv);
        // level-1 dofs are 5..=8; elements containing them: 4 (coarse
        // neighbour), 5, 6, 7
        assert_eq!(s.elems[1], vec![4, 5, 6, 7]);
        // level-0 dofs are 0..=4; elements containing them: 0..=4
        assert_eq!(s.elems[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn active_includes_halo() {
        let (c, lv) = chain();
        let s = LtsSetup::new(&c, &lv);
        // active[1]: dofs of elements with a level-1 dof = dofs 4..=8
        assert_eq!(s.active[1], vec![4, 5, 6, 7, 8]);
    }

    #[test]
    fn leaf_sets_partition_dofs() {
        let (c, lv) = chain();
        let s = LtsSetup::new(&c, &lv);
        let mut all: Vec<u32> = s.leaf.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<u32>>());
        assert_eq!(s.leaf[0], vec![0, 1, 2, 3]);
        assert_eq!(s.leaf[1], vec![4, 5, 6, 7, 8]);
    }

    #[test]
    fn three_level_nesting() {
        let c = Chain1d::uniform(9, 1.0, 1.0);
        let lv = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let s = LtsSetup::new(&c, &lv);
        assert_eq!(s.n_levels, 3);
        // active sets are nested
        for d in &s.active[2] {
            assert!(s.active[1].contains(d));
        }
        // element lists: level 2 dofs are 6..=9 → elements 5..=8
        assert_eq!(s.elems[2], vec![5, 6, 7, 8]);
        // level-1 dofs: 3..=5 (6 is level 2) → elements 2,3,4,5
        assert_eq!(s.elems[1], vec![2, 3, 4, 5]);
    }

    #[test]
    fn op_counters_bound_model() {
        let (c, lv) = chain();
        let s = LtsSetup::new(&c, &lv);
        assert!(s.lts_elem_ops() >= s.model_elem_ops());
        assert!(s.lts_elem_ops() <= s.global_elem_ops());
        // 8 elems: model = 5 + 3·2 = 11; lts = 5 + 2·4 = 13; global = 16
        assert_eq!(s.model_elem_ops(), 11);
        assert_eq!(s.lts_elem_ops(), 13);
        assert_eq!(s.global_elem_ops(), 16);
    }

    #[test]
    fn uniform_single_level() {
        let c = Chain1d::uniform(4, 1.0, 1.0);
        let s = LtsSetup::new(&c, &[0, 0, 0, 0]);
        assert_eq!(s.n_levels, 1);
        assert_eq!(s.leaf[0].len(), 5);
        assert_eq!(s.elems[0].len(), 4);
    }
}
