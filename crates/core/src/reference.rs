//! A literal, full-vector transcription of multi-level LTS-Newmark
//! (Algorithm 1), used as the ground truth for the masked production stepper.
//!
//! Every selection `P_k u` is materialised as a dense vector and fed to the
//! *full* operator; every auxiliary state spans all DOFs; middle levels use
//! the velocity-recovery formula for the whole vector, exactly as written in
//! the paper. This is O(levels × ndof × E) per step — only usable on small
//! problems, which is the point: [`crate::lts::LtsNewmark`] must reproduce it
//! to round-off (the masked leap-frog on constant-force rows is analytically
//! identical to the recovery).

use crate::operator::{Operator, Source};
use crate::setup::LtsSetup;

/// Full-vector reference stepper.
pub struct ReferenceLts<'a, O: Operator> {
    pub op: &'a O,
    pub setup: &'a LtsSetup,
    pub dt: f64,
}

impl<'a, O: Operator> ReferenceLts<'a, O> {
    pub fn new(op: &'a O, setup: &'a LtsSetup, dt: f64) -> Self {
        ReferenceLts { op, setup, dt }
    }

    fn apply_selected(&self, u: &[f64], level: u8) -> Vec<f64> {
        let masked: Vec<f64> = u
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                if self.setup.dof_level[i] == level {
                    x
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = vec![0.0; u.len()];
        self.op.apply(&masked, &mut out);
        out
    }

    /// One global step (same state convention as the production stepper).
    pub fn step(&self, u: &mut [f64], v: &mut [f64], t: f64, sources: &[Source]) {
        let n = u.len();
        let dt = self.dt;
        let f0 = self.apply_selected(u, 0);
        if self.setup.n_levels == 1 {
            for i in 0..n {
                v[i] -= dt * f0[i];
            }
            self.sources_at(sources, 0, v, dt, t, 1.0);
            for i in 0..n {
                u[i] += dt * v[i];
            }
            return;
        }
        let frozen = vec![f0];
        let ut_end = self.aux(1, u.to_vec(), &frozen, t, sources);
        for i in 0..n {
            v[i] += 2.0 * (ut_end[i] - u[i]) / dt;
        }
        self.sources_at(sources, 0, v, dt, t, 1.0);
        for i in 0..n {
            u[i] += dt * v[i];
        }
    }

    fn sources_at(&self, sources: &[Source], level: u8, v: &mut [f64], dt: f64, t: f64, half: f64) {
        for s in sources {
            let d = s.dof as usize;
            if self.setup.leaf_level[d] == level {
                v[d] += half * dt * (s.amplitude)(t) / self.op.mass()[d];
            }
        }
    }

    /// Integrate the level-`l` auxiliary system over `Δt_{l−1}` starting from
    /// `u0` with zero auxiliary velocity; returns the full end state.
    fn aux(
        &self,
        l: usize,
        u0: Vec<f64>,
        frozen: &[Vec<f64>],
        t0: f64,
        sources: &[Source],
    ) -> Vec<f64> {
        let n = u0.len();
        let levels = self.setup.n_levels;
        let dt_l = self.dt / (1u64 << l) as f64;
        let mut ut = u0;
        let mut vt = vec![0.0; n];
        for m in 0..2usize {
            let tm = t0 + m as f64 * dt_l;
            let fl = self.apply_selected(&ut, l as u8);
            if l == levels - 1 {
                for i in 0..n {
                    let mut f = fl[i];
                    for fj in frozen {
                        f += fj[i];
                    }
                    if m == 0 {
                        vt[i] = -0.5 * dt_l * f;
                    } else {
                        vt[i] -= dt_l * f;
                    }
                }
                self.sources_at(
                    sources,
                    l as u8,
                    &mut vt,
                    dt_l,
                    tm,
                    if m == 0 { 0.5 } else { 1.0 },
                );
            } else {
                let mut frozen2 = frozen.to_vec();
                frozen2.push(fl);
                let u_end = self.aux(l + 1, ut.clone(), &frozen2, tm, sources);
                for i in 0..n {
                    let d = (u_end[i] - ut[i]) / dt_l;
                    if m == 0 {
                        vt[i] = d;
                    } else {
                        vt[i] += 2.0 * d;
                    }
                }
                self.sources_at(
                    sources,
                    l as u8,
                    &mut vt,
                    dt_l,
                    tm,
                    if m == 0 { 0.5 } else { 1.0 },
                );
            }
            for i in 0..n {
                ut[i] += dt_l * vt[i];
            }
        }
        ut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain1d::Chain1d;
    use crate::lts::LtsNewmark;
    use crate::setup::LtsSetup;

    fn compare_masked_vs_reference(vel: Vec<f64>, max_levels: usize, steps: usize) {
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.4, max_levels);
        let setup = LtsSetup::new(&c, &lv);
        let n = c.h.len() + 1;
        let mut u1: Vec<f64> = (0..n)
            .map(|i| (-((i as f64 - 4.0) / 2.0).powi(2)).exp())
            .collect();
        let mut v1 = vec![0.0; n];
        let mut u2 = u1.clone();
        let mut v2 = v1.clone();
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        let rf = ReferenceLts::new(&c, &setup, dt);
        for s in 0..steps {
            let t = s as f64 * dt;
            lts.step(&mut u1, &mut v1, t, &[]);
            rf.step(&mut u2, &mut v2, t, &[]);
        }
        let scale: f64 = u2.iter().map(|x| x.abs()).fold(1.0, f64::max);
        for i in 0..n {
            assert!(
                (u1[i] - u2[i]).abs() < 1e-11 * scale,
                "u[{i}]: masked {} vs reference {} (levels {})",
                u1[i],
                u2[i],
                setup.n_levels
            );
            assert!(
                (v1[i] - v2[i]).abs() < 1e-10 * scale.max(v2[i].abs()),
                "v[{i}]"
            );
        }
    }

    #[test]
    fn masked_equals_reference_two_levels() {
        let mut vel = vec![1.0; 12];
        for v in vel.iter_mut().skip(8) {
            *v = 2.0;
        }
        compare_masked_vs_reference(vel, 2, 25);
    }

    #[test]
    fn masked_equals_reference_three_levels() {
        let mut vel = vec![1.0; 16];
        for (i, v) in vel.iter_mut().enumerate() {
            if i >= 12 {
                *v = 4.0;
            } else if i >= 9 {
                *v = 2.0;
            }
        }
        compare_masked_vs_reference(vel, 3, 15);
    }

    #[test]
    fn masked_equals_reference_four_levels() {
        let mut vel = vec![1.0; 24];
        for (i, v) in vel.iter_mut().enumerate() {
            if i >= 20 {
                *v = 8.0;
            } else if i >= 17 {
                *v = 4.0;
            } else if i >= 14 {
                *v = 2.0;
            }
        }
        compare_masked_vs_reference(vel, 4, 9);
    }

    #[test]
    fn masked_equals_reference_with_source() {
        let mut vel = vec![1.0; 12];
        for v in vel.iter_mut().skip(8) {
            *v = 2.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.4, 2);
        let setup = LtsSetup::new(&c, &lv);
        let n = 13;
        let mut u1 = vec![0.0; n];
        let mut v1 = vec![0.0; n];
        let mut u2 = u1.clone();
        let mut v2 = v1.clone();
        // one source in the coarse region, one in the fine region
        let mk = || {
            vec![
                crate::operator::Source::ricker(2, 0.8, 0.5, 1.0),
                crate::operator::Source::ricker(10, 0.8, 0.5, 1.0),
            ]
        };
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        let rf = ReferenceLts::new(&c, &setup, dt);
        for s in 0..20 {
            let t = s as f64 * dt;
            lts.step(&mut u1, &mut v1, t, &mk());
            rf.step(&mut u2, &mut v2, t, &mk());
        }
        for i in 0..n {
            assert!(
                (u1[i] - u2[i]).abs() < 1e-11,
                "u[{i}]: {} vs {}",
                u1[i],
                u2[i]
            );
        }
    }
}
