//! A 1-D wave chain: linear (P1) finite elements for `ρ ü = ∂x(μ ∂x u)`.
//!
//! This is the setting of the paper's Fig. 1 (a 1-D mesh with a fine and a
//! coarse region split across two processors). It implements the
//! [`Operator`]/[`DofTopology`] traits with exactly the structure of the SEM
//! operator — diagonal mass, element-local stiffness, shared nodes between
//! neighbouring elements — so every LTS code path is exercised by cheap,
//! exactly checkable problems.

use crate::operator::{DofTopology, Operator};

/// `n` interval elements, `n+1` DOFs; element `e` couples DOFs `e`, `e+1`.
#[derive(Debug, Clone)]
pub struct Chain1d {
    /// Element lengths.
    pub h: Vec<f64>,
    /// Element stiffness coefficient `μ_e = ρ_e c_e²`.
    pub mu: Vec<f64>,
    /// Element density.
    pub rho: Vec<f64>,
    /// Lumped diagonal mass per DOF (in the external numbering).
    mass: Vec<f64>,
    /// Optional DOF renumbering `new = perm[natural]` (p-level grouping).
    perm: Option<Vec<u32>>,
}

impl Chain1d {
    pub fn new(h: Vec<f64>, velocity: Vec<f64>, rho: Vec<f64>) -> Self {
        let n = h.len();
        assert!(n >= 1 && velocity.len() == n && rho.len() == n);
        assert!(h.iter().all(|&x| x > 0.0));
        let mu: Vec<f64> = (0..n).map(|e| rho[e] * velocity[e] * velocity[e]).collect();
        let mut mass = vec![0.0; n + 1];
        for e in 0..n {
            let m = 0.5 * rho[e] * h[e];
            mass[e] += m;
            mass[e + 1] += m;
        }
        Chain1d {
            h,
            mu,
            rho,
            mass,
            perm: None,
        }
    }

    /// Uniform chain: unit spacing, constant velocity and density.
    pub fn uniform(n: usize, velocity: f64, rho: f64) -> Self {
        Self::new(vec![1.0; n], vec![velocity; n], vec![rho; n])
    }

    /// Chain with per-element velocities on a unit grid.
    pub fn with_velocities(velocity: Vec<f64>, rho: f64) -> Self {
        let n = velocity.len();
        Self::new(vec![1.0; n], velocity, vec![rho; n])
    }

    pub fn n_elems(&self) -> usize {
        self.h.len()
    }

    /// Renumber the DOFs with `new = perm[natural]` (see
    /// [`crate::setup::LtsSetup::grouping_permutation`]); all vectors the
    /// operator touches are in the new numbering afterwards.
    pub fn set_permutation(&mut self, perm: &[u32]) {
        assert_eq!(perm.len(), self.h.len() + 1);
        let mut mass = vec![0.0; self.mass.len()];
        // self.mass is currently in the *natural* numbering only when no
        // permutation was set before
        assert!(self.perm.is_none(), "permutation already set");
        for (old, &new) in perm.iter().enumerate() {
            mass[new as usize] = self.mass[old];
        }
        self.mass = mass;
        self.perm = Some(perm.to_vec());
    }

    #[inline]
    fn gid(&self, natural: usize) -> usize {
        match &self.perm {
            Some(p) => p[natural] as usize,
            None => natural,
        }
    }

    /// Stable step bound for element `e` (`h_e / c_e`).
    pub fn elem_cfl_ratio(&self, e: usize) -> f64 {
        self.h[e] / (self.mu[e] / self.rho[e]).sqrt()
    }

    /// Assign power-of-two levels from the CFL ratios, smoothing so
    /// neighbouring elements differ by at most one level. Returns
    /// `(elem_level, dt_global)` for the given CFL constant.
    pub fn assign_levels(&self, cfl: f64, max_levels: usize) -> (Vec<u8>, f64) {
        let n = self.n_elems();
        let ratios: Vec<f64> = (0..n).map(|e| self.elem_cfl_ratio(e)).collect();
        let rmax = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let dt = cfl * rmax;
        let mut level: Vec<u8> = ratios
            .iter()
            .map(|&r| {
                let need = dt / (cfl * r);
                let k = if need <= 1.0 {
                    0
                } else {
                    need.log2().ceil() as usize
                };
                k.min(max_levels - 1) as u8
            })
            .collect();
        // smooth (raise coarse neighbours)
        loop {
            let mut changed = false;
            for e in 0..n {
                for nb in [e.wrapping_sub(1), e + 1] {
                    if nb < n && level[nb] + 1 < level[e] {
                        level[nb] = level[e] - 1;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        (level, dt)
    }
}

impl DofTopology for Chain1d {
    fn n_dofs(&self) -> usize {
        self.h.len() + 1
    }

    fn n_elems(&self) -> usize {
        self.h.len()
    }

    fn elem_dofs(&self, e: u32, out: &mut Vec<u32>) {
        out.clear();
        out.push(self.gid(e as usize) as u32);
        out.push(self.gid(e as usize + 1) as u32);
    }
}

impl Operator for Chain1d {
    fn ndof(&self) -> usize {
        self.h.len() + 1
    }

    fn apply_ws(&self, u: &[f64], out: &mut [f64], _ws: &mut crate::Workspace) {
        debug_assert_eq!(u.len(), self.h.len() + 1);
        out.fill(0.0);
        for e in 0..self.n_elems() {
            let (l, r) = (self.gid(e), self.gid(e + 1));
            let k = self.mu[e] / self.h[e];
            let d = k * (u[l] - u[r]);
            out[l] += d;
            out[r] -= d;
        }
        for (o, m) in out.iter_mut().zip(&self.mass) {
            *o /= m;
        }
    }

    fn apply_masked_ws(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        _ws: &mut crate::Workspace,
    ) {
        for &e in elems {
            let e = e as usize;
            let (l, r) = (self.gid(e), self.gid(e + 1));
            let ul = if dof_level[l] == level { u[l] } else { 0.0 };
            let ur = if dof_level[r] == level { u[r] } else { 0.0 };
            let k = self.mu[e] / self.h[e];
            let d = k * (ul - ur);
            out[l] += d / self.mass[l];
            out[r] -= d / self.mass[r];
        }
    }

    fn mass(&self) -> &[f64] {
        &self.mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_row_sum_of_elements() {
        let c = Chain1d::uniform(4, 1.0, 2.0);
        assert_eq!(c.mass(), &[1.0, 2.0, 2.0, 2.0, 1.0]);
    }

    #[test]
    fn apply_is_discrete_laplacian() {
        // uniform chain: A u = −(c²/h²)·tridiag(1, −2, 1) scaled by lumped mass
        let c = Chain1d::uniform(4, 1.0, 1.0);
        let u = vec![0.0, 1.0, 0.0, 0.0, 0.0];
        let mut out = vec![0.0; 5];
        c.apply(&u, &mut out);
        // K row for dof 1: 2·u1 − u0 − u2 = 2; M_1 = 1 → 2
        assert!((out[1] - 2.0).abs() < 1e-14);
        // boundary dof 0 has half mass (0.5): (u0 − u1)/M_0 = −1/0.5 = −2
        assert!((out[0] + 2.0).abs() < 1e-14);
        assert!((out[2] + 1.0).abs() < 1e-14);
        assert_eq!(out[3], 0.0);
    }

    #[test]
    fn masked_sum_equals_full_apply() {
        // Σ_k A P_k u = A u when element lists cover each level's support
        let c = Chain1d::with_velocities(vec![1.0, 1.0, 2.0, 2.0], 1.0);
        let (lv, _) = c.assign_levels(0.5, 4);
        let setup = crate::setup::LtsSetup::new(&c, &lv);
        let u: Vec<f64> = (0..5).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut full = vec![0.0; 5];
        c.apply(&u, &mut full);
        let mut sum = vec![0.0; 5];
        for k in 0..setup.n_levels {
            c.apply_masked(&u, &mut sum, &setup.elems[k], &setup.dof_level, k as u8);
        }
        for i in 0..5 {
            assert!(
                (full[i] - sum[i]).abs() < 1e-13,
                "dof {i}: {} vs {}",
                full[i],
                sum[i]
            );
        }
    }

    #[test]
    fn levels_follow_velocity() {
        let c = Chain1d::with_velocities(vec![1.0, 1.0, 1.0, 4.0, 4.0], 1.0);
        let (lv, dt) = c.assign_levels(0.5, 8);
        assert_eq!(lv, vec![0, 0, 1, 2, 2]); // smoothing inserts the 1
        assert!((dt - 0.5).abs() < 1e-14);
    }

    #[test]
    fn a_is_positive_semidefinite_in_m_inner_product() {
        let c = Chain1d::with_velocities(vec![1.0, 2.0, 3.0], 1.5);
        let u: Vec<f64> = vec![0.3, -0.2, 0.9, 0.1];
        let mut au = vec![0.0; 4];
        c.apply(&u, &mut au);
        let quad: f64 = (0..4).map(|i| u[i] * c.mass()[i] * au[i]).sum();
        assert!(quad >= -1e-13, "uᵀKu = {quad}");
    }
}
