//! The classic explicit Newmark scheme (Eqs. 5–6), staggered in time:
//!
//! ```text
//! v^{n+1/2} = v^{n-1/2} − Δt (A u^n − M⁻¹F(t_n))
//! u^{n+1}   = u^n + Δt v^{n+1/2}
//! ```
//!
//! Subject to the CFL bound (Eq. 7), a non-LTS run of a mesh with levels must
//! take the *globally* smallest step `Δt / p_max` — the bottleneck LTS
//! removes.

use crate::operator::{Operator, Source, Workspace};

/// Explicit Newmark / leap-frog stepper.
pub struct Newmark<'a, O: Operator> {
    pub op: &'a O,
    pub dt: f64,
    accel: Vec<f64>,
    ws: Workspace,
    /// Steps taken so far.
    pub n_steps: u64,
}

impl<'a, O: Operator> Newmark<'a, O> {
    pub fn new(op: &'a O, dt: f64) -> Self {
        assert!(dt > 0.0);
        let n = op.ndof();
        Newmark {
            op,
            dt,
            accel: vec![0.0; n],
            ws: Workspace::new(),
            n_steps: 0,
        }
    }

    /// Convert a nodal velocity at `t = 0` into the staggered `v^{-1/2}`
    /// needed by the scheme: `v^{-1/2} = v⁰ + (Δt/2)(A u⁰ − M⁻¹F(0))`.
    pub fn stagger_velocity(op: &O, dt: f64, u0: &[f64], v0: &mut [f64], sources: &[Source]) {
        let mut au = vec![0.0; op.ndof()];
        op.apply(u0, &mut au);
        for (v, a) in v0.iter_mut().zip(&au) {
            *v += 0.5 * dt * a;
        }
        for s in sources {
            v0[s.dof as usize] -= 0.5 * dt * (s.amplitude)(0.0) / op.mass()[s.dof as usize];
        }
    }

    /// Advance one step from time `t` (`u = u^n`, `v = v^{n-1/2}` on entry;
    /// `u^{n+1}`, `v^{n+1/2}` on exit).
    pub fn step(&mut self, u: &mut [f64], v: &mut [f64], t: f64, sources: &[Source]) {
        self.op.apply_ws(u, &mut self.accel, &mut self.ws);
        let dt = self.dt;
        for (vi, a) in v.iter_mut().zip(&self.accel) {
            *vi -= dt * a;
        }
        for s in sources {
            v[s.dof as usize] += dt * (s.amplitude)(t) / self.op.mass()[s.dof as usize];
        }
        for (ui, vi) in u.iter_mut().zip(v.iter()) {
            *ui += dt * vi;
        }
        self.n_steps += 1;
    }

    /// Run `n` steps starting at time `t0`; returns the end time.
    pub fn run(
        &mut self,
        u: &mut [f64],
        v: &mut [f64],
        t0: f64,
        n: usize,
        sources: &[Source],
    ) -> f64 {
        let mut t = t0;
        for _ in 0..n {
            self.step(u, v, t, sources);
            t += self.dt;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain1d::Chain1d;

    /// Free-end (Neumann) standing wave: the lumped P1 chain with half-mass
    /// end rows has exact cosine eigenmodes, u_i(t) = cos(k i h)·cos(ω_h t)
    /// with ω_h = (2c/h)·sin(kh/2) — so the only error is temporal and the
    /// leap-frog convergence order is observable cleanly.
    #[test]
    fn standing_wave_second_order_in_time() {
        let n = 16;
        let c = Chain1d::uniform(n, 1.0, 1.0);
        let l = n as f64;
        let kx = std::f64::consts::PI / l;
        let omega_h = 2.0 * (kx / 2.0).sin(); // h = c = 1
        let exact = |x: f64, t: f64| (kx * x).cos() * (omega_h * t).cos();

        let mut errs = Vec::new();
        for &dt in &[0.2f64, 0.1, 0.05] {
            let steps = (8.0 / dt).round() as usize;
            let t_end = steps as f64 * dt;
            let mut u: Vec<f64> = (0..=n).map(|i| exact(i as f64, 0.0)).collect();
            let mut v = vec![0.0; n + 1];
            // pin the ends by zeroing their mass-normalized updates: for the
            // eigenmode the ends stay 0 automatically (sin(0)=sin(π)=0).
            Newmark::stagger_velocity(&c, dt, &u, &mut v, &[]);
            let mut nm = Newmark::new(&c, dt);
            nm.run(&mut u, &mut v, 0.0, steps, &[]);
            let err: f64 = (0..=n)
                .map(|i| (u[i] - exact(i as f64, t_end)).abs())
                .fold(0.0, f64::max);
            errs.push(err);
        }
        // halving dt should reduce the error ~4× (second order)
        let r1 = errs[0] / errs[1];
        let r2 = errs[1] / errs[2];
        assert!(r1 > 3.0 && r1 < 5.0, "rates {errs:?}");
        assert!(r2 > 3.0 && r2 < 5.0, "rates {errs:?}");
    }

    #[test]
    fn unstable_beyond_cfl() {
        let n = 16;
        let c = Chain1d::uniform(n, 1.0, 1.0);
        // lumped P1 chain stability limit is dt = h/c = 1.0
        let mut u: Vec<f64> = (0..=n)
            .map(|i| ((i * 37) % 11) as f64 / 11.0 - 0.5)
            .collect();
        let mut v = vec![0.0; n + 1];
        let mut nm = Newmark::new(&c, 1.4);
        nm.run(&mut u, &mut v, 0.0, 200, &[]);
        let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm > 1e6, "expected blow-up, norm = {norm}");
    }

    #[test]
    fn stable_within_cfl() {
        let n = 16;
        let c = Chain1d::uniform(n, 1.0, 1.0);
        let mut u: Vec<f64> = (0..=n)
            .map(|i| ((i * 37) % 11) as f64 / 11.0 - 0.5)
            .collect();
        u[0] = 0.0;
        u[n] = 0.0;
        let mut v = vec![0.0; n + 1];
        let mut nm = Newmark::new(&c, 0.9);
        nm.run(&mut u, &mut v, 0.0, 500, &[]);
        let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm < 100.0, "unexpected growth, norm = {norm}");
    }

    #[test]
    fn source_injects_momentum() {
        let c = Chain1d::uniform(8, 1.0, 1.0);
        let mut u = vec![0.0; 9];
        let mut v = vec![0.0; 9];
        let src = Source::new(4, |_| 1.0);
        let mut nm = Newmark::new(&c, 0.1);
        nm.step(&mut u, &mut v, 0.0, &[src]);
        assert!(v[4] > 0.0);
        assert!(u[4] > 0.0);
        assert_eq!(u[0], 0.0);
    }
}
