//! The discretization traits LTS-Newmark is generic over.
//!
//! A discretization exposes `A = M⁻¹K` (so `ü = −A u + M⁻¹F`), applied
//! matrix-free by looping over elements. For LTS it must additionally apply
//! the *masked* product `A · P_k u` — the contribution of level-`k` DOFs
//! only — restricted to a caller-provided element list (Sec. II-C: the
//! work-saving core of a continuous-Galerkin LTS implementation).

/// Element → DOF connectivity of a discretization, used to build the
/// per-level DOF sets of [`crate::setup::LtsSetup`].
pub trait DofTopology {
    fn n_dofs(&self) -> usize;
    fn n_elems(&self) -> usize;
    /// Append the global DOF ids of element `e` to `out` (cleared first).
    fn elem_dofs(&self, e: u32, out: &mut Vec<u32>);
}

/// The spatial operator `A = M⁻¹ K`.
pub trait Operator {
    fn ndof(&self) -> usize;

    /// `out = A u` over the whole mesh.
    fn apply(&self, u: &[f64], out: &mut [f64]);

    /// `out += A (P u)` where `P` selects DOFs with `dof_level[i] == level`,
    /// assembled from the elements in `elems` only. The caller guarantees
    /// `elems` contains every element touching a level-`level` DOF, so the
    /// product is exact.
    fn apply_masked(&self, u: &[f64], out: &mut [f64], elems: &[u32], dof_level: &[u8], level: u8);

    /// Diagonal mass matrix (used for energy accounting).
    fn mass(&self) -> &[f64];
}

/// A point source: external force `F(t) = amplitude(t)` at one DOF, entering
/// the momentum update as `M⁻¹F`.
pub struct Source {
    pub dof: u32,
    pub amplitude: Box<dyn Fn(f64) -> f64 + Sync>,
}

impl Source {
    pub fn new(dof: u32, amplitude: impl Fn(f64) -> f64 + Sync + 'static) -> Self {
        Source {
            dof,
            amplitude: Box::new(amplitude),
        }
    }

    /// A Ricker wavelet (second derivative of a Gaussian), the standard
    /// seismic source time function: peak frequency `f0`, delay `t0`.
    pub fn ricker(dof: u32, f0: f64, t0: f64, scale: f64) -> Self {
        Source::new(dof, move |t| {
            let a = std::f64::consts::PI * f0 * (t - t0);
            let a2 = a * a;
            scale * (1.0 - 2.0 * a2) * (-a2).exp()
        })
    }
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Source").field("dof", &self.dof).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ricker_peaks_at_delay() {
        let s = Source::ricker(0, 10.0, 0.1, 2.0);
        let at_peak = (s.amplitude)(0.1);
        assert!((at_peak - 2.0).abs() < 1e-12);
        // symmetric and decaying
        assert!(((s.amplitude)(0.05) - (s.amplitude)(0.15)).abs() < 1e-12);
        assert!((s.amplitude)(1.0).abs() < 1e-8);
    }
}
