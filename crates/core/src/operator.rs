//! The discretization traits LTS-Newmark is generic over.
//!
//! A discretization exposes `A = M⁻¹K` (so `ü = −A u + M⁻¹F`), applied
//! matrix-free by looping over elements. For LTS it must additionally apply
//! the *masked* product `A · P_k u` — the contribution of level-`k` DOFs
//! only — restricted to a caller-provided element list (Sec. II-C: the
//! work-saving core of a continuous-Galerkin LTS implementation).

/// Element → DOF connectivity of a discretization, used to build the
/// per-level DOF sets of [`crate::setup::LtsSetup`].
pub trait DofTopology {
    fn n_dofs(&self) -> usize;
    fn n_elems(&self) -> usize;
    /// Append the global DOF ids of element `e` to `out` (cleared first).
    fn elem_dofs(&self, e: u32, out: &mut Vec<u32>);
}

/// Reusable, operator-agnostic scratch storage owned by a stepper.
///
/// Operators stash whatever per-run state they need — element scratch
/// buffers, compiled gather lists, restricted colorings — keyed by type, so
/// the hot path never heap-allocates and the core crate never learns about
/// SEM internals. One `Workspace` belongs to one (operator, level
/// assignment) pair for the duration of a run; steppers own one and thread
/// it through every `apply_*_ws` call.
#[derive(Default)]
pub struct Workspace {
    slots: Vec<Box<dyn std::any::Any + Send>>,
}

impl Workspace {
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Fetch the unique slot of type `T`, creating it with `init` on first
    /// use. Lookup is a linear scan over a handful of slots.
    pub fn get_or_insert_with<T: std::any::Any + Send>(
        &mut self,
        init: impl FnOnce() -> T,
    ) -> &mut T {
        let pos = self
            .slots
            .iter()
            .position(|s| s.as_ref().type_id() == std::any::TypeId::of::<T>());
        let pos = match pos {
            Some(p) => p,
            None => {
                self.slots.push(Box::new(init()));
                self.slots.len() - 1
            }
        };
        self.slots[pos].downcast_mut::<T>().expect("slot type")
    }
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// The spatial operator `A = M⁻¹ K`.
///
/// The workhorse entry points take a [`Workspace`] so implementations can
/// keep scratch and compiled gather lists across calls; the plain
/// `apply`/`apply_masked` wrappers spin up a throwaway workspace for
/// one-shot callers (reference solvers, tests).
pub trait Operator: Sync {
    fn ndof(&self) -> usize;

    /// `out = A u` over the whole mesh.
    fn apply_ws(&self, u: &[f64], out: &mut [f64], ws: &mut Workspace);

    /// `out += A (P u)` where `P` selects DOFs with `dof_level[i] == level`,
    /// assembled from the elements in `elems` only. The caller guarantees
    /// `elems` contains every element touching a level-`level` DOF, so the
    /// product is exact.
    fn apply_masked_ws(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
    );

    /// Threaded variant of [`Operator::apply_masked_ws`]. Implementations
    /// must be *bitwise identical* to the serial path at any thread count;
    /// the default simply runs serially.
    #[allow(clippy::too_many_arguments)]
    fn apply_masked_threads(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
        threads: usize,
    ) {
        let _ = threads;
        self.apply_masked_ws(u, out, elems, dof_level, level, ws);
    }

    /// Warm any per-(level, element-list) state a masked apply would build
    /// lazily — compiled gather lists, restricted colorings — so a
    /// comm/compute-overlapped stepper can take the compile cost *before*
    /// the timed loop instead of inside the first overlap window.
    /// Implementations for which [`Operator::apply_masked_ws`] is
    /// stateless keep the default no-op.
    fn precompile_masked(&self, elems: &[u32], dof_level: &[u8], level: u8, ws: &mut Workspace) {
        let _ = (elems, dof_level, level, ws);
    }

    /// One-shot `out = A u` with a throwaway workspace.
    fn apply(&self, u: &[f64], out: &mut [f64]) {
        let mut ws = Workspace::new();
        self.apply_ws(u, out, &mut ws);
    }

    /// One-shot masked product with a throwaway workspace.
    fn apply_masked(&self, u: &[f64], out: &mut [f64], elems: &[u32], dof_level: &[u8], level: u8) {
        let mut ws = Workspace::new();
        self.apply_masked_ws(u, out, elems, dof_level, level, &mut ws);
    }

    /// Diagonal mass matrix (used for energy accounting).
    fn mass(&self) -> &[f64];
}

/// A point source: external force `F(t) = amplitude(t)` at one DOF, entering
/// the momentum update as `M⁻¹F`.
pub struct Source {
    pub dof: u32,
    pub amplitude: Box<dyn Fn(f64) -> f64 + Sync>,
}

impl Source {
    pub fn new(dof: u32, amplitude: impl Fn(f64) -> f64 + Sync + 'static) -> Self {
        Source {
            dof,
            amplitude: Box::new(amplitude),
        }
    }

    /// A Ricker wavelet (second derivative of a Gaussian), the standard
    /// seismic source time function: peak frequency `f0`, delay `t0`.
    pub fn ricker(dof: u32, f0: f64, t0: f64, scale: f64) -> Self {
        Source::new(dof, move |t| {
            let a = std::f64::consts::PI * f0 * (t - t0);
            let a2 = a * a;
            scale * (1.0 - 2.0 * a2) * (-a2).exp()
        })
    }
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Source").field("dof", &self.dof).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_slots_are_typed_and_persistent() {
        let mut ws = Workspace::new();
        let v = ws.get_or_insert_with(|| vec![0.0f64; 4]);
        v[2] = 7.0;
        // same type → same slot, state survives
        assert_eq!(ws.get_or_insert_with(Vec::<f64>::new)[2], 7.0);
        // different type → independent slot
        *ws.get_or_insert_with(|| 0u64) += 3;
        assert_eq!(*ws.get_or_insert_with(|| 100u64), 3);
        assert_eq!(ws.get_or_insert_with(Vec::<f64>::new).len(), 4);
    }

    #[test]
    fn ricker_peaks_at_delay() {
        let s = Source::ricker(0, 10.0, 0.1, 2.0);
        let at_peak = (s.amplitude)(0.1);
        assert!((at_peak - 2.0).abs() < 1e-12);
        // symmetric and decaying
        assert!(((s.amplitude)(0.05) - (s.amplitude)(0.15)).abs() < 1e-12);
        assert!((s.amplitude)(1.0).abs() < 1e-8);
    }
}
