//! A batteries-included simulation driver: sources, per-step observers
//! (receivers, snapshot hooks), velocity post-steps (sponge taper), and the
//! choice of stepper — so applications don't re-write the run loop.

use crate::lts::LtsNewmark;
use crate::newmark::Newmark;
use crate::operator::{Operator, Source};
use crate::setup::LtsSetup;

/// Which time integrator drives the run.
pub enum Integrator {
    /// Classic explicit Newmark at the given step.
    Newmark { dt: f64 },
    /// Multi-level LTS-Newmark at the coarse step (sub-steps implied by the
    /// setup's levels).
    Lts { dt: f64 },
}

/// A configured simulation over one operator.
pub struct Simulation<'a, O: Operator> {
    pub op: &'a O,
    pub setup: &'a LtsSetup,
    pub integrator: Integrator,
    pub sources: Vec<Source>,
    /// Applied to `v` after every global step (sponge tapers, clamps, …).
    #[allow(clippy::type_complexity)]
    pub post_step: Option<Box<dyn FnMut(&mut [f64]) + 'a>>,
}

/// Everything an observer sees after each global step.
pub struct StepView<'s> {
    pub step: usize,
    /// Time after the step.
    pub t: f64,
    pub u: &'s [f64],
    pub v: &'s [f64],
}

/// Summary of a finished run.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    pub steps: usize,
    pub t_end: f64,
    pub wall_seconds: f64,
    /// Masked element-operations (LTS only; 0 for Newmark).
    pub elem_ops: u64,
    /// `max |u|` at the end — a cheap blow-up tripwire.
    pub peak_u: f64,
}

impl<'a, O: Operator> Simulation<'a, O> {
    pub fn new(op: &'a O, setup: &'a LtsSetup, integrator: Integrator) -> Self {
        Simulation {
            op,
            setup,
            integrator,
            sources: Vec::new(),
            post_step: None,
        }
    }

    pub fn with_sources(mut self, sources: Vec<Source>) -> Self {
        self.sources = sources;
        self
    }

    pub fn with_post_step(mut self, f: impl FnMut(&mut [f64]) + 'a) -> Self {
        self.post_step = Some(Box::new(f));
        self
    }

    /// Run `steps` global steps from `(u, v)` (staggering `v` in place),
    /// calling `observe` after every step.
    pub fn run(
        &mut self,
        u: &mut [f64],
        v: &mut [f64],
        steps: usize,
        mut observe: impl FnMut(StepView<'_>),
    ) -> RunReport {
        let start = std::time::Instant::now();
        let mut elem_ops = 0u64;
        let (dt, is_lts) = match self.integrator {
            Integrator::Newmark { dt } => (dt, false),
            Integrator::Lts { dt } => (dt, true),
        };
        Newmark::stagger_velocity(self.op, dt, u, v, &self.sources);
        if is_lts {
            let mut stepper = LtsNewmark::new(self.op, self.setup, dt);
            for s in 0..steps {
                stepper.step(u, v, s as f64 * dt, &self.sources);
                if let Some(post) = self.post_step.as_mut() {
                    post(v);
                }
                observe(StepView {
                    step: s,
                    t: (s + 1) as f64 * dt,
                    u,
                    v,
                });
            }
            elem_ops = stepper.stats.elem_ops;
        } else {
            let mut stepper = Newmark::new(self.op, dt);
            for s in 0..steps {
                stepper.step(u, v, s as f64 * dt, &self.sources);
                if let Some(post) = self.post_step.as_mut() {
                    post(v);
                }
                observe(StepView {
                    step: s,
                    t: (s + 1) as f64 * dt,
                    u,
                    v,
                });
            }
        }
        RunReport {
            steps,
            t_end: steps as f64 * dt,
            wall_seconds: start.elapsed().as_secs_f64(),
            elem_ops,
            peak_u: u.iter().fold(0.0f64, |m, &x| m.max(x.abs())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain1d::Chain1d;

    fn three_level_chain() -> (Chain1d, Vec<u8>, f64) {
        let mut vel = vec![1.0; 20];
        for (i, v) in vel.iter_mut().enumerate() {
            if i >= 17 {
                *v = 4.0;
            } else if i >= 14 {
                *v = 2.0;
            }
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 3);
        (c, lv, dt)
    }

    #[test]
    fn observer_sees_every_step() {
        let (c, lv, dt) = three_level_chain();
        let setup = LtsSetup::new(&c, &lv);
        let mut sim = Simulation::new(&c, &setup, Integrator::Lts { dt });
        let mut u: Vec<f64> = (0..21).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut v = vec![0.0; 21];
        let mut times = Vec::new();
        let report = sim.run(&mut u, &mut v, 7, |view| times.push(view.t));
        assert_eq!(times.len(), 7);
        assert!((times[6] - 7.0 * dt).abs() < 1e-12);
        assert_eq!(report.steps, 7);
        assert!(report.elem_ops > 0);
        assert!(report.peak_u.is_finite());
    }

    #[test]
    fn post_step_damps_velocity() {
        let (c, lv, dt) = three_level_chain();
        let setup = LtsSetup::new(&c, &lv);
        let mut u: Vec<f64> = (0..21)
            .map(|i| (-((i as f64 - 7.0) / 2.0f64).powi(2)).exp())
            .collect();
        let mut v = vec![0.0; 21];
        // taper restricted to coarsest-level DOFs: damping sub-stepped DOFs
        // breaks the LTS recovery's time-reversibility and *injects* energy
        // (see `lts_sem::boundary::Sponge::restrict_to_coarse`)
        let leaf = setup.leaf_level.clone();
        let mut sim = Simulation::new(&c, &setup, Integrator::Lts { dt }).with_post_step(
            move |v: &mut [f64]| {
                for (x, &l) in v.iter_mut().zip(&leaf) {
                    if l == 0 {
                        *x *= 0.97;
                    }
                }
            },
        );
        sim.run(&mut u, &mut v, 300, |_| {});
        let damped_energy: f64 = u.iter().chain(v.iter()).map(|x| x * x).sum();

        // undamped reference keeps its energy
        let mut u2: Vec<f64> = (0..21)
            .map(|i| (-((i as f64 - 7.0) / 2.0f64).powi(2)).exp())
            .collect();
        let mut v2 = vec![0.0; 21];
        Simulation::new(&c, &setup, Integrator::Lts { dt }).run(&mut u2, &mut v2, 300, |_| {});
        let free_energy: f64 = u2.iter().chain(v2.iter()).map(|x| x * x).sum();
        // stable (no recovery blow-up) and clearly dissipative
        assert!(damped_energy.is_finite());
        assert!(
            damped_energy < 0.8 * free_energy,
            "taper did not dissipate: {damped_energy} vs {free_energy}"
        );
    }

    #[test]
    fn newmark_and_lts_agree_through_driver() {
        let (c, lv, dt) = three_level_chain();
        let setup = LtsSetup::new(&c, &lv);
        let u0: Vec<f64> = (0..21)
            .map(|i| (-((i as f64 - 7.0) / 2.0f64).powi(2)).exp())
            .collect();

        let mut u1 = u0.clone();
        let mut v1 = vec![0.0; 21];
        Simulation::new(&c, &setup, Integrator::Lts { dt }).run(&mut u1, &mut v1, 16, |_| {});

        let p_max = 4;
        let mut u2 = u0;
        let mut v2 = vec![0.0; 21];
        Simulation::new(
            &c,
            &setup,
            Integrator::Newmark {
                dt: dt / p_max as f64,
            },
        )
        .run(&mut u2, &mut v2, 16 * p_max, |_| {});

        let err: f64 = (0..21).map(|i| (u1[i] - u2[i]).abs()).fold(0.0, f64::max);
        assert!(err < 0.05, "driver LTS vs Newmark deviation {err}");
    }

    #[test]
    fn sources_flow_through_driver() {
        let (c, lv, dt) = three_level_chain();
        let setup = LtsSetup::new(&c, &lv);
        let mut u = vec![0.0; 21];
        let mut v = vec![0.0; 21];
        let mut sim = Simulation::new(&c, &setup, Integrator::Lts { dt })
            .with_sources(vec![Source::ricker(5, 0.3, 1.0, 1.0)]);
        let report = sim.run(&mut u, &mut v, 30, |_| {});
        assert!(report.peak_u > 1e-6, "source produced no motion");
    }
}
