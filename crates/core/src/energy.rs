//! The discrete energy conserved by explicit Newmark / leap-frog and — as
//! shown for the LTS scheme in Diaz & Grote (SIAM J. Sci. Comput. 2009) and
//! the companion paper \[15\] — by LTS-Newmark.
//!
//! For staggered states `uⁿ, uⁿ⁺¹, vⁿ⁺¹ᐟ²` the conserved quantity is
//!
//! ```text
//! E^{n+1/2} = ½ (v^{n+1/2})ᵀ M v^{n+1/2} + ½ (uⁿ)ᵀ K uⁿ⁺¹
//! ```
//!
//! with `K u = M (A u)` (the operator exposes `A = M⁻¹K` and the diagonal
//! mass).

use crate::operator::Operator;

/// `E^{n+1/2}` for consecutive displacements `u_n`, `u_np1` and the staggered
/// velocity `v_half`.
pub fn discrete_energy<O: Operator>(op: &O, u_n: &[f64], u_np1: &[f64], v_half: &[f64]) -> f64 {
    let mass = op.mass();
    let n = u_n.len();
    let mut au = vec![0.0; n];
    op.apply(u_np1, &mut au);
    let mut kinetic = 0.0;
    let mut potential = 0.0;
    for i in 0..n {
        kinetic += mass[i] * v_half[i] * v_half[i];
        potential += u_n[i] * mass[i] * au[i];
    }
    0.5 * kinetic + 0.5 * potential
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain1d::Chain1d;
    use crate::lts::LtsNewmark;
    use crate::newmark::Newmark;
    use crate::setup::LtsSetup;

    fn gaussian(n: usize) -> Vec<f64> {
        let mut u: Vec<f64> = (0..n)
            .map(|i| (-((i as f64 - n as f64 / 3.0) / 2.0).powi(2)).exp())
            .collect();
        u[0] = 0.0;
        u[n - 1] = 0.0;
        u
    }

    #[test]
    fn newmark_conserves_energy() {
        let c = Chain1d::uniform(20, 1.0, 1.0);
        let dt = 0.5;
        let mut u = gaussian(21);
        let mut v = vec![0.0; 21];
        let mut nm = Newmark::new(&c, dt);
        let mut u_prev = u.clone();
        nm.step(&mut u, &mut v, 0.0, &[]);
        let e0 = discrete_energy(&c, &u_prev, &u, &v);
        for s in 1..400 {
            u_prev.copy_from_slice(&u);
            nm.step(&mut u, &mut v, s as f64 * dt, &[]);
        }
        let e1 = discrete_energy(&c, &u_prev, &u, &v);
        assert!(
            ((e1 - e0) / e0).abs() < 1e-10,
            "energy drifted from {e0} to {e1}"
        );
    }

    #[test]
    fn lts_conserves_energy_three_levels() {
        let mut vel = vec![1.0; 24];
        for (i, vx) in vel.iter_mut().enumerate() {
            if i >= 20 {
                *vx = 4.0;
            } else if i >= 17 {
                *vx = 2.0;
            }
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.5, 3);
        let setup = LtsSetup::new(&c, &lv);
        assert_eq!(setup.n_levels, 3);
        let mut u = gaussian(25);
        let mut v = vec![0.0; 25];
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        let mut u_prev = u.clone();
        lts.step(&mut u, &mut v, 0.0, &[]);
        let e0 = discrete_energy(&c, &u_prev, &u, &v);
        // The exactly conserved LTS functional differs from the Newmark
        // energy by O(Δt²) interface terms, so this energy *oscillates*
        // boundedly (no secular drift) — that is what we assert over a long
        // run (measured: ±4e-3 relative over 100k steps).
        let mut max_dev = 0.0f64;
        for s in 1..5_000 {
            u_prev.copy_from_slice(&u);
            lts.step(&mut u, &mut v, s as f64 * dt, &[]);
            if s % 50 == 0 {
                let e = discrete_energy(&c, &u_prev, &u, &v);
                max_dev = max_dev.max(((e - e0) / e0).abs());
            }
        }
        assert!(max_dev < 1e-2, "LTS energy deviated by {max_dev}");
    }

    #[test]
    fn energy_positive_for_nontrivial_states() {
        let c = Chain1d::uniform(10, 1.0, 1.0);
        let u = gaussian(11);
        let v = vec![0.1; 11];
        let e = discrete_energy(&c, &u, &u, &v);
        assert!(e > 0.0);
    }
}
