//! LTS-Newmark time stepping (Sec. II of the paper).
//!
//! The crate is generic over a spatial discretization through the
//! [`Operator`]/[`DofTopology`] traits (`A = M⁻¹K` applied matrix-free,
//! element-locally). It provides:
//!
//! * [`newmark`] — the classic explicit Newmark / leap-frog scheme (Eq. 5–6),
//!   the non-LTS reference that must step at `Δt / p_max`;
//! * [`setup`] — the per-level DOF sets of the LTS scheme: `P_k` selections,
//!   halo ("gray node") sets, masked element lists;
//! * [`lts`] — the production multi-level LTS-Newmark stepper (Algorithm 1
//!   generalised recursively), performing only the masked work a
//!   high-performance implementation does;
//! * [`reference`](crate::reference) — a literal, full-vector transcription of the scheme used
//!   to validate the masked implementation to round-off;
//! * [`chain1d`] — a 1-D wave chain discretization (the setting of Fig. 1)
//!   implementing the traits, used by tests, examples and benches;
//! * [`energy`] — the conserved discrete energy of the leap-frog scheme.

#![forbid(unsafe_code)]

pub mod chain1d;
pub mod energy;
pub mod lts;
pub mod newmark;
pub mod operator;
pub mod reference;
pub mod setup;
pub mod simulation;
pub mod spectral;
pub mod two_level;

pub use chain1d::Chain1d;
pub use lts::{LtsNewmark, LtsStats};
pub use newmark::Newmark;
pub use operator::{DofTopology, Operator, Source, Workspace};
pub use setup::LtsSetup;
pub use simulation::{Integrator, RunReport, Simulation, StepView};
pub use two_level::TwoLevelLts;
