//! Spectral utilities for stability analysis.
//!
//! Explicit Newmark/leap-frog on `ü = −A u` is stable iff
//! `Δt ≤ 2/√λ_max(A)`; the CFL heuristics (Eq. 7) are proxies for this. For
//! small systems the exact bound is computable by power iteration on the
//! matrix-free operator, which lets tests verify both the sharpness of the
//! mesh-level CFL constants and the LTS stability region (each level stable
//! iff its `Δt/2^k` respects the level's own spectral bound).

use crate::operator::Operator;

/// Largest eigenvalue of `A` (`= M⁻¹K`, symmetric in the M-inner product,
/// non-negative spectrum) by power iteration. Deterministic start vector.
pub fn spectral_radius<O: Operator>(op: &O, iters: usize) -> f64 {
    let n = op.ndof();
    assert!(n > 0);
    let mut x: Vec<f64> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 + 0.1)
        .collect();
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        op.apply(&x, &mut y);
        let norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        // A bitwise-zero iterate means the operator annihilated x.
        // lint: allow(float-eq) — exact-zero guard; to_bits mishandles -0.0
        if norm == 0.0 {
            return 0.0;
        }
        // Rayleigh quotient in the M-inner product: xᵀM A x / xᵀM x
        let mass = op.mass();
        let num: f64 = (0..n).map(|i| x[i] * mass[i] * y[i]).sum();
        let den: f64 = (0..n).map(|i| x[i] * mass[i] * x[i]).sum();
        lambda = num / den;
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    lambda
}

/// The exact explicit-Newmark stability bound `Δt_max = 2/√λ_max`.
pub fn exact_stable_dt<O: Operator>(op: &O, iters: usize) -> f64 {
    let lambda = spectral_radius(op, iters);
    if lambda <= 0.0 {
        f64::INFINITY
    } else {
        2.0 / lambda.sqrt()
    }
}

/// Empirically probe stability: run `steps` leap-frog steps from a rough
/// state and report whether the norm stayed bounded by `limit`.
pub fn is_stable_at<O: Operator>(op: &O, dt: f64, steps: usize, limit: f64) -> bool {
    let n = op.ndof();
    let mut u: Vec<f64> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(6364136223846793005) % 997) as f64 / 997.0 - 0.5)
        .collect();
    let mut v = vec![0.0; n];
    let mut nm = crate::newmark::Newmark::new(op, dt);
    for s in 0..steps {
        nm.step(&mut u, &mut v, s as f64 * dt, &[]);
        if !u.iter().all(|x| x.is_finite()) {
            return false;
        }
    }
    u.iter().map(|x| x * x).sum::<f64>().sqrt() < limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain1d::Chain1d;

    #[test]
    fn uniform_chain_spectrum_known() {
        // interior-dominated lumped P1 chain: λ_max → 4c²/h² as n → ∞;
        // for finite free chains λ_max = (4/h²)·... bounded by 4
        let c = Chain1d::uniform(40, 1.0, 1.0);
        let lam = spectral_radius(&c, 300);
        assert!((3.8..=4.0 + 1e-9).contains(&lam), "λ_max = {lam}");
        let dt_max = exact_stable_dt(&c, 300);
        assert!((0.99..=1.03).contains(&dt_max), "dt_max = {dt_max}");
    }

    #[test]
    fn stability_boundary_is_sharp() {
        let c = Chain1d::uniform(24, 1.0, 1.0);
        let dt_max = exact_stable_dt(&c, 400);
        assert!(is_stable_at(&c, 0.98 * dt_max, 2_000, 1e3));
        assert!(!is_stable_at(&c, 1.05 * dt_max, 2_000, 1e3));
    }

    #[test]
    fn cfl_heuristic_is_conservative() {
        // the mesh-level bound 0.5·h/c must sit inside the true region
        let c = Chain1d::with_velocities(vec![1.0, 2.0, 1.0, 3.0, 1.5], 1.0);
        let heuristic = 0.5 * (0..5).map(|e| c.elem_cfl_ratio(e)).fold(f64::MAX, f64::min);
        let exact = exact_stable_dt(&c, 400);
        assert!(heuristic < exact, "heuristic {heuristic} vs exact {exact}");
    }

    #[test]
    fn spectral_radius_scales_with_velocity() {
        let slow = Chain1d::uniform(16, 1.0, 1.0);
        let fast = Chain1d::uniform(16, 3.0, 1.0);
        let r = spectral_radius(&fast, 200) / spectral_radius(&slow, 200);
        assert!((r - 9.0).abs() < 0.2, "λ ratio {r} (expected c² = 9)");
    }

    #[test]
    fn lts_extends_the_stability_region() {
        use crate::lts::LtsNewmark;
        use crate::setup::LtsSetup;
        // chain with a 4× fast tail: global Newmark must shrink dt by 4;
        // LTS runs at the coarse bound
        let mut vel = vec![1.0; 20];
        for v in vel.iter_mut().skip(15) {
            *v = 4.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let exact = exact_stable_dt(&c, 400); // ≈ 0.25 (fine-limited)
        assert!(exact < 0.3);
        let (lv, dt) = c.assign_levels(0.5, 3);
        assert!(
            dt > exact,
            "LTS coarse step {dt} exceeds the global bound {exact}"
        );
        let setup = LtsSetup::new(&c, &lv);
        let mut u: Vec<f64> = (0..21).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut v = vec![0.0; 21];
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        lts.run(&mut u, &mut v, 0.0, 1_000, &[]);
        let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm.is_finite() && norm < 1e3, "LTS unstable: {norm}");
    }
}
