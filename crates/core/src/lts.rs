//! The production multi-level LTS-Newmark stepper (Algorithm 1 generalised
//! recursively), performing only *masked* work.
//!
//! One global step of size `Δt`:
//!
//! ```text
//! f₀ = A P₀ uⁿ                               (frozen over the step)
//! ũ  = aux(1, uⁿ)                            (advance levels ≥ 1 by Δt)
//! vⁿ⁺¹ᐟ² = vⁿ⁻¹ᐟ² + 2(ũ − uⁿ)/Δt             on active(1)
//! vⁿ⁺¹ᐟ² = vⁿ⁻¹ᐟ² − Δt·f₀                    on leaf(0)   (≡ plain Newmark)
//! uⁿ⁺¹   = uⁿ + Δt vⁿ⁺¹ᐟ²
//! ```
//!
//! where `aux(k, ·)` integrates the level-`k` auxiliary system (Eq. 11/17)
//! with `ṽ(0) = 0` over two sub-steps of `Δt_k = Δt/2^k`, recomputing its own
//! contribution `f_k = A P_k ũ_m` each sub-step, delegating the finer levels
//! recursively, and recovering velocities from displacement differences.
//! DOFs whose force is constant during a child's integration (the
//! `leaf` sets) take plain leap-frog sub-steps — analytically identical to
//! the recovery (validated against [`crate::reference`] to round-off).

use crate::operator::{Operator, Source, Workspace};
use crate::setup::LtsSetup;

/// Work counters for the Eq. 9 efficiency accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct LtsStats {
    /// Element-operations performed (one per element per masked product).
    pub elem_ops: u64,
    /// Global steps taken.
    pub n_steps: u64,
}

/// Multi-level LTS-Newmark stepper.
pub struct LtsNewmark<'a, O: Operator> {
    pub op: &'a O,
    pub setup: &'a LtsSetup,
    /// The global (coarsest) step `Δt`.
    pub dt: f64,
    uts: Vec<Vec<f64>>,
    vts: Vec<Vec<f64>>,
    fs: Vec<Vec<f64>>,
    ws: Workspace,
    /// Intra-rank worker threads for the masked products (1 = serial; the
    /// threaded path is bitwise-identical to serial by construction).
    pub threads: usize,
    pub stats: LtsStats,
}

impl<'a, O: Operator> LtsNewmark<'a, O> {
    pub fn new(op: &'a O, setup: &'a LtsSetup, dt: f64) -> Self {
        assert!(dt > 0.0);
        let n = op.ndof();
        assert_eq!(n, setup.dof_level.len());
        let levels = setup.n_levels;
        LtsNewmark {
            op,
            setup,
            dt,
            uts: vec![vec![0.0; n]; levels],
            vts: vec![vec![0.0; n]; levels],
            fs: vec![vec![0.0; n]; levels],
            ws: Workspace::new(),
            threads: 1,
            stats: LtsStats::default(),
        }
    }

    /// Staggered start, as in [`crate::newmark::Newmark::stagger_velocity`].
    pub fn stagger_velocity(op: &O, dt: f64, u0: &[f64], v0: &mut [f64], sources: &[Source]) {
        crate::newmark::Newmark::stagger_velocity(op, dt, u0, v0, sources);
    }

    /// Advance one global step from time `t` (`u = uⁿ`, `v = vⁿ⁻¹ᐟ²`).
    pub fn step(&mut self, u: &mut [f64], v: &mut [f64], t: f64, sources: &[Source]) {
        let s = self.setup;
        let levels = s.n_levels;
        let dt = self.dt;

        // f₀ = A P₀ uⁿ
        for &i in &s.touched[0] {
            self.fs[0][i as usize] = 0.0;
        }
        self.op.apply_masked_threads(
            u,
            &mut self.fs[0],
            &s.elems[0],
            &s.dof_level,
            0,
            &mut self.ws,
            self.threads,
        );
        self.stats.elem_ops += s.elems[0].len() as u64;

        if levels == 1 {
            for (vi, f) in v.iter_mut().zip(&self.fs[0]) {
                *vi -= dt * f;
            }
            inject_sources(self.op, sources, &s.leaf_level, 0, v, dt, t, 1.0);
            for (ui, vi) in u.iter_mut().zip(v.iter()) {
                *ui += dt * vi;
            }
            self.stats.n_steps += 1;
            return;
        }

        // child initial state
        for &i in &s.active[1] {
            self.uts[1][i as usize] = u[i as usize];
        }
        aux_advance(
            self.op,
            s,
            1,
            &mut self.uts,
            &mut self.vts,
            &mut self.fs,
            dt,
            t,
            sources,
            &mut self.stats,
            &mut self.ws,
            self.threads,
        );
        // velocity recovery on active(1)
        for &i in &s.active[1] {
            let i = i as usize;
            v[i] += 2.0 * (self.uts[1][i] - u[i]) / dt;
        }
        // plain Newmark on leaf(0)
        for &i in &s.leaf[0] {
            let i = i as usize;
            v[i] -= dt * self.fs[0][i];
        }
        inject_sources(self.op, sources, &s.leaf_level, 0, v, dt, t, 1.0);
        for (ui, vi) in u.iter_mut().zip(v.iter()) {
            *ui += dt * vi;
        }
        self.stats.n_steps += 1;
    }

    /// Run `n` global steps starting at `t0`; returns the end time.
    pub fn run(
        &mut self,
        u: &mut [f64],
        v: &mut [f64],
        t0: f64,
        n: usize,
        sources: &[Source],
    ) -> f64 {
        let mut t = t0;
        for _ in 0..n {
            self.step(u, v, t, sources);
            t += self.dt;
        }
        t
    }
}

/// Add `Δ·F(t)/M` at every source whose DOF's leaf level is `level`; `half`
/// scales the first leap-frog half-step.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn inject_sources<O: Operator>(
    op: &O,
    sources: &[Source],
    leaf_level: &[u8],
    level: u8,
    v: &mut [f64],
    dt: f64,
    t: f64,
    half: f64,
) {
    for src in sources {
        let d = src.dof as usize;
        if leaf_level[d] == level {
            v[d] += half * dt * (src.amplitude)(t) / op.mass()[d];
        }
    }
}

/// Integrate the level-`l` auxiliary system over `Δt_{l−1}` (two sub-steps of
/// `Δt_l`), starting from the state already copied into `uts[l]` with zero
/// auxiliary velocity.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn aux_advance<O: Operator>(
    op: &O,
    s: &LtsSetup,
    l: usize,
    uts: &mut [Vec<f64>],
    vts: &mut [Vec<f64>],
    fs: &mut [Vec<f64>],
    dt: f64,
    t0: f64,
    sources: &[Source],
    stats: &mut LtsStats,
    ws: &mut Workspace,
    threads: usize,
) {
    let levels = s.n_levels;
    let dt_l = dt / (1u64 << l) as f64;
    let innermost = l == levels - 1;

    for m in 0..2usize {
        let tm = t0 + m as f64 * dt_l;

        // f_l = A P_l ũ_m
        for &i in &s.touched[l] {
            fs[l][i as usize] = 0.0;
        }
        {
            let (fs_lo, fs_hi) = fs.split_at_mut(l);
            let _ = fs_lo;
            op.apply_masked_threads(
                &uts[l],
                &mut fs_hi[0],
                &s.elems[l],
                &s.dof_level,
                l as u8,
                ws,
                threads,
            );
        }
        stats.elem_ops += s.elems[l].len() as u64;

        if innermost {
            // leap-frog on all active(l) with force Σ_{j≤l} f_j
            for &i in &s.active[l] {
                let i = i as usize;
                let mut f = 0.0;
                for fj in fs[..=l].iter() {
                    f += fj[i];
                }
                if m == 0 {
                    vts[l][i] = -0.5 * dt_l * f;
                } else {
                    vts[l][i] -= dt_l * f;
                }
            }
            inject_sources(
                op,
                sources,
                &s.leaf_level,
                l as u8,
                &mut vts[l],
                dt_l,
                tm,
                if m == 0 { 0.5 } else { 1.0 },
            );
            for &i in &s.active[l] {
                let i = i as usize;
                uts[l][i] += dt_l * vts[l][i];
            }
        } else {
            // child initial state and recursion
            {
                let (cur, rest) = uts.split_at_mut(l + 1);
                let src = &cur[l];
                let dst = &mut rest[0];
                for &i in &s.active[l + 1] {
                    dst[i as usize] = src[i as usize];
                }
            }
            aux_advance(
                op,
                s,
                l + 1,
                uts,
                vts,
                fs,
                dt,
                tm,
                sources,
                stats,
                ws,
                threads,
            );

            // leaf(l): plain leap-frog with the (constant-in-child) force
            for &i in &s.leaf[l] {
                let i = i as usize;
                let mut f = 0.0;
                for fj in fs[..=l].iter() {
                    f += fj[i];
                }
                if m == 0 {
                    vts[l][i] = -0.5 * dt_l * f;
                } else {
                    vts[l][i] -= dt_l * f;
                }
            }
            inject_sources(
                op,
                sources,
                &s.leaf_level,
                l as u8,
                &mut vts[l],
                dt_l,
                tm,
                if m == 0 { 0.5 } else { 1.0 },
            );
            // active(l+1): velocity recovery from the child's displacement
            for &i in &s.active[l + 1] {
                let i = i as usize;
                let d = (uts[l + 1][i] - uts[l][i]) / dt_l;
                if m == 0 {
                    vts[l][i] = d;
                } else {
                    vts[l][i] += 2.0 * d;
                }
            }
            for &i in &s.active[l] {
                let i = i as usize;
                uts[l][i] += dt_l * vts[l][i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain1d::Chain1d;
    use crate::newmark::Newmark;
    use crate::setup::LtsSetup;

    /// LTS on a single-level mesh must equal plain Newmark bit-for-bit.
    #[test]
    fn single_level_equals_newmark() {
        let c = Chain1d::uniform(12, 1.0, 1.0);
        let setup = LtsSetup::new(&c, &[0u8; 12]);
        let dt = 0.5;
        let mut u1: Vec<f64> = (0..13).map(|i| (i as f64 * 0.5).sin()).collect();
        let mut v1 = vec![0.0; 13];
        let mut u2 = u1.clone();
        let mut v2 = v1.clone();
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        let mut nm = Newmark::new(&c, dt);
        for step in 0..20 {
            let t = step as f64 * dt;
            lts.step(&mut u1, &mut v1, t, &[]);
            nm.step(&mut u2, &mut v2, t, &[]);
        }
        for i in 0..13 {
            assert_eq!(u1[i], u2[i], "dof {i}");
            assert_eq!(v1[i], v2[i], "dof {i}");
        }
    }

    /// Two-level LTS must match the hand-derived Diaz–Grote two-level
    /// scheme (Eqs. 11–14 with p = 2) computed with dense selection matrices.
    #[test]
    fn two_level_matches_hand_derivation() {
        let c = Chain1d::with_velocities(vec![1.0, 1.0, 1.0, 2.0, 2.0], 1.0);
        let (lv, dt) = c.assign_levels(0.5, 2);
        assert_eq!(lv, vec![0, 0, 0, 1, 1]);
        let setup = LtsSetup::new(&c, &lv);
        let n = 6;

        let u0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
        let v0 = vec![0.0; n];

        // hand-coded two-level step with full vectors
        let p = 2usize;
        let dtau = dt / p as f64;
        let sel = |x: &[f64], lvl: u8| -> Vec<f64> {
            (0..n)
                .map(|i| if setup.dof_level[i] == lvl { x[i] } else { 0.0 })
                .collect()
        };
        let apply = |x: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; n];
            c.apply(x, &mut out);
            out
        };
        let w = apply(&sel(&u0, 0)); // A(I−P)uⁿ
        let mut ut = u0.clone();
        let mut vt = vec![0.0; n];
        for m in 0..p {
            let z = apply(&sel(&ut, 1)); // A P ũ_m
            for i in 0..n {
                let f = w[i] + z[i];
                if m == 0 {
                    vt[i] = -0.5 * dtau * f;
                } else {
                    vt[i] -= dtau * f;
                }
            }
            for i in 0..n {
                ut[i] += dtau * vt[i];
            }
        }
        let mut v_expect = v0.clone();
        let mut u_expect = u0.clone();
        for i in 0..n {
            v_expect[i] += 2.0 * (ut[i] - u0[i]) / dt;
            u_expect[i] += dt * v_expect[i];
        }

        // masked implementation
        let mut u = u0.clone();
        let mut v = v0.clone();
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        lts.step(&mut u, &mut v, 0.0, &[]);

        for i in 0..n {
            assert!(
                (u[i] - u_expect[i]).abs() < 1e-13,
                "u[{i}]: {} vs {}",
                u[i],
                u_expect[i]
            );
            assert!((v[i] - v_expect[i]).abs() < 1e-13, "v[{i}]");
        }
    }

    /// LTS stays stable over long runs on a three-level chain at the coarse
    /// CFL step, where plain Newmark at the same Δt explodes.
    #[test]
    fn stable_where_global_newmark_is_not() {
        let mut vel = vec![1.0; 24];
        for v in vel.iter_mut().take(24).skip(18) {
            *v = 4.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.9, 4);
        assert!(lv.iter().copied().max().unwrap() == 2);
        let setup = LtsSetup::new(&c, &lv);

        let init = |u: &mut Vec<f64>| {
            for (i, x) in u.iter_mut().enumerate() {
                *x = (-((i as f64 - 8.0) / 2.0).powi(2)).exp();
            }
            u[0] = 0.0;
            *u.last_mut().unwrap() = 0.0;
        };
        let mut u = vec![0.0; 25];
        init(&mut u);
        let mut v = vec![0.0; 25];
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        lts.run(&mut u, &mut v, 0.0, 400, &[]);
        let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm.is_finite() && norm < 50.0, "LTS norm {norm}");

        // plain Newmark at the same coarse dt blows up
        let mut u2 = vec![0.0; 25];
        init(&mut u2);
        let mut v2 = vec![0.0; 25];
        let mut nm = Newmark::new(&c, dt);
        nm.run(&mut u2, &mut v2, 0.0, 400, &[]);
        let norm2: f64 = u2.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(
            norm2.is_nan() || norm2 >= 1e3,
            "global Newmark should be unstable, norm {norm2}"
        );
    }

    /// LTS converges to the fine-step Newmark solution as both are refined
    /// consistently (2nd-order agreement at matching times).
    #[test]
    fn agrees_with_fine_newmark() {
        let mut vel = vec![1.0; 16];
        for v in vel.iter_mut().take(16).skip(12) {
            *v = 2.0;
        }
        let c = Chain1d::with_velocities(vel, 1.0);
        let (lv, dt) = c.assign_levels(0.25, 2);
        let setup = LtsSetup::new(&c, &lv);
        let n = 17;
        let init: Vec<f64> = (0..n)
            .map(|i| (-((i as f64 - 5.0) / 1.5).powi(2)).exp())
            .collect();

        let steps = 16usize;
        let mut u_lts = init.clone();
        let mut v_lts = vec![0.0; n];
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        lts.run(&mut u_lts, &mut v_lts, 0.0, steps, &[]);

        // reference: plain Newmark at dt/8 (well resolved)
        let fine = 8usize;
        let mut u_ref = init.clone();
        let mut v_ref = vec![0.0; n];
        let mut nm = Newmark::new(&c, dt / fine as f64);
        nm.run(&mut u_ref, &mut v_ref, 0.0, steps * fine, &[]);

        let err: f64 = (0..n)
            .map(|i| (u_lts[i] - u_ref[i]).abs())
            .fold(0.0, f64::max);
        // both are O(Δt²) discretizations of the same semi-discrete system;
        // at CFL 0.25 they agree to a few percent (the convergence-order
        // integration test quantifies the rate)
        assert!(err < 0.1, "LTS vs fine Newmark deviation {err}");
    }

    #[test]
    fn stats_count_masked_work() {
        let c = Chain1d::with_velocities(vec![1.0, 1.0, 1.0, 2.0, 2.0], 1.0);
        let (lv, dt) = c.assign_levels(0.5, 2);
        let setup = LtsSetup::new(&c, &lv);
        let mut u = vec![0.0; 6];
        let mut v = vec![0.0; 6];
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        lts.step(&mut u, &mut v, 0.0, &[]);
        // elems[0] = {0,1,2} (level-0 dofs 0..=2? dof 3 is level 1) → 3 elems
        // elems[1] = {2,3,4} → applied twice
        assert_eq!(lts.stats.elem_ops, 3 + 2 * 3);
        assert_eq!(lts.stats.n_steps, 1);
    }
}
