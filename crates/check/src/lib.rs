//! Standalone verifier for the structural invariants the LTS machinery
//! relies on — the `lts-check` companion to the in-process `debug_assert!`
//! hooks of `lts-sem` and the lexical gates of `lts-lint`.
//!
//! Five invariant families, each with its own [`Violation`] variant family
//! so a failed run says *which* contract broke, not just that one did:
//!
//! 1. **Colouring conflict-freedom** — within every colour class of every
//!    level's masked element list, no two elements share a scatter target
//!    (the soundness condition of the threaded executor's disjoint scatter),
//!    and the classes exactly cover the level's list.
//! 2. **DOF-level consistency** — `dof_level[d]` equals the max level of any
//!    element containing `d`, recomputed here from the topology rather than
//!    trusted from [`LtsSetup`]'s own construction.
//! 3. **p-nesting** — the per-level step multipliers `p_k` are powers of two
//!    with no gaps (`p_{k+1} = 2 p_k`, Sec. II), and no level is empty.
//! 4. **Eq. 19 balance** — the Eq. 21 imbalance of a partition stays under a
//!    tolerance, totalled and per level.
//! 5. **Eq. 20 volume** — the hypergraph connectivity-1 cut equals the MPI
//!    volume per LTS cycle, recounted here directly from node rank-sets.

#![forbid(unsafe_code)]

use lts_core::setup::LtsSetup;
use lts_mesh::{HexMesh, Levels};
use lts_sem::verify::{complete_cover, conflict_free};
use lts_sem::ElementColoring;
use std::fmt;

/// One broken invariant, with enough context to locate it.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two same-colour elements of one level share a scatter target.
    ColoringConflict {
        level: usize,
        color: usize,
        first: u32,
        second: u32,
        target: u32,
    },
    /// A level's colour classes do not exactly cover its element list.
    ColoringCover { level: usize, detail: String },
    /// A stored DOF level disagrees with the topology-recomputed one.
    DofLevelMismatch {
        dof: u32,
        stored: u8,
        recomputed: u8,
    },
    /// A per-level step multiplier is not a power of two.
    PNotPowerOfTwo { level: usize, p: u64 },
    /// Consecutive multipliers are not nested by exactly a factor of two.
    PNestingGap { level: usize, p: u64, expected: u64 },
    /// A level in `0..n_levels` contains no element.
    EmptyLevel { level: usize },
    /// Eq. 21 imbalance exceeds the tolerance (level `None` = total).
    Imbalance {
        level: Option<usize>,
        pct: f64,
        tolerance_pct: f64,
    },
    /// Hypergraph cut and directly-counted MPI volume disagree.
    VolumeMismatch { hypergraph_cut: u64, direct: u64 },
}

impl Violation {
    /// Stable short code, one per diagnostic kind (used by the CLI and by
    /// the fixture tests to assert *distinct* failures).
    pub fn code(&self) -> &'static str {
        match self {
            Violation::ColoringConflict { .. } => "coloring-conflict",
            Violation::ColoringCover { .. } => "coloring-cover",
            Violation::DofLevelMismatch { .. } => "dof-level",
            Violation::PNotPowerOfTwo { .. } => "p-not-pow2",
            Violation::PNestingGap { .. } => "p-nesting-gap",
            Violation::EmptyLevel { .. } => "empty-level",
            Violation::Imbalance { .. } => "imbalance",
            Violation::VolumeMismatch { .. } => "volume-mismatch",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ColoringConflict {
                level,
                color,
                first,
                second,
                target,
            } => write!(
                f,
                "level {level}, colour {color}: elements {first} and {second} \
                 both scatter to target {target}"
            ),
            Violation::ColoringCover { level, detail } => {
                write!(f, "level {level}: colour classes are not a cover: {detail}")
            }
            Violation::DofLevelMismatch {
                dof,
                stored,
                recomputed,
            } => write!(
                f,
                "dof {dof}: stored level {stored}, but max adjacent element \
                 level is {recomputed}"
            ),
            Violation::PNotPowerOfTwo { level, p } => {
                write!(f, "level {level}: p = {p} is not a power of two")
            }
            Violation::PNestingGap { level, p, expected } => write!(
                f,
                "level {level}: p = {p} breaks the 2x nesting (expected {expected})"
            ),
            Violation::EmptyLevel { level } => write!(f, "level {level} has no elements"),
            Violation::Imbalance {
                level,
                pct,
                tolerance_pct,
            } => match level {
                Some(l) => write!(
                    f,
                    "level {l} imbalance {pct:.1}% exceeds tolerance {tolerance_pct:.1}%"
                ),
                None => write!(
                    f,
                    "total imbalance {pct:.1}% exceeds tolerance {tolerance_pct:.1}%"
                ),
            },
            Violation::VolumeMismatch {
                hypergraph_cut,
                direct,
            } => write!(
                f,
                "Eq. 20 mismatch: hypergraph cut {hypergraph_cut} != directly \
                 counted MPI volume {direct}"
            ),
        }
    }
}

/// Check one level's colour classes against the disjoint-scatter contract:
/// conflict-freedom within every class and exact cover of `elems`.
///
/// Exposed separately from [`check_level_colorings`] so seeded-broken
/// colourings (fixtures, fuzzers) can be fed directly.
pub fn check_coloring(
    classes: &[Vec<u32>],
    elems: &[u32],
    n_targets: usize,
    targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
    level: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Err(c) = conflict_free(classes, n_targets, targets_of) {
        out.push(Violation::ColoringConflict {
            level,
            color: c.color,
            first: c.first,
            second: c.second,
            target: c.target,
        });
    }
    if let Err(v) = complete_cover(classes, elems) {
        out.push(Violation::ColoringCover {
            level,
            detail: v.to_string(),
        });
    }
    out
}

/// Colour every level's masked element list with the executor's own greedy
/// colourer and verify the result — end-to-end over the exact lists
/// [`LtsSetup`] hands the threaded scatter.
pub fn check_level_colorings(
    setup: &LtsSetup,
    n_targets: usize,
    targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (level, elems) in setup.elems.iter().enumerate() {
        let coloring = ElementColoring::greedy(elems, n_targets, targets_of);
        out.extend(check_coloring(
            &coloring.classes,
            elems,
            n_targets,
            targets_of,
            level,
        ));
    }
    out
}

/// Recompute every DOF's level as the max level of its containing elements
/// (straight from the element lists, independent of `LtsSetup::new`'s
/// incremental construction) and compare with the stored `dof_level`.
pub fn check_dof_levels(
    setup: &LtsSetup,
    n_elems: usize,
    targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
) -> Vec<Violation> {
    let mut recomputed = vec![0u8; setup.dof_level.len()];
    let mut buf = Vec::new();
    for e in 0..n_elems as u32 {
        targets_of(e, &mut buf);
        let le = setup.elem_level[e as usize];
        for &d in &buf {
            let r = &mut recomputed[d as usize];
            *r = (*r).max(le);
        }
    }
    setup
        .dof_level
        .iter()
        .zip(&recomputed)
        .enumerate()
        .filter(|(_, (s, r))| s != r)
        .map(|(d, (&s, &r))| Violation::DofLevelMismatch {
            dof: d as u32,
            stored: s,
            recomputed: r,
        })
        .collect()
}

/// Check the per-level step multipliers: every `p_k` a power of two and
/// `p_{k+1} = 2 p_k` starting from `p_0 = 1` (Sec. II's nesting, which the
/// LTS cycle's recursion depth and Eq. 19/20 weights all assume).
pub fn check_p_nesting(p: &[u64]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut expected = 1u64;
    for (level, &pk) in p.iter().enumerate() {
        if !pk.is_power_of_two() {
            out.push(Violation::PNotPowerOfTwo { level, p: pk });
        } else if pk != expected {
            out.push(Violation::PNestingGap {
                level,
                p: pk,
                expected,
            });
        }
        expected = expected.saturating_mul(2);
    }
    out
}

/// Level sanity for a [`Levels`] assignment: every level in `0..n_levels`
/// populated (an empty level is a nesting gap in disguise: some `p` is paid
/// for by the cycle structure but never earns speed-up) plus the
/// [`check_p_nesting`] contract on the distinct multipliers present.
pub fn check_levels(levels: &Levels) -> Vec<Violation> {
    let mut out = Vec::new();
    for (level, &count) in levels.histogram().iter().enumerate() {
        if count == 0 {
            out.push(Violation::EmptyLevel { level });
        }
    }
    let p: Vec<u64> = (0..levels.n_levels as u8).map(|k| 1u64 << k).collect();
    out.extend(check_p_nesting(&p));
    out
}

/// Eq. 19/21 balance gate: total and per-level imbalance of `part` must stay
/// under `tolerance_pct` percent.
///
/// Per level the gate is granularity-aware: a level with `c` elements over
/// `k` ranks can do no better than `ceil(c/k)` vs `floor(c/k)` loads, so
/// that one-element floor is added to the tolerance before comparing — a
/// sparse level is judged against what a perfect partitioner could achieve,
/// not against zero.
pub fn check_balance(
    levels: &Levels,
    part: &[u32],
    k: usize,
    tolerance_pct: f64,
) -> Vec<Violation> {
    let rep = lts_partition::load_imbalance(levels, part, k);
    let mut out = Vec::new();
    if rep.total_pct > tolerance_pct {
        out.push(Violation::Imbalance {
            level: None,
            pct: rep.total_pct,
            tolerance_pct,
        });
    }
    for (level, &pct) in rep.per_level_pct.iter().enumerate() {
        let count: u64 = rep.level_counts[level].iter().sum();
        let ceil = count.div_ceil(k as u64);
        let floor_pct = if ceil == 0 {
            0.0
        } else {
            (ceil - count / k as u64) as f64 / ceil as f64 * 100.0
        };
        let allowed = tolerance_pct + floor_pct;
        if pct > allowed {
            out.push(Violation::Imbalance {
                level: Some(level),
                pct,
                tolerance_pct: allowed,
            });
        }
    }
    out
}

/// Eq. 20 cross-check: the nodal hypergraph's connectivity-1 cut (what the
/// PaToH-style objective minimises) must equal the MPI volume counted
/// directly — per corner node, `(λ − 1) · Σ p` over its adjacent elements
/// whenever `λ ≥ 2` distinct ranks touch it.
pub fn check_volume(mesh: &HexMesh, levels: &Levels, part: &[u32]) -> Vec<Violation> {
    let hypergraph_cut = lts_partition::mpi_volume(mesh, levels, part);
    let mut direct = 0u64;
    for n in 0..mesh.n_corner_nodes() as u32 {
        let es = mesh.node_elems(n);
        let mut ranks: Vec<u32> = es.iter().map(|&e| part[e as usize]).collect();
        ranks.sort_unstable();
        ranks.dedup();
        if ranks.len() >= 2 {
            let cost: u64 = es.iter().map(|&e| levels.p_of(e)).sum();
            direct += cost * (ranks.len() as u64 - 1);
        }
    }
    if hypergraph_cut != direct {
        vec![Violation::VolumeMismatch {
            hypergraph_cut,
            direct,
        }]
    } else {
        Vec::new()
    }
}

/// [`LtsSetup`] needs a `DofTopology`; for whole-mesh checks the GLL node
/// map alone is one — no operator assembly required.
pub struct DofMapTopology<'a>(pub &'a lts_sem::DofMap);

impl lts_core::operator::DofTopology for DofMapTopology<'_> {
    fn n_dofs(&self) -> usize {
        self.0.n_nodes()
    }

    fn n_elems(&self) -> usize {
        self.0.n_elems()
    }

    fn elem_dofs(&self, e: u32, out: &mut Vec<u32>) {
        self.0.elem_nodes(e, out);
    }
}

/// Everything at once over a mesh + levels + partition, as the CLI runs it.
pub fn check_all(
    mesh: &HexMesh,
    levels: &Levels,
    part: &[u32],
    k: usize,
    order: usize,
    tolerance_pct: f64,
) -> Vec<Violation> {
    let dofmap = lts_sem::DofMap::new(mesh, order);
    let topo = DofMapTopology(&dofmap);
    let setup = LtsSetup::new(&topo, &levels.elem_level);
    let n_targets = dofmap.n_nodes();
    let mut targets = |e: u32, out: &mut Vec<u32>| dofmap.elem_nodes(e, out);

    let mut out = Vec::new();
    out.extend(check_levels(levels));
    out.extend(check_level_colorings(&setup, n_targets, &mut targets));
    out.extend(check_dof_levels(&setup, mesh.n_elems(), &mut targets));
    out.extend(check_balance(levels, part, k, tolerance_pct));
    out.extend(check_volume(mesh, levels, part));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level_row() -> (HexMesh, Levels) {
        let mut m = HexMesh::uniform(8, 1, 1, 1.0, 1.0);
        m.paint_box((6, 8), (0, 1), (0, 1), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        (m, lv)
    }

    #[test]
    fn clean_mesh_passes_everything() {
        let (m, lv) = two_level_row();
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let v = check_all(&m, &lv, &part, 2, 1, 100.0);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn p_nesting_accepts_powers() {
        assert!(check_p_nesting(&[1, 2, 4, 8]).is_empty());
        assert!(check_p_nesting(&[1]).is_empty());
        assert!(check_p_nesting(&[]).is_empty());
    }

    #[test]
    fn p_nesting_rejects_non_power() {
        let v = check_p_nesting(&[1, 3]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code(), "p-not-pow2");
    }

    #[test]
    fn p_nesting_rejects_gap() {
        let v = check_p_nesting(&[1, 2, 8]);
        assert_eq!(
            v,
            vec![Violation::PNestingGap {
                level: 2,
                p: 8,
                expected: 4
            }]
        );
    }

    #[test]
    fn volume_cross_check_agrees_on_row() {
        let (m, lv) = two_level_row();
        for part in [vec![0, 0, 0, 0, 1, 1, 1, 1], vec![0, 1, 0, 1, 0, 1, 0, 1]] {
            assert!(check_volume(&m, &lv, &part).is_empty());
        }
    }

    #[test]
    fn dof_level_mismatch_detected() {
        let (m, lv) = two_level_row();
        let dofmap = lts_sem::DofMap::new(&m, 1);
        let topo = DofMapTopology(&dofmap);
        let mut setup = LtsSetup::new(&topo, &lv.elem_level);
        setup.dof_level[5] ^= 1; // corrupt one entry
        let mut targets = |e: u32, out: &mut Vec<u32>| dofmap.elem_nodes(e, out);
        let v = check_dof_levels(&setup, m.n_elems(), &mut targets);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code(), "dof-level");
    }
}
