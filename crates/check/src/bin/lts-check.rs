//! `lts-check` — run every structural invariant over the benchmark meshes.
//!
//! ```text
//! cargo run -q -p lts-check -- [--elements N] [--ranks K] [--order P]
//!                              [--tolerance PCT] [--meshes a,b,...]
//! ```
//!
//! For each requested mesh this builds the benchmark geometry, assigns LTS
//! levels, partitions with SCOTCH-P, and verifies: level colouring
//! conflict-freedom + cover, DOF-level consistency, p-nesting, the Eq. 19
//! balance tolerance, and the Eq. 20 hypergraph-cut = MPI-volume identity.
//! Any violation prints as `mesh: [code] message` and the process exits 1.

use lts_check::check_all;
use lts_mesh::{BenchmarkMesh, MeshKind};
use lts_partition::{partition_mesh, Strategy};
use std::process::ExitCode;

fn kind_of(name: &str) -> Option<MeshKind> {
    match name {
        "trench" => Some(MeshKind::Trench),
        "trench-big" => Some(MeshKind::TrenchBig),
        "embedding" => Some(MeshKind::Embedding),
        "crust" => Some(MeshKind::Crust),
        _ => None,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut elements = 2048usize;
    let mut ranks = 8usize;
    let mut order = 2usize;
    // Generous default: SCOTCH-P's greedy level coupling leaves ~50% skew on
    // sparse levels of the laptop-sized meshes; the gate's job at this scale
    // is to catch Fig. 1-style catastrophic (100%) imbalance. Tighten with
    // --tolerance for paper-scale runs.
    let mut tolerance = 60.0f64;
    let mut meshes = vec!["trench", "trench-big", "embedding", "crust"]
        .into_iter()
        .map(String::from)
        .collect::<Vec<_>>();

    let mut i = 0;
    while i < argv.len() {
        let (key, val) = (argv[i].as_str(), argv.get(i + 1));
        let Some(val) = val else {
            eprintln!("lts-check: missing value for {key}");
            return ExitCode::from(2);
        };
        let ok = match key {
            "--elements" => val.parse().map(|v| elements = v).is_ok(),
            "--ranks" => val.parse().map(|v| ranks = v).is_ok(),
            "--order" => val.parse().map(|v| order = v).is_ok(),
            "--tolerance" => val.parse().map(|v| tolerance = v).is_ok(),
            "--meshes" => {
                meshes = val.split(',').map(|s| s.trim().to_string()).collect();
                true
            }
            _ => false,
        };
        if !ok {
            eprintln!("lts-check: bad argument {key} {val}");
            return ExitCode::from(2);
        }
        i += 2;
    }

    let mut total = 0usize;
    for name in &meshes {
        let Some(kind) = kind_of(name) else {
            eprintln!(
                "lts-check: unknown mesh {name:?} (expected trench, trench-big, embedding, crust)"
            );
            return ExitCode::from(2);
        };
        let b = BenchmarkMesh::build(kind, elements);
        let part = partition_mesh(&b.mesh, &b.levels, ranks, Strategy::ScotchP, 1);
        let violations = check_all(&b.mesh, &b.levels, &part, ranks, order, tolerance);
        println!(
            "{name}: {} elements, {} levels, {ranks} ranks -> {}",
            b.mesh.n_elems(),
            b.levels.n_levels,
            if violations.is_empty() {
                "ok".to_string()
            } else {
                format!("{} violation(s)", violations.len())
            }
        );
        for v in &violations {
            println!("  {name}: [{}] {v}", v.code());
        }
        total += violations.len();
    }
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
