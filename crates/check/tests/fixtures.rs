//! Seeded-broken fixtures: each deliberately violates exactly one invariant
//! family and must draw that family's *distinct* diagnostic — a checker that
//! collapses everything into one "invalid" verdict can't steer a fix.

use lts_check::{check_all, check_balance, check_coloring, check_p_nesting, Violation};
use lts_mesh::{HexMesh, Levels};

fn two_level_row() -> (HexMesh, Levels) {
    let mut m = HexMesh::uniform(8, 1, 1, 1.0, 1.0);
    m.paint_box((6, 8), (0, 1), (0, 1), 2.0, 1.0);
    let lv = Levels::assign(&m, 0.5, 4);
    (m, lv)
}

/// Fixture 1: a colouring that puts two face-adjacent elements in the same
/// class. Their 4 shared corner nodes are claimed twice within the colour —
/// exactly the race the threaded scatter would run into.
#[test]
fn broken_coloring_draws_coloring_conflict() {
    let (m, _) = two_level_row();
    let dofmap = lts_sem::DofMap::new(&m, 1);
    let mut targets = |e: u32, out: &mut Vec<u32>| dofmap.elem_nodes(e, out);
    let elems: Vec<u32> = (0..8).collect();
    // elements 2 and 3 share a face but sit in one class
    let classes = vec![vec![0, 2, 3, 5, 7], vec![1, 4, 6]];
    let v = check_coloring(&classes, &elems, dofmap.n_nodes(), &mut targets, 0);
    assert_eq!(v.len(), 1, "exactly one family must fire: {v:?}");
    assert_eq!(v[0].code(), "coloring-conflict");
    match &v[0] {
        Violation::ColoringConflict { first, second, .. } => {
            assert_eq!((*first, *second), (2, 3));
        }
        other => panic!("wrong variant: {other:?}"),
    }
    assert!(v[0].to_string().contains("elements 2 and 3"));
}

/// Fixture 2: per-level multipliers 1, 3, 9 — a ternary "nesting" that the
/// power-of-two LTS recursion cannot realise.
#[test]
fn ternary_levels_draw_p_not_pow2() {
    let v = check_p_nesting(&[1, 3, 9]);
    assert_eq!(v.len(), 2);
    assert!(v.iter().all(|x| x.code() == "p-not-pow2"));
    assert_eq!(
        v[0],
        Violation::PNotPowerOfTwo { level: 1, p: 3 },
        "diagnostic must name the offending level and value"
    );
}

/// Fixture 3: a partition that dumps every fine element on one rank —
/// Fig. 1's stalling configuration — against a tolerance it cannot meet.
#[test]
fn lopsided_partition_draws_imbalance() {
    let (_, lv) = two_level_row();
    // all fine (level-1) elements on rank 1
    let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
    let v = check_balance(&lv, &part, 2, 25.0);
    assert!(!v.is_empty());
    assert!(v.iter().all(|x| x.code() == "imbalance"));
    // the per-level diagnostic must single out the fine level (100% skew)
    assert!(v.iter().any(|x| matches!(
        x,
        Violation::Imbalance {
            level: Some(1),
            pct,
            ..
        } if *pct == 100.0
    )));
}

/// The three fixture families produce three *different* codes — the CLI's
/// non-zero exit is reproduced by `check_all` returning non-empty.
#[test]
fn fixture_diagnostics_are_distinct() {
    let codes = ["coloring-conflict", "p-not-pow2", "imbalance"];
    let unique: std::collections::BTreeSet<_> = codes.iter().collect();
    assert_eq!(unique.len(), 3);

    // and a clean end-to-end run stays clean, so the exits differ too
    let (m, lv) = two_level_row();
    let part = vec![0, 0, 0, 1, 1, 1, 0, 1]; // balanced: 3 coarse + 1 fine each
    assert!(check_all(&m, &lv, &part, 2, 1, 25.0).is_empty());
}
