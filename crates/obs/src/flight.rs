//! Distributed flight recorder: fixed-capacity per-rank rings of compact
//! events, a causal cross-rank merge, and a critical-path analyzer.
//!
//! Every rank owns one [`FlightRecorder`] — a preallocated ring that the
//! runtime writes into from its hot paths (step/level boundaries, sends,
//! receives, exchange waits, stall warnings, faults). Recording is
//! allocation-free and branch-cheap: one `Instant::elapsed` read and one
//! slot write per event, with the oldest event overwritten once the ring is
//! full (the `dropped` counter says how many). A capacity of zero disables
//! the recorder entirely.
//!
//! Sends and receives carry a **per-directed-edge monotone sequence
//! number** assigned by the runtime and transported opaquely on the wire,
//! so a recv event on rank B names exactly one send event on rank A —
//! a happens-before edge that holds across OS processes whose clocks were
//! never synchronized. [`merge_recordings`] stitches all ranks' rings into
//! one causally-ordered stream (Kahn topological sort over program order +
//! matched send→recv edges, Lamport-stamped) and *rejects* impossible
//! recordings: a recv ordered before its matching send shows up as a cycle,
//! a re-used or regressing sequence number as an explicit error.
//!
//! Timestamps are nanoseconds since the **per-rank** recorder epoch.
//! In-process runs share one epoch (so cross-rank timestamps align in
//! traces); real OS processes do not — which is why the merge and the
//! critical-path walk only ever compare timestamps *within* a rank and use
//! matched sequence numbers for every cross-rank conclusion.

use crate::chrome::{level_category, ChromeTrace};
use crate::export::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// `peer` value for events that do not involve a peer rank.
pub const NO_PEER: u32 = u32::MAX;
/// `level` value for events outside any LTS level (step boundaries, faults).
pub const NO_LEVEL: u8 = u8::MAX;

/// What happened. The discriminant is the wire encoding (see
/// `lts-runtime`'s `transport::codec`), so variants must keep their values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// A global Δt₀ step started (`step` names it; `level`/`peer` unused).
    StepBegin = 0,
    /// The global step completed.
    StepEnd = 1,
    /// A level-`level` force evaluation started.
    LevelBegin = 2,
    /// The level-`level` force evaluation completed (assembly included).
    LevelEnd = 3,
    /// A partial-force message was posted to `peer` with sequence `seq`.
    Send = 4,
    /// A partial-force message from `peer` with sequence `seq` was taken
    /// off the transport (the happens-after end of a send→recv edge).
    Recv = 5,
    /// The rank reached the exchange point of `level` and may block.
    ExchangeBegin = 6,
    /// All peers' partials for this exchange were assembled.
    ExchangeEnd = 7,
    /// The stall monitor warned: windowed wait fraction above threshold.
    StallWarning = 8,
    /// The run died here (`RuntimeError`); always the rank's last event.
    Fault = 9,
}

impl EventKind {
    pub fn from_u8(b: u8) -> Option<EventKind> {
        use EventKind::*;
        Some(match b {
            0 => StepBegin,
            1 => StepEnd,
            2 => LevelBegin,
            3 => LevelEnd,
            4 => Send,
            5 => Recv,
            6 => ExchangeBegin,
            7 => ExchangeEnd,
            8 => StallWarning,
            9 => Fault,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            StepBegin => "step_begin",
            StepEnd => "step_end",
            LevelBegin => "level_begin",
            LevelEnd => "level_end",
            Send => "send",
            Recv => "recv",
            ExchangeBegin => "exchange_begin",
            ExchangeEnd => "exchange_end",
            StallWarning => "stall_warning",
            Fault => "fault",
        }
    }

    pub fn from_name(name: &str) -> Option<EventKind> {
        (0..=9u8)
            .filter_map(EventKind::from_u8)
            .find(|k| k.name() == name)
    }
}

/// One ring slot: 26 bytes on the wire, `Copy`, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the *recording rank's* epoch. Only comparable to
    /// other events of the same rank (in-process runs share an epoch, OS
    /// processes do not).
    pub t_ns: u64,
    pub kind: EventKind,
    /// LTS level, or [`NO_LEVEL`].
    pub level: u8,
    /// Global step index the event belongs to.
    pub step: u32,
    /// Peer rank for send/recv, else [`NO_PEER`].
    pub peer: u32,
    /// Per-directed-edge monotone sequence number for send/recv, else 0.
    pub seq: u64,
}

/// Fixed-capacity ring of [`FlightEvent`]s. Allocation happens once, at
/// construction; `record` never allocates (a `lint: hot-path` requirement
/// of its runtime call sites).
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    buf: Vec<FlightEvent>,
    /// Index of the oldest event once the ring is full.
    head: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// Default ring size per rank (~100 KiB of events).
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A recorder with its own epoch. `capacity == 0` disables recording.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_epoch(capacity, Instant::now())
    }

    /// A recorder sharing an epoch with others (in-process rank groups),
    /// so their timestamps land on one axis in rendered traces.
    pub fn with_epoch(capacity: usize, epoch: Instant) -> FlightRecorder {
        FlightRecorder {
            epoch,
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
        }
    }

    /// A recorder that ignores every `record` call.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::new(0)
    }

    pub fn enabled(&self) -> bool {
        self.buf.capacity() > 0
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one event. Never allocates: within capacity this is a push
    /// into reserved space, at capacity it overwrites the oldest slot.
    #[inline]
    pub fn record(&mut self, kind: EventKind, level: u8, step: u32, peer: u32, seq: u64) {
        let cap = self.buf.capacity();
        if cap == 0 {
            return;
        }
        let ev = FlightEvent {
            t_ns: self.epoch.elapsed().as_nanos() as u64,
            kind,
            level,
            step,
            peer,
            seq,
        };
        if self.buf.len() < cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// The recording, oldest event first, stamped with the owning rank.
    pub fn snapshot(&self, rank: u32) -> RankRecording {
        let mut events = Vec::with_capacity(self.buf.len());
        events.extend_from_slice(&self.buf[self.head..]);
        events.extend_from_slice(&self.buf[..self.head]);
        RankRecording {
            rank,
            dropped: self.dropped,
            events,
        }
    }
}

/// One rank's drained ring: the unit that crosses the wire (codec `Flight`
/// frame) and lands in crash reports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankRecording {
    pub rank: u32,
    /// Events lost to ring eviction before the drain.
    pub dropped: u64,
    /// Oldest first; `t_ns` is non-decreasing within one recording.
    pub events: Vec<FlightEvent>,
}

impl RankRecording {
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|ev| {
                Json::Obj(vec![
                    ("t_ns".to_string(), Json::UInt(ev.t_ns)),
                    ("kind".to_string(), Json::str(ev.kind.name())),
                    ("level".to_string(), Json::UInt(ev.level as u64)),
                    ("step".to_string(), Json::UInt(ev.step as u64)),
                    ("peer".to_string(), Json::UInt(ev.peer as u64)),
                    ("seq".to_string(), Json::UInt(ev.seq)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("rank".to_string(), Json::UInt(self.rank as u64)),
            ("dropped".to_string(), Json::UInt(self.dropped)),
            ("events".to_string(), Json::Arr(events)),
        ])
    }

    pub fn from_json(doc: &Json) -> Result<RankRecording, String> {
        let rank = doc
            .get("rank")
            .and_then(|v| v.as_u64())
            .ok_or("recording: missing rank")? as u32;
        let dropped = doc
            .get("dropped")
            .and_then(|v| v.as_u64())
            .ok_or("recording: missing dropped")?;
        let raw = doc
            .get("events")
            .and_then(|v| v.as_arr())
            .ok_or("recording: missing events array")?;
        let mut events = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let field = |key: &str| {
                e.get(key)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("rank {rank} event {i}: missing {key}"))
            };
            let kind_name = e
                .get("kind")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("rank {rank} event {i}: missing kind"))?;
            let kind = EventKind::from_name(kind_name)
                .ok_or_else(|| format!("rank {rank} event {i}: unknown kind {kind_name:?}"))?;
            events.push(FlightEvent {
                t_ns: field("t_ns")?,
                kind,
                level: field("level")? as u8,
                step: field("step")? as u32,
                peer: field("peer")? as u32,
                seq: field("seq")?,
            });
        }
        Ok(RankRecording {
            rank,
            dropped,
            events,
        })
    }
}

/// One event of the causally-ordered merged stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedEvent {
    pub rank: u32,
    /// Lamport clock: `1 + max(lamport of causal predecessors)` over
    /// program order and matched send→recv edges.
    pub lamport: u64,
    pub ev: FlightEvent,
}

/// Why a set of recordings cannot be causally ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A rank's send or recv sequence numbers toward one peer regressed —
    /// the runtime assigns them monotonically, so this recording is
    /// corrupt or mixed from different runs.
    SeqRegression {
        rank: u32,
        peer: u32,
        kind: EventKind,
        prev: u64,
        next: u64,
    },
    /// Two send events claim the same (src, dst, seq) edge identity.
    DuplicateSend { src: u32, dst: u32, seq: u64 },
    /// The happens-before graph has a cycle: some recv is ordered before
    /// its matching send. `stuck` events could not be scheduled.
    CausalityViolation { stuck: usize },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::SeqRegression {
                rank,
                peer,
                kind,
                prev,
                next,
            } => write!(
                f,
                "rank {rank} {} seq toward peer {peer} regressed {prev} -> {next}",
                kind.name()
            ),
            MergeError::DuplicateSend { src, dst, seq } => {
                write!(f, "duplicate send edge ({src} -> {dst}, seq {seq})")
            }
            MergeError::CausalityViolation { stuck } => write!(
                f,
                "causality violation: {stuck} events unreachable (a recv is \
                 ordered before its matching send)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Index of every send event by its (src, dst, seq) edge identity.
fn send_index(recs: &[RankRecording]) -> Result<BTreeMap<(u32, u32, u64), usize>, MergeError> {
    let mut sends = BTreeMap::new();
    let mut offset = 0usize;
    for rec in recs {
        for (i, ev) in rec.events.iter().enumerate() {
            if ev.kind == EventKind::Send
                && sends
                    .insert((rec.rank, ev.peer, ev.seq), offset + i)
                    .is_some()
            {
                return Err(MergeError::DuplicateSend {
                    src: rec.rank,
                    dst: ev.peer,
                    seq: ev.seq,
                });
            }
        }
        offset += rec.events.len();
    }
    Ok(sends)
}

/// Reject per-edge sequence regressions (sends and recvs must be strictly
/// increasing toward each peer within a rank's program order — gaps from
/// ring eviction or dropped messages are fine, going backwards is not).
fn check_seq_monotone(recs: &[RankRecording]) -> Result<(), MergeError> {
    for rec in recs {
        let mut last: BTreeMap<(u32, EventKind), u64> = BTreeMap::new();
        for ev in &rec.events {
            if ev.kind != EventKind::Send && ev.kind != EventKind::Recv {
                continue;
            }
            if let Some(&prev) = last.get(&(ev.peer, ev.kind)) {
                if ev.seq <= prev {
                    return Err(MergeError::SeqRegression {
                        rank: rec.rank,
                        peer: ev.peer,
                        kind: ev.kind,
                        prev,
                        next: ev.seq,
                    });
                }
            }
            last.insert((ev.peer, ev.kind), ev.seq);
        }
    }
    Ok(())
}

/// Merge all ranks' recordings into one causally-ordered, Lamport-stamped
/// stream. Happens-before is program order within a rank plus matched
/// send→recv edges across ranks; unmatched recvs (sender ring evicted the
/// send, or the sender died before draining) impose no cross edge.
pub fn merge_recordings(recs: &[RankRecording]) -> Result<Vec<MergedEvent>, MergeError> {
    check_seq_monotone(recs)?;
    let sends = send_index(recs)?;

    let total: usize = recs.iter().map(|r| r.events.len()).sum();
    let mut offsets = Vec::with_capacity(recs.len());
    let mut off = 0usize;
    for rec in recs {
        offsets.push(off);
        off += rec.events.len();
    }
    // Node id = offsets[rank_idx] + event_idx. Edges: program order and
    // send→recv; in-degree counts drive a deterministic Kahn sort.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut indeg: Vec<u32> = vec![0; total];
    for (ri, rec) in recs.iter().enumerate() {
        for (i, ev) in rec.events.iter().enumerate() {
            let node = offsets[ri] + i;
            if i + 1 < rec.events.len() {
                succ[node].push(node + 1);
                indeg[node + 1] += 1;
            }
            if ev.kind == EventKind::Recv {
                if let Some(&send_node) = sends.get(&(ev.peer, rec.rank, ev.seq)) {
                    succ[send_node].push(node);
                    indeg[node] += 1;
                }
            }
        }
    }

    // Locate a node's (rank index, event) from its id.
    let locate = |node: usize| -> (usize, &FlightEvent) {
        let ri = match offsets.binary_search(&node) {
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        (ri, &recs[ri].events[node - offsets[ri]])
    };

    // Min-heap ordered by (t_ns, rank, node): timestamps across ranks are
    // only a heuristic tie-break, causal edges are the real constraint —
    // but the combination makes the output deterministic.
    use std::cmp::Reverse;
    let mut ready = std::collections::BinaryHeap::new();
    for (node, &deg) in indeg.iter().enumerate() {
        if deg == 0 {
            let (ri, ev) = locate(node);
            ready.push(Reverse((ev.t_ns, recs[ri].rank, node)));
        }
    }
    let mut lamport: Vec<u64> = vec![0; total];
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, rank, node))) = ready.pop() {
        let (_, ev) = locate(node);
        out.push(MergedEvent {
            rank,
            lamport: lamport[node] + 1,
            ev: *ev,
        });
        let next_lamport = lamport[node] + 1;
        for &s in &succ[node] {
            lamport[s] = lamport[s].max(next_lamport);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                let (ri, sev) = locate(s);
                ready.push(Reverse((sev.t_ns, recs[ri].rank, s)));
            }
        }
    }
    if out.len() < total {
        return Err(MergeError::CausalityViolation {
            stuck: total - out.len(),
        });
    }
    Ok(out)
}

/// Compute vs. wait attribution of one critical-path stretch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegKind {
    Compute,
    Wait,
}

/// One coalesced stretch of the critical path (forward order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    pub rank: u32,
    pub level: u8,
    pub kind: SegKind,
    pub dur_ns: u64,
}

/// A cross-rank hop the path took: the receiver's level-`level` exchange
/// was bound by `from_rank`'s send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEdge {
    pub from_rank: u32,
    pub to_rank: u32,
    pub level: u8,
    pub wait_ns: u64,
}

/// Result of [`critical_path`]: where the end-to-end wall-clock actually
/// went, per (rank, level), compute vs. wait.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Coalesced path stretches, start → end.
    pub segments: Vec<PathSegment>,
    /// Total nanoseconds attributed along the path.
    pub total_ns: u64,
    /// `((rank, level), (compute_ns, wait_ns))`, descending by total.
    pub by_rank_level: Vec<((u32, u8), (u64, u64))>,
    /// Cross-rank hops, descending by wait.
    pub edges: Vec<PathEdge>,
}

impl CriticalPath {
    pub fn compute_ns(&self) -> u64 {
        self.by_rank_level.iter().map(|(_, (c, _))| c).sum()
    }

    pub fn wait_ns(&self) -> u64 {
        self.by_rank_level.iter().map(|(_, (_, w))| w).sum()
    }
}

/// Walk the merged event graph backward from the causally-last event and
/// attribute wall-clock to per-(rank, level) compute and wait stretches.
///
/// The walk follows program order backward within a rank; at an exchange
/// window (`ExchangeBegin … ExchangeEnd`) the whole window is attributed
/// as *wait* at the exchange's level, and the walk jumps to the sender of
/// the **last matched recv** inside the window — the message that released
/// the exchange, i.e. the true causal bound. Unmatched windows (sender
/// ring evicted, sender dead) continue on the same rank. Validates the
/// recordings via [`merge_recordings`] first.
pub fn critical_path(recs: &[RankRecording]) -> Result<CriticalPath, MergeError> {
    let merged = merge_recordings(recs)?;
    if merged.is_empty() {
        return Ok(CriticalPath::default());
    }
    let sends = send_index(recs)?;
    // rank value -> index into recs
    let rank_idx: BTreeMap<u32, usize> =
        recs.iter().enumerate().map(|(i, r)| (r.rank, i)).collect();
    let mut offsets = Vec::with_capacity(recs.len());
    let mut off = 0usize;
    for rec in recs {
        offsets.push(off);
        off += rec.events.len();
    }
    let locate = |node: usize| -> (usize, usize) {
        let ri = match offsets.binary_search(&node) {
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        (ri, node - offsets[ri])
    };

    // Start at the causally-last event (max lamport; ties by t_ns then rank
    // keep it deterministic).
    let last = merged
        .iter()
        .max_by_key(|m| (m.lamport, m.ev.t_ns, m.rank))
        .copied()
        .unwrap_or(merged[0]);
    let mut ri = match rank_idx.get(&last.rank) {
        Some(&i) => i,
        None => return Ok(CriticalPath::default()),
    };
    // Find the index of the last event (match by identity: last event of
    // that rank with equal fields).
    let mut i = recs[ri]
        .events
        .iter()
        .rposition(|e| e == &last.ev)
        .unwrap_or(recs[ri].events.len().saturating_sub(1));

    let mut raw: Vec<PathSegment> = Vec::new();
    let mut edges: Vec<PathEdge> = Vec::new();
    let mut budget = merged.len() + 1; // termination backstop
    while i > 0 && budget > 0 {
        budget -= 1;
        let cur = recs[ri].events[i];
        if cur.kind == EventKind::ExchangeEnd {
            // Find the matching ExchangeBegin and the last matched recv
            // inside the window.
            let mut j = i;
            let mut release: Option<(usize, FlightEvent)> = None;
            while j > 0 {
                j -= 1;
                let ev = recs[ri].events[j];
                if ev.kind == EventKind::ExchangeBegin && ev.level == cur.level {
                    break;
                }
                if ev.kind == EventKind::Recv && release.is_none() {
                    if let Some(&snode) = sends.get(&(ev.peer, recs[ri].rank, ev.seq)) {
                        release = Some((snode, ev));
                    }
                }
            }
            let begin = recs[ri].events[j];
            raw.push(PathSegment {
                rank: recs[ri].rank,
                level: cur.level,
                kind: SegKind::Wait,
                dur_ns: cur.t_ns.saturating_sub(begin.t_ns),
            });
            if let Some((snode, recv_ev)) = release {
                let (sri, si) = locate(snode);
                edges.push(PathEdge {
                    from_rank: recs[sri].rank,
                    to_rank: recs[ri].rank,
                    level: recv_ev.level,
                    wait_ns: cur.t_ns.saturating_sub(begin.t_ns),
                });
                ri = sri;
                i = si;
            } else {
                i = j;
            }
        } else {
            let prev = recs[ri].events[i - 1];
            let level = if cur.level != NO_LEVEL {
                cur.level
            } else {
                prev.level
            };
            raw.push(PathSegment {
                rank: recs[ri].rank,
                level,
                kind: SegKind::Compute,
                dur_ns: cur.t_ns.saturating_sub(prev.t_ns),
            });
            i -= 1;
        }
    }

    // Forward order, coalesce adjacent same-(rank, level, kind) stretches.
    raw.reverse();
    let mut segments: Vec<PathSegment> = Vec::new();
    for seg in raw {
        match segments.last_mut() {
            Some(last)
                if last.rank == seg.rank && last.level == seg.level && last.kind == seg.kind =>
            {
                last.dur_ns += seg.dur_ns;
            }
            _ => segments.push(seg),
        }
    }
    let total_ns = segments.iter().map(|s| s.dur_ns).sum();
    let mut by: BTreeMap<(u32, u8), (u64, u64)> = BTreeMap::new();
    for seg in &segments {
        let slot = by.entry((seg.rank, seg.level)).or_default();
        match seg.kind {
            SegKind::Compute => slot.0 += seg.dur_ns,
            SegKind::Wait => slot.1 += seg.dur_ns,
        }
    }
    let mut by_rank_level: Vec<_> = by.into_iter().collect();
    by_rank_level.sort_by_key(|&(_, (c, w))| std::cmp::Reverse(c + w));
    edges.sort_by_key(|e| std::cmp::Reverse(e.wait_ns));
    Ok(CriticalPath {
        segments,
        total_ns,
        by_rank_level,
        edges,
    })
}

/// Render recordings as a Chrome trace on the workspace convention
/// (pid 1, tid = rank): step and level slices, exchange-wait slices,
/// zero-width send/recv markers carrying their sequence numbers, and
/// stall-warning/fault instants. Timestamps are each rank's own `t_ns`
/// (µs) — aligned across ranks only for shared-epoch in-process runs.
pub fn flight_chrome_trace(recs: &[RankRecording]) -> ChromeTrace {
    let mut t = ChromeTrace::new();
    t.process_name(1, "flight recorder");
    for rec in recs {
        let tid = rec.rank as u64;
        t.thread_name(1, tid, &format!("rank {}", rec.rank));
        // Match every Begin to its End up front so slices can be emitted
        // at their begin time (keeps ts monotone per tid in emission order).
        let pairs: [(EventKind, EventKind, &str); 3] = [
            (EventKind::StepBegin, EventKind::StepEnd, "step"),
            (EventKind::LevelBegin, EventKind::LevelEnd, "level"),
            (EventKind::ExchangeBegin, EventKind::ExchangeEnd, "wait"),
        ];
        for (i, ev) in rec.events.iter().enumerate() {
            let ts_us = ev.t_ns as f64 / 1e3;
            let cat = if ev.level == NO_LEVEL {
                level_category(None)
            } else {
                level_category(Some(ev.level))
            };
            let base_args = |ev: &FlightEvent| {
                vec![
                    ("step".to_string(), Json::UInt(ev.step as u64)),
                    ("kind".to_string(), Json::str(ev.kind.name())),
                ]
            };
            match ev.kind {
                EventKind::StepBegin | EventKind::LevelBegin | EventKind::ExchangeBegin => {
                    let (end_kind, name) = pairs
                        .iter()
                        .find(|(b, _, _)| *b == ev.kind)
                        .map(|(_, e, n)| (*e, *n))
                        .unwrap_or((EventKind::StepEnd, "step"));
                    if let Some(end) = rec.events[i + 1..].iter().find(|e| {
                        e.kind == end_kind
                            && (end_kind == EventKind::StepEnd || e.level == ev.level)
                    }) {
                        let dur_us = end.t_ns.saturating_sub(ev.t_ns) as f64 / 1e3;
                        t.complete(1, tid, name, &cat, ts_us, dur_us, base_args(ev));
                    }
                }
                EventKind::Send | EventKind::Recv => {
                    let mut args = base_args(ev);
                    args.push(("peer".to_string(), Json::UInt(ev.peer as u64)));
                    args.push(("seq".to_string(), Json::UInt(ev.seq)));
                    t.complete(1, tid, ev.kind.name(), &cat, ts_us, 0.0, args);
                }
                EventKind::StallWarning | EventKind::Fault => {
                    t.complete(1, tid, ev.kind.name(), &cat, ts_us, 0.0, base_args(ev));
                }
                EventKind::StepEnd | EventKind::LevelEnd | EventKind::ExchangeEnd => {}
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, kind: EventKind, level: u8, peer: u32, seq: u64) -> FlightEvent {
        FlightEvent {
            t_ns,
            kind,
            level,
            step: 0,
            peer,
            seq,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        assert!(r.enabled());
        for step in 0..5u32 {
            r.record(EventKind::StepBegin, NO_LEVEL, step, NO_PEER, 0);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let rec = r.snapshot(7);
        assert_eq!(rec.rank, 7);
        assert_eq!(rec.dropped, 2);
        let steps: Vec<u32> = rec.events.iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![2, 3, 4], "oldest-first after eviction");
        assert!(rec.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = FlightRecorder::disabled();
        assert!(!r.enabled());
        r.record(EventKind::Fault, NO_LEVEL, 0, NO_PEER, 0);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn recording_round_trips_through_json() {
        let rec = RankRecording {
            rank: 3,
            dropped: 11,
            events: vec![
                ev(10, EventKind::StepBegin, NO_LEVEL, NO_PEER, 0),
                ev(20, EventKind::Send, 2, 1, 40),
                ev(30, EventKind::Recv, 2, 1, 41),
                ev(40, EventKind::Fault, NO_LEVEL, NO_PEER, 0),
            ],
        };
        let json = rec.to_json().render();
        let back = RankRecording::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, rec);
        assert!(RankRecording::from_json(&Json::parse("{}").unwrap()).is_err());
    }

    /// Two ranks, one message: the merged order must place the send before
    /// the recv even though the receiver's local clock claims otherwise.
    #[test]
    fn merge_orders_send_before_recv_despite_clock_skew() {
        let recs = vec![
            RankRecording {
                rank: 0,
                dropped: 0,
                events: vec![ev(1_000_000, EventKind::Send, 0, 1, 0)],
            },
            RankRecording {
                rank: 1,
                dropped: 0,
                events: vec![ev(5, EventKind::Recv, 0, 0, 0)], // skewed clock
            },
        ];
        let merged = merge_recordings(&recs).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].ev.kind, EventKind::Send);
        assert_eq!(merged[1].ev.kind, EventKind::Recv);
        assert!(merged[0].lamport < merged[1].lamport);
    }

    /// A hand-crafted impossible recording: each rank receives the other's
    /// message *before* sending its own — a happens-before cycle.
    #[test]
    fn merge_rejects_recv_before_matching_send() {
        let mk = |rank: u32, peer: u32| RankRecording {
            rank,
            dropped: 0,
            events: vec![
                ev(0, EventKind::Recv, 0, peer, 0),
                ev(1, EventKind::Send, 0, peer, 0),
            ],
        };
        let err = merge_recordings(&[mk(0, 1), mk(1, 0)]).unwrap_err();
        assert!(matches!(err, MergeError::CausalityViolation { stuck: 4 }));
        assert!(err.to_string().contains("recv is"), "{err}");
    }

    #[test]
    fn merge_rejects_seq_regression_and_duplicate_send() {
        let reg = RankRecording {
            rank: 0,
            dropped: 0,
            events: vec![
                ev(0, EventKind::Send, 0, 1, 5),
                ev(1, EventKind::Send, 0, 1, 4),
            ],
        };
        assert!(matches!(
            merge_recordings(&[reg]).unwrap_err(),
            MergeError::SeqRegression {
                prev: 5,
                next: 4,
                ..
            }
        ));
        let dup = vec![
            RankRecording {
                rank: 0,
                dropped: 0,
                events: vec![ev(0, EventKind::Send, 0, 2, 9)],
            },
            RankRecording {
                rank: 1,
                dropped: 0,
                events: vec![ev(0, EventKind::Send, 0, 2, 9)],
            },
        ];
        // same seq toward the same dst from *different* ranks is fine —
        // the edge identity includes the source
        assert!(merge_recordings(&dup).is_ok());
        let real_dup = RankRecording {
            rank: 3,
            dropped: 0,
            events: vec![
                ev(0, EventKind::Send, 0, 2, 9),
                ev(1, EventKind::Send, 1, 2, 9),
            ],
        };
        assert!(matches!(
            merge_recordings(&[real_dup]).unwrap_err(),
            MergeError::SeqRegression { .. } | MergeError::DuplicateSend { .. }
        ));
    }

    #[test]
    fn unmatched_recv_is_tolerated() {
        // sender's ring evicted the send (dropped > 0): no cross edge, but
        // the merge still succeeds
        let recs = vec![
            RankRecording {
                rank: 0,
                dropped: 10,
                events: vec![],
            },
            RankRecording {
                rank: 1,
                dropped: 0,
                events: vec![ev(5, EventKind::Recv, 0, 0, 123)],
            },
        ];
        assert_eq!(merge_recordings(&recs).unwrap().len(), 1);
    }

    /// Two ranks: rank 1 computes long, rank 0 waits on its message. The
    /// critical path must run through rank 1's compute, attributing rank
    /// 0's exchange window as wait and hopping the 1→0 edge.
    #[test]
    fn critical_path_attributes_wait_to_the_sender_edge() {
        let r0 = RankRecording {
            rank: 0,
            dropped: 0,
            events: vec![
                ev(0, EventKind::StepBegin, NO_LEVEL, NO_PEER, 0),
                ev(100, EventKind::Send, 0, 1, 0),
                ev(110, EventKind::ExchangeBegin, 0, NO_PEER, 0),
                ev(1000, EventKind::Recv, 0, 1, 0),
                ev(1010, EventKind::ExchangeEnd, 0, NO_PEER, 0),
                ev(1020, EventKind::StepEnd, NO_LEVEL, NO_PEER, 0),
            ],
        };
        let r1 = RankRecording {
            rank: 1,
            dropped: 0,
            events: vec![
                ev(0, EventKind::StepBegin, NO_LEVEL, NO_PEER, 0),
                ev(900, EventKind::Send, 0, 0, 0), // long compute before send
                ev(910, EventKind::ExchangeBegin, 0, NO_PEER, 0),
                ev(920, EventKind::Recv, 0, 0, 0),
                ev(930, EventKind::ExchangeEnd, 0, NO_PEER, 0),
                ev(940, EventKind::StepEnd, NO_LEVEL, NO_PEER, 0),
            ],
        };
        let cp = critical_path(&[r0, r1]).unwrap();
        assert!(cp.total_ns > 0);
        // the path hopped from rank 1 (the sender that released rank 0's
        // exchange) to rank 0
        assert!(
            cp.edges
                .iter()
                .any(|e| e.from_rank == 1 && e.to_rank == 0 && e.level == 0),
            "{:?}",
            cp.edges
        );
        // rank 0's exchange window is the dominant wait
        let r0_wait: u64 = cp
            .by_rank_level
            .iter()
            .filter(|((r, _), _)| *r == 0)
            .map(|(_, (_, w))| w)
            .sum();
        assert_eq!(r0_wait, 900);
        // rank 1 contributes compute (its 900 ns stretch before the send)
        let r1_compute: u64 = cp
            .by_rank_level
            .iter()
            .filter(|((r, _), _)| *r == 1)
            .map(|(_, (c, _))| c)
            .sum();
        assert!(r1_compute >= 900, "{:?}", cp.by_rank_level);
    }

    #[test]
    fn flight_trace_validates_and_carries_seq_markers() {
        let rec = RankRecording {
            rank: 0,
            dropped: 0,
            events: vec![
                ev(0, EventKind::StepBegin, NO_LEVEL, NO_PEER, 0),
                ev(10, EventKind::LevelBegin, 1, NO_PEER, 0),
                ev(20, EventKind::Send, 1, 1, 7),
                ev(30, EventKind::ExchangeBegin, 1, NO_PEER, 0),
                ev(90, EventKind::Recv, 1, 1, 7),
                ev(100, EventKind::ExchangeEnd, 1, NO_PEER, 0),
                ev(110, EventKind::LevelEnd, 1, NO_PEER, 0),
                ev(120, EventKind::StallWarning, 1, NO_PEER, 0),
                ev(130, EventKind::StepEnd, NO_LEVEL, NO_PEER, 0),
            ],
        };
        let t = flight_chrome_trace(&[rec]);
        let rendered = t.render();
        let n = crate::validate_trace(&rendered).expect("valid trace");
        // 2 metadata + step + level + wait slices + send + recv + warning
        assert_eq!(n, 2 + 3 + 3);
        assert!(rendered.contains("\"seq\":7"));
        assert!(rendered.contains("stall_warning"));
    }
}
