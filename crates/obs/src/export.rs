//! Hand-rolled JSON and CSV exporters.
//!
//! The build environment has no serde, so this module carries a tiny JSON
//! document model ([`Json`]) with a spec-compliant renderer, plus converters
//! from a [`MetricsRegistry`] to JSON and CSV. Output is deterministic: the
//! registry's `BTreeMap` ordering fixes metric order, the trace is in
//! completion order.

use std::fmt::Write as _;

use crate::registry::{Histogram, Metric, MetricsRegistry};

/// Minimal JSON document model.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation (stable across runs).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity; map them to null.
fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` for finite f64 is round-trippable and valid JSON.
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn level_json(level: Option<u8>) -> Json {
    match level {
        Some(l) => Json::UInt(l as u64),
        None => Json::Null,
    }
}

fn histogram_json(h: &Histogram) -> Json {
    let mut fields = vec![
        ("count".to_string(), Json::UInt(h.count)),
        ("sum".to_string(), Json::Num(h.sum)),
        ("mean".to_string(), Json::Num(h.mean())),
    ];
    if h.count > 0 {
        fields.push(("min".to_string(), Json::Num(h.min)));
        fields.push(("max".to_string(), Json::Num(h.max)));
    }
    Json::Obj(fields)
}

/// Convert a registry into a JSON object with `counters`, `gauges`,
/// `histograms` and `trace` arrays. Each entry carries its full key.
pub fn registry_to_json(reg: &MetricsRegistry) -> Json {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (key, metric) in reg.iter() {
        let mut fields = vec![("name".to_string(), Json::str(key.name))];
        fields.push(("level".to_string(), level_json(key.level)));
        if let Some(label) = &key.label {
            fields.push(("label".to_string(), Json::str(label.clone())));
        }
        match metric {
            Metric::Counter(c) => {
                fields.push(("value".to_string(), Json::UInt(*c)));
                counters.push(Json::Obj(fields));
            }
            Metric::Gauge(g) => {
                fields.push(("value".to_string(), Json::Num(*g)));
                gauges.push(Json::Obj(fields));
            }
            Metric::Histogram(h) => {
                fields.push(("value".to_string(), histogram_json(h)));
                histograms.push(Json::Obj(fields));
            }
        }
    }
    let trace = reg
        .trace()
        .iter()
        .map(|ev| {
            Json::Obj(vec![
                ("seq".to_string(), Json::UInt(ev.seq)),
                ("name".to_string(), Json::str(ev.name)),
                ("level".to_string(), level_json(ev.level)),
                ("start_s".to_string(), Json::Num(ev.start_s)),
                ("dur_s".to_string(), Json::Num(ev.dur_s)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("counters".to_string(), Json::Arr(counters)),
        ("gauges".to_string(), Json::Arr(gauges)),
        ("histograms".to_string(), Json::Arr(histograms)),
        ("trace".to_string(), Json::Arr(trace)),
    ])
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Flatten a registry to CSV, one metric per row:
/// `kind,name,level,label,value,count,sum,min,max`. Counters and gauges fill
/// `value`; histograms fill `count,sum,min,max` and leave `value` empty.
pub fn registry_to_csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("kind,name,level,label,value,count,sum,min,max\n");
    for (key, metric) in reg.iter() {
        let level = key.level.map(|l| l.to_string()).unwrap_or_default();
        let label = key.label.as_deref().unwrap_or("");
        let (kind, value, count, sum, min, max) = match metric {
            Metric::Counter(c) => (
                "counter",
                c.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            Metric::Gauge(g) => (
                "gauge",
                format!("{g:?}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            Metric::Histogram(h) => (
                "histogram",
                String::new(),
                h.count.to_string(),
                format!("{:?}", h.sum),
                if h.count > 0 {
                    format!("{:?}", h.min)
                } else {
                    String::new()
                },
                if h.count > 0 {
                    format!("{:?}", h.max)
                } else {
                    String::new()
                },
            ),
        };
        let _ = writeln!(
            out,
            "{kind},{},{level},{},{value},{count},{sum},{min},{max}",
            csv_field(key.name),
            csv_field(label),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_scalars_and_escaping() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(7).render(), "7");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn render_nested() {
        let doc = Json::Obj(vec![
            (
                "xs".to_string(),
                Json::Arr(vec![Json::UInt(1), Json::UInt(2)]),
            ),
            ("name".to_string(), Json::str("lvl")),
        ]);
        assert_eq!(doc.render(), r#"{"xs":[1,2],"name":"lvl"}"#);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn registry_json_roundtrip_structure() {
        let mut r = MetricsRegistry::with_trace();
        r.inc_level("elem_ops", 0, 12);
        r.set_gauge("imbalance_pct", 6.25);
        {
            let _s = r.start_span("busy", Some(1));
        }
        let json = registry_to_json(&r).render();
        assert!(json.contains(r#""counters":[{"name":"elem_ops","level":0,"value":12}]"#));
        assert!(json.contains(r#""name":"imbalance_pct","level":null,"value":6.25"#));
        assert!(json.contains(r#""name":"busy","level":1"#));
        assert!(json.contains(r#""trace":[{"seq":0,"name":"busy","level":1"#));
    }

    #[test]
    fn registry_csv_has_rows() {
        let mut r = MetricsRegistry::new();
        r.inc_level("msgs", 2, 5);
        r.observe("busy", Some(2), 0.25);
        let csv = registry_to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,level,label,value,count,sum,min,max");
        assert!(lines.iter().any(|l| l.starts_with("counter,msgs,2,,5,")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("histogram,busy,2,,,1,0.25,0.25,0.25")));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }
}
