//! Hand-rolled JSON and CSV exporters.
//!
//! The build environment has no serde, so this module carries a tiny JSON
//! document model ([`Json`]) with a spec-compliant renderer, plus converters
//! from a [`MetricsRegistry`] to JSON and CSV. Output is deterministic: the
//! registry's `BTreeMap` ordering fixes metric order, the trace is in
//! completion order.

use std::fmt::Write as _;

use crate::registry::{Histogram, Metric, MetricsRegistry};

/// Minimal JSON document model.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int`/`UInt`/`Num` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// Exact unsigned view (`UInt`, or a non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a JSON document (the inverse of [`Json::render`]). Integers
    /// without `.`/`e` parse as `Int`/`UInt`, everything else numeric as
    /// `Num`; object field order is preserved.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation (stable across runs).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect_byte(b'\\')?;
                                self.expect_byte(b'u')?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                        }
                        other => return Err(format!("invalid escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-UTF-8 bytes in number at byte {start}"))?;
        if !float {
            if let Ok(u) = s.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = s.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("invalid number {s:?}: {e}"))
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity; map them to null.
fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` for finite f64 is round-trippable and valid JSON.
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn level_json(level: Option<u8>) -> Json {
    match level {
        Some(l) => Json::UInt(l as u64),
        None => Json::Null,
    }
}

fn histogram_json(h: &Histogram) -> Json {
    let mut fields = vec![
        ("count".to_string(), Json::UInt(h.count)),
        ("sum".to_string(), Json::Num(h.sum)),
        ("mean".to_string(), Json::Num(h.mean())),
    ];
    if h.count > 0 {
        fields.push(("min".to_string(), Json::Num(h.min)));
        fields.push(("max".to_string(), Json::Num(h.max)));
        fields.push(("p50".to_string(), Json::Num(h.p50())));
        fields.push(("p95".to_string(), Json::Num(h.p95())));
        fields.push(("p99".to_string(), Json::Num(h.p99())));
    }
    Json::Obj(fields)
}

/// Convert a registry into a JSON object with `counters`, `gauges`,
/// `histograms` and `trace` arrays. Each entry carries its full key.
pub fn registry_to_json(reg: &MetricsRegistry) -> Json {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (key, metric) in reg.iter() {
        let mut fields = vec![("name".to_string(), Json::str(key.name))];
        fields.push(("level".to_string(), level_json(key.level)));
        if let Some(label) = &key.label {
            fields.push(("label".to_string(), Json::str(label.clone())));
        }
        match metric {
            Metric::Counter(c) => {
                fields.push(("value".to_string(), Json::UInt(*c)));
                counters.push(Json::Obj(fields));
            }
            Metric::Gauge(g) => {
                fields.push(("value".to_string(), Json::Num(*g)));
                gauges.push(Json::Obj(fields));
            }
            Metric::Histogram(h) => {
                fields.push(("value".to_string(), histogram_json(h)));
                histograms.push(Json::Obj(fields));
            }
        }
    }
    let trace = reg
        .trace()
        .iter()
        .map(|ev| {
            Json::Obj(vec![
                ("seq".to_string(), Json::UInt(ev.seq)),
                ("name".to_string(), Json::str(ev.name)),
                ("level".to_string(), level_json(ev.level)),
                ("start_s".to_string(), Json::Num(ev.start_s)),
                ("dur_s".to_string(), Json::Num(ev.dur_s)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("counters".to_string(), Json::Arr(counters)),
        ("gauges".to_string(), Json::Arr(gauges)),
        ("histograms".to_string(), Json::Arr(histograms)),
        ("trace".to_string(), Json::Arr(trace)),
    ])
}

/// Quote a CSV field per RFC 4180: any comma, quote, CR or LF forces the
/// field into double quotes with embedded quotes doubled.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Flatten a registry to CSV, one metric per row:
/// `kind,name,level,label,value,count,sum,min,max`. Counters and gauges fill
/// `value`; histograms fill `count,sum,min,max` and leave `value` empty.
pub fn registry_to_csv(reg: &MetricsRegistry) -> String {
    let mut out = String::from("kind,name,level,label,value,count,sum,min,max\n");
    for (key, metric) in reg.iter() {
        let level = key.level.map(|l| l.to_string()).unwrap_or_default();
        let label = key.label.as_deref().unwrap_or("");
        let (kind, value, count, sum, min, max) = match metric {
            Metric::Counter(c) => (
                "counter",
                c.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            Metric::Gauge(g) => (
                "gauge",
                format!("{g:?}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            Metric::Histogram(h) => (
                "histogram",
                String::new(),
                h.count.to_string(),
                format!("{:?}", h.sum),
                if h.count > 0 {
                    format!("{:?}", h.min)
                } else {
                    String::new()
                },
                if h.count > 0 {
                    format!("{:?}", h.max)
                } else {
                    String::new()
                },
            ),
        };
        let _ = writeln!(
            out,
            "{kind},{},{level},{},{value},{count},{sum},{min},{max}",
            csv_field(key.name),
            csv_field(label),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_scalars_and_escaping() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(7).render(), "7");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn render_nested() {
        let doc = Json::Obj(vec![
            (
                "xs".to_string(),
                Json::Arr(vec![Json::UInt(1), Json::UInt(2)]),
            ),
            ("name".to_string(), Json::str("lvl")),
        ]);
        assert_eq!(doc.render(), r#"{"xs":[1,2],"name":"lvl"}"#);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn registry_json_roundtrip_structure() {
        let mut r = MetricsRegistry::with_trace();
        r.inc_level("elem_ops", 0, 12);
        r.set_gauge("imbalance_pct", 6.25);
        {
            let _s = r.start_span("busy", Some(1));
        }
        let json = registry_to_json(&r).render();
        assert!(json.contains(r#""counters":[{"name":"elem_ops","level":0,"value":12}]"#));
        assert!(json.contains(r#""name":"imbalance_pct","level":null,"value":6.25"#));
        assert!(json.contains(r#""name":"busy","level":1"#));
        assert!(json.contains(r#""trace":[{"seq":0,"name":"busy","level":1"#));
    }

    #[test]
    fn registry_csv_has_rows() {
        let mut r = MetricsRegistry::new();
        r.inc_level("msgs", 2, 5);
        r.observe("busy", Some(2), 0.25);
        let csv = registry_to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,level,label,value,count,sum,min,max");
        assert!(lines.iter().any(|l| l.starts_with("counter,msgs,2,,5,")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("histogram,busy,2,,,1,0.25,0.25,0.25")));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
        assert_eq!(csv_field("cr\rlf\n"), "\"cr\rlf\n\"");
    }

    /// Regression: a label carrying commas and quotes must stay one CSV
    /// column (RFC 4180), not shift every following field.
    #[test]
    fn csv_labels_with_commas_and_quotes_stay_one_column() {
        use crate::registry::Key;
        let mut r = MetricsRegistry::new();
        r.inc_key(
            Key {
                name: "msgs",
                level: Some(1),
                label: Some("peer=3,phase=\"fine\"".to_string()),
            },
            7,
        );
        let csv = registry_to_csv(&r);
        let row = csv.lines().nth(1).expect("one metric row");
        assert_eq!(row, "counter,msgs,1,\"peer=3,phase=\"\"fine\"\"\",7,,,,");
        // splitting on unquoted commas only must still give 9 columns
        let mut cols = 0;
        let mut in_quotes = false;
        for c in row.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => cols += 1,
                _ => {}
            }
        }
        assert_eq!(cols + 1, 9, "row: {row}");
    }

    #[test]
    fn histogram_json_reports_quantiles() {
        let mut r = MetricsRegistry::new();
        for _ in 0..20 {
            r.observe("busy", Some(0), 1e-3);
        }
        let json = registry_to_json(&r).render();
        assert!(json.contains("\"p50\":0.001"), "json: {json}");
        assert!(json.contains("\"p95\":0.001"));
        assert!(json.contains("\"p99\":0.001"));
    }

    // ---- parser -----------------------------------------------------------

    #[test]
    fn parse_roundtrips_renderer_output() {
        let doc = Json::Obj(vec![
            ("s".to_string(), Json::str("a\"b\\c\nd\te\u{1}")),
            ("i".to_string(), Json::Int(-42)),
            ("u".to_string(), Json::UInt(7)),
            ("f".to_string(), Json::Num(1.25e-3)),
            ("nul".to_string(), Json::Null),
            ("b".to_string(), Json::Bool(false)),
            (
                "arr".to_string(),
                Json::Arr(vec![Json::UInt(1), Json::Obj(vec![]), Json::Arr(vec![])]),
            ),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_accessors() {
        let v = Json::parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_unicode_escapes() {
        // BMP escape plus a surrogate pair (U+1F600), and raw UTF-8 passthrough
        assert_eq!(
            Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Json::str("é😀")
        );
        assert_eq!(Json::parse("\"é😀\"").unwrap(), Json::str("é😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
