//! Scoped phase timing.
//!
//! A [`Span`] is an RAII guard: created via
//! [`MetricsRegistry::start_span`](crate::MetricsRegistry::start_span) or the
//! [`span!`] macro, it measures wall time until drop, records the duration
//! into the histogram keyed by `(name, level)`, and — when tracing is enabled
//! on the registry — appends a [`TraceEvent`] to the structured trace.

use std::time::Instant;

use crate::registry::MetricsRegistry;

/// One completed span in the structured trace, with timestamps relative to
/// the registry's epoch (its creation instant).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Phase name (e.g. `"force"`, `"exchange_wait"`, `"coarsen"`).
    pub name: &'static str,
    /// LTS level the phase ran at, if level-scoped.
    pub level: Option<u8>,
    /// Seconds since registry epoch when the span started.
    pub start_s: f64,
    /// Span duration in seconds.
    pub dur_s: f64,
    /// Monotonic sequence number (order of completion within the registry).
    pub seq: u64,
}

/// RAII timing guard. Records on drop; use [`Span::cancel`] to discard.
#[must_use = "a Span records its duration when dropped; binding it to `_` drops immediately"]
pub struct Span<'a> {
    reg: &'a mut MetricsRegistry,
    name: &'static str,
    level: Option<u8>,
    start: Instant,
    start_s: f64,
    cancelled: bool,
}

impl<'a> Span<'a> {
    pub(crate) fn new(reg: &'a mut MetricsRegistry, name: &'static str, level: Option<u8>) -> Self {
        let start_s = reg.elapsed_s();
        Span {
            reg,
            name,
            level,
            start: Instant::now(),
            start_s,
            cancelled: false,
        }
    }

    /// Seconds elapsed since this span started.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Discard the span: nothing is recorded on drop.
    pub fn cancel(mut self) {
        self.cancelled = true;
    }

    /// Access the underlying registry while the span is open (e.g. to bump
    /// counters for work done inside the phase).
    pub fn registry(&mut self) -> &mut MetricsRegistry {
        self.reg
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.cancelled {
            return;
        }
        let dur_s = self.start.elapsed().as_secs_f64();
        self.reg.observe(self.name, self.level, dur_s);
        if self.reg.trace_enabled() {
            let ev = TraceEvent {
                name: self.name,
                level: self.level,
                start_s: self.start_s,
                dur_s,
                seq: 0, // assigned by push_trace
            };
            self.reg.push_trace(ev);
        }
    }
}

/// Time a phase against a registry: `span!(reg, level, "phase")` or
/// `span!(reg, "phase")` for level-less phases. Expands to a bound [`Span`]
/// guard, so the phase ends when the binding's scope ends (or on an explicit
/// `drop`).
#[macro_export]
macro_rules! span {
    ($reg:expr, $level:expr, $name:expr) => {
        $crate::MetricsRegistry::start_span($reg, $name, ::core::option::Option::Some($level))
    };
    ($reg:expr, $name:expr) => {
        $crate::MetricsRegistry::start_span($reg, $name, ::core::option::Option::None)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_histogram_and_trace() {
        let mut reg = MetricsRegistry::with_trace();
        {
            let _s = reg.start_span("phase_a", Some(2));
        }
        {
            let _s = span!(&mut reg, 2u8, "phase_a");
        }
        {
            let _s = span!(&mut reg, "no_level");
        }
        let h = reg.histogram("phase_a", Some(2)).expect("histogram exists");
        assert_eq!(h.count, 2);
        assert!(reg.histogram("no_level", None).is_some());
        let trace = reg.trace();
        assert_eq!(trace.len(), 3);
        // seq strictly increasing, start times non-decreasing.
        assert!(trace.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(trace.windows(2).all(|w| w[0].start_s <= w[1].start_s));
    }

    #[test]
    fn cancel_discards() {
        let mut reg = MetricsRegistry::with_trace();
        let s = reg.start_span("phase_b", None);
        s.cancel();
        assert!(reg.histogram("phase_b", None).is_none());
        assert!(reg.trace().is_empty());
    }

    #[test]
    fn trace_disabled_still_observes() {
        let mut reg = MetricsRegistry::new();
        {
            let _s = reg.start_span("phase_c", Some(0));
        }
        assert_eq!(reg.histogram("phase_c", Some(0)).unwrap().count, 1);
        assert!(reg.trace().is_empty());
    }
}
