//! The metrics registry: typed counters, gauges and histogram timers.

use crate::span::{Span, TraceEvent};
use std::collections::BTreeMap;
use std::time::Instant;

/// Metric identity: a static name plus optional LTS-level and free-form
/// labels. Ordering is derived so exports are stable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    pub name: &'static str,
    /// LTS level the sample belongs to (`None` = level-independent).
    pub level: Option<u8>,
    /// Free-form discriminator (peer rank, phase detail, …).
    pub label: Option<String>,
}

impl Key {
    pub fn new(name: &'static str) -> Self {
        Key {
            name,
            level: None,
            label: None,
        }
    }

    pub fn at_level(name: &'static str, level: u8) -> Self {
        Key {
            name,
            level: Some(level),
            label: None,
        }
    }
}

/// Fixed log₂ bucketing from 1 ns up (bucket `i` holds durations in
/// `[2^i, 2^{i+1})` ns); 40 buckets reach ≈ 1100 s.
pub const HIST_BUCKETS: usize = 40;

/// A duration/value histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let ns = (value * 1e9).max(1.0);
        let idx = (ns.log2().floor() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the log₂ buckets.
    ///
    /// The answer is the geometric midpoint of the bucket containing the
    /// `⌈q·count⌉`-th observation, clamped into the exact `[min, max]` range —
    /// so single-bucket histograms report exact values and the worst-case
    /// relative error is the bucket width (a factor of 2).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let lo = 2f64.powi(i as i32) * 1e-9;
                let hi = 2f64.powi(i as i32 + 1) * 1e-9;
                return (lo * hi).sqrt().clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// One registered metric. The histogram variant carries its fixed bucket
/// array inline — a registry holds tens of metrics, and unboxed storage keeps
/// the record hot path free of pointer chasing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// Registry of one owner (a rank, a partitioner run, a bench binary).
///
/// All mutation is `&mut self`; cross-thread aggregation is an explicit
/// [`MetricsRegistry::merge_from`] after the threads join, keeping the hot
/// path free of synchronization.
#[derive(Debug)]
pub struct MetricsRegistry {
    metrics: BTreeMap<Key, Metric>,
    trace: Vec<TraceEvent>,
    trace_enabled: bool,
    epoch: Instant,
    seq: u64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for MetricsRegistry {
    fn clone(&self) -> Self {
        MetricsRegistry {
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            trace_enabled: self.trace_enabled,
            epoch: self.epoch,
            seq: self.seq,
        }
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            metrics: BTreeMap::new(),
            trace: Vec::new(),
            trace_enabled: false,
            epoch: Instant::now(),
            seq: 0,
        }
    }

    /// A registry that also records every span into the structured trace.
    pub fn with_trace() -> Self {
        let mut r = Self::new();
        r.trace_enabled = true;
        r
    }

    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Seconds since this registry was created (trace time origin).
    pub fn elapsed_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    // ---- counters ---------------------------------------------------------

    pub fn inc_key(&mut self, key: Key, by: u64) {
        match self.metrics.entry(key).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += by,
            // lint: allow(no-panic) — name/type collision is a programming
            // error caught the first time the metric is touched
            other => panic!("metric type mismatch: counter vs {other:?}"),
        }
    }

    pub fn inc(&mut self, name: &'static str, by: u64) {
        self.inc_key(Key::new(name), by);
    }

    pub fn inc_level(&mut self, name: &'static str, level: u8, by: u64) {
        self.inc_key(Key::at_level(name, level), by);
    }

    /// Counter value for an exact `(name, level)` (0 when never incremented).
    /// Accessors scan the (small) map so they accept any `&str`; the hot
    /// recording path uses the keyed entry API instead.
    pub fn counter(&self, name: &str, level: Option<u8>) -> u64 {
        self.metrics
            .iter()
            .find(|(k, _)| k.name == name && k.level == level && k.label.is_none())
            .and_then(|(_, m)| match m {
                Metric::Counter(c) => Some(*c),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Sum of a counter over every level/label it was recorded under.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// `(level, value)` pairs of a counter, ascending by level.
    pub fn counter_by_level(&self, name: &str) -> Vec<(u8, u64)> {
        self.metrics
            .iter()
            .filter_map(|(k, m)| match (k.name == name, k.level, m) {
                (true, Some(l), Metric::Counter(c)) => Some((l, *c)),
                _ => None,
            })
            .collect()
    }

    // ---- gauges -----------------------------------------------------------

    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.metrics.insert(Key::new(name), Metric::Gauge(value));
    }

    pub fn set_gauge_level(&mut self, name: &'static str, level: u8, value: f64) {
        self.metrics
            .insert(Key::at_level(name, level), Metric::Gauge(value));
    }

    pub fn gauge(&self, name: &str, level: Option<u8>) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k.name == name && k.level == level)
            .and_then(|(_, m)| match m {
                Metric::Gauge(g) => Some(*g),
                _ => None,
            })
    }

    /// Set a label-dimensioned gauge (e.g. per-transport-backend wait time,
    /// labelled by backend name).
    pub fn set_gauge_labeled(&mut self, name: &'static str, label: &str, value: f64) {
        self.metrics.insert(
            Key {
                name,
                level: None,
                label: Some(label.to_string()),
            },
            Metric::Gauge(value),
        );
    }

    pub fn gauge_labeled(&self, name: &str, label: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k.name == name && k.label.as_deref() == Some(label))
            .and_then(|(_, m)| match m {
                Metric::Gauge(g) => Some(*g),
                _ => None,
            })
    }

    // ---- histograms / timers ----------------------------------------------

    pub fn observe_key(&mut self, key: Key, value: f64) {
        match self
            .metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.observe(value),
            // lint: allow(no-panic) — name/type collision is a programming
            // error caught the first time the metric is touched
            other => panic!("metric type mismatch: histogram vs {other:?}"),
        }
    }

    pub fn observe(&mut self, name: &'static str, level: Option<u8>, value: f64) {
        self.observe_key(
            Key {
                name,
                level,
                label: None,
            },
            value,
        );
    }

    /// Install a fully materialized histogram under `key`, replacing any
    /// previous metric there. This is the wire-decode path: a histogram that
    /// crossed a process boundary is reinstated *exactly* (count, sum,
    /// min/max, buckets), which `observe`-replay could not guarantee.
    pub fn set_histogram(&mut self, key: Key, hist: Histogram) {
        self.metrics.insert(key, Metric::Histogram(hist));
    }

    pub fn histogram(&self, name: &str, level: Option<u8>) -> Option<&Histogram> {
        self.metrics
            .iter()
            .find(|(k, _)| k.name == name && k.level == level)
            .and_then(|(_, m)| match m {
                Metric::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Sum of a histogram's `sum` over every level (e.g. total busy seconds).
    pub fn histogram_sum_total(&self, name: &str) -> f64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, m)| match m {
                Metric::Histogram(h) => h.sum,
                _ => 0.0,
            })
            .sum()
    }

    /// Start a scoped span; the guard records a histogram observation (and a
    /// trace event when tracing is on) when dropped. Prefer the [`crate::span!`]
    /// macro at call sites.
    pub fn start_span(&mut self, name: &'static str, level: Option<u8>) -> Span<'_> {
        Span::new(self, name, level)
    }

    pub(crate) fn push_trace(&mut self, mut ev: TraceEvent) {
        ev.seq = self.seq;
        self.seq += 1;
        self.trace.push(ev);
    }

    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    // ---- aggregation ------------------------------------------------------

    /// Fold `other` into `self`: counters add, histograms merge, gauges take
    /// `other`'s value, traces concatenate (re-sequenced).
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (k, m) in other.metrics.iter() {
            match m {
                Metric::Counter(c) => self.inc_key(k.clone(), *c),
                Metric::Gauge(g) => {
                    self.metrics.insert(k.clone(), Metric::Gauge(*g));
                }
                Metric::Histogram(h) => {
                    match self
                        .metrics
                        .entry(k.clone())
                        .or_insert_with(|| Metric::Histogram(Histogram::default()))
                    {
                        Metric::Histogram(mine) => mine.merge(h),
                        // lint: allow(no-panic) — name/type collision is a programming
                        // error caught the first time the metric is touched
                        other => panic!("metric type mismatch: histogram vs {other:?}"),
                    }
                }
            }
        }
        for ev in &other.trace {
            self.push_trace(ev.clone());
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Metric)> {
        self.metrics.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.trace.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_total() {
        let mut r = MetricsRegistry::new();
        r.inc("elem_ops", 3);
        r.inc_level("elem_ops", 0, 10);
        r.inc_level("elem_ops", 1, 20);
        r.inc_level("elem_ops", 1, 5);
        assert_eq!(r.counter("elem_ops", None), 3);
        assert_eq!(r.counter("elem_ops", Some(1)), 25);
        assert_eq!(r.counter_total("elem_ops"), 38);
        assert_eq!(r.counter_by_level("elem_ops"), vec![(0, 10), (1, 25)]);
        assert_eq!(r.counter("missing", None), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("imbalance_pct", 33.0);
        r.set_gauge("imbalance_pct", 6.0);
        assert_eq!(r.gauge("imbalance_pct", None), Some(6.0));
        assert_eq!(r.gauge("imbalance_pct", Some(1)), None);
    }

    #[test]
    fn histogram_stats_exact() {
        let mut h = Histogram::default();
        for v in [1e-6, 2e-6, 3e-6] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert!((h.sum - 6e-6).abs() < 1e-18);
        assert_eq!(h.min, 1e-6);
        assert_eq!(h.max, 3e-6);
        assert!((h.mean() - 2e-6).abs() < 1e-18);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let mut h = Histogram::default();
        // 100 observations spread over two decades: 1 µs … 100 µs
        for i in 1..=100u32 {
            h.observe(i as f64 * 1e-6);
        }
        let p50 = h.p50();
        let p95 = h.p95();
        let p99 = h.p99();
        // log-bucket estimates are within a factor of 2 of the exact order
        // statistics (50 µs, 95 µs, 99 µs) and keep their ordering
        assert!((25e-6..=100e-6).contains(&p50), "p50 = {p50}");
        assert!((47e-6..=100e-6).contains(&p95), "p95 = {p95}");
        assert!(p50 <= p95 && p95 <= p99, "p50 {p50} p95 {p95} p99 {p99}");
        assert!(p99 <= h.max && h.quantile(0.0) >= h.min);
    }

    #[test]
    fn quantile_single_observation_is_exact() {
        let mut h = Histogram::default();
        h.observe(3.5e-3);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 3.5e-3);
        }
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc_level("msgs", 0, 4);
        b.inc_level("msgs", 0, 6);
        b.inc_level("msgs", 2, 1);
        a.observe("busy", Some(0), 0.5);
        b.observe("busy", Some(0), 1.5);
        a.merge_from(&b);
        assert_eq!(a.counter("msgs", Some(0)), 10);
        assert_eq!(a.counter("msgs", Some(2)), 1);
        let h = a.histogram("busy", Some(0)).unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 2.0).abs() < 1e-12);
    }

    #[test]
    fn span_records_histogram_and_trace() {
        let mut r = MetricsRegistry::with_trace();
        {
            let _s = r.start_span("phase.coarsen", Some(1));
            std::hint::black_box(0u64);
        }
        let h = r
            .histogram("phase.coarsen", Some(1))
            .expect("span histogram");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
        assert_eq!(r.trace().len(), 1);
        assert_eq!(r.trace()[0].name, "phase.coarsen");
        assert_eq!(r.trace()[0].level, Some(1));
    }

    #[test]
    fn type_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.inc("x", 1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.observe("x", None, 1.0);
        }));
        assert!(caught.is_err());
    }
}
