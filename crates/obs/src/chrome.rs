//! Chrome Trace Format exporter.
//!
//! Renders metrics/trace data as `trace_event` JSON loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): a
//! `{"traceEvents": [...]}` document of complete (`"X"`) slices, counter
//! (`"C"`) tracks and metadata (`"M"`) records. The convention across this
//! workspace is **pid = run, tid = rank**, with one category per LTS level
//! (`"level0"`, `"level1"`, …) so Perfetto can filter a single level's
//! slices. Timestamps are microseconds.
//!
//! The builder is plain data over [`Json`]; callers that own richer
//! structures (the runtime's per-rank timelines) convert themselves — see
//! `lts_runtime::stats::chrome_trace`.

use crate::export::Json;
use crate::registry::MetricsRegistry;

/// Category string for an LTS level (`None` → the run-wide category).
pub fn level_category(level: Option<u8>) -> String {
    match level {
        Some(l) => format!("level{l}"),
        None => "run".to_string(),
    }
}

/// Incremental `trace_event` document builder.
#[derive(Debug, Default, Clone)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Label a process track (`"M"` metadata event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(Json::Obj(vec![
            ("name".to_string(), Json::str("process_name")),
            ("ph".to_string(), Json::str("M")),
            ("pid".to_string(), Json::UInt(pid)),
            ("tid".to_string(), Json::UInt(0)),
            (
                "args".to_string(),
                Json::Obj(vec![("name".to_string(), Json::str(name))]),
            ),
        ]));
    }

    /// Label a thread track (`"M"` metadata event).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(Json::Obj(vec![
            ("name".to_string(), Json::str("thread_name")),
            ("ph".to_string(), Json::str("M")),
            ("pid".to_string(), Json::UInt(pid)),
            ("tid".to_string(), Json::UInt(tid)),
            (
                "args".to_string(),
                Json::Obj(vec![("name".to_string(), Json::str(name))]),
            ),
        ]));
    }

    /// A complete (`"X"`) slice: `ts`/`dur` in microseconds.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Json)>,
    ) {
        let mut fields = vec![
            ("name".to_string(), Json::str(name)),
            ("cat".to_string(), Json::str(cat)),
            ("ph".to_string(), Json::str("X")),
            ("ts".to_string(), Json::Num(ts_us)),
            ("dur".to_string(), Json::Num(dur_us.max(0.0))),
            ("pid".to_string(), Json::UInt(pid)),
            ("tid".to_string(), Json::UInt(tid)),
        ];
        if !args.is_empty() {
            fields.push(("args".to_string(), Json::Obj(args)));
        }
        self.events.push(Json::Obj(fields));
    }

    /// A counter (`"C"`) sample: each `(series, value)` becomes one line of
    /// the counter track named `name`.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, ts_us: f64, series: &[(&str, f64)]) {
        self.events.push(Json::Obj(vec![
            ("name".to_string(), Json::str(name)),
            ("ph".to_string(), Json::str("C")),
            ("ts".to_string(), Json::Num(ts_us)),
            ("pid".to_string(), Json::UInt(pid)),
            ("tid".to_string(), Json::UInt(tid)),
            (
                "args".to_string(),
                Json::Obj(
                    series
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ]));
    }

    /// Emit a registry's structured span trace as complete events on
    /// `(pid, tid)` — one slice per [`crate::TraceEvent`], categorized by LTS
    /// level. Spans complete in `seq` order but *start* out of order (nested
    /// spans), which Perfetto handles; `ts` is the recorded start time.
    pub fn add_registry_spans(&mut self, reg: &MetricsRegistry, pid: u64, tid: u64) {
        for ev in reg.trace() {
            self.complete(
                pid,
                tid,
                ev.name,
                &level_category(ev.level),
                ev.start_s * 1e6,
                ev.dur_s * 1e6,
                vec![("seq".to_string(), Json::UInt(ev.seq))],
            );
        }
    }

    /// Emit every histogram in a registry as a p50/p95/p99 counter track on
    /// `(pid, tid)` — plain counters and gauges already get tracks through
    /// the callers' counter samples; this gives distribution metrics (busy,
    /// wait) the same visibility. One `"C"` event per histogram at `ts_us`,
    /// named `"<name> q"` (level-suffixed for level-scoped keys) with three
    /// series lines.
    pub fn add_registry_histograms(
        &mut self,
        reg: &MetricsRegistry,
        pid: u64,
        tid: u64,
        ts_us: f64,
    ) {
        for (key, metric) in reg.iter() {
            let crate::registry::Metric::Histogram(h) = metric else {
                continue;
            };
            if h.count == 0 {
                continue;
            }
            let name = match key.level {
                Some(l) => format!("{} q (level {l})", key.name),
                None => format!("{} q", key.name),
            };
            self.counter(
                pid,
                tid,
                &name,
                ts_us,
                &[("p50", h.p50()), ("p95", h.p95()), ("p99", h.p99())],
            );
        }
    }

    /// The `trace_event` document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("displayTimeUnit".to_string(), Json::str("ms")),
            ("traceEvents".to_string(), Json::Arr(self.events.clone())),
        ])
    }

    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

/// Structural check of a rendered trace: parses the JSON, verifies every
/// event carries `ph`/`pid`/`tid` (+ `ts`/`dur` for `"X"`), and that `ts` is
/// monotonically non-decreasing per `(pid, tid)` in emission order for slice
/// events. Returns the number of events.
pub fn validate_trace(rendered: &str) -> Result<usize, String> {
    let doc = Json::parse(rendered)?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(|p| p.as_u64())
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        if ev.get("name").and_then(|n| n.as_str()).is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if ph == "X" {
            let ts = ev
                .get("ts")
                .and_then(|t| t.as_f64())
                .ok_or_else(|| format!("event {i}: X without ts"))?;
            let dur = ev
                .get("dur")
                .and_then(|d| d.as_f64())
                .ok_or_else(|| format!("event {i}: X without dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative dur {dur}"));
            }
            let key = (pid, tid);
            if let Some(&prev) = last_ts.get(&key) {
                if ts + 1e-9 < prev {
                    return Err(format!(
                        "event {i}: ts {ts} decreases below {prev} on pid {pid} tid {tid}"
                    ));
                }
            }
            last_ts.insert(key, ts);
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_parser() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "run \"A\"");
        t.thread_name(1, 0, "rank 0");
        t.complete(1, 0, "busy", "level0", 0.0, 10.0, vec![]);
        t.complete(
            1,
            0,
            "wait",
            "level1",
            10.0,
            2.5,
            vec![("step".to_string(), Json::UInt(3))],
        );
        t.counter(1, 0, "elem_ops rank0", 12.5, &[("elem_ops", 128.0)]);
        let rendered = t.render();
        let doc = Json::parse(&rendered).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            events[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("run \"A\"")
        );
        assert_eq!(events[3].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[3].get("dur").unwrap().as_f64(), Some(2.5));
        assert_eq!(
            events[3].get("args").unwrap().get("step").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(validate_trace(&rendered), Ok(5));
    }

    #[test]
    fn escapes_hostile_names() {
        let mut t = ChromeTrace::new();
        t.complete(1, 7, "a\"b\\c\nd\te", "cat,\"x\"", 1.0, 1.0, vec![]);
        let rendered = t.render();
        let doc = Json::parse(&rendered).expect("escaped output parses");
        let ev = &doc.get("traceEvents").unwrap().as_arr().unwrap()[0];
        assert_eq!(ev.get("name").unwrap().as_str(), Some("a\"b\\c\nd\te"));
        assert_eq!(ev.get("cat").unwrap().as_str(), Some("cat,\"x\""));
    }

    #[test]
    fn validate_rejects_nonmonotone_ts_per_tid() {
        let mut t = ChromeTrace::new();
        t.complete(1, 0, "a", "run", 10.0, 1.0, vec![]);
        t.complete(1, 1, "b", "run", 0.0, 1.0, vec![]); // other tid: fine
        assert_eq!(validate_trace(&t.render()), Ok(2));
        t.complete(1, 0, "c", "run", 5.0, 1.0, vec![]); // rewinds tid 0
        let err = validate_trace(&t.render()).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }

    #[test]
    fn validate_rejects_missing_fields() {
        let no_ph = r#"{"traceEvents":[{"name":"x","pid":1,"tid":0}]}"#;
        assert!(validate_trace(no_ph).unwrap_err().contains("missing ph"));
        let no_dur = r#"{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":0}]}"#;
        assert!(validate_trace(no_dur).unwrap_err().contains("without dur"));
        assert!(validate_trace("[]").is_err());
    }

    /// Histogram quantiles become counter tracks, and the whole document —
    /// slices + quantile counters — still round-trips `validate_trace`.
    #[test]
    fn histogram_quantiles_become_counter_tracks_and_round_trip() {
        let mut reg = MetricsRegistry::new();
        for v in [0.001, 0.002, 0.004, 0.100] {
            reg.observe("busy", Some(1), v);
        }
        reg.observe("wait", None, 0.5);
        reg.inc("not_a_histogram", 3); // counters must not produce q tracks
        let mut t = ChromeTrace::new();
        t.complete(2, 5, "busy", "level1", 0.0, 10.0, vec![]);
        t.add_registry_histograms(&reg, 2, 5, 10.0);
        let rendered = t.render();
        let n = validate_trace(&rendered).expect("valid trace_event JSON");
        assert_eq!(n, 3, "1 slice + 2 histogram counter events");
        let doc = Json::parse(&rendered).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let busy_q = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("busy q (level 1)"))
            .expect("level-scoped quantile track");
        assert_eq!(busy_q.get("ph").unwrap().as_str(), Some("C"));
        let args = busy_q.get("args").unwrap();
        for q in ["p50", "p95", "p99"] {
            let v = args.get(q).and_then(|v| v.as_f64()).expect(q);
            assert!(v > 0.0, "{q} = {v}");
        }
        // p99 ≥ p50, and both clamped into the observed range
        let p50 = args.get("p50").unwrap().as_f64().unwrap();
        let p99 = args.get("p99").unwrap().as_f64().unwrap();
        assert!(p99 >= p50);
        assert!((0.001..=0.100).contains(&p50));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("wait q")));
        assert!(!rendered.contains("not_a_histogram q"));
    }

    #[test]
    fn registry_spans_become_slices() {
        let mut reg = MetricsRegistry::with_trace();
        {
            let _s = reg.start_span("decompose", None);
        }
        {
            let _s = reg.start_span("force", Some(2));
        }
        let mut t = ChromeTrace::new();
        t.add_registry_spans(&reg, 3, 9);
        let doc = t.to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("cat").unwrap().as_str(), Some("run"));
        assert_eq!(events[1].get("cat").unwrap().as_str(), Some("level2"));
        assert_eq!(events[1].get("pid").unwrap().as_u64(), Some(3));
        assert_eq!(events[1].get("tid").unwrap().as_u64(), Some(9));
        assert_eq!(validate_trace(&t.render()), Ok(2));
    }
}
