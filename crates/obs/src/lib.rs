//! # lts-obs — structured observability for the LTS stack
//!
//! The paper's two core diagnostics are the per-rank busy/stall timeline of
//! Fig. 1 and the per-level imbalance of Eq. 21; both require *accounting*,
//! not printf. This crate provides the accounting layer every other crate
//! records into:
//!
//! * [`MetricsRegistry`] — typed counters, gauges and histogram timers keyed
//!   by `(name, LTS level, label)`. Counters of element operations, exchange
//!   messages and DOF volumes are **exact integers independent of timing**,
//!   which makes them usable as test oracles (see `tests/obs_integration.rs`
//!   and `tests/proptest_obs.rs` at the workspace root).
//! * [`span!`] — scoped timing of a phase, recorded as a histogram
//!   observation and (when tracing is enabled) a [`TraceEvent`] in a
//!   structured trace.
//! * [`export`] — hand-rolled JSON and CSV serialization *and parsing* (the
//!   environment has no serde), so bench binaries emit — and `bench-compare`
//!   re-reads — machine-readable profiles.
//! * [`chrome`] — a Chrome Trace Format (`trace_event`) builder: the
//!   runtime's per-rank timelines render into a file loadable in
//!   `chrome://tracing`/Perfetto (pid = run, tid = rank, one category per
//!   LTS level).
//! * [`flight`] — the distributed flight recorder: fixed-capacity
//!   allocation-free per-rank event rings with monotone send/recv sequence
//!   numbers, a causal cross-rank merge (happens-before via matched seqs)
//!   and a critical-path analyzer — the substrate of post-mortem crash
//!   reports.
//!
//! The registry is deliberately *single-owner* (`&mut self` everywhere): the
//! runtime gives each rank its own registry on its own thread and merges
//! after the join, so the hot path pays one branch and one integer add per
//! record — no atomics, no locks.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod export;
pub mod flight;
pub mod registry;
pub mod span;

pub use chrome::{level_category, validate_trace, ChromeTrace};
pub use export::{registry_to_csv, registry_to_json, Json};
pub use flight::{
    critical_path, flight_chrome_trace, merge_recordings, CriticalPath, EventKind, FlightEvent,
    FlightRecorder, MergeError, MergedEvent, PathEdge, PathSegment, RankRecording, SegKind,
    NO_LEVEL, NO_PEER,
};
pub use registry::{Histogram, Key, Metric, MetricsRegistry, HIST_BUCKETS};
pub use span::{Span, TraceEvent};
