//! Property-based tests of the SEM discretization.

use lts_core::{DofTopology, LtsSetup, Operator};
use lts_mesh::{HexMesh, Levels};
use lts_sem::{AcousticOperator, ElasticOperator, GllBasis};
use proptest::prelude::*;

fn mesh_strategy() -> impl Strategy<Value = HexMesh> {
    (
        2usize..5,
        2usize..5,
        2usize..4,
        1.0f64..3.0,
        0.5f64..2.0,
        0u64..1000,
    )
        .prop_map(|(nx, ny, nz, vel, rho, seed)| {
            let mut m = HexMesh::uniform(nx, ny, nz, vel, rho);
            // paint a random fast box
            let i0 = (seed as usize) % nx;
            let j0 = (seed as usize / 7) % ny;
            m.paint_box((i0, nx), (j0, ny), (0, nz), vel * 2.0, rho);
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Total lumped mass equals ∫ρ dV exactly (partition of unity of the
    /// GLL quadrature), for any mesh and any order.
    #[test]
    fn mass_equals_density_integral(m in mesh_strategy(), order in 2usize..5) {
        let op = AcousticOperator::new(&m, order);
        let total: f64 = op.mass().iter().sum();
        let exact: f64 = (0..m.n_elems() as u32)
            .map(|e| {
                let (hx, hy, hz) = m.elem_dims(e);
                m.density[e as usize] * hx * hy * hz
            })
            .sum();
        prop_assert!((total - exact).abs() < 1e-9 * exact, "{total} vs {exact}");
        prop_assert!(op.mass().iter().all(|&x| x > 0.0));
    }

    /// Σ_k A P_k u == A u for the level decomposition of any mesh.
    #[test]
    fn masked_products_sum_to_full(m in mesh_strategy(), order in 2usize..4) {
        let lv = Levels::assign(&m, 0.5, 4);
        let op = AcousticOperator::new(&m, order);
        let setup = LtsSetup::new(&op, &lv.elem_level);
        let n = Operator::ndof(&op);
        let u: Vec<f64> = (0..n).map(|i| ((i * 37 % 23) as f64) / 23.0 - 0.5).collect();
        let mut full = vec![0.0; n];
        op.apply(&u, &mut full);
        let mut sum = vec![0.0; n];
        for k in 0..setup.n_levels {
            op.apply_masked(&u, &mut sum, &setup.elems[k], &setup.dof_level, k as u8);
        }
        for i in 0..n {
            prop_assert!((full[i] - sum[i]).abs() < 1e-9 * (1.0 + full[i].abs()), "dof {}", i);
        }
    }

    /// K is symmetric in the M-inner product and PSD, acoustic and elastic.
    #[test]
    fn operators_symmetric_psd(m in mesh_strategy()) {
        let order = 2;
        let ac = AcousticOperator::new(&m, order);
        let el = ElasticOperator::poisson(&m, order);
        fn check<O: Operator>(op: &O) -> Result<(), proptest::test_runner::TestCaseError> {
            let n = op.ndof();
            let u: Vec<f64> = (0..n).map(|i| ((i * 83 % 17) as f64) / 17.0 - 0.5).collect();
            let w: Vec<f64> = (0..n).map(|i| ((i * 29 % 13) as f64) / 13.0 - 0.5).collect();
            let mut au = vec![0.0; n];
            let mut aw = vec![0.0; n];
            op.apply(&u, &mut au);
            op.apply(&w, &mut aw);
            let lhs: f64 = (0..n).map(|i| op.mass()[i] * au[i] * w[i]).sum();
            let rhs: f64 = (0..n).map(|i| op.mass()[i] * aw[i] * u[i]).sum();
            prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
            let q: f64 = (0..n).map(|i| op.mass()[i] * au[i] * u[i]).sum();
            prop_assert!(q > -1e-9);
            Ok(())
        }
        check(&ac)?;
        check(&el)?;
    }

    /// Element DOF lists cover all DOFs, with the right cardinality.
    #[test]
    fn elem_dofs_cover_everything(m in mesh_strategy(), order in 2usize..5) {
        let op = AcousticOperator::new(&m, order);
        let n = DofTopology::n_dofs(&op);
        let mut seen = vec![false; n];
        let mut buf = Vec::new();
        for e in 0..m.n_elems() as u32 {
            op.elem_dofs(e, &mut buf);
            prop_assert_eq!(buf.len(), (order + 1).pow(3));
            for &d in &buf {
                seen[d as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// GLL quadrature integrates random polynomials of degree ≤ 2n−1 exactly.
    #[test]
    fn gll_quadrature_exact(order in 2usize..9, coeffs in prop::collection::vec(-2.0f64..2.0, 1..8)) {
        let b = GllBasis::new(order);
        let deg = coeffs.len().min(2 * order - 1);
        let f: Vec<f64> = b
            .points
            .iter()
            .map(|&x| coeffs.iter().take(deg + 1).enumerate().map(|(k, c)| c * x.powi(k as i32)).sum())
            .collect();
        let exact: f64 = coeffs
            .iter()
            .take(deg + 1)
            .enumerate()
            .map(|(k, c)| if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 })
            .sum();
        prop_assert!((b.integrate(&f) - exact).abs() < 1e-10, "order {}", order);
    }
}
