//! Property-based bitwise-determinism tests of the threaded masked product.
//!
//! The colored scatter (`apply_masked_threads`) must produce **bit-for-bit**
//! the same fields as the serial path at any thread count — that is the
//! contract that lets `threads_per_rank > 1` leave every deterministic
//! counter and every recorded field untouched. We check it the strong way:
//! `f64::to_bits` equality, not a tolerance.

use lts_core::{LtsSetup, Operator, Workspace};
use lts_mesh::{HexMesh, Levels};
use lts_sem::{AcousticOperator, ElasticOperator, UnstructuredAcoustic, UnstructuredElastic};
use proptest::prelude::*;

fn mesh_strategy() -> impl Strategy<Value = HexMesh> {
    (
        2usize..5,
        2usize..5,
        2usize..4,
        1.0f64..3.0,
        0.5f64..2.0,
        0u64..1000,
    )
        .prop_map(|(nx, ny, nz, vel, rho, seed)| {
            let mut m = HexMesh::uniform(nx, ny, nz, vel, rho);
            // paint a random fast box so Levels::assign grades the mesh
            let i0 = (seed as usize) % nx;
            let j0 = (seed as usize / 7) % ny;
            m.paint_box((i0, nx), (j0, ny), (0, nz), vel * 2.0, rho);
            m
        })
}

/// Serial reference vs 1/2/4 worker threads, every LTS level, one shared
/// workspace per path (so the compiled-gather cache is exercised across
/// levels exactly as a stepper would use it).
fn check_bitwise<O: Operator>(
    op: &O,
    setup: &LtsSetup,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let n = op.ndof();
    let u: Vec<f64> = (0..n)
        .map(|i| ((i * 37 % 23) as f64) / 23.0 - 0.5)
        .collect();
    let mut ws_serial = Workspace::new();
    for threads in [1usize, 2, 4] {
        let mut ws_par = Workspace::new();
        for k in 0..setup.n_levels {
            let mut reference = vec![0.0; n];
            op.apply_masked_ws(
                &u,
                &mut reference,
                &setup.elems[k],
                &setup.dof_level,
                k as u8,
                &mut ws_serial,
            );
            let mut parallel = vec![0.0; n];
            op.apply_masked_threads(
                &u,
                &mut parallel,
                &setup.elems[k],
                &setup.dof_level,
                k as u8,
                &mut ws_par,
                threads,
            );
            for i in 0..n {
                prop_assert_eq!(
                    parallel[i].to_bits(),
                    reference[i].to_bits(),
                    "dof {} level {} threads {}",
                    i,
                    k,
                    threads
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Structured acoustic: threaded masked product is bitwise-identical to
    /// serial across orders 2–4, all LTS levels, 1/2/4 threads.
    #[test]
    fn acoustic_parallel_masked_is_bitwise_serial(m in mesh_strategy(), order in 2usize..5) {
        let lv = Levels::assign(&m, 0.5, 3);
        let op = AcousticOperator::new(&m, order);
        let setup = LtsSetup::new(&op, &lv.elem_level);
        check_bitwise(&op, &setup)?;
    }

    /// Structured elastic (3 components per node).
    #[test]
    fn elastic_parallel_masked_is_bitwise_serial(m in mesh_strategy(), order in 2usize..4) {
        let lv = Levels::assign(&m, 0.5, 3);
        let op = ElasticOperator::poisson(&m, order);
        let setup = LtsSetup::new(&op, &lv.elem_level);
        check_bitwise(&op, &setup)?;
    }

    /// Unstructured (rank-local) operators over the full element set, with
    /// their own compact numbering and per-element geometry.
    #[test]
    fn unstructured_parallel_masked_is_bitwise_serial(m in mesh_strategy(), order in 2usize..4) {
        let lv = Levels::assign(&m, 0.5, 3);
        let all: Vec<u32> = (0..m.n_elems() as u32).collect();
        let (ac, _) = UnstructuredAcoustic::from_subset(&m, order, &all, None);
        let setup = LtsSetup::new(&ac, &lv.elem_level);
        check_bitwise(&ac, &setup)?;
        let (el, _) = UnstructuredElastic::from_subset(&m, order, &all, None);
        let setup = LtsSetup::new(&el, &lv.elem_level);
        check_bitwise(&el, &setup)?;
    }
}
