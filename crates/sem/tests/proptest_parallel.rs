//! Property-based bitwise-determinism tests of the threaded masked product.
//!
//! The colored scatter (`apply_masked_threads`) must produce **bit-for-bit**
//! the same fields as the serial path at any thread count — that is the
//! contract that lets `threads_per_rank > 1` leave every deterministic
//! counter and every recorded field untouched. We check it the strong way:
//! `f64::to_bits` equality, not a tolerance.

use lts_core::{LtsSetup, Operator, Workspace};
use lts_mesh::{HexMesh, Levels};
use lts_sem::simd::{supported_variants, ForceVariant, KernelVariant};
use lts_sem::{AcousticOperator, ElasticOperator, UnstructuredAcoustic, UnstructuredElastic};
use proptest::prelude::*;

fn mesh_strategy() -> impl Strategy<Value = HexMesh> {
    (
        2usize..5,
        2usize..5,
        2usize..4,
        1.0f64..3.0,
        0.5f64..2.0,
        0u64..1000,
    )
        .prop_map(|(nx, ny, nz, vel, rho, seed)| {
            let mut m = HexMesh::uniform(nx, ny, nz, vel, rho);
            // paint a random fast box so Levels::assign grades the mesh
            let i0 = (seed as usize) % nx;
            let j0 = (seed as usize / 7) % ny;
            m.paint_box((i0, nx), (j0, ny), (0, nz), vel * 2.0, rho);
            m
        })
}

/// Serial reference vs 1/2/4 worker threads, every LTS level, one shared
/// workspace per path (so the compiled-gather cache is exercised across
/// levels exactly as a stepper would use it).
fn check_bitwise<O: Operator>(
    op: &O,
    setup: &LtsSetup,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let n = op.ndof();
    let u: Vec<f64> = (0..n)
        .map(|i| ((i * 37 % 23) as f64) / 23.0 - 0.5)
        .collect();
    let mut ws_serial = Workspace::new();
    for threads in [1usize, 2, 4] {
        let mut ws_par = Workspace::new();
        for k in 0..setup.n_levels {
            let mut reference = vec![0.0; n];
            op.apply_masked_ws(
                &u,
                &mut reference,
                &setup.elems[k],
                &setup.dof_level,
                k as u8,
                &mut ws_serial,
            );
            let mut parallel = vec![0.0; n];
            op.apply_masked_threads(
                &u,
                &mut parallel,
                &setup.elems[k],
                &setup.dof_level,
                k as u8,
                &mut ws_par,
                threads,
            );
            for i in 0..n {
                prop_assert_eq!(
                    parallel[i].to_bits(),
                    reference[i].to_bits(),
                    "dof {} level {} threads {}",
                    i,
                    k,
                    threads
                );
            }
        }
    }
    Ok(())
}

/// Serial *scalar* reference vs every supported SIMD variant, serial and
/// threaded (1/2/4 workers), every LTS level. The SIMD path replays the
/// scalar kernel's operation sequence lane-by-lane, so the comparison is
/// exact `to_bits` equality, not a tolerance.
fn check_simd_bitwise<O: Operator>(
    op: &O,
    setup: &LtsSetup,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let n = op.ndof();
    let u: Vec<f64> = (0..n)
        .map(|i| ((i * 41 % 29) as f64) / 29.0 - 0.5)
        .collect();
    let mut refs: Vec<Vec<f64>> = Vec::new();
    {
        let _g = ForceVariant::new(KernelVariant::Scalar);
        let mut ws = Workspace::new();
        for k in 0..setup.n_levels {
            let mut r = vec![0.0; n];
            op.apply_masked_ws(
                &u,
                &mut r,
                &setup.elems[k],
                &setup.dof_level,
                k as u8,
                &mut ws,
            );
            refs.push(r);
        }
    }
    for v in supported_variants() {
        if v.lanes() == 1 {
            continue;
        }
        let _g = ForceVariant::new(v);
        let mut ws_serial = Workspace::new();
        let mut ws_threads = Workspace::new();
        for (k, level_ref) in refs.iter().enumerate().take(setup.n_levels) {
            let mut serial = vec![0.0; n];
            op.apply_masked_ws(
                &u,
                &mut serial,
                &setup.elems[k],
                &setup.dof_level,
                k as u8,
                &mut ws_serial,
            );
            for i in 0..n {
                prop_assert_eq!(
                    serial[i].to_bits(),
                    level_ref[i].to_bits(),
                    "{:?} serial vs scalar: dof {} level {}",
                    v,
                    i,
                    k
                );
            }
            for threads in [1usize, 2, 4] {
                let mut parallel = vec![0.0; n];
                op.apply_masked_threads(
                    &u,
                    &mut parallel,
                    &setup.elems[k],
                    &setup.dof_level,
                    k as u8,
                    &mut ws_threads,
                    threads,
                );
                for i in 0..n {
                    prop_assert_eq!(
                        parallel[i].to_bits(),
                        level_ref[i].to_bits(),
                        "{:?} {} threads vs scalar: dof {} level {}",
                        v,
                        threads,
                        i,
                        k
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Structured acoustic: threaded masked product is bitwise-identical to
    /// serial across orders 2–4, all LTS levels, 1/2/4 threads.
    #[test]
    fn acoustic_parallel_masked_is_bitwise_serial(m in mesh_strategy(), order in 2usize..5) {
        let lv = Levels::assign(&m, 0.5, 3);
        let op = AcousticOperator::new(&m, order);
        let setup = LtsSetup::new(&op, &lv.elem_level);
        check_bitwise(&op, &setup)?;
    }

    /// Structured elastic (3 components per node).
    #[test]
    fn elastic_parallel_masked_is_bitwise_serial(m in mesh_strategy(), order in 2usize..4) {
        let lv = Levels::assign(&m, 0.5, 3);
        let op = ElasticOperator::poisson(&m, order);
        let setup = LtsSetup::new(&op, &lv.elem_level);
        check_bitwise(&op, &setup)?;
    }

    /// Unstructured (rank-local) operators over the full element set, with
    /// their own compact numbering and per-element geometry.
    #[test]
    fn unstructured_parallel_masked_is_bitwise_serial(m in mesh_strategy(), order in 2usize..4) {
        let lv = Levels::assign(&m, 0.5, 3);
        let all: Vec<u32> = (0..m.n_elems() as u32).collect();
        let (ac, _) = UnstructuredAcoustic::from_subset(&m, order, &all, None);
        let setup = LtsSetup::new(&ac, &lv.elem_level);
        check_bitwise(&ac, &setup)?;
        let (el, _) = UnstructuredElastic::from_subset(&m, order, &all, None);
        let setup = LtsSetup::new(&el, &lv.elem_level);
        check_bitwise(&el, &setup)?;
    }

    /// Structured acoustic, SIMD: scalar vs SIMD vs threaded-SIMD across
    /// orders 1–4, all levels, 1/2/4 threads.
    #[test]
    fn acoustic_simd_is_bitwise_scalar(m in mesh_strategy(), order in 1usize..5) {
        let lv = Levels::assign(&m, 0.5, 3);
        let op = AcousticOperator::new(&m, order);
        let setup = LtsSetup::new(&op, &lv.elem_level);
        check_simd_bitwise(&op, &setup)?;
    }

    /// Structured elastic, SIMD, orders 1–4.
    #[test]
    fn elastic_simd_is_bitwise_scalar(m in mesh_strategy(), order in 1usize..5) {
        let lv = Levels::assign(&m, 0.5, 3);
        let op = ElasticOperator::poisson(&m, order);
        let setup = LtsSetup::new(&op, &lv.elem_level);
        check_simd_bitwise(&op, &setup)?;
    }

    /// Both unstructured operators, SIMD, orders 1–4.
    #[test]
    fn unstructured_simd_is_bitwise_scalar(m in mesh_strategy(), order in 1usize..5) {
        let lv = Levels::assign(&m, 0.5, 3);
        let all: Vec<u32> = (0..m.n_elems() as u32).collect();
        let (ac, _) = UnstructuredAcoustic::from_subset(&m, order, &all, None);
        let setup = LtsSetup::new(&ac, &lv.elem_level);
        check_simd_bitwise(&ac, &setup)?;
        let (el, _) = UnstructuredElastic::from_subset(&m, order, &all, None);
        let setup = LtsSetup::new(&el, &lv.elem_level);
        check_simd_bitwise(&el, &setup)?;
    }
}

/// Negative control for the `to_bits` methodology: a *deliberately
/// reordered* reduction — the same sum-factorised contraction with the inner
/// sum accumulated in reverse — must be caught by bitwise comparison against
/// the scalar kernel. If this test ever fails, `to_bits` equality has lost
/// its power to detect reassociated floating-point reductions and the whole
/// determinism contract needs re-auditing.
#[test]
fn reordered_reduction_is_caught_by_to_bits() {
    use lts_sem::GllBasis;
    let order = 4usize;
    let basis = GllBasis::new(order);
    let np = basis.n_points();
    let npe = np * np * np;
    // seeded LCG fill, the same generator the SIMD unit tests use
    let mut x = 0xDEAD_BEEF_u64;
    let mut loc = vec![0.0; npe];
    for v in loc.iter_mut() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((x >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
    }
    let idx = |a: usize, b: usize, c: usize| a + np * (b + np * c);
    let d = &basis.d;
    let mut mismatch = 0usize;
    for c in 0..np {
        for b in 0..np {
            for a in 0..np {
                // forward: the scalar kernel's order
                let mut fwd = 0.0f64;
                for m in 0..np {
                    fwd += d[a * np + m] * loc[idx(m, b, c)];
                }
                // reversed reduction: same value analytically, different
                // rounding path
                let mut rev = 0.0f64;
                for m in (0..np).rev() {
                    rev += d[a * np + m] * loc[idx(m, b, c)];
                }
                if fwd.to_bits() != rev.to_bits() {
                    mismatch += 1;
                }
            }
        }
    }
    assert!(
        mismatch > 0,
        "a reversed 5-term reduction over {npe} random nodes produced no \
         bitwise difference — to_bits comparison would not catch reordering"
    );
}
