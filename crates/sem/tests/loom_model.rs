//! Exhaustive interleaving model of the `par_colored` executor protocol.
//!
//! The executor's soundness rests on one claim: *given a conflict-free
//! colouring, the chunked colour-major walk with a barrier between colours
//! never lets two threads write the same DOF without an intervening
//! synchronisation*. The crates.io `loom` model checker is the usual tool
//! for this; it is not available offline, so this test implements the same
//! idea directly — an explicit-state DFS over **all** thread interleavings
//! of an abstracted thread program.
//!
//! The abstraction keeps exactly the events that matter for the data-race
//! argument and drops everything else:
//!
//! * `Write(loc)` — a scatter store to global DOF `loc`;
//! * `Barrier`   — one `Barrier::wait()` call (the end-of-colour barrier).
//!
//! Crucially, the programs are built from the **real** building blocks the
//! executor uses: the colour-major `(order, color_off)` flattening of a real
//! [`ElementColoring`] and the exact [`chunk_range`] split `par_colored`
//! runs. The model is therefore not a re-implementation of the protocol but
//! a projection of it — if the split or the colouring were wrong, the model
//! would catch it (see the negative tests, which feed a deliberately
//! conflicting colouring and a mismatched barrier count).
//!
//! Race detection uses barrier *epochs*: two writes to the same location by
//! different threads race iff they happen in the same epoch (no barrier
//! between them). A write's epoch is the number of barriers preceding it in
//! its own program, which is schedule-independent — but the DFS still
//! enumerates every interleaving to prove the stronger properties that no
//! schedule deadlocks and every schedule executes every write exactly once.

use std::collections::HashSet;

use lts_mesh::HexMesh;
use lts_sem::parallel::{chunk_range, ElementColoring};
use lts_sem::DofMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Write(u32),
    Barrier,
}

/// What the exploration found across all interleavings.
#[derive(Debug, Default)]
struct Outcome {
    /// Distinct global states (program-counter vectors) visited.
    states: usize,
    /// `(loc, thread_a, thread_b)` same-epoch writes by different threads.
    races: Vec<(u32, usize, usize)>,
    /// Locations written twice by the *same* thread within one epoch
    /// (violates the one-contribution-per-DOF-per-colour invariant).
    duplicates: Vec<u32>,
    /// Some schedule reached a state with no enabled transition while a
    /// thread was still unfinished.
    deadlock: bool,
}

/// Build each thread's program exactly as `par_colored` would execute it:
/// per colour span, the `chunk_range` chunk of positions, each position
/// expanding to writes of its element's scatter targets, then one barrier.
fn build_programs(
    order: &[u32],
    color_off: &[u32],
    threads: usize,
    targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
) -> Vec<Vec<Op>> {
    let mut progs = vec![Vec::new(); threads];
    let mut buf = Vec::new();
    for (tid, prog) in progs.iter_mut().enumerate() {
        for w in color_off.windows(2) {
            let (s, e) = chunk_range(w[0] as usize, w[1] as usize, threads, tid);
            for &elem in &order[s..e] {
                targets_of(elem, &mut buf);
                for &t in &buf {
                    prog.push(Op::Write(t));
                }
            }
            prog.push(Op::Barrier);
        }
    }
    progs
}

/// DFS over every interleaving, memoised on the program-counter vector.
///
/// Memoisation is sound for race detection because the set of executed
/// writes — and each write's epoch — is a function of the pc vector alone,
/// so re-entering a visited state can reveal nothing new. Every write is
/// still *checked* at least once: the first complete path is never pruned.
fn explore(progs: &[Vec<Op>], n_locs: usize) -> Outcome {
    let mut out = Outcome::default();
    let mut pcs = vec![0usize; progs.len()];
    let mut written: Vec<Option<(usize, usize)>> = vec![None; n_locs];
    let mut visited: HashSet<Vec<usize>> = HashSet::new();
    dfs(progs, &mut pcs, 0, &mut written, &mut visited, &mut out);
    out.states = visited.len();
    out
}

fn dfs(
    progs: &[Vec<Op>],
    pcs: &mut Vec<usize>,
    epoch: usize,
    written: &mut [Option<(usize, usize)>],
    visited: &mut HashSet<Vec<usize>>,
    out: &mut Outcome,
) {
    if !visited.insert(pcs.clone()) {
        return;
    }
    let mut moved = false;
    // Independent transitions: any thread whose next op is a write.
    for t in 0..progs.len() {
        if let Some(&Op::Write(loc)) = progs[t].get(pcs[t]) {
            moved = true;
            let prev = written[loc as usize];
            if let Some((e, t2)) = prev {
                if e == epoch {
                    if t2 != t {
                        out.races.push((loc, t2, t));
                    } else {
                        out.duplicates.push(loc);
                    }
                }
            }
            written[loc as usize] = Some((epoch, t));
            pcs[t] += 1;
            dfs(progs, pcs, epoch, written, visited, out);
            pcs[t] -= 1;
            written[loc as usize] = prev;
        }
    }
    // Barrier transition: `Barrier::new(threads)` releases only when every
    // thread calls `wait()`, so it is enabled only when *all* threads sit
    // at a barrier; it advances them together and opens a new epoch.
    if !moved {
        let all_at_barrier = (0..progs.len()).all(|t| progs[t].get(pcs[t]) == Some(&Op::Barrier));
        if all_at_barrier {
            for pc in pcs.iter_mut() {
                *pc += 1;
            }
            dfs(progs, pcs, epoch + 1, written, visited, out);
            for pc in pcs.iter_mut() {
                *pc -= 1;
            }
        } else if (0..progs.len()).any(|t| pcs[t] < progs[t].len()) {
            // No write enabled, not all at a barrier, someone unfinished:
            // a thread waits on a barrier that can never fill.
            out.deadlock = true;
        }
    }
}

/// Greedy-colour a full structured mesh and flatten it, returning the model
/// inputs plus the scatter-target closure's backing dofmap.
fn colored_mesh(nx: usize, ny: usize, nz: usize, order: usize) -> (DofMap, Vec<u32>, Vec<u32>) {
    let m = HexMesh::uniform(nx, ny, nz, 1.0, 1.0);
    let d = DofMap::new(&m, order);
    let elems: Vec<u32> = (0..d.n_elems() as u32).collect();
    let n_nodes = d.n_nodes();
    let mut targets = |e: u32, out: &mut Vec<u32>| d.elem_nodes(e, out);
    let coloring = ElementColoring::greedy(&elems, n_nodes, &mut targets);
    let (order_list, color_off) = coloring.flatten();
    (d, order_list, color_off)
}

#[test]
fn real_coloring_two_threads_race_free() {
    let (d, order, color_off) = colored_mesh(3, 1, 1, 1);
    let mut targets = |e: u32, out: &mut Vec<u32>| d.elem_nodes(e, out);
    let progs = build_programs(&order, &color_off, 2, &mut targets);
    let res = explore(&progs, d.n_nodes());
    assert!(res.races.is_empty(), "races: {:?}", res.races);
    assert!(
        res.duplicates.is_empty(),
        "duplicates: {:?}",
        res.duplicates
    );
    assert!(!res.deadlock);
    assert!(res.states > 1, "exploration degenerated to one state");
}

#[test]
fn real_coloring_three_threads_race_free() {
    // 2×2×1 at order 1: four elements all sharing the centre node — the
    // densest sharing a structured mesh produces. Three threads exercise
    // uneven chunking (spans of width 1 and 2 against 3 threads).
    let (d, order, color_off) = colored_mesh(2, 2, 1, 1);
    let mut targets = |e: u32, out: &mut Vec<u32>| d.elem_nodes(e, out);
    let progs = build_programs(&order, &color_off, 3, &mut targets);
    let res = explore(&progs, d.n_nodes());
    assert!(res.races.is_empty(), "races: {:?}", res.races);
    assert!(
        res.duplicates.is_empty(),
        "duplicates: {:?}",
        res.duplicates
    );
    assert!(!res.deadlock);
}

#[test]
fn every_schedule_executes_every_write_once() {
    // The union of all chunk ranges is the full order, so across one run
    // each element is processed exactly once: total writes == Σ targets.
    let (d, order, color_off) = colored_mesh(2, 2, 1, 1);
    let mut targets = |e: u32, out: &mut Vec<u32>| d.elem_nodes(e, out);
    for threads in 1..=4 {
        let progs = build_programs(&order, &color_off, threads, &mut targets);
        let writes: usize = progs
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Write(_)))
            .count();
        assert_eq!(
            writes,
            order.len() * d.nodes_per_elem(),
            "{threads} threads"
        );
        let barriers_per_thread: Vec<usize> = progs
            .iter()
            .map(|p| p.iter().filter(|op| **op == Op::Barrier).count())
            .collect();
        // one barrier per colour on every thread — the lock-step invariant
        assert!(barriers_per_thread
            .iter()
            .all(|&b| b == color_off.len() - 1));
    }
}

#[test]
fn conflicting_coloring_is_caught_as_a_race() {
    // Deliberately break the invariant: two face-adjacent elements (which
    // share a 2×2 node face at order 1) forced into the same colour. The
    // model must observe a same-epoch cross-thread write.
    let m = HexMesh::uniform(2, 1, 1, 1.0, 1.0);
    let d = DofMap::new(&m, 1);
    let broken = ElementColoring {
        classes: vec![vec![0, 1]],
    };
    let (order, color_off) = broken.flatten();
    let mut targets = |e: u32, out: &mut Vec<u32>| d.elem_nodes(e, out);
    let progs = build_programs(&order, &color_off, 2, &mut targets);
    let res = explore(&progs, d.n_nodes());
    assert!(
        !res.races.is_empty(),
        "model failed to detect the seeded colouring conflict"
    );
    // the shared face has 4 nodes at order 1; each appears in some race
    let mut raced: Vec<u32> = res.races.iter().map(|r| r.0).collect();
    raced.sort_unstable();
    raced.dedup();
    assert_eq!(raced.len(), 4, "raced locations: {raced:?}");
}

#[test]
fn mismatched_barrier_counts_deadlock() {
    // A thread that skips its end-of-colour barrier starves the others:
    // `Barrier::new(threads)` never fills. The model reports deadlock.
    let progs = vec![
        vec![Op::Write(0), Op::Barrier],
        vec![Op::Write(1)], // missing barrier
    ];
    let res = explore(&progs, 2);
    assert!(res.deadlock);
    assert!(res.races.is_empty());
}
