//! Spectral-element discretization of the acoustic and elastic wave
//! equations on hexahedral meshes (Sec. I-B of the paper).
//!
//! The SEM is a continuous Galerkin method with nodal Lagrange bases at
//! Gauss–Legendre–Lobatto (GLL) points; GLL quadrature makes the mass matrix
//! diagonal (Eq. 3–4), which is what lets explicit Newmark — and LTS-Newmark —
//! run matrix-free. SPECFEM3D's default is order 4 (125 nodes per element),
//! which is also the default here.
//!
//! * [`gll`] — GLL points, weights and the Lagrange derivative matrix;
//! * [`dofmap`] — global GLL node numbering on structured hex meshes;
//! * [`acoustic`] — scalar wave operator `A = M⁻¹K` implementing the
//!   [`lts_core::Operator`]/[`lts_core::DofTopology`] traits;
//! * [`elastic`] — the 3-component isotropic elastic operator (Eqs. 1–2);
//! * [`boundary`] — sponge-taper absorbing boundaries.

// Indexed `for i in 0..n` loops over parallel arrays are the house idiom in
// these numerical kernels: the index couples several same-length arrays and
// mirrors the subscripts in the paper's equations, which zip chains obscure.
#![allow(clippy::needless_range_loop)]
pub mod acoustic;
pub mod boundary;
pub(crate) mod compiled;
pub(crate) mod disjoint;
pub mod dofmap;
pub mod elastic;
pub mod gll;
pub mod kernel;
pub mod parallel;
pub mod record;
pub mod simd;
pub mod unstructured;
pub mod verify;

pub use acoustic::AcousticOperator;
pub use boundary::Sponge;
pub use dofmap::DofMap;
pub use elastic::ElasticOperator;
pub use gll::GllBasis;
pub use parallel::{apply_parallel, ElementColoring};
pub use record::SeismogramRecorder;
pub use unstructured::{UnstructuredAcoustic, UnstructuredElastic};
