//! Level-compiled gather lists: the `dof_level == level` branch of a masked
//! product, baked once per `(level, element list)` into flat index/mask
//! tables, ordered colour-major by a greedy conflict-free colouring.
//!
//! A compiled entry lets the inner sub-step loops of LTS-Newmark run
//! branch-free (`loc = u[idx] * mask` with `mask ∈ {0, 1}`) and gives the
//! threaded executor its race-freedom invariant for free: within one colour
//! no two elements share a scatter target, so any interleaving of a colour's
//! elements produces bitwise-identical sums. The *serial* path walks the same
//! colour-major order, which is what makes the threaded product bitwise equal
//! to the serial one.
//!
//! Entries live in a [`GatherCache`] stashed in the stepper's
//! [`lts_core::Workspace`], so each `(level, element set)` pair is compiled
//! exactly once per run.

use crate::parallel::ElementColoring;

/// Sentinel `level` for the unmasked full-mesh product.
pub(crate) const FULL_LEVEL: u16 = u16::MAX;

/// Emits the flat `idx`/`mask` tables for a colour-major element order.
pub(crate) type FillFn<'a> = &'a mut dyn FnMut(&[u32], &mut Vec<u32>, &mut Vec<f64>);

/// One compiled `(level, element list)` entry.
pub(crate) struct CompiledGather {
    level: u16,
    /// The element list this entry was compiled for (cache key).
    key: Vec<u32>,
    /// Element ids in colour-major order.
    pub(crate) order: Vec<u32>,
    /// Prefix offsets into `order`, one span per colour (`n_colours + 1`).
    pub(crate) color_off: Vec<u32>,
    /// Per ordered element: its `npe` scatter-target ids (global nodes or
    /// local DOFs, whatever the operator gathers from).
    pub(crate) idx: Vec<u32>,
    /// Multiplicative level masks (1.0 / 0.0), aligned with the gathered
    /// values; empty for the unmasked full product.
    pub(crate) mask: Vec<f64>,
}

/// Per-run cache of compiled gather lists (lives in a `Workspace`).
#[derive(Default)]
pub(crate) struct GatherCache {
    entries: Vec<CompiledGather>,
}

impl GatherCache {
    pub(crate) fn entry(&self, i: usize) -> &CompiledGather {
        &self.entries[i]
    }

    /// Look up an existing entry. The full-mesh entry is unique per
    /// operator, so `FULL_LEVEL` matches regardless of `elems`.
    pub(crate) fn find(&self, level: u16, elems: &[u32]) -> Option<usize> {
        self.entries
            .iter()
            .position(|en| en.level == level && (level == FULL_LEVEL || en.key == elems))
    }

    /// Fetch or compile the entry for `(level, elems)`.
    ///
    /// `targets_of` yields an element's scatter targets (drives the greedy
    /// colouring); `fill` receives the colour-major `order` and emits the
    /// flat `idx`/`mask` tables.
    pub(crate) fn get_or_build(
        &mut self,
        level: u16,
        elems: &[u32],
        n_targets: usize,
        targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
        fill: FillFn,
    ) -> usize {
        if let Some(i) = self.find(level, elems) {
            return i;
        }
        let coloring = ElementColoring::greedy(elems, n_targets, targets_of);
        // lts-check hook: re-assert, at every compile, the exact invariants
        // the threaded scatter relies on — conflict-freedom within each
        // colour and a one-to-one cover of the requested element list.
        #[cfg(debug_assertions)]
        {
            let conflict = crate::verify::conflict_free(&coloring.classes, n_targets, targets_of);
            debug_assert!(
                conflict.is_ok(),
                "compiled colouring for level {level}: {}",
                conflict.unwrap_err()
            );
            let cover = crate::verify::complete_cover(&coloring.classes, elems);
            debug_assert!(
                cover.is_ok(),
                "compiled colouring for level {level}: {}",
                cover.unwrap_err()
            );
        }
        let (order, color_off) = coloring.flatten();
        let mut idx = Vec::new();
        let mut mask = Vec::new();
        fill(&order, &mut idx, &mut mask);
        self.entries.push(CompiledGather {
            level,
            key: elems.to_vec(),
            order,
            color_off,
            idx,
            mask,
        });
        self.entries.len() - 1
    }
}

/// Reusable element scratch for the scalar kernel.
pub(crate) struct ScalarScratch {
    pub(crate) loc: Vec<f64>,
    pub(crate) tmp: Vec<f64>,
    pub(crate) der: Vec<f64>,
}

impl ScalarScratch {
    pub(crate) fn new(npe: usize) -> Self {
        ScalarScratch {
            loc: vec![0.0; npe],
            tmp: vec![0.0; npe],
            der: vec![0.0; npe],
        }
    }
}

/// Workspace state of a scalar (acoustic) operator: compiled entries plus
/// serial and per-thread element scratch.
pub(crate) struct ScalarWs {
    pub(crate) cache: GatherCache,
    pub(crate) serial: ScalarScratch,
    pub(crate) par: Vec<ScalarScratch>,
}

impl ScalarWs {
    pub(crate) fn new(npe: usize) -> Self {
        ScalarWs {
            cache: GatherCache::default(),
            serial: ScalarScratch::new(npe),
            par: Vec::new(),
        }
    }
}

/// Workspace state of an elastic operator.
pub(crate) struct ElasticScratchWs {
    pub(crate) cache: GatherCache,
    pub(crate) serial: crate::elastic::Scratch,
    pub(crate) par: Vec<crate::elastic::Scratch>,
}

impl ElasticScratchWs {
    pub(crate) fn new(npe: usize) -> Self {
        ElasticScratchWs {
            cache: GatherCache::default(),
            serial: crate::elastic::Scratch::new(npe),
            par: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_compiles_once_per_level_and_list() {
        // toy adjacency: element e targets {e, e+1} (a chain)
        let mut targets = |e: u32, out: &mut Vec<u32>| {
            out.clear();
            out.push(e);
            out.push(e + 1);
        };
        let mut builds = 0usize;
        let mut cache = GatherCache::default();
        let elems: Vec<u32> = (0..6).collect();
        for _ in 0..3 {
            let mut fill = |order: &[u32], idx: &mut Vec<u32>, _mask: &mut Vec<f64>| {
                builds += 1;
                idx.extend_from_slice(order);
            };
            let i = cache.get_or_build(0, &elems, 7, &mut targets, &mut fill);
            assert_eq!(i, 0);
        }
        assert_eq!(builds, 1, "entry must be compiled exactly once");
        // a different list is a different entry
        let sub: Vec<u32> = vec![1, 3];
        let mut fill = |order: &[u32], idx: &mut Vec<u32>, _mask: &mut Vec<f64>| {
            idx.extend_from_slice(order);
        };
        let j = cache.get_or_build(0, &sub, 7, &mut targets, &mut fill);
        assert_eq!(j, 1);
        // the full-mesh sentinel matches without a key comparison
        let k = cache.get_or_build(FULL_LEVEL, &elems, 7, &mut targets, &mut fill);
        assert_eq!(cache.find(FULL_LEVEL, &[]), Some(k));
    }

    #[test]
    fn compiled_order_is_colour_major_and_complete() {
        let mut targets = |e: u32, out: &mut Vec<u32>| {
            out.clear();
            out.push(e / 2); // pairs (0,1), (2,3), … conflict
        };
        let elems: Vec<u32> = (0..8).collect();
        let mut cache = GatherCache::default();
        let mut fill = |_: &[u32], _: &mut Vec<u32>, _: &mut Vec<f64>| {};
        let i = cache.get_or_build(0, &elems, 4, &mut targets, &mut fill);
        let en = cache.entry(i);
        assert_eq!(en.color_off, vec![0, 4, 8]);
        assert_eq!(en.order, vec![0, 2, 4, 6, 1, 3, 5, 7]);
        let mut all: Vec<u32> = en.order.clone();
        all.sort_unstable();
        assert_eq!(all, elems);
    }
}
