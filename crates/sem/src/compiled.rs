//! Level-compiled gather lists: the `dof_level == level` branch of a masked
//! product, baked once per `(level, element list)` into flat index/mask
//! tables, ordered colour-major by a greedy conflict-free colouring.
//!
//! A compiled entry lets the inner sub-step loops of LTS-Newmark run
//! branch-free (`loc = u[idx] * mask` with `mask ∈ {0, 1}`) and gives the
//! threaded executor its race-freedom invariant for free: within one colour
//! no two elements share a scatter target, so any interleaving of a colour's
//! elements produces bitwise-identical sums. The *serial* path walks the same
//! colour-major order, which is what makes the threaded product bitwise equal
//! to the serial one.
//!
//! Entries live in a [`GatherCache`] stashed in the stepper's
//! [`lts_core::Workspace`], so each `(level, element set)` pair is compiled
//! exactly once per run.

use crate::gll::GllBasis;
use crate::parallel::ElementColoring;
use crate::simd::{
    batch_elastic_stiffness, batch_scalar_stiffness, AcousticLanes, ElasticLanes, KernelVariant,
};

/// Sentinel `level` for the unmasked full-mesh product.
pub(crate) const FULL_LEVEL: u16 = u16::MAX;

/// Emits the flat `idx`/`mask` tables for a colour-major element order.
pub(crate) type FillFn<'a> = &'a mut dyn FnMut(&[u32], &mut Vec<u32>, &mut Vec<f64>);

/// One compiled `(level, element list)` entry.
pub(crate) struct CompiledGather {
    level: u16,
    /// The element list this entry was compiled for (cache key).
    key: Vec<u32>,
    /// Element ids in colour-major order.
    pub(crate) order: Vec<u32>,
    /// Prefix offsets into `order`, one span per colour (`n_colours + 1`).
    pub(crate) color_off: Vec<u32>,
    /// Per ordered element: its `npe` scatter-target ids (global nodes or
    /// local DOFs, whatever the operator gathers from).
    pub(crate) idx: Vec<u32>,
    /// Multiplicative level masks (1.0 / 0.0), aligned with the gathered
    /// values; empty for the unmasked full product.
    pub(crate) mask: Vec<f64>,
    /// SIMD batching plan for the active [`KernelVariant`]; `None` on the
    /// scalar variant (lanes = 1). Rebuilt by [`GatherCache::ensure_plan`]
    /// when the active lane width changes.
    pub(crate) simd: Option<SimdPlan>,
}

/// Derived structure-of-arrays view of a [`CompiledGather`] for one SIMD
/// lane width: the colour-major element order chopped into *units* of up to
/// `lanes` elements, with per-unit transposed gather tables so node `q` of
/// all lanes is one contiguous `lanes`-wide run (`tidx[toff + q·lanes + l]`).
/// Units never straddle a colour boundary, so the within-colour
/// conflict-freedom invariant carries over to whole units and both the
/// serial and threaded walks keep the colour-phase accumulation order —
/// which is what keeps the batched product bitwise equal to the scalar one.
pub(crate) struct SimdPlan {
    /// The variant the plan was transposed for.
    pub(crate) variant: KernelVariant,
    /// `variant.lanes()`, cached.
    pub(crate) lanes: usize,
    /// Prefix offsets into the unit arrays, one span per colour.
    pub(crate) unit_off: Vec<u32>,
    /// First position (into `CompiledGather::order`) of each unit.
    pub(crate) unit_base: Vec<u32>,
    /// Elements in each unit (`lanes` for full units, less for tails).
    /// Tail units are *padded* to the full lane width in the transposed
    /// tables by replicating their last element, so every unit runs the
    /// batched kernel; only the first `unit_len` lanes are scattered (a
    /// padded lane's result is discarded, and vertical-only arithmetic
    /// means it cannot perturb the valid lanes).
    pub(crate) unit_len: Vec<u32>,
    /// Offset into `tidx` (node-lane entries) of each unit.
    pub(crate) unit_toff: Vec<u32>,
    /// Transposed scatter-target ids of the units (lane-padded).
    pub(crate) tidx: Vec<u32>,
    /// Transposed masks (`mask_stride` per node-lane entry, offset
    /// `toff · mask_stride`); empty when the entry is unmasked.
    pub(crate) tmask: Vec<f64>,
}

impl SimdPlan {
    fn build(
        color_off: &[u32],
        idx: &[u32],
        mask: &[f64],
        npe: usize,
        mask_stride: usize,
        variant: KernelVariant,
    ) -> SimdPlan {
        let lanes = variant.lanes();
        let mut p = SimdPlan {
            variant,
            lanes,
            unit_off: vec![0],
            unit_base: Vec::new(),
            unit_len: Vec::new(),
            unit_toff: Vec::new(),
            tidx: Vec::new(),
            tmask: Vec::new(),
        };
        for w in color_off.windows(2) {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            let mut pos = lo;
            while pos < hi {
                let len = lanes.min(hi - pos);
                p.unit_base.push(pos as u32);
                p.unit_len.push(len as u32);
                p.unit_toff.push(p.tidx.len() as u32);
                // lanes ≥ len replicate the unit's last element (valid
                // gather addresses, results never scattered)
                for q in 0..npe {
                    for l in 0..lanes {
                        p.tidx.push(idx[(pos + l.min(len - 1)) * npe + q]);
                    }
                }
                if !mask.is_empty() {
                    for q in 0..npe {
                        for l in 0..lanes {
                            let nb = ((pos + l.min(len - 1)) * npe + q) * mask_stride;
                            p.tmask.extend_from_slice(&mask[nb..nb + mask_stride]);
                        }
                    }
                }
                pos += len;
            }
            p.unit_off.push(p.unit_base.len() as u32);
        }
        p
    }
}

/// Per-run cache of compiled gather lists (lives in a `Workspace`).
#[derive(Default)]
pub(crate) struct GatherCache {
    entries: Vec<CompiledGather>,
}

impl GatherCache {
    pub(crate) fn entry(&self, i: usize) -> &CompiledGather {
        &self.entries[i]
    }

    /// Look up an existing entry. The full-mesh entry is unique per
    /// operator, so `FULL_LEVEL` matches regardless of `elems`.
    pub(crate) fn find(&self, level: u16, elems: &[u32]) -> Option<usize> {
        self.entries
            .iter()
            .position(|en| en.level == level && (level == FULL_LEVEL || en.key == elems))
    }

    /// Fetch or compile the entry for `(level, elems)`.
    ///
    /// `targets_of` yields an element's scatter targets (drives the greedy
    /// colouring); `fill` receives the colour-major `order` and emits the
    /// flat `idx`/`mask` tables.
    pub(crate) fn get_or_build(
        &mut self,
        level: u16,
        elems: &[u32],
        n_targets: usize,
        targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
        fill: FillFn,
    ) -> usize {
        if let Some(i) = self.find(level, elems) {
            return i;
        }
        let coloring = ElementColoring::greedy(elems, n_targets, targets_of);
        // lts-check hook: re-assert, at every compile, the exact invariants
        // the threaded scatter relies on — conflict-freedom within each
        // colour and a one-to-one cover of the requested element list.
        #[cfg(debug_assertions)]
        {
            let conflict = crate::verify::conflict_free(&coloring.classes, n_targets, targets_of);
            debug_assert!(
                conflict.is_ok(),
                "compiled colouring for level {level}: {}",
                conflict.unwrap_err()
            );
            let cover = crate::verify::complete_cover(&coloring.classes, elems);
            debug_assert!(
                cover.is_ok(),
                "compiled colouring for level {level}: {}",
                cover.unwrap_err()
            );
        }
        let (order, color_off) = coloring.flatten();
        let mut idx = Vec::new();
        let mut mask = Vec::new();
        fill(&order, &mut idx, &mut mask);
        self.entries.push(CompiledGather {
            level,
            key: elems.to_vec(),
            order,
            color_off,
            idx,
            mask,
            simd: None,
        });
        self.entries.len() - 1
    }

    /// Make entry `i`'s [`SimdPlan`] match `variant`: build (or rebuild) the
    /// transposed tables when a multi-lane variant is active, drop them when
    /// the scalar variant is. Called by the operators on every apply — a
    /// no-op once the plan matches, so the cost is one comparison per apply.
    pub(crate) fn ensure_plan(
        &mut self,
        i: usize,
        npe: usize,
        mask_stride: usize,
        variant: KernelVariant,
    ) {
        let en = &mut self.entries[i];
        let lanes = variant.lanes();
        if lanes <= 1 {
            en.simd = None;
            return;
        }
        if en.simd.as_ref().is_some_and(|p| p.variant == variant) {
            return;
        }
        en.simd = Some(SimdPlan::build(
            &en.color_off,
            &en.idx,
            &en.mask,
            npe,
            mask_stride,
            variant,
        ));
    }
}

/// Reusable element scratch for the scalar kernel, plus the SoA batch
/// buffers of the SIMD path (`v*`, `npe · lanes` doubles, lane-minor).
pub(crate) struct ScalarScratch {
    pub(crate) loc: Vec<f64>,
    pub(crate) tmp: Vec<f64>,
    pub(crate) der: Vec<f64>,
    pub(crate) vloc: Vec<f64>,
    pub(crate) vtmp: Vec<f64>,
    pub(crate) vder: Vec<f64>,
}

impl ScalarScratch {
    pub(crate) fn new(npe: usize) -> Self {
        ScalarScratch {
            loc: vec![0.0; npe],
            tmp: vec![0.0; npe],
            der: vec![0.0; npe],
            vloc: Vec::new(),
            vtmp: Vec::new(),
            vder: Vec::new(),
        }
    }

    /// Size the batch buffers for `lanes`-wide units (outside the hot loop).
    pub(crate) fn ensure_lanes(&mut self, npe: usize, lanes: usize) {
        let n = npe * lanes;
        if lanes > 1 && self.vloc.len() < n {
            self.vloc.resize(n, 0.0);
            self.vtmp.resize(n, 0.0);
            self.vder.resize(n, 0.0);
        }
    }
}

/// Workspace state of a scalar (acoustic) operator: compiled entries plus
/// serial and per-thread element scratch.
pub(crate) struct ScalarWs {
    pub(crate) cache: GatherCache,
    pub(crate) serial: ScalarScratch,
    pub(crate) par: Vec<ScalarScratch>,
}

impl ScalarWs {
    pub(crate) fn new(npe: usize) -> Self {
        ScalarWs {
            cache: GatherCache::default(),
            serial: ScalarScratch::new(npe),
            par: Vec::new(),
        }
    }
}

/// Workspace state of an elastic operator.
pub(crate) struct ElasticScratchWs {
    pub(crate) cache: GatherCache,
    pub(crate) serial: crate::elastic::Scratch,
    pub(crate) par: Vec<crate::elastic::Scratch>,
}

impl ElasticScratchWs {
    pub(crate) fn new(npe: usize) -> Self {
        ElasticScratchWs {
            cache: GatherCache::default(),
            serial: crate::elastic::Scratch::new(npe),
            par: Vec::new(),
        }
    }
}

/// The shared acoustic execution engine: one scalar per-element path and one
/// SIMD unit path over a compiled entry, parameterized on a geometry lookup
/// `e → (hx, hy, hz, μ)` so the structured and unstructured operators drive
/// the same code.
pub(crate) struct AcousticEngine<'a, G: Fn(u32) -> (f64, f64, f64, f64) + Sync> {
    pub(crate) basis: &'a GllBasis,
    pub(crate) inv_mass: &'a [f64],
    pub(crate) npe: usize,
    pub(crate) geom: G,
}

impl<G: Fn(u32) -> (f64, f64, f64, f64) + Sync> AcousticEngine<'_, G> {
    /// Process position `pos` of a compiled entry: branch-free gather,
    /// stiffness kernel, multiply-by-`M⁻¹` scatter.
    // lint: hot-path
    #[inline]
    pub(crate) fn elem(
        &self,
        entry: &CompiledGather,
        pos: usize,
        u: &[f64],
        sc: &mut ScalarScratch,
        out: &mut [f64],
    ) {
        let npe = self.npe;
        let base = pos * npe;
        let ids = &entry.idx[base..base + npe];
        if entry.mask.is_empty() {
            for li in 0..npe {
                sc.loc[li] = u[ids[li] as usize];
            }
        } else {
            let mk = &entry.mask[base..base + npe];
            for li in 0..npe {
                sc.loc[li] = u[ids[li] as usize] * mk[li];
            }
        }
        let (hx, hy, hz, mu) = (self.geom)(entry.order[pos]);
        crate::kernel::scalar_stiffness(
            self.basis,
            hx,
            hy,
            hz,
            mu,
            &sc.loc,
            &mut sc.tmp,
            &mut sc.der,
        );
        for li in 0..npe {
            let g = ids[li] as usize;
            out[g] += sc.tmp[li] * self.inv_mass[g];
        }
    }

    /// Process unit `unit` of a plan: SoA gather through the transposed
    /// (lane-padded) tables, one batched kernel call, SoA scatter of the
    /// first `unit_len` lanes. Any variant the build lacks a kernel for
    /// falls back to [`Self::elem`].
    // lint: hot-path
    fn unit(
        &self,
        entry: &CompiledGather,
        plan: &SimdPlan,
        unit: usize,
        u: &[f64],
        sc: &mut ScalarScratch,
        out: &mut [f64],
    ) {
        let base = plan.unit_base[unit] as usize;
        let len = plan.unit_len[unit] as usize;
        let w = plan.lanes;
        let npe = self.npe;
        let toff = plan.unit_toff[unit] as usize;
        let ids = &plan.tidx[toff..toff + npe * w];
        if entry.mask.is_empty() {
            for (i, &id) in ids.iter().enumerate() {
                sc.vloc[i] = u[id as usize];
            }
        } else {
            let mk = &plan.tmask[toff..toff + npe * w];
            for (i, &id) in ids.iter().enumerate() {
                sc.vloc[i] = u[id as usize] * mk[i];
            }
        }
        // per-lane coefficients, with the scalar kernel's exact expressions
        // (padded lanes reuse the last element's geometry)
        let mut cf = AcousticLanes::default();
        for l in 0..w {
            let (hx, hy, hz, mu) = (self.geom)(entry.order[base + l.min(len - 1)]);
            let jac = 0.125 * hx * hy * hz;
            cf.cx[l] = mu * jac * (2.0 / hx) * (2.0 / hx);
            cf.cy[l] = mu * jac * (2.0 / hy) * (2.0 / hy);
            cf.cz[l] = mu * jac * (2.0 / hz) * (2.0 / hz);
        }
        if !batch_scalar_stiffness(
            plan.variant,
            self.basis.n_points(),
            &self.basis.d,
            &self.basis.wgll3,
            &cf,
            &sc.vloc,
            &mut sc.vtmp,
            &mut sc.vder,
        ) {
            for pos in base..base + len {
                self.elem(entry, pos, u, sc, out);
            }
            return;
        }
        if len == w {
            for (i, &id) in ids.iter().enumerate() {
                let g = id as usize;
                out[g] += sc.vtmp[i] * self.inv_mass[g];
            }
        } else {
            // padded tail: scatter only the valid lanes
            for q in 0..npe {
                let row = q * w;
                for l in 0..len {
                    let g = ids[row + l] as usize;
                    out[g] += sc.vtmp[row + l] * self.inv_mass[g];
                }
            }
        }
    }

    /// Serial walk of an entry, batch-wise when a plan is attached. Both
    /// walks visit colours in order and touch every scatter target once per
    /// colour, so they produce bitwise-identical sums.
    pub(crate) fn run_serial(
        &self,
        entry: &CompiledGather,
        u: &[f64],
        sc: &mut ScalarScratch,
        out: &mut [f64],
    ) {
        match entry.simd.as_ref() {
            Some(plan) => {
                for unit in 0..plan.unit_base.len() {
                    self.unit(entry, plan, unit, u, sc, out);
                }
            }
            None => {
                for pos in 0..entry.order.len() {
                    self.elem(entry, pos, u, sc, out);
                }
            }
        }
    }

    /// Colour-phased threaded walk; with a plan the work items handed to
    /// [`crate::parallel::par_colored`] are whole units.
    pub(crate) fn run_threads(
        &self,
        entry: &CompiledGather,
        u: &[f64],
        par: &mut [ScalarScratch],
        out: &mut [f64],
    ) {
        match entry.simd.as_ref() {
            Some(plan) => {
                crate::parallel::par_colored(out, &plan.unit_off, par, |unit, sc, o| {
                    self.unit(entry, plan, unit, u, sc, o);
                });
            }
            None => {
                crate::parallel::par_colored(out, &entry.color_off, par, |pos, sc, o| {
                    self.elem(entry, pos, u, sc, o);
                });
            }
        }
    }
}

/// The shared elastic execution engine (`e → (hx, hy, hz, λ, μ)`), mirroring
/// [`AcousticEngine`] for the 3-component operator. `idx` entries are *node*
/// ids; DOF `3·node + comp` addresses `u`/`out`/`inv_mass`.
pub(crate) struct ElasticEngine<'a, G: Fn(u32) -> (f64, f64, f64, f64, f64) + Sync> {
    pub(crate) basis: &'a GllBasis,
    pub(crate) inv_mass: &'a [f64],
    pub(crate) npe: usize,
    pub(crate) geom: G,
}

impl<G: Fn(u32) -> (f64, f64, f64, f64, f64) + Sync> ElasticEngine<'_, G> {
    /// Process position `pos` of a compiled entry.
    // lint: hot-path
    #[inline]
    pub(crate) fn elem(
        &self,
        entry: &CompiledGather,
        pos: usize,
        u: &[f64],
        s: &mut crate::elastic::Scratch,
        out: &mut [f64],
    ) {
        let npe = self.npe;
        let base = pos * npe;
        let ids = &entry.idx[base..base + npe];
        if entry.mask.is_empty() {
            for li in 0..npe {
                let gn = ids[li] as usize;
                for comp in 0..3 {
                    s.u[comp][li] = u[3 * gn + comp];
                }
            }
        } else {
            let mk = &entry.mask[3 * base..3 * (base + npe)];
            for li in 0..npe {
                let gn = ids[li] as usize;
                for comp in 0..3 {
                    s.u[comp][li] = u[3 * gn + comp] * mk[3 * li + comp];
                }
            }
        }
        let (hx, hy, hz, lam, mu) = (self.geom)(entry.order[pos]);
        crate::elastic::elastic_stiffness(self.basis, hx, hy, hz, lam, mu, s);
        for li in 0..npe {
            let gn = ids[li] as usize;
            for comp in 0..3 {
                let dof = 3 * gn + comp;
                out[dof] += s.out[comp][li] * self.inv_mass[dof];
            }
        }
    }

    /// Process unit `unit` of a plan (SoA gather through the lane-padded
    /// tables → batched kernel → SoA scatter of the first `unit_len`
    /// lanes), falling back to [`Self::elem`] on variants without a kernel.
    // lint: hot-path
    fn unit(
        &self,
        entry: &CompiledGather,
        plan: &SimdPlan,
        unit: usize,
        u: &[f64],
        s: &mut crate::elastic::Scratch,
        out: &mut [f64],
    ) {
        let base = plan.unit_base[unit] as usize;
        let len = plan.unit_len[unit] as usize;
        let w = plan.lanes;
        let npe = self.npe;
        let n = npe * w;
        let toff = plan.unit_toff[unit] as usize;
        let ids = &plan.tidx[toff..toff + n];
        if entry.mask.is_empty() {
            for (i, &id) in ids.iter().enumerate() {
                let gn = id as usize;
                s.vu[i] = u[3 * gn];
                s.vu[n + i] = u[3 * gn + 1];
                s.vu[2 * n + i] = u[3 * gn + 2];
            }
        } else {
            let mk = &plan.tmask[3 * toff..3 * (toff + n)];
            for (i, &id) in ids.iter().enumerate() {
                let gn = id as usize;
                s.vu[i] = u[3 * gn] * mk[3 * i];
                s.vu[n + i] = u[3 * gn + 1] * mk[3 * i + 1];
                s.vu[2 * n + i] = u[3 * gn + 2] * mk[3 * i + 2];
            }
        }
        let mut cf = ElasticLanes::default();
        for l in 0..w {
            let (hx, hy, hz, lam, mu) = (self.geom)(entry.order[base + l.min(len - 1)]);
            cf.jac[l] = 0.125 * hx * hy * hz;
            cf.g[0][l] = 2.0 / hx;
            cf.g[1][l] = 2.0 / hy;
            cf.g[2][l] = 2.0 / hz;
            cf.lam[l] = lam;
            cf.mu[l] = mu;
            cf.tmu[l] = 2.0 * mu;
        }
        if !batch_elastic_stiffness(
            plan.variant,
            self.basis.n_points(),
            &self.basis.d,
            &self.basis.wgll3,
            &cf,
            &s.vu,
            &mut s.vgrad,
            &mut s.vflux,
            &mut s.vout,
        ) {
            for pos in base..base + len {
                self.elem(entry, pos, u, s, out);
            }
            return;
        }
        if len == w {
            for (i, &id) in ids.iter().enumerate() {
                let gn = id as usize;
                for comp in 0..3 {
                    let dof = 3 * gn + comp;
                    out[dof] += s.vout[comp * n + i] * self.inv_mass[dof];
                }
            }
        } else {
            // padded tail: scatter only the valid lanes
            for q in 0..npe {
                let row = q * w;
                for l in 0..len {
                    let gn = ids[row + l] as usize;
                    for comp in 0..3 {
                        let dof = 3 * gn + comp;
                        out[dof] += s.vout[comp * n + row + l] * self.inv_mass[dof];
                    }
                }
            }
        }
    }

    /// Serial walk of an entry (see [`AcousticEngine::run_serial`]).
    pub(crate) fn run_serial(
        &self,
        entry: &CompiledGather,
        u: &[f64],
        s: &mut crate::elastic::Scratch,
        out: &mut [f64],
    ) {
        match entry.simd.as_ref() {
            Some(plan) => {
                for unit in 0..plan.unit_base.len() {
                    self.unit(entry, plan, unit, u, s, out);
                }
            }
            None => {
                for pos in 0..entry.order.len() {
                    self.elem(entry, pos, u, s, out);
                }
            }
        }
    }

    /// Colour-phased threaded walk (see [`AcousticEngine::run_threads`]).
    pub(crate) fn run_threads(
        &self,
        entry: &CompiledGather,
        u: &[f64],
        par: &mut [crate::elastic::Scratch],
        out: &mut [f64],
    ) {
        match entry.simd.as_ref() {
            Some(plan) => {
                crate::parallel::par_colored(out, &plan.unit_off, par, |unit, s, o| {
                    self.unit(entry, plan, unit, u, s, o);
                });
            }
            None => {
                crate::parallel::par_colored(out, &entry.color_off, par, |pos, s, o| {
                    self.elem(entry, pos, u, s, o);
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_compiles_once_per_level_and_list() {
        // toy adjacency: element e targets {e, e+1} (a chain)
        let mut targets = |e: u32, out: &mut Vec<u32>| {
            out.clear();
            out.push(e);
            out.push(e + 1);
        };
        let mut builds = 0usize;
        let mut cache = GatherCache::default();
        let elems: Vec<u32> = (0..6).collect();
        for _ in 0..3 {
            let mut fill = |order: &[u32], idx: &mut Vec<u32>, _mask: &mut Vec<f64>| {
                builds += 1;
                idx.extend_from_slice(order);
            };
            let i = cache.get_or_build(0, &elems, 7, &mut targets, &mut fill);
            assert_eq!(i, 0);
        }
        assert_eq!(builds, 1, "entry must be compiled exactly once");
        // a different list is a different entry
        let sub: Vec<u32> = vec![1, 3];
        let mut fill = |order: &[u32], idx: &mut Vec<u32>, _mask: &mut Vec<f64>| {
            idx.extend_from_slice(order);
        };
        let j = cache.get_or_build(0, &sub, 7, &mut targets, &mut fill);
        assert_eq!(j, 1);
        // the full-mesh sentinel matches without a key comparison
        let k = cache.get_or_build(FULL_LEVEL, &elems, 7, &mut targets, &mut fill);
        assert_eq!(cache.find(FULL_LEVEL, &[]), Some(k));
    }

    #[test]
    fn simd_plan_units_respect_colours_and_transpose() {
        let npe = 2usize;
        // two colours: 5 + 3 elements; idx[pos] = [10·pos, 10·pos + 1]
        let color_off = vec![0u32, 5, 8];
        let idx: Vec<u32> = (0..8u32).flat_map(|p| [10 * p, 10 * p + 1]).collect();
        let mask: Vec<f64> = (0..8)
            .flat_map(|p| [1.0, if p % 2 == 0 { 1.0 } else { 0.0 }])
            .collect();
        let plan = SimdPlan::build(&color_off, &idx, &mask, npe, 1, KernelVariant::Avx2);
        assert_eq!(plan.lanes, 4);
        // colour 0 → one full unit + one 1-element tail; colour 1 → one tail
        assert_eq!(plan.unit_off, vec![0, 2, 3]);
        assert_eq!(plan.unit_base, vec![0, 4, 5]);
        assert_eq!(plan.unit_len, vec![4, 1, 3]);
        assert_eq!(plan.unit_toff, vec![0, 8, 16]);
        // transposed: node q of lanes 0..4, contiguous; tail units pad the
        // missing lanes with their last element (positions 4 and 7)
        assert_eq!(
            plan.tidx,
            vec![
                0, 10, 20, 30, 1, 11, 21, 31, // full unit, positions 0-3
                40, 40, 40, 40, 41, 41, 41, 41, // 1-element tail, padded
                50, 60, 70, 70, 51, 61, 71, 71, // 3-element tail, padded
            ]
        );
        assert_eq!(
            plan.tmask,
            vec![
                1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 0.0, //
                1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, //
                1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0,
            ]
        );
        // scalar variant → no plan
        let mut cache = GatherCache::default();
        cache.entries.push(CompiledGather {
            level: 0,
            key: vec![],
            order: (0..8).collect(),
            color_off,
            idx,
            mask,
            simd: None,
        });
        cache.ensure_plan(0, npe, 1, KernelVariant::Avx2);
        assert!(cache.entry(0).simd.is_some());
        cache.ensure_plan(0, npe, 1, KernelVariant::Scalar);
        assert!(cache.entry(0).simd.is_none());
    }

    #[test]
    fn compiled_order_is_colour_major_and_complete() {
        let mut targets = |e: u32, out: &mut Vec<u32>| {
            out.clear();
            out.push(e / 2); // pairs (0,1), (2,3), … conflict
        };
        let elems: Vec<u32> = (0..8).collect();
        let mut cache = GatherCache::default();
        let mut fill = |_: &[u32], _: &mut Vec<u32>, _: &mut Vec<f64>| {};
        let i = cache.get_or_build(0, &elems, 4, &mut targets, &mut fill);
        let en = cache.entry(i);
        assert_eq!(en.color_off, vec![0, 4, 8]);
        assert_eq!(en.order, vec![0, 2, 4, 6, 1, 3, 5, 7]);
        let mut all: Vec<u32> = en.order.clone();
        all.sort_unstable();
        assert_eq!(all, elems);
    }
}
