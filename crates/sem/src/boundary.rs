//! Absorbing boundaries.
//!
//! The paper imposes absorbing conditions on the vertical and lower
//! boundaries (free surface on top). The cheapest scheme compatible with the
//! staggered Newmark update — and with LTS sub-stepping, where the taper is
//! applied once per global step — is a sponge layer: velocities are damped by
//! a smooth exponential profile in a shell near the absorbing faces.

use crate::dofmap::DofMap;
use lts_mesh::HexMesh;

/// Which faces absorb (the paper's setup: all but the top `z` face).
#[derive(Debug, Clone, Copy)]
pub struct AbsorbingFaces {
    pub x_lo: bool,
    pub x_hi: bool,
    pub y_lo: bool,
    pub y_hi: bool,
    pub z_lo: bool,
    pub z_hi: bool,
}

impl AbsorbingFaces {
    /// Free surface on top, absorbing everywhere else (the paper's setup).
    pub fn seismic() -> Self {
        AbsorbingFaces {
            x_lo: true,
            x_hi: true,
            y_lo: true,
            y_hi: true,
            z_lo: true,
            z_hi: false,
        }
    }
}

/// Per-DOF exponential velocity damping factors.
#[derive(Debug, Clone)]
pub struct Sponge {
    /// Multiplier applied to `v` once per global step; 1.0 outside the layer.
    pub factor: Vec<f64>,
}

impl Sponge {
    /// Build a sponge of physical `width` and peak damping rate `gamma`
    /// (per unit time) for a scalar field; `dt` is the step at which the
    /// taper will be applied.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mesh: &HexMesh,
        dofmap: &DofMap,
        gll_points: &[f64],
        faces: AbsorbingFaces,
        width: f64,
        gamma: f64,
        dt: f64,
        dofs_per_node: usize,
    ) -> Self {
        assert!(width > 0.0 && gamma >= 0.0 && dt > 0.0);
        let planes = |coords: &[f64], n: usize| -> Vec<f64> {
            let mut out = Vec::new();
            for e in 0..n {
                let (lo, hi) = (coords[e], coords[e + 1]);
                for (a, &xi) in gll_points.iter().enumerate() {
                    if e > 0 && a == 0 {
                        continue;
                    }
                    out.push(lo + 0.5 * (xi + 1.0) * (hi - lo));
                }
            }
            out
        };
        let px = planes(&mesh.xs, mesh.nx);
        let py = planes(&mesh.ys, mesh.ny);
        let pz = planes(&mesh.zs, mesh.nz);
        let ((x0, x1), (y0, y1), (z0, z1)) = mesh.domain_extent();

        // smooth ramp: 0 at the layer's inner edge, 1 at the face
        let ramp = |d: f64| -> f64 {
            if d >= width {
                0.0
            } else {
                let s = 1.0 - d / width;
                s * s
            }
        };
        let mut factor = Vec::with_capacity(dofmap.n_nodes() * dofs_per_node);
        for iz in 0..dofmap.gz {
            for iy in 0..dofmap.gy {
                for ix in 0..dofmap.gx {
                    let (x, y, z) = (px[ix], py[iy], pz[iz]);
                    let mut r = 0.0f64;
                    if faces.x_lo {
                        r = r.max(ramp(x - x0));
                    }
                    if faces.x_hi {
                        r = r.max(ramp(x1 - x));
                    }
                    if faces.y_lo {
                        r = r.max(ramp(y - y0));
                    }
                    if faces.y_hi {
                        r = r.max(ramp(y1 - y));
                    }
                    if faces.z_lo {
                        r = r.max(ramp(z - z0));
                    }
                    if faces.z_hi {
                        r = r.max(ramp(z1 - z));
                    }
                    let f = (-gamma * r * dt).exp();
                    for _ in 0..dofs_per_node {
                        factor.push(f);
                    }
                }
            }
        }
        Sponge { factor }
    }

    /// Apply the taper to a velocity field (call once per global step).
    pub fn apply(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.factor.len());
        for (vi, f) in v.iter_mut().zip(&self.factor) {
            *vi *= f;
        }
    }

    /// Restrict the taper to DOFs integrated at the coarsest level
    /// (`leaf_level == 0`). **Required when stepping with LTS**: the
    /// velocity-recovery formula (Eq. 14) relies on the time-reversibility
    /// of the undamped auxiliary system, and externally damping `v` on
    /// sub-stepped DOFs injects energy instead of removing it (measured: a
    /// 0.97 per-step taper on fine DOFs grows ~10^18× over 300 steps, while
    /// plain Newmark damps benignly). Physically the restriction is
    /// harmless — absorbing boundaries sit on the outer/lower faces, which
    /// are coarse; waves entering the sponge still decay in the coarse part.
    pub fn restrict_to_coarse(&mut self, leaf_level: &[u8]) {
        assert_eq!(leaf_level.len(), self.factor.len());
        for (f, &l) in self.factor.iter_mut().zip(leaf_level) {
            if l != 0 {
                *f = 1.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gll::GllBasis;

    fn setup() -> (HexMesh, DofMap, GllBasis) {
        let m = HexMesh::uniform(4, 4, 4, 1.0, 1.0);
        let d = DofMap::new(&m, 2);
        let b = GllBasis::new(2);
        (m, d, b)
    }

    #[test]
    fn interior_is_untouched() {
        let (m, d, b) = setup();
        let sp = Sponge::new(
            &m,
            &d,
            &b.points,
            AbsorbingFaces::seismic(),
            1.0,
            2.0,
            0.1,
            1,
        );
        let center = d.global_node(d.gx / 2, d.gy / 2, d.gz / 2) as usize;
        assert_eq!(sp.factor[center], 1.0);
    }

    #[test]
    fn free_surface_untouched_boundaries_damped() {
        let (m, d, b) = setup();
        let sp = Sponge::new(
            &m,
            &d,
            &b.points,
            AbsorbingFaces::seismic(),
            1.0,
            2.0,
            0.1,
            1,
        );
        // top face (z_hi) is free
        let top = d.global_node(d.gx / 2, d.gy / 2, d.gz - 1) as usize;
        assert_eq!(sp.factor[top], 1.0);
        // bottom face absorbs
        let bottom = d.global_node(d.gx / 2, d.gy / 2, 0) as usize;
        assert!(sp.factor[bottom] < 1.0);
        // vertical faces absorb
        let side = d.global_node(0, d.gy / 2, d.gz / 2) as usize;
        assert!(sp.factor[side] < 1.0);
    }

    #[test]
    fn apply_damps_velocity() {
        let (m, d, b) = setup();
        let sp = Sponge::new(
            &m,
            &d,
            &b.points,
            AbsorbingFaces::seismic(),
            1.0,
            5.0,
            0.5,
            1,
        );
        let mut v = vec![1.0; d.n_nodes()];
        sp.apply(&mut v);
        let bottom = d.global_node(0, 0, 0) as usize;
        assert!(v[bottom] < 0.3);
        let center = d.global_node(d.gx / 2, d.gy / 2, d.gz / 2) as usize;
        assert_eq!(v[center], 1.0);
    }

    #[test]
    fn vector_fields_replicate_factors() {
        let (m, d, b) = setup();
        let sp = Sponge::new(
            &m,
            &d,
            &b.points,
            AbsorbingFaces::seismic(),
            1.0,
            2.0,
            0.1,
            3,
        );
        assert_eq!(sp.factor.len(), 3 * d.n_nodes());
        for g in 0..d.n_nodes() {
            assert_eq!(sp.factor[3 * g], sp.factor[3 * g + 1]);
            assert_eq!(sp.factor[3 * g], sp.factor[3 * g + 2]);
        }
    }
}
