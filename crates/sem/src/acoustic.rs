//! The scalar (acoustic) wave operator: `ρ ü = ∇·(μ ∇u)` with `μ = ρc²`,
//! discretized by SEM on axis-aligned hexahedra.
//!
//! `A = M⁻¹K` is applied matrix-free per element with sum-factorised
//! tensor-product contractions; the mass matrix is diagonal by GLL
//! quadrature. Implements [`lts_core::Operator`] (full and *masked* products)
//! and [`lts_core::DofTopology`] so both Newmark and LTS-Newmark drive it
//! directly.

use crate::compiled::{AcousticEngine, GatherCache, ScalarScratch, ScalarWs, FULL_LEVEL};
use crate::dofmap::DofMap;
use crate::gll::GllBasis;
use lts_core::{DofTopology, Operator, Workspace};
use lts_mesh::HexMesh;

/// Matrix-free SEM operator for the scalar wave equation.
pub struct AcousticOperator {
    pub dofmap: DofMap,
    pub basis: GllBasis,
    /// Per-axis cell sizes.
    hx: Vec<f64>,
    hy: Vec<f64>,
    hz: Vec<f64>,
    /// Per-element stiffness coefficient `μ_e = ρ_e c_e²`.
    mu: Vec<f64>,
    /// Global diagonal mass (in the external numbering).
    mass: Vec<f64>,
    /// Reciprocal mass, so the scatter multiplies instead of divides.
    inv_mass: Vec<f64>,
    /// Optional DOF renumbering `new = perm[natural]` (p-level grouping,
    /// Sec. IV-D).
    perm: Option<Vec<u32>>,
}

/// Workspace slot of the structured acoustic operator.
struct AcousticWs(ScalarWs);

impl AcousticOperator {
    pub fn new(mesh: &HexMesh, order: usize) -> Self {
        let dofmap = DofMap::new(mesh, order);
        let basis = GllBasis::new(order);
        let hx: Vec<f64> = mesh.xs.windows(2).map(|w| w[1] - w[0]).collect();
        let hy: Vec<f64> = mesh.ys.windows(2).map(|w| w[1] - w[0]).collect();
        let hz: Vec<f64> = mesh.zs.windows(2).map(|w| w[1] - w[0]).collect();
        let ne = mesh.n_elems();
        let mu: Vec<f64> = (0..ne)
            .map(|e| mesh.density[e] * mesh.velocity[e] * mesh.velocity[e])
            .collect();

        // diagonal mass: M_g = Σ_e ρ_e w_a w_b w_c J_e
        let mut mass = vec![0.0; dofmap.n_nodes()];
        let np = basis.n_points();
        for e in 0..ne as u32 {
            let (ei, ej, ek) = dofmap.elem_ijk(e);
            let jac = 0.125 * hx[ei] * hy[ej] * hz[ek];
            let rho = mesh.density[e as usize];
            for c in 0..np {
                for b in 0..np {
                    let wbc = basis.weights[b] * basis.weights[c];
                    for a in 0..np {
                        let g = dofmap.elem_node(ei, ej, ek, a, b, c) as usize;
                        mass[g] += rho * basis.weights[a] * wbc * jac;
                    }
                }
            }
        }
        let inv_mass = mass.iter().map(|&m| 1.0 / m).collect();
        AcousticOperator {
            dofmap,
            basis,
            hx,
            hy,
            hz,
            mu,
            mass,
            inv_mass,
            perm: None,
        }
    }

    /// Renumber the DOFs with `new = perm[natural]` (see
    /// `LtsSetup::grouping_permutation`); the mass diagonal and all
    /// gather/scatter indices switch to the new numbering.
    pub fn set_permutation(&mut self, perm: &[u32]) {
        assert_eq!(perm.len(), self.dofmap.n_nodes());
        assert!(self.perm.is_none(), "permutation already set");
        let mut mass = vec![0.0; self.mass.len()];
        for (old, &new) in perm.iter().enumerate() {
            mass[new as usize] = self.mass[old];
        }
        self.mass = mass;
        self.inv_mass = self.mass.iter().map(|&m| 1.0 / m).collect();
        self.perm = Some(perm.to_vec());
    }

    #[inline]
    fn gid(&self, natural: u32) -> usize {
        match &self.perm {
            Some(p) => p[natural as usize] as usize,
            None => natural as usize,
        }
    }

    /// `out[g] += (K_e loc)_g / mass[g]` for one element's local values.
    #[allow(clippy::too_many_arguments)]
    fn elem_stiffness_scatter(
        &self,
        e: u32,
        loc: &[f64],
        tmp: &mut [f64],
        der: &mut [f64],
        out: &mut [f64],
    ) {
        let np = self.basis.n_points();
        let (ei, ej, ek) = self.dofmap.elem_ijk(e);
        let (hx, hy, hz) = (self.hx[ei], self.hy[ej], self.hz[ek]);
        crate::kernel::scalar_stiffness(
            &self.basis,
            hx,
            hy,
            hz,
            self.mu[e as usize],
            loc,
            tmp,
            der,
        );
        // scatter with M⁻¹
        let mut li = 0usize;
        for c in 0..np {
            for b in 0..np {
                for a in 0..np {
                    let g = self.gid(self.dofmap.elem_node(ei, ej, ek, a, b, c));
                    out[g] += tmp[li] * self.inv_mass[g];
                    li += 1;
                }
            }
        }
    }

    /// Public wrapper for the coloured parallel driver.
    pub(crate) fn gather_pub(&self, e: u32, u: &[f64], loc: &mut [f64]) {
        self.gather(e, u, loc);
    }

    /// Public wrapper for the coloured parallel driver.
    pub(crate) fn elem_stiffness_scatter_pub(
        &self,
        e: u32,
        loc: &[f64],
        tmp: &mut [f64],
        der: &mut [f64],
        out: &mut [f64],
    ) {
        self.elem_stiffness_scatter(e, loc, tmp, der, out);
    }

    fn gather(&self, e: u32, u: &[f64], loc: &mut [f64]) {
        let np = self.basis.n_points();
        let (ei, ej, ek) = self.dofmap.elem_ijk(e);
        let mut li = 0usize;
        for c in 0..np {
            for b in 0..np {
                for a in 0..np {
                    loc[li] = u[self.gid(self.dofmap.elem_node(ei, ej, ek, a, b, c))];
                    li += 1;
                }
            }
        }
    }

    /// Fetch or compile the colour-major gather entry for `(level, elems)`.
    fn compiled_entry(
        &self,
        cache: &mut GatherCache,
        key_level: u16,
        elems: &[u32],
        dof_level: Option<(&[u8], u8)>,
    ) -> usize {
        let npe = self.dofmap.nodes_per_elem();
        cache.get_or_build(
            key_level,
            elems,
            self.dofmap.n_nodes(),
            &mut |e, out| DofTopology::elem_dofs(self, e, out),
            &mut |order, idx, mask| {
                let mut nodes = Vec::with_capacity(npe);
                for &e in order {
                    DofTopology::elem_dofs(self, e, &mut nodes);
                    if let Some((lvl, k)) = dof_level {
                        for &g in &nodes {
                            mask.push(if lvl[g as usize] == k { 1.0 } else { 0.0 });
                        }
                    }
                    idx.extend_from_slice(&nodes);
                }
            },
        )
    }

    /// The shared execution engine over this operator's geometry.
    fn engine(&self) -> AcousticEngine<'_, impl Fn(u32) -> (f64, f64, f64, f64) + Sync + '_> {
        AcousticEngine {
            basis: &self.basis,
            inv_mass: &self.inv_mass,
            npe: self.dofmap.nodes_per_elem(),
            geom: move |e: u32| {
                let (ei, ej, ek) = self.dofmap.elem_ijk(e);
                (self.hx[ei], self.hy[ej], self.hz[ek], self.mu[e as usize])
            },
        }
    }
}

impl DofTopology for AcousticOperator {
    fn n_dofs(&self) -> usize {
        self.dofmap.n_nodes()
    }

    fn n_elems(&self) -> usize {
        self.dofmap.n_elems()
    }

    fn elem_dofs(&self, e: u32, out: &mut Vec<u32>) {
        self.dofmap.elem_nodes(e, out);
        if self.perm.is_some() {
            for d in out.iter_mut() {
                *d = self.gid(*d) as u32;
            }
        }
    }
}

impl Operator for AcousticOperator {
    fn ndof(&self) -> usize {
        self.dofmap.n_nodes()
    }

    fn apply_ws(&self, u: &[f64], out: &mut [f64], ws: &mut Workspace) {
        out.fill(0.0);
        let npe = self.dofmap.nodes_per_elem();
        let st = ws.get_or_insert_with(|| AcousticWs(ScalarWs::new(npe)));
        let i = match st.0.cache.find(FULL_LEVEL, &[]) {
            Some(i) => i,
            None => {
                let all: Vec<u32> = (0..self.dofmap.n_elems() as u32).collect();
                self.compiled_entry(&mut st.0.cache, FULL_LEVEL, &all, None)
            }
        };
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, npe, 1, variant);
        st.0.serial.ensure_lanes(npe, variant.lanes());
        let ScalarWs { cache, serial, .. } = &mut st.0;
        self.engine().run_serial(cache.entry(i), u, serial, out);
    }

    fn apply_masked_ws(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
    ) {
        let npe = self.dofmap.nodes_per_elem();
        let st = ws.get_or_insert_with(|| AcousticWs(ScalarWs::new(npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, npe, 1, variant);
        st.0.serial.ensure_lanes(npe, variant.lanes());
        let ScalarWs { cache, serial, .. } = &mut st.0;
        self.engine().run_serial(cache.entry(i), u, serial, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_masked_threads(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
        threads: usize,
    ) {
        if threads <= 1 {
            return self.apply_masked_ws(u, out, elems, dof_level, level, ws);
        }
        let npe = self.dofmap.nodes_per_elem();
        let st = ws.get_or_insert_with(|| AcousticWs(ScalarWs::new(npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, npe, 1, variant);
        let ScalarWs { cache, par, .. } = &mut st.0;
        if par.len() < threads {
            par.resize_with(threads, || ScalarScratch::new(npe));
        }
        for sc in par.iter_mut() {
            sc.ensure_lanes(npe, variant.lanes());
        }
        self.engine()
            .run_threads(cache.entry(i), u, &mut par[..threads], out);
    }

    fn precompile_masked(&self, elems: &[u32], dof_level: &[u8], level: u8, ws: &mut Workspace) {
        let npe = self.dofmap.nodes_per_elem();
        let st = ws.get_or_insert_with(|| AcousticWs(ScalarWs::new(npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        // warm the SIMD plan too, so no transpose happens mid-run
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, npe, 1, variant);
        st.0.serial.ensure_lanes(npe, variant.lanes());
    }

    fn mass(&self) -> &[f64] {
        &self.mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_op(order: usize) -> (HexMesh, AcousticOperator) {
        let m = HexMesh::uniform(2, 2, 2, 1.5, 1.2);
        let op = AcousticOperator::new(&m, order);
        (m, op)
    }

    #[test]
    fn total_mass_is_density_times_volume() {
        let (_m, op) = small_op(4);
        let total: f64 = op.mass.iter().sum();
        let volume = 2.0 * 2.0 * 2.0;
        assert!((total - 1.2 * volume).abs() < 1e-10, "{total}");
        assert!(op.mass.iter().all(|&mg| mg > 0.0));
    }

    #[test]
    fn constant_field_in_kernel() {
        // K·const = 0 (pure Neumann operator annihilates constants)
        let (_, op) = small_op(4);
        let u = vec![3.7; op.dofmap.n_nodes()];
        let mut out = vec![0.0; op.dofmap.n_nodes()];
        op.apply(&u, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert!(o.abs() < 1e-10, "dof {i}: {o}");
        }
    }

    #[test]
    fn linear_field_interior_residual_zero() {
        // u = x is in the SEM space; K·x has only (free-)boundary rows
        // nonzero... with natural BC, ∫μ∇φ·∇u = boundary flux term which is
        // nonzero only for boundary basis functions on x-faces.
        let m = HexMesh::uniform(3, 2, 2, 1.0, 1.0);
        let op = AcousticOperator::new(&m, 3);
        let b = GllBasis::new(3);
        let d = &op.dofmap;
        let mut u = vec![0.0; d.n_nodes()];
        // physical x of global plane index
        let mut px = Vec::new();
        for e in 0..3 {
            for (a, &xi) in b.points.iter().enumerate() {
                if e > 0 && a == 0 {
                    continue;
                }
                px.push(e as f64 + 0.5 * (xi + 1.0));
            }
        }
        for iz in 0..d.gz {
            for iy in 0..d.gy {
                for ix in 0..d.gx {
                    u[d.global_node(ix, iy, iz) as usize] = px[ix];
                }
            }
        }
        let mut out = vec![0.0; d.n_nodes()];
        op.apply(&u, &mut out);
        for iz in 0..d.gz {
            for iy in 0..d.gy {
                for ix in 1..d.gx - 1 {
                    let g = d.global_node(ix, iy, iz) as usize;
                    assert!(out[g].abs() < 1e-9, "interior ({ix},{iy},{iz}): {}", out[g]);
                }
            }
        }
        // boundary x-faces see the flux
        let g0 = d.global_node(0, 1, 1) as usize;
        assert!(out[g0].abs() > 1e-6);
    }

    #[test]
    fn operator_is_symmetric_in_m_inner_product() {
        // (M A u)·w = (M A w)·u since K is symmetric
        let (_, op) = small_op(3);
        let n = op.dofmap.n_nodes();
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 83 % 17) as f64) / 17.0 - 0.5)
            .collect();
        let w: Vec<f64> = (0..n)
            .map(|i| ((i * 29 % 13) as f64) / 13.0 - 0.5)
            .collect();
        let mut au = vec![0.0; n];
        let mut aw = vec![0.0; n];
        op.apply(&u, &mut au);
        op.apply(&w, &mut aw);
        let lhs: f64 = (0..n).map(|i| op.mass[i] * au[i] * w[i]).sum();
        let rhs: f64 = (0..n).map(|i| op.mass[i] * aw[i] * u[i]).sum();
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn operator_is_positive_semidefinite() {
        let (_, op) = small_op(2);
        let n = op.dofmap.n_nodes();
        for seed in 0..5u64 {
            let u: Vec<f64> = (0..n)
                .map(|i| {
                    (((i as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(seed)
                        >> 33) as f64
                        / 2.0_f64.powi(31))
                        - 0.5
                })
                .collect();
            let mut au = vec![0.0; n];
            op.apply(&u, &mut au);
            let q: f64 = (0..n).map(|i| op.mass[i] * au[i] * u[i]).sum();
            assert!(q > -1e-10, "uᵀKu = {q}");
        }
    }

    #[test]
    fn masked_sum_equals_full_apply() {
        use lts_core::LtsSetup;
        use lts_mesh::Levels;
        let mut m = HexMesh::uniform(4, 2, 2, 1.0, 1.0);
        m.paint_box((3, 4), (0, 2), (0, 2), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        let op = AcousticOperator::new(&m, 3);
        let setup = LtsSetup::new(&op, &lv.elem_level);
        let n = op.dofmap.n_nodes();
        let u: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.13).sin()).collect();
        let mut full = vec![0.0; n];
        op.apply(&u, &mut full);
        let mut sum = vec![0.0; n];
        for k in 0..setup.n_levels {
            op.apply_masked(&u, &mut sum, &setup.elems[k], &setup.dof_level, k as u8);
        }
        for i in 0..n {
            assert!(
                (full[i] - sum[i]).abs() < 1e-11 * (1.0 + full[i].abs()),
                "dof {i}: {} vs {}",
                full[i],
                sum[i]
            );
        }
    }

    #[test]
    fn eigenmode_residual_shrinks_with_order() {
        // u = cos(πx/L) is an approximate eigenfunction with eigenvalue
        // (π/L)²c²; the SEM residual must fall rapidly with order.
        let mut prev = f64::MAX;
        for order in [2usize, 4, 6] {
            let m = HexMesh::uniform(3, 1, 1, 1.0, 1.0);
            let op = AcousticOperator::new(&m, order);
            let b = GllBasis::new(order);
            let d = &op.dofmap;
            let l = 3.0;
            let kx = std::f64::consts::PI / l;
            let mut px = Vec::new();
            for e in 0..3 {
                for (a, &xi) in b.points.iter().enumerate() {
                    if e > 0 && a == 0 {
                        continue;
                    }
                    px.push(e as f64 + 0.5 * (xi + 1.0));
                }
            }
            let n = d.n_nodes();
            let mut u = vec![0.0; n];
            for iz in 0..d.gz {
                for iy in 0..d.gy {
                    for ix in 0..d.gx {
                        u[d.global_node(ix, iy, iz) as usize] = (kx * px[ix]).cos();
                    }
                }
            }
            let mut au = vec![0.0; n];
            op.apply(&u, &mut au);
            let resid: f64 = (0..n)
                .map(|i| (au[i] - kx * kx * u[i]).abs())
                .fold(0.0, f64::max);
            assert!(resid < prev, "order {order}: residual {resid} vs {prev}");
            prev = resid;
        }
        assert!(prev < 1e-6, "order-6 residual {prev}");
    }
}
