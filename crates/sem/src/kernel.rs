//! The shared scalar stiffness kernel: `tmp = K_e · loc` for one
//! axis-aligned brick element, by sum-factorised tensor contractions.
//! Used by both the structured [`crate::acoustic::AcousticOperator`] and the
//! gather-list-based [`crate::unstructured::UnstructuredAcoustic`], so the
//! two produce bitwise-identical element contributions.

use crate::gll::GllBasis;

/// `tmp = K_e loc` for a brick of dimensions `(hx, hy, hz)` and stiffness
/// coefficient `mu` (`= ρc²`). `loc`, `tmp`, `der` are `(order+1)³` scratch
/// arrays in `a`-fastest layout.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
pub fn scalar_stiffness(
    basis: &GllBasis,
    hx: f64,
    hy: f64,
    hz: f64,
    mu: f64,
    loc: &[f64],
    tmp: &mut [f64],
    der: &mut [f64],
) {
    let np = basis.n_points();
    let d = &basis.d;
    let w3 = &basis.wgll3;
    let jac = 0.125 * hx * hy * hz;
    let idx = |a: usize, b: usize, c: usize| a + np * (b + np * c);

    tmp.fill(0.0);

    // x-direction: der = D_ξ loc; tmp += Dᵀ (w μ J gx² der)
    let cx = mu * jac * (2.0 / hx) * (2.0 / hx);
    for c in 0..np {
        for b in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for m in 0..np {
                    s += d[a * np + m] * loc[idx(m, b, c)];
                }
                der[idx(a, b, c)] = s * (cx * w3[idx(a, b, c)]);
            }
        }
    }
    for c in 0..np {
        for b in 0..np {
            for i in 0..np {
                let mut s = 0.0;
                for a in 0..np {
                    s += d[a * np + i] * der[idx(a, b, c)];
                }
                tmp[idx(i, b, c)] += s;
            }
        }
    }

    // y-direction
    let cy = mu * jac * (2.0 / hy) * (2.0 / hy);
    for c in 0..np {
        for b in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for m in 0..np {
                    s += d[b * np + m] * loc[idx(a, m, c)];
                }
                der[idx(a, b, c)] = s * (cy * w3[idx(a, b, c)]);
            }
        }
    }
    for c in 0..np {
        for i in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for b in 0..np {
                    s += d[b * np + i] * der[idx(a, b, c)];
                }
                tmp[idx(a, i, c)] += s;
            }
        }
    }

    // z-direction
    let cz = mu * jac * (2.0 / hz) * (2.0 / hz);
    for c in 0..np {
        for b in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for m in 0..np {
                    s += d[c * np + m] * loc[idx(a, b, m)];
                }
                der[idx(a, b, c)] = s * (cz * w3[idx(a, b, c)]);
            }
        }
    }
    for i in 0..np {
        for b in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for c in 0..np {
                    s += d[c * np + i] * der[idx(a, b, c)];
                }
                tmp[idx(a, b, i)] += s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_in_nullspace() {
        let b = GllBasis::new(3);
        let npe = 4 * 4 * 4;
        let loc = vec![2.5; npe];
        let mut tmp = vec![0.0; npe];
        let mut der = vec![0.0; npe];
        scalar_stiffness(&b, 1.0, 2.0, 0.5, 1.7, &loc, &mut tmp, &mut der);
        for (i, &t) in tmp.iter().enumerate() {
            assert!(t.abs() < 1e-12, "entry {i}: {t}");
        }
    }

    #[test]
    fn scales_linearly_with_mu() {
        let b = GllBasis::new(2);
        let npe = 27;
        let loc: Vec<f64> = (0..npe).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut t1 = vec![0.0; npe];
        let mut t2 = vec![0.0; npe];
        let mut der = vec![0.0; npe];
        scalar_stiffness(&b, 1.0, 1.0, 1.0, 1.0, &loc, &mut t1, &mut der);
        scalar_stiffness(&b, 1.0, 1.0, 1.0, 3.0, &loc, &mut t2, &mut der);
        for i in 0..npe {
            assert!((t2[i] - 3.0 * t1[i]).abs() < 1e-12 * (1.0 + t1[i].abs()));
        }
    }

    #[test]
    fn symmetric_element_matrix() {
        // vᵀ K u == uᵀ K v on the element level
        let b = GllBasis::new(2);
        let npe = 27;
        let u: Vec<f64> = (0..npe).map(|i| ((i * 5 % 11) as f64) / 11.0).collect();
        let v: Vec<f64> = (0..npe).map(|i| ((i * 7 % 13) as f64) / 13.0).collect();
        let mut ku = vec![0.0; npe];
        let mut kv = vec![0.0; npe];
        let mut der = vec![0.0; npe];
        scalar_stiffness(&b, 0.8, 1.1, 1.3, 2.0, &u, &mut ku, &mut der);
        scalar_stiffness(&b, 0.8, 1.1, 1.3, 2.0, &v, &mut kv, &mut der);
        let lhs: f64 = v.iter().zip(&ku).map(|(a, b)| a * b).sum();
        let rhs: f64 = u.iter().zip(&kv).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-11 * lhs.abs().max(1.0));
    }
}
