//! Gauss–Legendre–Lobatto points, weights and the Lagrange derivative
//! matrix on `[-1, 1]`.
//!
//! GLL collocation + GLL quadrature is the defining choice of the SEM: the
//! quadrature is exact for polynomials of degree ≤ 2n−1, slightly
//! under-integrating the degree-2n mass integrand — which is precisely what
//! makes the mass matrix diagonal while retaining spectral convergence.

/// Legendre polynomial `P_n(x)` and its derivative, by the three-term
/// recurrence.
fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let (mut p0, mut p1) = (1.0, x);
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // P'_n from P_n, P_{n-1}
    let dp = if x.abs() < 1.0 {
        n as f64 * (p0 - x * p1) / (1.0 - x * x)
    } else {
        // |x| = 1: P'_n(±1) = ±^{n+1} n(n+1)/2
        let s = if x > 0.0 {
            1.0
        } else {
            (-1.0f64).powi(n as i32 + 1)
        };
        s * n as f64 * (n as f64 + 1.0) / 2.0
    };
    (p1, dp)
}

/// The GLL basis of polynomial order `n` (`n + 1` points).
#[derive(Debug, Clone)]
pub struct GllBasis {
    pub order: usize,
    /// Collocation points in `[-1, 1]`, ascending.
    pub points: Vec<f64>,
    /// Quadrature weights (sum to 2).
    pub weights: Vec<f64>,
    /// Derivative matrix, row-major: `d[i*(n+1)+j] = l'_j(ξ_i)`.
    pub d: Vec<f64>,
    /// Fused 3-D weight table, `a`-fastest:
    /// `wgll3[a + (n+1)(b + (n+1)c)] = w_a·w_b·w_c`. Lets the stiffness
    /// kernels skip the per-node weight products.
    pub wgll3: Vec<f64>,
}

impl GllBasis {
    pub fn new(order: usize) -> Self {
        assert!(
            (1..=16).contains(&order),
            "unsupported polynomial order {order}"
        );
        let n = order;
        let np = n + 1;
        let mut points = vec![0.0; np];
        points[0] = -1.0;
        points[n] = 1.0;
        // interior points: roots of P'_n, seeded from Chebyshev–Gauss–Lobatto
        for i in 1..n {
            let mut x = -(std::f64::consts::PI * i as f64 / n as f64).cos();
            for _ in 0..100 {
                // Newton on f = (1-x²)P'_n(x); f' = -2xP'_n + (1-x²)P''_n
                // use the Legendre ODE: (1-x²)P''_n = 2xP'_n − n(n+1)P_n
                let (p, dp) = legendre(n, x);
                let f = (1.0 - x * x) * dp;
                let fp = 2.0 * x * dp - n as f64 * (n as f64 + 1.0) * p - 2.0 * x * dp;
                // fp = −n(n+1)P_n(x)
                let _ = fp;
                let step = f / (-(n as f64) * (n as f64 + 1.0) * p);
                x -= step;
                if step.abs() < 1e-15 {
                    break;
                }
            }
            points[i] = x;
        }
        // enforce symmetry exactly
        for i in 0..np / 2 {
            let s = 0.5 * (points[i] - points[n - i]);
            points[i] = s;
            points[n - i] = -s;
        }
        if np % 2 == 1 {
            points[n / 2] = 0.0;
        }

        let weights: Vec<f64> = points
            .iter()
            .map(|&x| {
                let (p, _) = legendre(n, x);
                2.0 / (n as f64 * (n as f64 + 1.0) * p * p)
            })
            .collect();

        // derivative matrix
        let mut d = vec![0.0; np * np];
        for i in 0..np {
            let (pi, _) = legendre(n, points[i]);
            for j in 0..np {
                if i == j {
                    continue;
                }
                let (pj, _) = legendre(n, points[j]);
                d[i * np + j] = pi / (pj * (points[i] - points[j]));
            }
        }
        d[0] = -(n as f64) * (n as f64 + 1.0) / 4.0;
        d[np * np - 1] = n as f64 * (n as f64 + 1.0) / 4.0;

        let mut wgll3 = vec![0.0; np * np * np];
        for c in 0..np {
            for b in 0..np {
                for a in 0..np {
                    wgll3[a + np * (b + np * c)] = weights[a] * weights[b] * weights[c];
                }
            }
        }

        GllBasis {
            order: n,
            points,
            weights,
            d,
            wgll3,
        }
    }

    #[inline]
    pub fn n_points(&self) -> usize {
        self.order + 1
    }

    /// `l'_j(ξ_i)`.
    #[inline]
    pub fn deriv(&self, i: usize, j: usize) -> f64 {
        self.d[i * (self.order + 1) + j]
    }

    /// Differentiate nodal values: `out_i = Σ_j D_ij f_j`.
    pub fn differentiate(&self, f: &[f64], out: &mut [f64]) {
        let np = self.n_points();
        for i in 0..np {
            let mut s = 0.0;
            for j in 0..np {
                s += self.d[i * np + j] * f[j];
            }
            out[i] = s;
        }
    }

    /// Integrate nodal values with the GLL rule.
    pub fn integrate(&self, f: &[f64]) -> f64 {
        f.iter().zip(&self.weights).map(|(a, w)| a * w).sum()
    }

    /// Smallest collocation gap on the reference element (between the
    /// endpoint and its neighbour); shrinks like `O(1/n²)`.
    pub fn min_spacing(&self) -> f64 {
        self.points[1] - self.points[0]
    }
}

/// CFL scale for an order-`order` SEM in `dim` dimensions: the mesh-level
/// bound `Δt ≤ C·h/c` must additionally pay the reference-element GLL
/// spacing (`min gap / 2`) and the dimensional factor `1/√dim`. Multiply a
/// corner-mesh `dt_global` by this before time stepping.
pub fn cfl_dt_scale(order: usize, dim: usize) -> f64 {
    let b = GllBasis::new(order);
    0.5 * b.min_spacing() / (dim as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order4_known_points_and_weights() {
        // classical values: 0, ±√(3/7), ±1; weights 32/45, 49/90, 1/10
        let b = GllBasis::new(4);
        let s37 = (3.0f64 / 7.0).sqrt();
        let expect = [-1.0, -s37, 0.0, s37, 1.0];
        for (p, e) in b.points.iter().zip(expect) {
            assert!((p - e).abs() < 1e-14, "{p} vs {e}");
        }
        let we = [0.1, 49.0 / 90.0, 32.0 / 45.0, 49.0 / 90.0, 0.1];
        for (w, e) in b.weights.iter().zip(we) {
            assert!((w - e).abs() < 1e-14, "{w} vs {e}");
        }
    }

    #[test]
    fn order2_is_simpson() {
        let b = GllBasis::new(2);
        assert_eq!(b.points, vec![-1.0, 0.0, 1.0]);
        let we = [1.0 / 3.0, 4.0 / 3.0, 1.0 / 3.0];
        for (w, e) in b.weights.iter().zip(we) {
            assert!((w - e).abs() < 1e-14);
        }
    }

    #[test]
    fn weights_sum_to_two() {
        for n in 1..=10 {
            let b = GllBasis::new(n);
            let s: f64 = b.weights.iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "order {n}: Σw = {s}");
        }
    }

    #[test]
    fn quadrature_exact_to_2n_minus_1() {
        for n in 2..=8 {
            let b = GllBasis::new(n);
            for k in 0..=(2 * n - 1) {
                let f: Vec<f64> = b.points.iter().map(|&x| x.powi(k as i32)).collect();
                let exact = if k % 2 == 1 {
                    0.0
                } else {
                    2.0 / (k as f64 + 1.0)
                };
                assert!((b.integrate(&f) - exact).abs() < 1e-12, "order {n}, ∫x^{k}");
            }
        }
    }

    #[test]
    fn derivative_matrix_exact_on_polynomials() {
        for n in 2..=8 {
            let b = GllBasis::new(n);
            let np = n + 1;
            let mut out = vec![0.0; np];
            for k in 0..=n {
                let f: Vec<f64> = b.points.iter().map(|&x| x.powi(k as i32)).collect();
                b.differentiate(&f, &mut out);
                for (i, &x) in b.points.iter().enumerate() {
                    let exact = if k == 0 {
                        0.0
                    } else {
                        k as f64 * x.powi(k as i32 - 1)
                    };
                    assert!(
                        (out[i] - exact).abs() < 1e-10 * (1.0 + exact.abs()),
                        "order {n}, d/dx x^{k} at point {i}: {} vs {exact}",
                        out[i]
                    );
                }
            }
        }
    }

    #[test]
    fn derivative_rows_sum_to_zero() {
        // d/dx of the constant function is zero
        for n in 1..=10 {
            let b = GllBasis::new(n);
            let np = n + 1;
            for i in 0..np {
                let s: f64 = (0..np).map(|j| b.deriv(i, j)).sum();
                assert!(s.abs() < 1e-11, "order {n} row {i}: {s}");
            }
        }
    }

    #[test]
    fn wgll3_is_the_tensor_weight_product() {
        for n in 1..=6 {
            let b = GllBasis::new(n);
            let np = n + 1;
            assert_eq!(b.wgll3.len(), np * np * np);
            for c in 0..np {
                for bb in 0..np {
                    for a in 0..np {
                        assert_eq!(
                            b.wgll3[a + np * (bb + np * c)],
                            b.weights[a] * b.weights[bb] * b.weights[c],
                            "order {n} at ({a},{bb},{c})"
                        );
                    }
                }
            }
            let s: f64 = b.wgll3.iter().sum();
            assert!((s - 8.0).abs() < 1e-12, "Σ wgll3 = {s} (volume of cube)");
        }
    }

    #[test]
    fn points_ascending_and_symmetric() {
        for n in 1..=12 {
            let b = GllBasis::new(n);
            assert!(b.points.windows(2).all(|w| w[1] > w[0]));
            for i in 0..=n {
                assert!((b.points[i] + b.points[n - i]).abs() < 1e-15);
                assert!((b.weights[i] - b.weights[n - i]).abs() < 1e-14);
            }
        }
    }
}
