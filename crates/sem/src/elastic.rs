//! The isotropic elastic wave operator (Eqs. 1–2): `ρ ü_i = ∂_j σ_ij`,
//! `σ = λ tr(ε) I + 2μ ε`, discretized by SEM on axis-aligned hexahedra.
//!
//! Three displacement components per GLL node, interleaved
//! (`dof = 3·node + comp`), so the LTS level machinery applies per-DOF with
//! no special cases.

use crate::compiled::{ElasticEngine, ElasticScratchWs, GatherCache, FULL_LEVEL};
use crate::dofmap::DofMap;
use crate::gll::GllBasis;
use lts_core::{DofTopology, Operator, Workspace};
use lts_mesh::HexMesh;

/// Matrix-free SEM operator for the elastic wave equation.
pub struct ElasticOperator {
    pub dofmap: DofMap,
    pub basis: GllBasis,
    hx: Vec<f64>,
    hy: Vec<f64>,
    hz: Vec<f64>,
    lambda: Vec<f64>,
    mu: Vec<f64>,
    /// Diagonal mass, one entry per *DOF* (3 per node), external numbering.
    mass: Vec<f64>,
    /// Reciprocal mass, so the scatter multiplies instead of divides.
    inv_mass: Vec<f64>,
    /// Optional node renumbering (p-level grouping); DOF `3g+c` maps to
    /// `3·node_perm[g]+c`.
    node_perm: Option<Vec<u32>>,
}

/// Workspace slot of the structured elastic operator.
struct ElasticWs(ElasticScratchWs);

/// `out[a,b,c] = Σ_m D[a][m] f[m,b,c]` (ξ-derivative).
fn deriv_x(d: &[f64], np: usize, f: &[f64], out: &mut [f64]) {
    for c in 0..np {
        for b in 0..np {
            let base = np * (b + np * c);
            for a in 0..np {
                let mut s = 0.0;
                for m in 0..np {
                    s += d[a * np + m] * f[base + m];
                }
                out[base + a] = s;
            }
        }
    }
}

fn deriv_y(d: &[f64], np: usize, f: &[f64], out: &mut [f64]) {
    for c in 0..np {
        for b in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for m in 0..np {
                    s += d[b * np + m] * f[a + np * (m + np * c)];
                }
                out[a + np * (b + np * c)] = s;
            }
        }
    }
}

fn deriv_z(d: &[f64], np: usize, f: &[f64], out: &mut [f64]) {
    for c in 0..np {
        for b in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for m in 0..np {
                    s += d[c * np + m] * f[a + np * (b + np * m)];
                }
                out[a + np * (b + np * c)] = s;
            }
        }
    }
}

/// `out[i,b,c] += Σ_a D[a][i] f[a,b,c]` (transposed ξ-contraction).
fn deriv_x_t_add(d: &[f64], np: usize, f: &[f64], out: &mut [f64]) {
    for c in 0..np {
        for b in 0..np {
            let base = np * (b + np * c);
            for i in 0..np {
                let mut s = 0.0;
                for a in 0..np {
                    s += d[a * np + i] * f[base + a];
                }
                out[base + i] += s;
            }
        }
    }
}

fn deriv_y_t_add(d: &[f64], np: usize, f: &[f64], out: &mut [f64]) {
    for c in 0..np {
        for i in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for b in 0..np {
                    s += d[b * np + i] * f[a + np * (b + np * c)];
                }
                out[a + np * (i + np * c)] += s;
            }
        }
    }
}

fn deriv_z_t_add(d: &[f64], np: usize, f: &[f64], out: &mut [f64]) {
    for i in 0..np {
        for b in 0..np {
            for a in 0..np {
                let mut s = 0.0;
                for c in 0..np {
                    s += d[c * np + i] * f[a + np * (b + np * c)];
                }
                out[a + np * (b + np * i)] += s;
            }
        }
    }
}

/// `s.out = K_e · s.u` for one brick element of the isotropic elastic
/// operator (shared by the structured and unstructured variants).
// lint: hot-path
pub(crate) fn elastic_stiffness(
    basis: &GllBasis,
    hx: f64,
    hy: f64,
    hz: f64,
    lam: f64,
    mu: f64,
    s: &mut Scratch,
) {
    let np = basis.n_points();
    let npe = np * np * np;
    let d = &basis.d;
    let jac = 0.125 * hx * hy * hz;
    let g = [2.0 / hx, 2.0 / hy, 2.0 / hz];

    // gradients G[comp][axis] = g[axis] · D_axis u_comp
    for comp in 0..3 {
        deriv_x(d, np, &s.u[comp], &mut s.grad[3 * comp]);
        deriv_y(d, np, &s.u[comp], &mut s.grad[3 * comp + 1]);
        deriv_z(d, np, &s.u[comp], &mut s.grad[3 * comp + 2]);
        for axis in 0..3 {
            for v in s.grad[3 * comp + axis].iter_mut() {
                *v *= g[axis];
            }
        }
    }

    for o in s.out.iter_mut() {
        o.fill(0.0);
    }

    // quadrature weight field, from the fused 3-D weight table
    let wq = |i: usize| -> f64 { basis.wgll3[i] * jac };

    // σ components on the fly; out_i += Σ_j D_jᵀ (wJ g_j σ_ij)
    // diagonal stresses
    for comp in 0..3 {
        for q in 0..npe {
            let tr = s.grad[0][q] + s.grad[4][q] + s.grad[8][q];
            let sii = lam * tr + 2.0 * mu * s.grad[3 * comp + comp][q];
            s.flux[q] = wq(q) * g[comp] * sii;
        }
        match comp {
            0 => deriv_x_t_add(d, np, &s.flux, &mut s.out[0]),
            1 => deriv_y_t_add(d, np, &s.flux, &mut s.out[1]),
            _ => deriv_z_t_add(d, np, &s.flux, &mut s.out[2]),
        }
    }
    // shear stresses σ_ij = μ (∂u_i/∂x_j + ∂u_j/∂x_i), i ≠ j:
    // contributes to out_i along axis j and out_j along axis i
    for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
        for q in 0..npe {
            let sij = mu * (s.grad[3 * i + j][q] + s.grad[3 * j + i][q]);
            s.flux[q] = wq(q) * g[j] * sij;
        }
        match j {
            1 => deriv_y_t_add(d, np, &s.flux, &mut s.out[i]),
            _ => deriv_z_t_add(d, np, &s.flux, &mut s.out[i]),
        }
        for q in 0..npe {
            let sij = mu * (s.grad[3 * i + j][q] + s.grad[3 * j + i][q]);
            s.flux[q] = wq(q) * g[i] * sij;
        }
        match i {
            0 => deriv_x_t_add(d, np, &s.flux, &mut s.out[j]),
            _ => deriv_y_t_add(d, np, &s.flux, &mut s.out[j]),
        }
    }
}

pub(crate) struct Scratch {
    pub(crate) u: [Vec<f64>; 3],
    grad: [Vec<f64>; 9], // grad[3*comp + axis]
    flux: Vec<f64>,
    pub(crate) out: [Vec<f64>; 3],
    /// SoA batch buffers of the SIMD path (`npe · lanes` doubles per field,
    /// lane-minor; `vu`/`vout` component-major, `vgrad` `(3·comp+axis)`-major).
    pub(crate) vu: Vec<f64>,
    pub(crate) vgrad: Vec<f64>,
    pub(crate) vflux: Vec<f64>,
    pub(crate) vout: Vec<f64>,
}

impl Scratch {
    pub(crate) fn new(npe: usize) -> Self {
        let z = || vec![0.0; npe];
        Scratch {
            u: [z(), z(), z()],
            grad: [z(), z(), z(), z(), z(), z(), z(), z(), z()],
            flux: z(),
            out: [z(), z(), z()],
            vu: Vec::new(),
            vgrad: Vec::new(),
            vflux: Vec::new(),
            vout: Vec::new(),
        }
    }

    /// Size the batch buffers for `lanes`-wide units (outside the hot loop).
    pub(crate) fn ensure_lanes(&mut self, npe: usize, lanes: usize) {
        let n = npe * lanes;
        if lanes > 1 && self.vflux.len() < n {
            self.vu.resize(3 * n, 0.0);
            self.vgrad.resize(9 * n, 0.0);
            self.vflux.resize(n, 0.0);
            self.vout.resize(3 * n, 0.0);
        }
    }
}

impl ElasticOperator {
    /// `vs_over_vp` sets the shear speed; the default Poisson solid
    /// (λ = μ) has `vs/vp = 1/√3`.
    pub fn new(mesh: &HexMesh, order: usize, vs_over_vp: f64) -> Self {
        assert!(
            vs_over_vp > 0.0 && vs_over_vp < std::f64::consts::FRAC_1_SQRT_2,
            "vs/vp must lie in (0, 1/√2) for positive λ"
        );
        let dofmap = DofMap::new(mesh, order);
        let basis = GllBasis::new(order);
        let hx: Vec<f64> = mesh.xs.windows(2).map(|w| w[1] - w[0]).collect();
        let hy: Vec<f64> = mesh.ys.windows(2).map(|w| w[1] - w[0]).collect();
        let hz: Vec<f64> = mesh.zs.windows(2).map(|w| w[1] - w[0]).collect();
        let ne = mesh.n_elems();
        let mut lambda = Vec::with_capacity(ne);
        let mut mu = Vec::with_capacity(ne);
        for e in 0..ne {
            let rho = mesh.density[e];
            let vp = mesh.velocity[e];
            let vs = vp * vs_over_vp;
            let m = rho * vs * vs;
            mu.push(m);
            lambda.push(rho * vp * vp - 2.0 * m);
        }
        let np = basis.n_points();
        let mut mass = vec![0.0; 3 * dofmap.n_nodes()];
        for e in 0..ne as u32 {
            let (ei, ej, ek) = dofmap.elem_ijk(e);
            let jac = 0.125 * hx[ei] * hy[ej] * hz[ek];
            let rho = mesh.density[e as usize];
            for c in 0..np {
                for b in 0..np {
                    let wbc = basis.weights[b] * basis.weights[c];
                    for a in 0..np {
                        let g = dofmap.elem_node(ei, ej, ek, a, b, c) as usize;
                        let m = rho * basis.weights[a] * wbc * jac;
                        mass[3 * g] += m;
                        mass[3 * g + 1] += m;
                        mass[3 * g + 2] += m;
                    }
                }
            }
        }
        let inv_mass = mass.iter().map(|&m| 1.0 / m).collect();
        ElasticOperator {
            dofmap,
            basis,
            hx,
            hy,
            hz,
            lambda,
            mu,
            mass,
            inv_mass,
            node_perm: None,
        }
    }

    /// Renumber the DOFs with a `grouping_permutation` over the 3n DOFs.
    /// All three components of a node share a leaf level, so the DOF
    /// permutation factors through a node permutation — asserted here.
    pub fn set_permutation(&mut self, perm: &[u32]) {
        let nn = self.dofmap.n_nodes();
        assert_eq!(perm.len(), 3 * nn);
        assert!(self.node_perm.is_none(), "permutation already set");
        let mut node_perm = vec![0u32; nn];
        for g in 0..nn {
            assert_eq!(perm[3 * g] % 3, 0, "permutation does not factor over nodes");
            assert_eq!(perm[3 * g + 1], perm[3 * g] + 1);
            assert_eq!(perm[3 * g + 2], perm[3 * g] + 2);
            node_perm[g] = perm[3 * g] / 3;
        }
        let mut mass = vec![0.0; self.mass.len()];
        for (old, &new) in perm.iter().enumerate() {
            mass[new as usize] = self.mass[old];
        }
        self.mass = mass;
        self.inv_mass = self.mass.iter().map(|&m| 1.0 / m).collect();
        self.node_perm = Some(node_perm);
    }

    #[inline]
    fn gid(&self, natural: u32) -> usize {
        match &self.node_perm {
            Some(p) => p[natural as usize] as usize,
            None => natural as usize,
        }
    }

    /// The Poisson-solid default (`λ = μ`).
    pub fn poisson(mesh: &HexMesh, order: usize) -> Self {
        Self::new(mesh, order, 1.0 / 3.0f64.sqrt())
    }

    /// Post-permutation global node ids of element `e`, `a`-fastest.
    fn elem_gids(&self, e: u32, out: &mut Vec<u32>) {
        out.clear();
        let np = self.basis.n_points();
        let (ei, ej, ek) = self.dofmap.elem_ijk(e);
        for c in 0..np {
            for b in 0..np {
                for a in 0..np {
                    out.push(self.gid(self.dofmap.elem_node(ei, ej, ek, a, b, c)) as u32);
                }
            }
        }
    }

    /// Fetch or compile the colour-major gather entry for `(level, elems)`.
    /// `idx` holds node ids; masks carry 3 entries per node (one per
    /// component).
    fn compiled_entry(
        &self,
        cache: &mut GatherCache,
        key_level: u16,
        elems: &[u32],
        dof_level: Option<(&[u8], u8)>,
    ) -> usize {
        let npe = self.dofmap.nodes_per_elem();
        cache.get_or_build(
            key_level,
            elems,
            self.dofmap.n_nodes(),
            &mut |e, out| self.elem_gids(e, out),
            &mut |order, idx, mask| {
                let mut nodes = Vec::with_capacity(npe);
                for &e in order {
                    self.elem_gids(e, &mut nodes);
                    if let Some((lvl, k)) = dof_level {
                        for &gn in &nodes {
                            for comp in 0..3 {
                                let dof = 3 * gn as usize + comp;
                                mask.push(if lvl[dof] == k { 1.0 } else { 0.0 });
                            }
                        }
                    }
                    idx.extend_from_slice(&nodes);
                }
            },
        )
    }

    /// The shared execution engine over this operator's geometry.
    fn engine(&self) -> ElasticEngine<'_, impl Fn(u32) -> (f64, f64, f64, f64, f64) + Sync + '_> {
        ElasticEngine {
            basis: &self.basis,
            inv_mass: &self.inv_mass,
            npe: self.dofmap.nodes_per_elem(),
            geom: move |e: u32| {
                let (ei, ej, ek) = self.dofmap.elem_ijk(e);
                (
                    self.hx[ei],
                    self.hy[ej],
                    self.hz[ek],
                    self.lambda[e as usize],
                    self.mu[e as usize],
                )
            },
        }
    }
}

impl DofTopology for ElasticOperator {
    fn n_dofs(&self) -> usize {
        3 * self.dofmap.n_nodes()
    }

    fn n_elems(&self) -> usize {
        self.dofmap.n_elems()
    }

    fn elem_dofs(&self, e: u32, out: &mut Vec<u32>) {
        out.clear();
        let np = self.basis.n_points();
        let (ei, ej, ek) = self.dofmap.elem_ijk(e);
        for c in 0..np {
            for b in 0..np {
                for a in 0..np {
                    let gn = self.gid(self.dofmap.elem_node(ei, ej, ek, a, b, c)) as u32;
                    out.push(3 * gn);
                    out.push(3 * gn + 1);
                    out.push(3 * gn + 2);
                }
            }
        }
    }
}

impl Operator for ElasticOperator {
    fn ndof(&self) -> usize {
        3 * self.dofmap.n_nodes()
    }

    fn apply_ws(&self, u: &[f64], out: &mut [f64], ws: &mut Workspace) {
        out.fill(0.0);
        let npe = self.dofmap.nodes_per_elem();
        let st = ws.get_or_insert_with(|| ElasticWs(ElasticScratchWs::new(npe)));
        let i = match st.0.cache.find(FULL_LEVEL, &[]) {
            Some(i) => i,
            None => {
                let all: Vec<u32> = (0..self.dofmap.n_elems() as u32).collect();
                self.compiled_entry(&mut st.0.cache, FULL_LEVEL, &all, None)
            }
        };
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, npe, 3, variant);
        st.0.serial.ensure_lanes(npe, variant.lanes());
        let ElasticScratchWs { cache, serial, .. } = &mut st.0;
        self.engine().run_serial(cache.entry(i), u, serial, out);
    }

    fn apply_masked_ws(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
    ) {
        let npe = self.dofmap.nodes_per_elem();
        let st = ws.get_or_insert_with(|| ElasticWs(ElasticScratchWs::new(npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, npe, 3, variant);
        st.0.serial.ensure_lanes(npe, variant.lanes());
        let ElasticScratchWs { cache, serial, .. } = &mut st.0;
        self.engine().run_serial(cache.entry(i), u, serial, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_masked_threads(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
        threads: usize,
    ) {
        if threads <= 1 {
            return self.apply_masked_ws(u, out, elems, dof_level, level, ws);
        }
        let npe = self.dofmap.nodes_per_elem();
        let st = ws.get_or_insert_with(|| ElasticWs(ElasticScratchWs::new(npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, npe, 3, variant);
        let ElasticScratchWs { cache, par, .. } = &mut st.0;
        if par.len() < threads {
            par.resize_with(threads, || Scratch::new(npe));
        }
        for s in par.iter_mut() {
            s.ensure_lanes(npe, variant.lanes());
        }
        self.engine()
            .run_threads(cache.entry(i), u, &mut par[..threads], out);
    }

    fn precompile_masked(&self, elems: &[u32], dof_level: &[u8], level: u8, ws: &mut Workspace) {
        let npe = self.dofmap.nodes_per_elem();
        let st = ws.get_or_insert_with(|| ElasticWs(ElasticScratchWs::new(npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        // warm the SIMD plan too, so no transpose happens mid-run
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, npe, 3, variant);
        st.0.serial.ensure_lanes(npe, variant.lanes());
    }

    fn mass(&self) -> &[f64] {
        &self.mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> ElasticOperator {
        let m = HexMesh::uniform(2, 2, 2, 2.0, 1.3);
        ElasticOperator::poisson(&m, 3)
    }

    fn node_coords(o: &ElasticOperator) -> Vec<(f64, f64, f64)> {
        // uniform unit cells: physical coordinate of each global GLL plane
        let planes = |n: usize| -> Vec<f64> {
            let mut out = Vec::new();
            for e in 0..n {
                for (a, &xi) in o.basis.points.iter().enumerate() {
                    if e > 0 && a == 0 {
                        continue;
                    }
                    out.push(e as f64 + 0.5 * (xi + 1.0));
                }
            }
            out
        };
        let (px, py, pz) = (
            planes(o.dofmap.nx),
            planes(o.dofmap.ny),
            planes(o.dofmap.nz),
        );
        let mut out = Vec::with_capacity(o.dofmap.n_nodes());
        for iz in 0..o.dofmap.gz {
            for iy in 0..o.dofmap.gy {
                for ix in 0..o.dofmap.gx {
                    out.push((px[ix], py[iy], pz[iz]));
                }
            }
        }
        out
    }

    #[test]
    fn rigid_translation_is_nullspace() {
        let o = op();
        let n = o.ndof();
        for comp in 0..3 {
            let mut u = vec![0.0; n];
            for g in 0..o.dofmap.n_nodes() {
                u[3 * g + comp] = 1.0;
            }
            let mut out = vec![0.0; n];
            o.apply(&u, &mut out);
            let max = out.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
            assert!(max < 1e-10, "translation {comp}: residual {max}");
        }
    }

    #[test]
    fn rigid_rotation_is_nullspace() {
        // u = ω × x has zero strain; the rotation field is (bi)linear, inside
        // the SEM space, so K·u = 0 to round-off.
        let o = op();
        let coords = node_coords(&o);
        let n = o.ndof();
        let omega = [0.3, -0.7, 0.5];
        let mut u = vec![0.0; n];
        for (g, &(x, y, z)) in coords.iter().enumerate() {
            u[3 * g] = omega[1] * z - omega[2] * y;
            u[3 * g + 1] = omega[2] * x - omega[0] * z;
            u[3 * g + 2] = omega[0] * y - omega[1] * x;
        }
        let mut out = vec![0.0; n];
        o.apply(&u, &mut out);
        let max = out.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(max < 1e-9, "rotation residual {max}");
    }

    #[test]
    fn symmetric_and_psd() {
        let o = op();
        let n = o.ndof();
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 83 % 17) as f64) / 17.0 - 0.5)
            .collect();
        let w: Vec<f64> = (0..n)
            .map(|i| ((i * 29 % 13) as f64) / 13.0 - 0.5)
            .collect();
        let mut au = vec![0.0; n];
        let mut aw = vec![0.0; n];
        o.apply(&u, &mut au);
        o.apply(&w, &mut aw);
        let lhs: f64 = (0..n).map(|i| o.mass[i] * au[i] * w[i]).sum();
        let rhs: f64 = (0..n).map(|i| o.mass[i] * aw[i] * u[i]).sum();
        assert!(
            (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
        let q: f64 = (0..n).map(|i| o.mass[i] * au[i] * u[i]).sum();
        assert!(q > -1e-10, "uᵀKu = {q}");
    }

    #[test]
    fn p_and_s_wave_speeds() {
        // plane waves u = ê f(x): longitudinal (ê = x̂) sees (λ+2μ)/ρ = c_p²;
        // transverse (ê = ŷ) sees μ/ρ = c_s². Use the smooth mode
        // f = cos(πx/L) and check the residual against the exact eigenvalue.
        let m = HexMesh::uniform(4, 1, 1, 2.0, 1.3);
        let o = ElasticOperator::poisson(&m, 6);
        let coords = node_coords(&o);
        let n = o.ndof();
        let l = 4.0;
        let kx = std::f64::consts::PI / l;
        let cp2 = 4.0; // velocity² = 2²
        let cs2 = cp2 / 3.0;
        for (comp, c2) in [(0usize, cp2), (1usize, cs2)] {
            let mut u = vec![0.0; n];
            for (g, &(x, _, _)) in coords.iter().enumerate() {
                u[3 * g + comp] = (kx * x).cos();
            }
            let mut au = vec![0.0; n];
            o.apply(&u, &mut au);
            let expect = c2 * kx * kx;
            // compare on interior nodes in the driven component
            let mut max_rel = 0.0f64;
            for (g, &(x, _, _)) in coords.iter().enumerate() {
                if x < 0.5 || x > l - 0.5 {
                    continue;
                }
                let r = (au[3 * g + comp] - expect * u[3 * g + comp]).abs() / expect;
                max_rel = max_rel.max(r);
            }
            assert!(max_rel < 1e-4, "comp {comp}: relative residual {max_rel}");
        }
    }

    #[test]
    fn masked_sum_equals_full_apply() {
        use lts_core::LtsSetup;
        use lts_mesh::Levels;
        let mut m = HexMesh::uniform(3, 2, 2, 1.0, 1.0);
        m.paint_box((2, 3), (0, 2), (0, 2), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        let o = ElasticOperator::poisson(&m, 2);
        let setup = LtsSetup::new(&o, &lv.elem_level);
        let n = o.ndof();
        let u: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let mut full = vec![0.0; n];
        o.apply(&u, &mut full);
        let mut sum = vec![0.0; n];
        for k in 0..setup.n_levels {
            o.apply_masked(&u, &mut sum, &setup.elems[k], &setup.dof_level, k as u8);
        }
        for i in 0..n {
            assert!(
                (full[i] - sum[i]).abs() < 1e-10 * (1.0 + full[i].abs()),
                "dof {i}: {} vs {}",
                full[i],
                sum[i]
            );
        }
    }

    #[test]
    fn mass_accounts_all_density() {
        let o = op();
        let total: f64 = o.mass.iter().sum();
        assert!((total - 3.0 * 1.3 * 8.0).abs() < 1e-9);
    }
}
