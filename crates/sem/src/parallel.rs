//! Shared-memory parallel operator application via element colouring.
//!
//! On a structured hex mesh the 8 parity classes `(i%2, j%2, k%2)` are
//! independent sets: two elements of the same colour never share a GLL node,
//! so their stiffness scatters touch disjoint DOFs and can run on worker
//! threads without synchronization. Colours are processed one after
//! another — the result is deterministic (within a colour every DOF receives
//! contributions from exactly one element).
//!
//! This is the per-node parallelism of the paper's platform (8 cores per
//! node under MPI); combined with `lts-runtime` it gives the familiar
//! MPI × threads hybrid.
//!
//! The executor's entire `unsafe` surface is the [`DisjointOut`] primitive
//! (see `disjoint.rs` for the soundness argument); single-threaded calls
//! take a fully safe path that never constructs the shared view at all. The
//! colour/barrier protocol itself is model-checked across all interleavings
//! in `tests/loom_model.rs`, which drives the same [`chunk_range`] split
//! used here.

use crate::acoustic::AcousticOperator;
use crate::compiled::ScalarScratch;
use crate::disjoint::DisjointOut;

/// The 8 parity colour classes of a structured mesh.
#[derive(Debug, Clone)]
pub struct ElementColoring {
    /// `classes[c]` = element ids of colour `c`.
    pub classes: Vec<Vec<u32>>,
}

impl ElementColoring {
    pub fn new(dofmap: &crate::dofmap::DofMap) -> Self {
        let mut classes: Vec<Vec<u32>> = vec![Vec::new(); 8];
        for e in 0..dofmap.n_elems() as u32 {
            let (i, j, k) = dofmap.elem_ijk(e);
            classes[(i % 2) + 2 * (j % 2) + 4 * (k % 2)].push(e);
        }
        ElementColoring { classes }
    }

    /// Greedy first-fit colouring of an arbitrary element list: walk the
    /// list in order and give each element the smallest colour not yet used
    /// by any element sharing one of its scatter targets. Deterministic —
    /// the classes depend only on the list order and the sharing pattern, so
    /// two operators with the same connectivity (e.g. a structured mesh and
    /// its gather-list re-representation, under any DOF relabelling) colour
    /// identically. Capped at 128 colours (a hex element has ≤ 26 sharing
    /// neighbours, so first-fit never needs more than 27).
    pub fn greedy(
        elems: &[u32],
        n_targets: usize,
        targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
    ) -> ElementColoring {
        let mut used = vec![0u128; n_targets];
        let mut classes: Vec<Vec<u32>> = Vec::new();
        let mut buf = Vec::new();
        for &e in elems {
            targets_of(e, &mut buf);
            let mut occupied: u128 = 0;
            for &t in &buf {
                occupied |= used[t as usize];
            }
            let c = (!occupied).trailing_zeros() as usize;
            assert!(c < 128, "greedy colouring needs more than 128 colours");
            if c == classes.len() {
                classes.push(Vec::new());
            }
            let bit = 1u128 << c;
            for &t in &buf {
                used[t as usize] |= bit;
            }
            classes[c].push(e);
        }
        ElementColoring { classes }
    }

    /// Restrict every class to the given element subset (e.g. one level's
    /// masked list).
    pub fn restricted(&self, elems: &[u32], n_elems: usize) -> ElementColoring {
        let mut member = vec![false; n_elems];
        for &e in elems {
            member[e as usize] = true;
        }
        ElementColoring {
            classes: self
                .classes
                .iter()
                .map(|c| c.iter().copied().filter(|&e| member[e as usize]).collect())
                .collect(),
        }
    }

    /// Flatten into the colour-major `(order, color_off)` representation the
    /// executor consumes: `order` lists all elements colour by colour,
    /// `color_off[c]..color_off[c+1]` is colour `c`'s span.
    pub fn flatten(&self) -> (Vec<u32>, Vec<u32>) {
        let total: usize = self.classes.iter().map(|c| c.len()).sum();
        let mut order = Vec::with_capacity(total);
        let mut color_off = Vec::with_capacity(self.classes.len() + 1);
        color_off.push(0u32);
        for class in &self.classes {
            order.extend_from_slice(class);
            color_off.push(order.len() as u32);
        }
        (order, color_off)
    }
}

/// The contiguous position range thread `tid` of `threads` owns within a
/// colour span `lo..hi`: ceil-divided chunks, clamped to the span. Shared
/// with the interleaving model checker (`tests/loom_model.rs`) so the model
/// verifies the exact split the executor runs.
#[doc(hidden)]
pub fn chunk_range(lo: usize, hi: usize, threads: usize, tid: usize) -> (usize, usize) {
    let chunk = (hi - lo).div_ceil(threads);
    let start = (lo + tid * chunk).min(hi);
    let end = (start + chunk).min(hi);
    (start, end)
}

/// Run a colour-major compiled order on `scratch.len()` OS threads.
///
/// `f(pos, scratch, out)` processes the element at position `pos` of the
/// compiled order. Each colour span `color_off[c]..color_off[c+1]` is split
/// into one contiguous chunk per thread ([`chunk_range`]); a barrier
/// separates colours. Within a colour no two elements share a scatter
/// target, and every DOF receives at most one contribution per colour, so
/// the accumulation order per DOF is exactly the colour order — the result
/// is bitwise identical to a serial walk of the same compiled order, at any
/// thread count.
// lint: hot-path
pub(crate) fn par_colored<S: Send>(
    out: &mut [f64],
    color_off: &[u32],
    scratch: &mut [S],
    f: impl Fn(usize, &mut S, &mut [f64]) + Sync,
) {
    let threads = scratch.len();
    if threads <= 1 {
        // Fully safe single-threaded path: the exclusive borrow is used
        // directly, no shared view is ever constructed.
        if let Some(sc) = scratch.first_mut() {
            for w in color_off.windows(2) {
                for pos in w[0] as usize..w[1] as usize {
                    f(pos, sc, out);
                }
            }
        }
        return;
    }
    let shared = &DisjointOut::new(out);
    let barrier = &std::sync::Barrier::new(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (tid, sc) in scratch.iter_mut().enumerate() {
            scope.spawn(move || {
                for w in color_off.windows(2) {
                    let (start, end) = chunk_range(w[0] as usize, w[1] as usize, threads, tid);
                    // SAFETY: threads take disjoint position ranges of this
                    // colour span and same-colour elements share no scatter
                    // targets (the compiled-colouring invariant, re-checked
                    // at build time), so concurrent writes through the
                    // claimed view never alias until the barrier.
                    let out = unsafe { shared.claim() };
                    for pos in start..end {
                        f(pos, sc, out);
                    }
                    // lint: allow(lock-block) — colour barrier over in-process
                    // scoped threads; no peer can be lost
                    barrier.wait();
                }
            });
        }
    });
}

/// Parallel `out = A u` for the acoustic operator: flattens the colouring
/// and drives the colored executor with one scratch set per available core.
pub fn apply_parallel(
    op: &AcousticOperator,
    coloring: &ElementColoring,
    u: &[f64],
    out: &mut [f64],
) {
    out.fill(0.0);
    let (order, color_off) = coloring.flatten();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = hw.min(8).min(order.len().max(1));
    let npe = op.dofmap.nodes_per_elem();
    let mut scratch: Vec<ScalarScratch> = (0..threads).map(|_| ScalarScratch::new(npe)).collect();
    par_colored(out, &color_off, &mut scratch, |pos, sc, o| {
        op.apply_one_scratch(order[pos], u, sc, o);
    });
}

impl AcousticOperator {
    /// Apply one element's `M⁻¹K_e` contribution (used by the coloured
    /// parallel driver).
    pub fn apply_masked_one(&self, e: u32, u: &[f64], out: &mut [f64]) {
        let npe = self.dofmap.nodes_per_elem();
        let mut sc = ScalarScratch::new(npe);
        self.apply_one_scratch(e, u, &mut sc, out);
    }

    /// Allocation-free single-element apply with caller-provided scratch.
    // lint: hot-path
    fn apply_one_scratch(&self, e: u32, u: &[f64], sc: &mut ScalarScratch, out: &mut [f64]) {
        self.gather_pub(e, u, &mut sc.loc);
        self.elem_stiffness_scatter_pub(e, &sc.loc, &mut sc.tmp, &mut sc.der, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_core::Operator;
    use lts_mesh::HexMesh;

    #[test]
    fn coloring_is_conflict_free() {
        let m = HexMesh::uniform(4, 3, 3, 1.0, 1.0);
        let op = AcousticOperator::new(&m, 2);
        let coloring = ElementColoring::new(&op.dofmap);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for class in &coloring.classes {
            for (i, &e1) in class.iter().enumerate() {
                for &e2 in class.iter().skip(i + 1) {
                    op.dofmap.elem_nodes(e1, &mut a);
                    op.dofmap.elem_nodes(e2, &mut b);
                    assert!(
                        a.iter().all(|d| !b.contains(d)),
                        "same-colour elements {e1} and {e2} share DOFs"
                    );
                }
            }
        }
        let total: usize = coloring.classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, m.n_elems());
    }

    #[test]
    fn parallel_apply_matches_serial() {
        let mut m = HexMesh::uniform(4, 4, 3, 1.0, 1.0);
        m.paint_box((2, 4), (0, 4), (0, 3), 2.0, 1.3);
        let op = AcousticOperator::new(&m, 3);
        let coloring = ElementColoring::new(&op.dofmap);
        let n = Operator::ndof(&op);
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 29) as f64) / 29.0 - 0.5)
            .collect();
        let mut serial = vec![0.0; n];
        op.apply(&u, &mut serial);
        let mut parallel = vec![0.0; n];
        apply_parallel(&op, &coloring, &u, &mut parallel);
        for i in 0..n {
            assert!(
                (serial[i] - parallel[i]).abs() < 1e-12 * (1.0 + serial[i].abs()),
                "dof {i}: {} vs {}",
                serial[i],
                parallel[i]
            );
        }
    }

    #[test]
    fn greedy_coloring_is_conflict_free_and_list_invariant() {
        let mut m = HexMesh::uniform(4, 3, 2, 1.0, 1.0);
        m.paint_box((0, 2), (0, 3), (0, 2), 2.0, 1.0);
        let op = AcousticOperator::new(&m, 2);
        let elems: Vec<u32> = (0..m.n_elems() as u32).collect();
        let mut targets = |e: u32, out: &mut Vec<u32>| op.dofmap.elem_nodes(e, out);
        let coloring = ElementColoring::greedy(&elems, op.dofmap.n_nodes(), &mut targets);
        // conflict-free within every class
        let mut a = Vec::new();
        let mut b = Vec::new();
        for class in &coloring.classes {
            for (i, &e1) in class.iter().enumerate() {
                for &e2 in class.iter().skip(i + 1) {
                    op.dofmap.elem_nodes(e1, &mut a);
                    op.dofmap.elem_nodes(e2, &mut b);
                    assert!(a.iter().all(|d| !b.contains(d)), "{e1} vs {e2}");
                }
            }
        }
        let total: usize = coloring.classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, m.n_elems());
        // relabelling the targets does not change the classes: shift every
        // node id by a constant (same sharing pattern, different labels)
        let nn = op.dofmap.n_nodes();
        let mut shifted = |e: u32, out: &mut Vec<u32>| {
            op.dofmap.elem_nodes(e, out);
            for t in out.iter_mut() {
                *t = nn as u32 - 1 - *t;
            }
        };
        let relabelled = ElementColoring::greedy(&elems, nn, &mut shifted);
        assert_eq!(coloring.classes, relabelled.classes);
    }

    #[test]
    fn par_colored_partitions_every_colour_span() {
        // record which positions each thread count visits; all must see the
        // full range exactly once
        let color_off = [0u32, 5, 5, 12];
        for threads in [1usize, 2, 3, 7] {
            let mut hits = vec![0u32; 12];
            let mut out = vec![0.0; 12];
            let mut scratch = vec![(); threads];
            let cell = std::sync::Mutex::new(&mut hits);
            par_colored(&mut out, &color_off, &mut scratch, |pos, _sc, _out| {
                cell.lock().unwrap()[pos] += 1;
            });
            assert!(hits.iter().all(|&h| h == 1), "{threads} threads: {hits:?}");
        }
    }

    #[test]
    fn chunk_ranges_tile_span_without_overlap() {
        for (lo, hi) in [(0usize, 12usize), (3, 3), (5, 6), (0, 97)] {
            for threads in 1..=9usize {
                let mut seen = vec![0u32; hi];
                for tid in 0..threads {
                    let (s, e) = chunk_range(lo, hi, threads, tid);
                    assert!(lo <= s && s <= e && e <= hi);
                    for p in s..e {
                        seen[p] += 1;
                    }
                }
                for p in lo..hi {
                    assert_eq!(seen[p], 1, "pos {p} for {threads} threads on {lo}..{hi}");
                }
            }
        }
    }

    #[test]
    fn restricted_coloring_covers_subset() {
        let m = HexMesh::uniform(3, 3, 3, 1.0, 1.0);
        let op = AcousticOperator::new(&m, 2);
        let coloring = ElementColoring::new(&op.dofmap);
        let subset: Vec<u32> = (0..10).collect();
        let r = coloring.restricted(&subset, m.n_elems());
        let total: usize = r.classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
        for class in &r.classes {
            for e in class {
                assert!(subset.contains(e));
            }
        }
    }

    #[test]
    fn flatten_is_colour_major() {
        let coloring = ElementColoring {
            classes: vec![vec![4, 2], vec![], vec![1, 3, 0]],
        };
        let (order, color_off) = coloring.flatten();
        assert_eq!(order, vec![4, 2, 1, 3, 0]);
        assert_eq!(color_off, vec![0, 2, 2, 5]);
    }
}
