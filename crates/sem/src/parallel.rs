//! Shared-memory parallel operator application via element colouring.
//!
//! On a structured hex mesh the 8 parity classes `(i%2, j%2, k%2)` are
//! independent sets: two elements of the same colour never share a GLL node,
//! so their stiffness scatters touch disjoint DOFs and can run on Rayon
//! worker threads without synchronization. Colours are processed one after
//! another — the result is deterministic (within a colour every DOF receives
//! contributions from exactly one element).
//!
//! This is the per-node parallelism of the paper's platform (8 cores per
//! node under MPI); combined with `lts-runtime` it gives the familiar
//! MPI × threads hybrid.

use crate::acoustic::AcousticOperator;
use crate::dofmap::DofMap;
use rayon::prelude::*;

/// The 8 parity colour classes of a structured mesh.
#[derive(Debug, Clone)]
pub struct ElementColoring {
    /// `classes[c]` = element ids of colour `c`.
    pub classes: Vec<Vec<u32>>,
}

impl ElementColoring {
    pub fn new(dofmap: &DofMap) -> Self {
        let mut classes: Vec<Vec<u32>> = vec![Vec::new(); 8];
        for e in 0..dofmap.n_elems() as u32 {
            let (i, j, k) = dofmap.elem_ijk(e);
            classes[(i % 2) + 2 * (j % 2) + 4 * (k % 2)].push(e);
        }
        ElementColoring { classes }
    }

    /// Greedy first-fit colouring of an arbitrary element list: walk the
    /// list in order and give each element the smallest colour not yet used
    /// by any element sharing one of its scatter targets. Deterministic —
    /// the classes depend only on the list order and the sharing pattern, so
    /// two operators with the same connectivity (e.g. a structured mesh and
    /// its gather-list re-representation, under any DOF relabelling) colour
    /// identically. Capped at 128 colours (a hex element has ≤ 26 sharing
    /// neighbours, so first-fit never needs more than 27).
    pub fn greedy(
        elems: &[u32],
        n_targets: usize,
        targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
    ) -> ElementColoring {
        let mut used = vec![0u128; n_targets];
        let mut classes: Vec<Vec<u32>> = Vec::new();
        let mut buf = Vec::new();
        for &e in elems {
            targets_of(e, &mut buf);
            let mut occupied: u128 = 0;
            for &t in &buf {
                occupied |= used[t as usize];
            }
            let c = (!occupied).trailing_zeros() as usize;
            assert!(c < 128, "greedy colouring needs more than 128 colours");
            if c == classes.len() {
                classes.push(Vec::new());
            }
            let bit = 1u128 << c;
            for &t in &buf {
                used[t as usize] |= bit;
            }
            classes[c].push(e);
        }
        ElementColoring { classes }
    }

    /// Restrict every class to the given element subset (e.g. one level's
    /// masked list).
    pub fn restricted(&self, elems: &[u32], n_elems: usize) -> ElementColoring {
        let mut member = vec![false; n_elems];
        for &e in elems {
            member[e as usize] = true;
        }
        ElementColoring {
            classes: self
                .classes
                .iter()
                .map(|c| c.iter().copied().filter(|&e| member[e as usize]).collect())
                .collect(),
        }
    }
}

/// A send/sync wrapper for the disjoint-scatter pattern.
pub(crate) struct SharedOut(*mut f64, usize);
unsafe impl Sync for SharedOut {}

impl SharedOut {
    /// SAFETY: callers must guarantee that concurrent invocations touch
    /// disjoint index sets (here: same-colour elements share no DOFs).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self) -> &mut [f64] {
        unsafe { std::slice::from_raw_parts_mut(self.0, self.1) }
    }
}

/// Run a colour-major compiled order on `scratch.len()` OS threads.
///
/// `f(pos, scratch, out)` processes the element at position `pos` of the
/// compiled order. Each colour span `color_off[c]..color_off[c+1]` is split
/// into one contiguous chunk per thread; a barrier separates colours. Within
/// a colour no two elements share a scatter target, and every DOF receives
/// at most one contribution per colour, so the accumulation order per DOF is
/// exactly the colour order — the result is bitwise identical to a serial
/// walk of the same compiled order, at any thread count.
pub(crate) fn par_colored<S: Send>(
    out: &mut [f64],
    color_off: &[u32],
    scratch: &mut [S],
    f: impl Fn(usize, &mut S, &mut [f64]) + Sync,
) {
    let threads = scratch.len();
    let shared = &SharedOut(out.as_mut_ptr(), out.len());
    let barrier = &std::sync::Barrier::new(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (tid, sc) in scratch.iter_mut().enumerate() {
            scope.spawn(move || {
                for w in color_off.windows(2) {
                    let (lo, hi) = (w[0] as usize, w[1] as usize);
                    let chunk = (hi - lo).div_ceil(threads);
                    let start = (lo + tid * chunk).min(hi);
                    let end = (start + chunk).min(hi);
                    // SAFETY: same-colour elements share no scatter targets
                    // and threads take disjoint position ranges, so these
                    // writes never alias until the barrier.
                    let out = unsafe { shared.slice() };
                    for pos in start..end {
                        f(pos, sc, out);
                    }
                    barrier.wait();
                }
            });
        }
    });
}

/// Parallel `out = A u` for the acoustic operator.
pub fn apply_parallel(
    op: &AcousticOperator,
    coloring: &ElementColoring,
    u: &[f64],
    out: &mut [f64],
) {
    out.fill(0.0);
    let shared = SharedOut(out.as_mut_ptr(), out.len());
    for class in &coloring.classes {
        class.par_iter().for_each(|&e| {
            // SAFETY: elements within one parity class share no GLL nodes,
            // so these scatters write disjoint entries of `out`.
            let out = unsafe { shared.slice() };
            op.apply_masked_one(e, u, out);
        });
    }
}

impl AcousticOperator {
    /// Apply one element's `M⁻¹K_e` contribution (used by the coloured
    /// parallel driver).
    pub fn apply_masked_one(&self, e: u32, u: &[f64], out: &mut [f64]) {
        let npe = self.dofmap.nodes_per_elem();
        let mut loc = vec![0.0; npe];
        let mut tmp = vec![0.0; npe];
        let mut der = vec![0.0; npe];
        self.gather_pub(e, u, &mut loc);
        self.elem_stiffness_scatter_pub(e, &loc, &mut tmp, &mut der, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_core::Operator;
    use lts_mesh::HexMesh;

    #[test]
    fn coloring_is_conflict_free() {
        let m = HexMesh::uniform(4, 3, 3, 1.0, 1.0);
        let op = AcousticOperator::new(&m, 2);
        let coloring = ElementColoring::new(&op.dofmap);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for class in &coloring.classes {
            for (i, &e1) in class.iter().enumerate() {
                for &e2 in class.iter().skip(i + 1) {
                    op.dofmap.elem_nodes(e1, &mut a);
                    op.dofmap.elem_nodes(e2, &mut b);
                    assert!(
                        a.iter().all(|d| !b.contains(d)),
                        "same-colour elements {e1} and {e2} share DOFs"
                    );
                }
            }
        }
        let total: usize = coloring.classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, m.n_elems());
    }

    #[test]
    fn parallel_apply_matches_serial() {
        let mut m = HexMesh::uniform(4, 4, 3, 1.0, 1.0);
        m.paint_box((2, 4), (0, 4), (0, 3), 2.0, 1.3);
        let op = AcousticOperator::new(&m, 3);
        let coloring = ElementColoring::new(&op.dofmap);
        let n = Operator::ndof(&op);
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 29) as f64) / 29.0 - 0.5)
            .collect();
        let mut serial = vec![0.0; n];
        op.apply(&u, &mut serial);
        let mut parallel = vec![0.0; n];
        apply_parallel(&op, &coloring, &u, &mut parallel);
        for i in 0..n {
            assert!(
                (serial[i] - parallel[i]).abs() < 1e-12 * (1.0 + serial[i].abs()),
                "dof {i}: {} vs {}",
                serial[i],
                parallel[i]
            );
        }
    }

    #[test]
    fn greedy_coloring_is_conflict_free_and_list_invariant() {
        let mut m = HexMesh::uniform(4, 3, 2, 1.0, 1.0);
        m.paint_box((0, 2), (0, 3), (0, 2), 2.0, 1.0);
        let op = AcousticOperator::new(&m, 2);
        let elems: Vec<u32> = (0..m.n_elems() as u32).collect();
        let mut targets = |e: u32, out: &mut Vec<u32>| op.dofmap.elem_nodes(e, out);
        let coloring = ElementColoring::greedy(&elems, op.dofmap.n_nodes(), &mut targets);
        // conflict-free within every class
        let mut a = Vec::new();
        let mut b = Vec::new();
        for class in &coloring.classes {
            for (i, &e1) in class.iter().enumerate() {
                for &e2 in class.iter().skip(i + 1) {
                    op.dofmap.elem_nodes(e1, &mut a);
                    op.dofmap.elem_nodes(e2, &mut b);
                    assert!(a.iter().all(|d| !b.contains(d)), "{e1} vs {e2}");
                }
            }
        }
        let total: usize = coloring.classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, m.n_elems());
        // relabelling the targets does not change the classes: shift every
        // node id by a constant (same sharing pattern, different labels)
        let nn = op.dofmap.n_nodes();
        let mut shifted = |e: u32, out: &mut Vec<u32>| {
            op.dofmap.elem_nodes(e, out);
            for t in out.iter_mut() {
                *t = nn as u32 - 1 - *t;
            }
        };
        let relabelled = ElementColoring::greedy(&elems, nn, &mut shifted);
        assert_eq!(coloring.classes, relabelled.classes);
    }

    #[test]
    fn par_colored_partitions_every_colour_span() {
        // record which positions each thread count visits; all must see the
        // full range exactly once
        let color_off = [0u32, 5, 5, 12];
        for threads in [2usize, 3, 7] {
            let mut hits = vec![0u32; 12];
            let mut out = vec![0.0; 12];
            let mut scratch = vec![(); threads];
            let cell = std::sync::Mutex::new(&mut hits);
            par_colored(&mut out, &color_off, &mut scratch, |pos, _sc, _out| {
                cell.lock().unwrap()[pos] += 1;
            });
            assert!(hits.iter().all(|&h| h == 1), "{threads} threads: {hits:?}");
        }
    }

    #[test]
    fn restricted_coloring_covers_subset() {
        let m = HexMesh::uniform(3, 3, 3, 1.0, 1.0);
        let op = AcousticOperator::new(&m, 2);
        let coloring = ElementColoring::new(&op.dofmap);
        let subset: Vec<u32> = (0..10).collect();
        let r = coloring.restricted(&subset, m.n_elems());
        let total: usize = r.classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
        for class in &r.classes {
            for e in class {
                assert!(subset.contains(e));
            }
        }
    }
}
