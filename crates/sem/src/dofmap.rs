//! Global GLL node numbering on structured hexahedral meshes.
//!
//! For a `nx × ny × nz` mesh at polynomial order `p` the global GLL grid has
//! `(p·nx+1) × (p·ny+1) × (p·nz+1)` nodes; element `(i,j,k)`'s local node
//! `(a,b,c)` is global `(p·i+a, p·j+b, p·k+c)`. Shared faces/edges/corners
//! thus alias the same global node — the *continuous* Galerkin sharing that
//! makes LTS on SEM delicate (Sec. II-C).

use lts_mesh::HexMesh;

/// Node numbering for one mesh at one polynomial order.
#[derive(Debug, Clone)]
pub struct DofMap {
    pub order: usize,
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Global GLL grid dimensions.
    pub gx: usize,
    pub gy: usize,
    pub gz: usize,
}

impl DofMap {
    pub fn new(mesh: &HexMesh, order: usize) -> Self {
        assert!(order >= 1);
        DofMap {
            order,
            nx: mesh.nx,
            ny: mesh.ny,
            nz: mesh.nz,
            gx: order * mesh.nx + 1,
            gy: order * mesh.ny + 1,
            gz: order * mesh.nz + 1,
        }
    }

    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.gx * self.gy * self.gz
    }

    pub fn n_elems(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Nodes per element per axis.
    #[inline]
    pub fn np(&self) -> usize {
        self.order + 1
    }

    /// Nodes per element, `(order+1)³` (125 at order 4).
    #[inline]
    pub fn nodes_per_elem(&self) -> usize {
        let np = self.np();
        np * np * np
    }

    #[inline]
    pub fn global_node(&self, ix: usize, iy: usize, iz: usize) -> u32 {
        debug_assert!(ix < self.gx && iy < self.gy && iz < self.gz);
        (ix + self.gx * (iy + self.gy * iz)) as u32
    }

    /// Global node of element `(ei,ej,ek)`'s local GLL node `(a,b,c)`.
    #[inline]
    pub fn elem_node(&self, ei: usize, ej: usize, ek: usize, a: usize, b: usize, c: usize) -> u32 {
        self.global_node(
            self.order * ei + a,
            self.order * ej + b,
            self.order * ek + c,
        )
    }

    #[inline]
    pub fn elem_ijk(&self, e: u32) -> (usize, usize, usize) {
        let e = e as usize;
        (
            e % self.nx,
            (e / self.nx) % self.ny,
            e / (self.nx * self.ny),
        )
    }

    /// Append all global nodes of element `e` to `out` (cleared first),
    /// in local lexicographic `(a fastest)` order.
    pub fn elem_nodes(&self, e: u32, out: &mut Vec<u32>) {
        out.clear();
        let (ei, ej, ek) = self.elem_ijk(e);
        let np = self.np();
        let (x0, y0, z0) = (self.order * ei, self.order * ej, self.order * ek);
        for c in 0..np {
            for b in 0..np {
                for a in 0..np {
                    out.push(self.global_node(x0 + a, y0 + b, z0 + c));
                }
            }
        }
    }

    /// Nearest global node to a physical point (for source/receiver
    /// placement) on mesh `mesh`.
    pub fn nearest_node(&self, mesh: &HexMesh, x: f64, y: f64, z: f64, gll_points: &[f64]) -> u32 {
        // physical coordinates of global GLL planes per axis
        let planes = |coords: &[f64], n: usize| -> Vec<f64> {
            let mut out = Vec::with_capacity(self.order * n + 1);
            for e in 0..n {
                let (lo, hi) = (coords[e], coords[e + 1]);
                for (a, &xi) in gll_points.iter().enumerate() {
                    if e > 0 && a == 0 {
                        continue; // shared with previous element
                    }
                    out.push(lo + 0.5 * (xi + 1.0) * (hi - lo));
                }
            }
            out
        };
        let px = planes(&mesh.xs, self.nx);
        let py = planes(&mesh.ys, self.ny);
        let pz = planes(&mesh.zs, self.nz);
        let nearest = |p: &[f64], v: f64| -> usize {
            // GLL planes are never empty, so the fold always visits at least
            // one candidate; total_cmp keeps this panic-free even for NaNs.
            p.iter()
                .enumerate()
                .min_by(|a, b| (a.1 - v).abs().total_cmp(&(b.1 - v).abs()))
                .map_or(0, |(i, _)| i)
        };
        self.global_node(nearest(&px, x), nearest(&py, y), nearest(&pz, z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        let m = HexMesh::uniform(3, 2, 2, 1.0, 1.0);
        let d = DofMap::new(&m, 4);
        assert_eq!(d.n_nodes(), 13 * 9 * 9);
        assert_eq!(d.nodes_per_elem(), 125);
    }

    #[test]
    fn neighbors_share_a_face_of_nodes() {
        let m = HexMesh::uniform(2, 1, 1, 1.0, 1.0);
        let d = DofMap::new(&m, 2);
        let mut n0 = Vec::new();
        let mut n1 = Vec::new();
        d.elem_nodes(0, &mut n0);
        d.elem_nodes(1, &mut n1);
        let shared: Vec<u32> = n0.iter().filter(|n| n1.contains(n)).copied().collect();
        assert_eq!(shared.len(), 9); // 3×3 face at order 2
    }

    #[test]
    fn all_nodes_covered_exactly() {
        let m = HexMesh::uniform(2, 2, 2, 1.0, 1.0);
        let d = DofMap::new(&m, 3);
        let mut seen = vec![false; d.n_nodes()];
        let mut buf = Vec::new();
        for e in 0..d.n_elems() as u32 {
            d.elem_nodes(e, &mut buf);
            assert_eq!(buf.len(), d.nodes_per_elem());
            for &n in &buf {
                seen[n as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn paper_dof_counts() {
        // Fig. 5: 4th-order elements have ~64.5 unique GLL nodes per element
        // at scale (2.5M elements → 170M DOF)
        let m = HexMesh::uniform(40, 40, 40, 1.0, 1.0);
        let d = DofMap::new(&m, 4);
        let per_elem = d.n_nodes() as f64 / d.n_elems() as f64;
        assert!((64.0..70.0).contains(&per_elem), "{per_elem}");
    }

    #[test]
    fn nearest_node_center() {
        let m = HexMesh::uniform(2, 2, 2, 1.0, 1.0);
        let d = DofMap::new(&m, 2);
        let b = crate::gll::GllBasis::new(2);
        let n = d.nearest_node(&m, 1.0, 1.0, 1.0, &b.points);
        assert_eq!(n, d.global_node(2, 2, 2)); // grid center
    }
}
