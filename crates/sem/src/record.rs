//! Receivers, seismograms and wavefield snapshots — the observables a
//! seismologist actually extracts from a run (SPECFEM3D writes the same:
//! per-receiver traces and volume snapshots).

use crate::dofmap::DofMap;
use lts_mesh::HexMesh;
use std::io::Write;

/// A named receiver sampling one DOF every global step.
#[derive(Debug, Clone)]
pub struct Receiver {
    pub name: String,
    pub dof: u32,
}

/// A set of receivers accumulating traces.
#[derive(Debug, Clone, Default)]
pub struct SeismogramRecorder {
    pub receivers: Vec<Receiver>,
    /// `traces[r][step]`.
    pub traces: Vec<Vec<f64>>,
    /// Sample times.
    pub times: Vec<f64>,
}

impl SeismogramRecorder {
    pub fn new(receivers: Vec<Receiver>) -> Self {
        let n = receivers.len();
        SeismogramRecorder {
            receivers,
            traces: vec![Vec::new(); n],
            times: Vec::new(),
        }
    }

    /// Receiver at the GLL node nearest to a physical location (scalar
    /// field: `component = 0`, `dofs_per_node = 1`; elastic: 0..3, 3).
    #[allow(clippy::too_many_arguments)]
    pub fn add_at(
        &mut self,
        name: &str,
        mesh: &HexMesh,
        dofmap: &DofMap,
        gll_points: &[f64],
        (x, y, z): (f64, f64, f64),
        component: usize,
        dofs_per_node: usize,
    ) {
        assert!(component < dofs_per_node);
        let node = dofmap.nearest_node(mesh, x, y, z, gll_points);
        self.receivers.push(Receiver {
            name: name.to_string(),
            dof: node * dofs_per_node as u32 + component as u32,
        });
        self.traces.push(vec![f64::NAN; self.times.len()]);
    }

    /// Sample all receivers from the current field.
    pub fn record(&mut self, t: f64, u: &[f64]) {
        self.times.push(t);
        for (r, trace) in self.receivers.iter().zip(self.traces.iter_mut()) {
            trace.push(u[r.dof as usize]);
        }
    }

    pub fn n_samples(&self) -> usize {
        self.times.len()
    }

    /// Write all traces as CSV (`t, name1, name2, …`).
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "t")?;
        for r in &self.receivers {
            write!(w, ",{}", r.name)?;
        }
        writeln!(w)?;
        for (i, t) in self.times.iter().enumerate() {
            write!(w, "{t}")?;
            for trace in &self.traces {
                write!(w, ",{}", trace[i])?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Peak absolute amplitude per receiver.
    pub fn peaks(&self) -> Vec<f64> {
        self.traces
            .iter()
            .map(|t| t.iter().fold(0.0f64, |m, &x| m.max(x.abs())))
            .collect()
    }
}

/// Extract a horizontal (`z = iz`) slice of a scalar field on the global
/// GLL grid, as a row-major `gy × gx` matrix.
pub fn slice_z(
    dofmap: &DofMap,
    u: &[f64],
    iz: usize,
    dofs_per_node: usize,
    component: usize,
) -> Vec<f64> {
    assert!(iz < dofmap.gz);
    let mut out = Vec::with_capacity(dofmap.gx * dofmap.gy);
    for iy in 0..dofmap.gy {
        for ix in 0..dofmap.gx {
            let g = dofmap.global_node(ix, iy, iz) as usize;
            out.push(u[g * dofs_per_node + component]);
        }
    }
    out
}

/// Write a scalar field slice as a binary PGM image (symmetric grayscale
/// around zero), the cheapest portable wavefield snapshot format.
pub fn write_pgm<W: Write>(
    mut w: W,
    data: &[f64],
    width: usize,
    height: usize,
) -> std::io::Result<()> {
    assert_eq!(data.len(), width * height);
    let peak = data.iter().fold(1e-300f64, |m, &x| m.max(x.abs()));
    writeln!(w, "P5\n{width} {height}\n255")?;
    let bytes: Vec<u8> = data
        .iter()
        .map(|&x| (127.0 + 127.0 * (x / peak)).clamp(0.0, 255.0) as u8)
        .collect();
    w.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gll::GllBasis;

    fn setup() -> (HexMesh, DofMap, GllBasis) {
        let m = HexMesh::uniform(3, 3, 2, 1.0, 1.0);
        let d = DofMap::new(&m, 2);
        let b = GllBasis::new(2);
        (m, d, b)
    }

    #[test]
    fn recorder_samples_named_traces() {
        let (m, d, b) = setup();
        let mut rec = SeismogramRecorder::new(vec![]);
        rec.add_at("sta1", &m, &d, &b.points, (0.0, 0.0, 0.0), 0, 1);
        rec.add_at("sta2", &m, &d, &b.points, (3.0, 3.0, 2.0), 0, 1);
        let n = d.n_nodes();
        let mut u = vec![0.0; n];
        u[rec.receivers[0].dof as usize] = 2.5;
        rec.record(0.0, &u);
        u[rec.receivers[1].dof as usize] = -1.5;
        rec.record(0.1, &u);
        assert_eq!(rec.n_samples(), 2);
        assert_eq!(rec.traces[0], vec![2.5, 2.5]);
        assert_eq!(rec.traces[1], vec![0.0, -1.5]);
        assert_eq!(rec.peaks(), vec![2.5, 1.5]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let (m, d, b) = setup();
        let mut rec = SeismogramRecorder::new(vec![]);
        rec.add_at("a", &m, &d, &b.points, (1.0, 1.0, 1.0), 0, 1);
        rec.record(0.0, &vec![0.25; d.n_nodes()]);
        let mut buf = Vec::new();
        rec.write_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("t,a\n"));
        assert!(s.contains("0,0.25"));
    }

    #[test]
    fn elastic_component_offsets() {
        let (m, d, b) = setup();
        let mut rec = SeismogramRecorder::new(vec![]);
        rec.add_at("z", &m, &d, &b.points, (1.0, 1.0, 2.0), 2, 3);
        assert_eq!(rec.receivers[0].dof % 3, 2);
    }

    #[test]
    fn slice_and_pgm() {
        let (_, d, _) = setup();
        let n = d.n_nodes();
        let u: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let s = slice_z(&d, &u, 0, 1, 0);
        assert_eq!(s.len(), d.gx * d.gy);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[1], 1.0);
        let mut buf = Vec::new();
        write_pgm(&mut buf, &s, d.gx, d.gy).unwrap();
        assert!(buf.starts_with(b"P5\n"));
        assert_eq!(
            buf.len(),
            format!("P5\n{} {}\n255\n", d.gx, d.gy).len() + d.gx * d.gy
        );
    }
}
