//! Machine-checkable statements of the structural invariants the threaded
//! executor relies on.
//!
//! [`crate::parallel::par_colored`]'s disjoint scatter is sound iff within
//! one colour no two elements share a scatter target. This module states
//! that invariant as a total function over an explicit colouring so it can
//! be (a) re-asserted by a `debug_assert!` every time a
//! [`crate::compiled::CompiledGather`] is built, (b) exercised against
//! deliberately broken colourings by tests, and (c) run over the benchmark
//! meshes by the standalone `lts-check` binary.

use std::fmt;

/// Witness of a colouring violation: two same-colour elements sharing a
/// scatter target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringConflict {
    /// Colour class both elements belong to.
    pub color: usize,
    /// The element that first claimed the target within the colour.
    pub first: u32,
    /// The element that re-claimed it.
    pub second: u32,
    /// The shared scatter target (global node or DOF id).
    pub target: u32,
}

impl fmt::Display for ColoringConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "colour {}: elements {} and {} both scatter to target {}",
            self.color, self.first, self.second, self.target
        )
    }
}

/// Witness of an incomplete or duplicated colour-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverViolation {
    /// An element appears in more than one class (or twice in one).
    Duplicated(u32),
    /// An element of the input list appears in no class.
    Missing(u32),
    /// A coloured element was never in the input list.
    Foreign(u32),
}

impl fmt::Display for CoverViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverViolation::Duplicated(e) => write!(f, "element {e} coloured more than once"),
            CoverViolation::Missing(e) => write!(f, "element {e} missing from every colour"),
            CoverViolation::Foreign(e) => write!(f, "element {e} coloured but never requested"),
        }
    }
}

/// Check that no two elements of the same class share a scatter target —
/// the exact invariant the concurrent scatter of `par_colored` relies on.
///
/// `targets_of` must yield each element's scatter targets (clearing the
/// buffer first), exactly as handed to [`crate::ElementColoring::greedy`];
/// `n_targets` bounds the target id space. Runs in
/// `O(Σ targets + n_targets)`.
pub fn conflict_free(
    classes: &[Vec<u32>],
    n_targets: usize,
    targets_of: &mut dyn FnMut(u32, &mut Vec<u32>),
) -> Result<(), ColoringConflict> {
    // Per target: (stamp of the colour that last claimed it, claiming elem).
    let mut stamp = vec![(usize::MAX, 0u32); n_targets];
    let mut buf = Vec::new();
    for (color, class) in classes.iter().enumerate() {
        for &e in class {
            targets_of(e, &mut buf);
            for &t in &buf {
                let (s, first) = stamp[t as usize];
                if s == color {
                    return Err(ColoringConflict {
                        color,
                        first,
                        second: e,
                        target: t,
                    });
                }
                stamp[t as usize] = (color, e);
            }
        }
    }
    Ok(())
}

/// Check that the classes partition exactly the input element list: every
/// element coloured once, nothing foreign, nothing missing.
pub fn complete_cover(classes: &[Vec<u32>], elems: &[u32]) -> Result<(), CoverViolation> {
    let max_id = elems
        .iter()
        .chain(classes.iter().flatten())
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut want = vec![false; max_id];
    for &e in elems {
        want[e as usize] = true;
    }
    let mut seen = vec![false; max_id];
    for &e in classes.iter().flatten() {
        if !want[e as usize] {
            return Err(CoverViolation::Foreign(e));
        }
        if seen[e as usize] {
            return Err(CoverViolation::Duplicated(e));
        }
        seen[e as usize] = true;
    }
    for &e in elems {
        if !seen[e as usize] {
            return Err(CoverViolation::Missing(e));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy chain adjacency: element `e` scatters to `{e, e+1}`.
    fn chain_targets(e: u32, out: &mut Vec<u32>) {
        out.clear();
        out.push(e);
        out.push(e + 1);
    }

    #[test]
    fn accepts_valid_chain_coloring() {
        // evens and odds never share a target in the chain
        let classes = vec![vec![0, 2, 4], vec![1, 3, 5]];
        assert_eq!(conflict_free(&classes, 7, &mut chain_targets), Ok(()));
    }

    #[test]
    fn rejects_adjacent_same_color() {
        // 2 and 3 share target 3
        let classes = vec![vec![0, 2, 3], vec![1]];
        let err = conflict_free(&classes, 5, &mut chain_targets).unwrap_err();
        assert_eq!(
            err,
            ColoringConflict {
                color: 0,
                first: 2,
                second: 3,
                target: 3
            }
        );
        assert!(err.to_string().contains("elements 2 and 3"));
    }

    #[test]
    fn same_target_in_different_colors_is_fine() {
        let classes = vec![vec![0], vec![1]];
        assert_eq!(conflict_free(&classes, 3, &mut chain_targets), Ok(()));
    }

    #[test]
    fn cover_detects_all_three_violations() {
        let elems = vec![0u32, 1, 2];
        assert_eq!(complete_cover(&[vec![0, 1], vec![2]], &elems), Ok(()));
        assert_eq!(
            complete_cover(&[vec![0, 1], vec![1, 2]], &elems),
            Err(CoverViolation::Duplicated(1))
        );
        assert_eq!(
            complete_cover(&[vec![0, 1]], &elems),
            Err(CoverViolation::Missing(2))
        );
        assert_eq!(
            complete_cover(&[vec![0, 1, 2, 3]], &elems),
            Err(CoverViolation::Foreign(3))
        );
    }
}
