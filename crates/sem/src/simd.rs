//! Explicit-SIMD batched stiffness kernels with runtime dispatch.
//!
//! The scalar kernels in [`crate::kernel`] and [`crate::elastic`] process one
//! element at a time. This module provides *batched* twins that process one
//! SIMD-register-width of same-order elements per call — lane `l` of every
//! vector operation executes exactly the scalar kernel's arithmetic for
//! element `l` of the batch. Because only *vertical* lane-wise `mul`/`add`
//! operations are used (never FMA, never horizontal reductions), each lane's
//! IEEE-754 operation sequence is identical to the scalar kernel's, so the
//! batched results are **bitwise equal** to the scalar path — the property
//! the LTS determinism contract (`DESIGN.md` §9) is built on.
//!
//! Batched fields use a structure-of-arrays layout: value of lane `l` at
//! local node `q` lives at `q * LANES + l`, so the transposed gather tables
//! built in [`crate::compiled::SimdPlan`] stream contiguously into lanes.
//!
//! Dispatch is by runtime CPU detection ([`KernelVariant`]): AVX-512F
//! (8 lanes), AVX2 (4 lanes), NEON (2 lanes), with a scalar fallback that
//! never touches this module's kernels. No nightly features: `std::arch`
//! intrinsics only, all stable. The `unsafe` here joins the crate's audited
//! surface (`disjoint.rs` is the other half); every kernel's precondition is
//! the *dispatch precondition*: it is reachable only through a
//! [`KernelVariant`] that runtime feature detection (or a support-clamped
//! override) produced, so the required instruction set is present.
//!
//! The `simd` cargo feature (default on) gates the intrinsics; without it
//! every variant degrades to [`KernelVariant::Scalar`] and the operators use
//! the per-element path unchanged.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Widest supported lane count (AVX-512); coefficient tables are sized for
/// this so one buffer serves every variant.
pub const MAX_LANES: usize = 8;

/// The kernel implementation selected by runtime CPU feature detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Per-element scalar kernels (always available).
    Scalar,
    /// 2 × f64 per register (aarch64).
    Neon,
    /// 4 × f64 per register (x86-64).
    Avx2,
    /// 8 × f64 per register (x86-64).
    Avx512,
}

impl KernelVariant {
    /// Elements processed per batch by this variant.
    pub fn lanes(self) -> usize {
        match self {
            KernelVariant::Scalar => 1,
            KernelVariant::Neon => 2,
            KernelVariant::Avx2 => 4,
            KernelVariant::Avx512 => 8,
        }
    }

    /// Stable identifier recorded in bench `host` blocks.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Neon => "neon",
            KernelVariant::Avx2 => "avx2",
            KernelVariant::Avx512 => "avx512f",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            KernelVariant::Scalar => 0,
            KernelVariant::Neon => 1,
            KernelVariant::Avx2 => 2,
            KernelVariant::Avx512 => 3,
        }
    }

    fn from_u8(x: u8) -> KernelVariant {
        match x {
            1 => KernelVariant::Neon,
            2 => KernelVariant::Avx2,
            3 => KernelVariant::Avx512,
            _ => KernelVariant::Scalar,
        }
    }

    /// Whether this build and CPU can actually execute the variant.
    pub fn is_supported(self) -> bool {
        match self {
            KernelVariant::Scalar => true,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelVariant::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelVariant::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(all(feature = "simd", target_arch = "aarch64"))]
            KernelVariant::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

/// The widest variant this build and CPU support.
pub fn detected() -> KernelVariant {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return KernelVariant::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelVariant::Avx2;
        }
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return KernelVariant::Neon;
        }
    }
    KernelVariant::Scalar
}

/// Every variant [`KernelVariant::is_supported`] on this build and CPU,
/// scalar first. Test harnesses iterate this to cover all reachable paths.
pub fn supported_variants() -> Vec<KernelVariant> {
    [
        KernelVariant::Scalar,
        KernelVariant::Neon,
        KernelVariant::Avx2,
        KernelVariant::Avx512,
    ]
    .into_iter()
    .filter(|v| v.is_supported())
    .collect()
}

fn clamp_supported(v: KernelVariant) -> KernelVariant {
    if v.is_supported() {
        v
    } else {
        KernelVariant::Scalar
    }
}

/// Resolve the session default: the `LTS_SIMD` environment variable
/// (`scalar`/`off`, `neon`, `avx2`, `avx512`) clamped to what the CPU
/// supports, else the widest detected variant.
fn env_default() -> KernelVariant {
    match std::env::var("LTS_SIMD").ok().as_deref() {
        Some("scalar") | Some("off") | Some("0") => KernelVariant::Scalar,
        Some("neon") => clamp_supported(KernelVariant::Neon),
        Some("avx2") => clamp_supported(KernelVariant::Avx2),
        Some("avx512") | Some("avx512f") => clamp_supported(KernelVariant::Avx512),
        _ => detected(),
    }
}

static ACTIVE_DEFAULT: OnceLock<KernelVariant> = OnceLock::new();
/// `0` = no override; else `variant.to_u8() + 1`.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// The variant the operators dispatch on right now: a [`ForceVariant`]
/// override if one is live, else the (cached) environment/detection default.
pub fn active() -> KernelVariant {
    match OVERRIDE.load(Ordering::SeqCst) {
        0 => *ACTIVE_DEFAULT.get_or_init(env_default),
        n => KernelVariant::from_u8(n - 1),
    }
}

/// RAII guard that pins [`active`] to a specific variant for A/B bitwise
/// testing. Holds a global lock, so concurrent test threads serialize
/// instead of racing on the override; the request is clamped to supported
/// variants (never dispatches an instruction set the CPU lacks). Dropping
/// the guard restores normal detection.
pub struct ForceVariant {
    _guard: std::sync::MutexGuard<'static, ()>,
}

impl ForceVariant {
    pub fn new(v: KernelVariant) -> ForceVariant {
        let guard = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        OVERRIDE.store(clamp_supported(v).to_u8() + 1, Ordering::SeqCst);
        ForceVariant { _guard: guard }
    }
}

impl Drop for ForceVariant {
    fn drop(&mut self) {
        OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// Comma-joined CPU feature flags relevant to kernel dispatch
/// (`avx2`, `avx512f`, `neon`), recorded in bench `host` blocks. Detection
/// only — independent of the `simd` cargo feature and any override.
pub fn cpu_features() -> &'static str {
    static FEATURES: OnceLock<String> = OnceLock::new();
    FEATURES.get_or_init(|| {
        #[allow(unused_mut)]
        let mut f: Vec<&str> = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                f.push("avx2");
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                f.push("avx512f");
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                f.push("neon");
            }
        }
        f.join(",")
    })
}

/// Per-lane geometry coefficients of one acoustic batch, precomputed with
/// the exact expressions of [`crate::kernel::scalar_stiffness`] so each lane
/// sees bit-identical constants.
#[derive(Default)]
pub(crate) struct AcousticLanes {
    pub(crate) cx: [f64; MAX_LANES],
    pub(crate) cy: [f64; MAX_LANES],
    pub(crate) cz: [f64; MAX_LANES],
}

/// Per-lane geometry/material coefficients of one elastic batch
/// (`tmu = 2μ`, matching the scalar kernel's `2.0 * mu * …`).
#[derive(Default)]
pub(crate) struct ElasticLanes {
    pub(crate) jac: [f64; MAX_LANES],
    pub(crate) g: [[f64; MAX_LANES]; 3],
    pub(crate) lam: [f64; MAX_LANES],
    pub(crate) mu: [f64; MAX_LANES],
    pub(crate) tmu: [f64; MAX_LANES],
}

/// Generates one ISA-specific kernel module. Every function in the module
/// shares the same dispatch precondition (the CPU supports `$feat`, because
/// the caller reached it through a detection-produced [`KernelVariant`]);
/// interior pointer arithmetic is bounds-guarded by the `debug_assert!`
/// length checks at each kernel's entry, which mirror the slice sizes the
/// engines in `compiled.rs` allocate.
#[cfg(any(
    all(feature = "simd", target_arch = "x86_64"),
    all(feature = "simd", target_arch = "aarch64")
))]
macro_rules! simd_kernel_mod {
    ($modname:ident, $feat:literal, $lanes:expr, $vec:ty,
     $load:path, $store:path, $splat:path, $add:path, $mul:path) => {
        pub(crate) mod $modname {
            use crate::simd::{AcousticLanes, ElasticLanes};

            /// Lane width of this instruction set.
            pub(crate) const LANES: usize = $lanes;

            /// Vector load of `LANES` doubles at `s[o..]`.
            ///
            /// # Safety
            /// `o + LANES <= s.len()`, and the CPU supports the module's
            /// instruction set (dispatch precondition).
            #[target_feature(enable = $feat)]
            #[inline]
            unsafe fn ld(s: &[f64], o: usize) -> $vec {
                debug_assert!(o + LANES <= s.len());
                $load(s.as_ptr().add(o))
            }

            /// Vector store of `LANES` doubles to `s[o..]`.
            ///
            /// # Safety
            /// `o + LANES <= s.len()`, and the CPU supports the module's
            /// instruction set (dispatch precondition).
            #[target_feature(enable = $feat)]
            #[inline]
            unsafe fn st(s: &mut [f64], o: usize, v: $vec) {
                debug_assert!(o + LANES <= s.len());
                $store(s.as_mut_ptr().add(o), v)
            }

            /// Batched twin of [`crate::kernel::scalar_stiffness`]: lane `l`
            /// computes `tmp_l = K_e tmp` for element `l` with the scalar
            /// kernel's exact operation sequence (separate mul + add, no
            /// FMA), on `q·LANES + l` SoA buffers of length `np³ · LANES`.
            /// `cf` carries per-lane `μJ gᵢ²` coefficients.
            ///
            /// # Safety
            /// CPU supports the module's instruction set — guaranteed by the
            /// [`crate::simd::KernelVariant`] dispatch in
            /// [`crate::simd::batch_scalar_stiffness`]. Buffer lengths are
            /// `np³·LANES` (asserted below).
            // lint: hot-path
            #[target_feature(enable = $feat)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn scalar_stiffness_batch(
                np: usize,
                d: &[f64],
                w3: &[f64],
                cf: &AcousticLanes,
                loc: &[f64],
                tmp: &mut [f64],
                der: &mut [f64],
            ) {
                let npe = np * np * np;
                debug_assert!(loc.len() >= npe * LANES);
                debug_assert!(tmp.len() >= npe * LANES);
                debug_assert!(der.len() >= npe * LANES);
                let idx = |a: usize, b: usize, c: usize| (a + np * (b + np * c)) * LANES;
                let sidx = |a: usize, b: usize, c: usize| a + np * (b + np * c);
                tmp[..npe * LANES].fill(0.0);

                let cxv = ld(&cf.cx, 0);
                for c in 0..np {
                    for b in 0..np {
                        for a in 0..np {
                            let mut s = $splat(0.0);
                            for m in 0..np {
                                s = $add(s, $mul($splat(d[a * np + m]), ld(loc, idx(m, b, c))));
                            }
                            let cw = $mul(cxv, $splat(w3[sidx(a, b, c)]));
                            st(der, idx(a, b, c), $mul(s, cw));
                        }
                    }
                }
                for c in 0..np {
                    for b in 0..np {
                        for i in 0..np {
                            let mut s = $splat(0.0);
                            for a in 0..np {
                                s = $add(s, $mul($splat(d[a * np + i]), ld(der, idx(a, b, c))));
                            }
                            let o = idx(i, b, c);
                            st(tmp, o, $add(ld(tmp, o), s));
                        }
                    }
                }

                let cyv = ld(&cf.cy, 0);
                for c in 0..np {
                    for b in 0..np {
                        for a in 0..np {
                            let mut s = $splat(0.0);
                            for m in 0..np {
                                s = $add(s, $mul($splat(d[b * np + m]), ld(loc, idx(a, m, c))));
                            }
                            let cw = $mul(cyv, $splat(w3[sidx(a, b, c)]));
                            st(der, idx(a, b, c), $mul(s, cw));
                        }
                    }
                }
                for c in 0..np {
                    for i in 0..np {
                        for a in 0..np {
                            let mut s = $splat(0.0);
                            for b in 0..np {
                                s = $add(s, $mul($splat(d[b * np + i]), ld(der, idx(a, b, c))));
                            }
                            let o = idx(a, i, c);
                            st(tmp, o, $add(ld(tmp, o), s));
                        }
                    }
                }

                let czv = ld(&cf.cz, 0);
                for c in 0..np {
                    for b in 0..np {
                        for a in 0..np {
                            let mut s = $splat(0.0);
                            for m in 0..np {
                                s = $add(s, $mul($splat(d[c * np + m]), ld(loc, idx(a, b, m))));
                            }
                            let cw = $mul(czv, $splat(w3[sidx(a, b, c)]));
                            st(der, idx(a, b, c), $mul(s, cw));
                        }
                    }
                }
                for i in 0..np {
                    for b in 0..np {
                        for a in 0..np {
                            let mut s = $splat(0.0);
                            for c in 0..np {
                                s = $add(s, $mul($splat(d[c * np + i]), ld(der, idx(a, b, c))));
                            }
                            let o = idx(a, b, i);
                            st(tmp, o, $add(ld(tmp, o), s));
                        }
                    }
                }
            }

            /// `out[base+i] += Σ_a d[a·np+i] f[base+a]` per lane (transposed
            /// ξ-contraction on SoA buffers).
            ///
            /// # Safety
            /// Dispatch precondition; `f`/`out` hold `np³·LANES` doubles.
            #[target_feature(enable = $feat)]
            unsafe fn deriv_x_t_add(np: usize, d: &[f64], f: &[f64], out: &mut [f64]) {
                for c in 0..np {
                    for b in 0..np {
                        let base = np * (b + np * c);
                        for i in 0..np {
                            let mut s = $splat(0.0);
                            for a in 0..np {
                                s = $add(s, $mul($splat(d[a * np + i]), ld(f, (base + a) * LANES)));
                            }
                            let o = (base + i) * LANES;
                            st(out, o, $add(ld(out, o), s));
                        }
                    }
                }
            }

            /// Transposed η-contraction, per lane.
            ///
            /// # Safety
            /// Dispatch precondition; `f`/`out` hold `np³·LANES` doubles.
            #[target_feature(enable = $feat)]
            unsafe fn deriv_y_t_add(np: usize, d: &[f64], f: &[f64], out: &mut [f64]) {
                for c in 0..np {
                    for i in 0..np {
                        for a in 0..np {
                            let mut s = $splat(0.0);
                            for b in 0..np {
                                s = $add(
                                    s,
                                    $mul(
                                        $splat(d[b * np + i]),
                                        ld(f, (a + np * (b + np * c)) * LANES),
                                    ),
                                );
                            }
                            let o = (a + np * (i + np * c)) * LANES;
                            st(out, o, $add(ld(out, o), s));
                        }
                    }
                }
            }

            /// Transposed ζ-contraction, per lane.
            ///
            /// # Safety
            /// Dispatch precondition; `f`/`out` hold `np³·LANES` doubles.
            #[target_feature(enable = $feat)]
            unsafe fn deriv_z_t_add(np: usize, d: &[f64], f: &[f64], out: &mut [f64]) {
                for i in 0..np {
                    for b in 0..np {
                        for a in 0..np {
                            let mut s = $splat(0.0);
                            for c in 0..np {
                                s = $add(
                                    s,
                                    $mul(
                                        $splat(d[c * np + i]),
                                        ld(f, (a + np * (b + np * c)) * LANES),
                                    ),
                                );
                            }
                            let o = (a + np * (b + np * i)) * LANES;
                            st(out, o, $add(ld(out, o), s));
                        }
                    }
                }
            }

            /// Batched twin of [`crate::elastic::elastic_stiffness`]: lane
            /// `l` runs the scalar elastic kernel's exact operation sequence
            /// for element `l`. `u`/`out` are component-major
            /// (`comp·np³·LANES + q·LANES + l`), `grad` is `(3·comp+axis)`-
            /// major. The gradient scaling by `g[axis]` is folded into the
            /// derivative store (`(Σ…)·g`, the same product the scalar
            /// kernel's separate scale pass computes).
            ///
            /// # Safety
            /// CPU supports the module's instruction set — guaranteed by the
            /// [`crate::simd::KernelVariant`] dispatch in
            /// [`crate::simd::batch_elastic_stiffness`]. Buffer lengths are
            /// asserted below.
            // lint: hot-path
            #[target_feature(enable = $feat)]
            #[allow(clippy::too_many_arguments)]
            pub(crate) unsafe fn elastic_stiffness_batch(
                np: usize,
                d: &[f64],
                w3: &[f64],
                cf: &ElasticLanes,
                u: &[f64],
                grad: &mut [f64],
                flux: &mut [f64],
                out: &mut [f64],
            ) {
                let npe = np * np * np;
                let n = npe * LANES;
                debug_assert!(u.len() >= 3 * n);
                debug_assert!(grad.len() >= 9 * n);
                debug_assert!(flux.len() >= n);
                debug_assert!(out.len() >= 3 * n);
                let jacv = ld(&cf.jac, 0);
                let gv = [ld(&cf.g[0], 0), ld(&cf.g[1], 0), ld(&cf.g[2], 0)];
                let lamv = ld(&cf.lam, 0);
                let muv = ld(&cf.mu, 0);
                let tmuv = ld(&cf.tmu, 0);

                // gradients G[comp][axis] = g[axis] · D_axis u_comp
                for comp in 0..3 {
                    let ub = comp * n;
                    let gx = (3 * comp) * n;
                    for c in 0..np {
                        for b in 0..np {
                            let base = np * (b + np * c);
                            for a in 0..np {
                                let mut s = $splat(0.0);
                                for m in 0..np {
                                    s = $add(
                                        s,
                                        $mul($splat(d[a * np + m]), ld(u, ub + (base + m) * LANES)),
                                    );
                                }
                                st(grad, gx + (base + a) * LANES, $mul(s, gv[0]));
                            }
                        }
                    }
                    let gy = (3 * comp + 1) * n;
                    for c in 0..np {
                        for b in 0..np {
                            for a in 0..np {
                                let mut s = $splat(0.0);
                                for m in 0..np {
                                    s = $add(
                                        s,
                                        $mul(
                                            $splat(d[b * np + m]),
                                            ld(u, ub + (a + np * (m + np * c)) * LANES),
                                        ),
                                    );
                                }
                                st(grad, gy + (a + np * (b + np * c)) * LANES, $mul(s, gv[1]));
                            }
                        }
                    }
                    let gz = (3 * comp + 2) * n;
                    for c in 0..np {
                        for b in 0..np {
                            for a in 0..np {
                                let mut s = $splat(0.0);
                                for m in 0..np {
                                    s = $add(
                                        s,
                                        $mul(
                                            $splat(d[c * np + m]),
                                            ld(u, ub + (a + np * (b + np * m)) * LANES),
                                        ),
                                    );
                                }
                                st(grad, gz + (a + np * (b + np * c)) * LANES, $mul(s, gv[2]));
                            }
                        }
                    }
                }

                out[..3 * n].fill(0.0);

                // diagonal stresses: σ_ii = λ tr + 2μ G[i][i]
                for comp in 0..3 {
                    for q in 0..npe {
                        let o = q * LANES;
                        let tr = $add($add(ld(grad, o), ld(grad, 4 * n + o)), ld(grad, 8 * n + o));
                        let sii = $add(
                            $mul(lamv, tr),
                            $mul(tmuv, ld(grad, (3 * comp + comp) * n + o)),
                        );
                        let wq = $mul($splat(w3[q]), jacv);
                        st(flux, o, $mul($mul(wq, gv[comp]), sii));
                    }
                    match comp {
                        0 => deriv_x_t_add(np, d, flux, &mut out[..n]),
                        1 => deriv_y_t_add(np, d, flux, &mut out[n..2 * n]),
                        _ => deriv_z_t_add(np, d, flux, &mut out[2 * n..3 * n]),
                    }
                }
                // shear stresses σ_ij = μ (G[i][j] + G[j][i]), i ≠ j
                for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
                    for q in 0..npe {
                        let o = q * LANES;
                        let sij = $mul(
                            muv,
                            $add(ld(grad, (3 * i + j) * n + o), ld(grad, (3 * j + i) * n + o)),
                        );
                        let wq = $mul($splat(w3[q]), jacv);
                        st(flux, o, $mul($mul(wq, gv[j]), sij));
                    }
                    match j {
                        1 => deriv_y_t_add(np, d, flux, &mut out[i * n..(i + 1) * n]),
                        _ => deriv_z_t_add(np, d, flux, &mut out[i * n..(i + 1) * n]),
                    }
                    for q in 0..npe {
                        let o = q * LANES;
                        let sij = $mul(
                            muv,
                            $add(ld(grad, (3 * i + j) * n + o), ld(grad, (3 * j + i) * n + o)),
                        );
                        let wq = $mul($splat(w3[q]), jacv);
                        st(flux, o, $mul($mul(wq, gv[i]), sij));
                    }
                    match i {
                        0 => deriv_x_t_add(np, d, flux, &mut out[j * n..(j + 1) * n]),
                        _ => deriv_y_t_add(np, d, flux, &mut out[j * n..(j + 1) * n]),
                    }
                }
            }
        }
    };
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
simd_kernel_mod!(
    avx2,
    "avx2",
    4,
    core::arch::x86_64::__m256d,
    core::arch::x86_64::_mm256_loadu_pd,
    core::arch::x86_64::_mm256_storeu_pd,
    core::arch::x86_64::_mm256_set1_pd,
    core::arch::x86_64::_mm256_add_pd,
    core::arch::x86_64::_mm256_mul_pd
);

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
simd_kernel_mod!(
    avx512,
    "avx512f",
    8,
    core::arch::x86_64::__m512d,
    core::arch::x86_64::_mm512_loadu_pd,
    core::arch::x86_64::_mm512_storeu_pd,
    core::arch::x86_64::_mm512_set1_pd,
    core::arch::x86_64::_mm512_add_pd,
    core::arch::x86_64::_mm512_mul_pd
);

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
simd_kernel_mod!(
    neon,
    "neon",
    2,
    core::arch::aarch64::float64x2_t,
    core::arch::aarch64::vld1q_f64,
    core::arch::aarch64::vst1q_f64,
    core::arch::aarch64::vdupq_n_f64,
    core::arch::aarch64::vaddq_f64,
    core::arch::aarch64::vmulq_f64
);

/// Dispatch one acoustic batch to `v`'s kernel. Returns `false` when `v` has
/// no batched kernel (scalar variant, or a build without the matching ISA) —
/// the caller then falls back to the per-element path.
// lint: hot-path
#[inline]
#[must_use]
#[allow(clippy::too_many_arguments)]
pub(crate) fn batch_scalar_stiffness(
    v: KernelVariant,
    np: usize,
    d: &[f64],
    w3: &[f64],
    cf: &AcousticLanes,
    loc: &[f64],
    tmp: &mut [f64],
    der: &mut [f64],
) -> bool {
    match v {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        KernelVariant::Avx2 => {
            // SAFETY: `v == Avx2` only arises from runtime feature detection
            // or a support-clamped override, so the CPU has AVX2 — the
            // kernel's dispatch precondition.
            unsafe { avx2::scalar_stiffness_batch(np, d, w3, cf, loc, tmp, der) }
            true
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        KernelVariant::Avx512 => {
            // SAFETY: `v == Avx512` only arises from runtime feature
            // detection or a support-clamped override, so the CPU has
            // AVX-512F — the kernel's dispatch precondition.
            unsafe { avx512::scalar_stiffness_batch(np, d, w3, cf, loc, tmp, der) }
            true
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        KernelVariant::Neon => {
            // SAFETY: `v == Neon` only arises from runtime feature detection
            // or a support-clamped override, so the CPU has NEON — the
            // kernel's dispatch precondition.
            unsafe { neon::scalar_stiffness_batch(np, d, w3, cf, loc, tmp, der) }
            true
        }
        _ => {
            let _ = (np, d, w3, cf, loc, tmp, der);
            false
        }
    }
}

/// Dispatch one elastic batch to `v`'s kernel; `false` = no batched kernel
/// for `v`, use the per-element path.
// lint: hot-path
#[inline]
#[must_use]
#[allow(clippy::too_many_arguments)]
pub(crate) fn batch_elastic_stiffness(
    v: KernelVariant,
    np: usize,
    d: &[f64],
    w3: &[f64],
    cf: &ElasticLanes,
    u: &[f64],
    grad: &mut [f64],
    flux: &mut [f64],
    out: &mut [f64],
) -> bool {
    match v {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        KernelVariant::Avx2 => {
            // SAFETY: `v == Avx2` only arises from runtime feature detection
            // or a support-clamped override, so the CPU has AVX2 — the
            // kernel's dispatch precondition.
            unsafe { avx2::elastic_stiffness_batch(np, d, w3, cf, u, grad, flux, out) }
            true
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        KernelVariant::Avx512 => {
            // SAFETY: `v == Avx512` only arises from runtime feature
            // detection or a support-clamped override, so the CPU has
            // AVX-512F — the kernel's dispatch precondition.
            unsafe { avx512::elastic_stiffness_batch(np, d, w3, cf, u, grad, flux, out) }
            true
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        KernelVariant::Neon => {
            // SAFETY: `v == Neon` only arises from runtime feature detection
            // or a support-clamped override, so the CPU has NEON — the
            // kernel's dispatch precondition.
            unsafe { neon::elastic_stiffness_batch(np, d, w3, cf, u, grad, flux, out) }
            true
        }
        _ => {
            let _ = (np, d, w3, cf, u, grad, flux, out);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gll::GllBasis;

    #[test]
    fn lanes_and_names_are_consistent() {
        for v in [
            KernelVariant::Scalar,
            KernelVariant::Neon,
            KernelVariant::Avx2,
            KernelVariant::Avx512,
        ] {
            assert_eq!(KernelVariant::from_u8(v.to_u8()), v);
            assert!(v.lanes().is_power_of_two());
            assert!(!v.name().is_empty());
        }
        assert_eq!(KernelVariant::Scalar.lanes(), 1);
        assert!(detected().is_supported());
        assert!(supported_variants().contains(&KernelVariant::Scalar));
    }

    #[test]
    fn force_variant_overrides_and_restores() {
        let base = active();
        {
            let _g = ForceVariant::new(KernelVariant::Scalar);
            assert_eq!(active(), KernelVariant::Scalar);
        }
        assert_eq!(active(), base);
    }

    /// Deterministic pseudo-random fill, seeded.
    fn fill(seed: u64, buf: &mut [f64]) {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for v in buf.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((x >> 11) as f64) / ((1u64 << 53) as f64) - 0.5;
        }
    }

    #[test]
    fn acoustic_batch_is_bitwise_equal_to_scalar() {
        for v in supported_variants() {
            let w = v.lanes();
            if w == 1 {
                continue;
            }
            for order in 1..=4usize {
                let basis = GllBasis::new(order);
                let np = basis.n_points();
                let npe = np * np * np;
                // per-lane geometry and fields
                let geoms: Vec<(f64, f64, f64, f64)> = (0..w)
                    .map(|l| {
                        (
                            1.0 + 0.25 * l as f64,
                            0.8 + 0.1 * l as f64,
                            1.3 - 0.05 * l as f64,
                            1.5 + 0.5 * l as f64,
                        )
                    })
                    .collect();
                let mut lanes_loc = vec![0.0; npe * w];
                let mut scalar_loc = vec![vec![0.0; npe]; w];
                for (l, sl) in scalar_loc.iter_mut().enumerate() {
                    fill(41 * order as u64 + l as u64, sl);
                    for q in 0..npe {
                        lanes_loc[q * w + l] = sl[q];
                    }
                }
                let mut cf = AcousticLanes::default();
                for (l, &(hx, hy, hz, mu)) in geoms.iter().enumerate() {
                    let jac = 0.125 * hx * hy * hz;
                    cf.cx[l] = mu * jac * (2.0 / hx) * (2.0 / hx);
                    cf.cy[l] = mu * jac * (2.0 / hy) * (2.0 / hy);
                    cf.cz[l] = mu * jac * (2.0 / hz) * (2.0 / hz);
                }
                let mut vtmp = vec![0.0; npe * w];
                let mut vder = vec![0.0; npe * w];
                assert!(batch_scalar_stiffness(
                    v,
                    np,
                    &basis.d,
                    &basis.wgll3,
                    &cf,
                    &lanes_loc,
                    &mut vtmp,
                    &mut vder,
                ));
                for (l, &(hx, hy, hz, mu)) in geoms.iter().enumerate() {
                    let mut tmp = vec![0.0; npe];
                    let mut der = vec![0.0; npe];
                    crate::kernel::scalar_stiffness(
                        &basis,
                        hx,
                        hy,
                        hz,
                        mu,
                        &scalar_loc[l],
                        &mut tmp,
                        &mut der,
                    );
                    for q in 0..npe {
                        assert_eq!(
                            tmp[q].to_bits(),
                            vtmp[q * w + l].to_bits(),
                            "{v:?} order {order} lane {l} node {q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn elastic_batch_is_bitwise_equal_to_scalar() {
        for v in supported_variants() {
            let w = v.lanes();
            if w == 1 {
                continue;
            }
            for order in 1..=4usize {
                let basis = GllBasis::new(order);
                let np = basis.n_points();
                let npe = np * np * np;
                let n = npe * w;
                let geoms: Vec<(f64, f64, f64, f64, f64)> = (0..w)
                    .map(|l| {
                        (
                            1.0 + 0.2 * l as f64,
                            0.9 + 0.15 * l as f64,
                            1.2 - 0.04 * l as f64,
                            1.1 + 0.3 * l as f64,
                            0.7 + 0.2 * l as f64,
                        )
                    })
                    .collect();
                let mut vu = vec![0.0; 3 * n];
                let mut scalar_u = vec![vec![0.0; 3 * npe]; w];
                for (l, su) in scalar_u.iter_mut().enumerate() {
                    fill(97 * order as u64 + l as u64, su);
                    for comp in 0..3 {
                        for q in 0..npe {
                            vu[comp * n + q * w + l] = su[comp * npe + q];
                        }
                    }
                }
                let mut cf = ElasticLanes::default();
                for (l, &(hx, hy, hz, lam, mu)) in geoms.iter().enumerate() {
                    cf.jac[l] = 0.125 * hx * hy * hz;
                    cf.g[0][l] = 2.0 / hx;
                    cf.g[1][l] = 2.0 / hy;
                    cf.g[2][l] = 2.0 / hz;
                    cf.lam[l] = lam;
                    cf.mu[l] = mu;
                    cf.tmu[l] = 2.0 * mu;
                }
                let mut vgrad = vec![0.0; 9 * n];
                let mut vflux = vec![0.0; n];
                let mut vout = vec![0.0; 3 * n];
                assert!(batch_elastic_stiffness(
                    v,
                    np,
                    &basis.d,
                    &basis.wgll3,
                    &cf,
                    &vu,
                    &mut vgrad,
                    &mut vflux,
                    &mut vout,
                ));
                for (l, &(hx, hy, hz, lam, mu)) in geoms.iter().enumerate() {
                    let mut s = crate::elastic::Scratch::new(npe);
                    for comp in 0..3 {
                        s.u[comp].copy_from_slice(&scalar_u[l][comp * npe..(comp + 1) * npe]);
                    }
                    crate::elastic::elastic_stiffness(&basis, hx, hy, hz, lam, mu, &mut s);
                    for comp in 0..3 {
                        for q in 0..npe {
                            assert_eq!(
                                s.out[comp][q].to_bits(),
                                vout[comp * n + q * w + l].to_bits(),
                                "{v:?} order {order} lane {l} comp {comp} node {q}"
                            );
                        }
                    }
                }
            }
        }
    }
}
