//! A gather-list-based acoustic SEM operator: per-element DOF index lists
//! instead of closed-form structured numbering.
//!
//! Two uses:
//!
//! * it is the representation a code for *user-defined* hexahedral meshes
//!   (SPECFEM3D's input model) needs — nothing in the LTS machinery assumes
//!   structure;
//! * it enables a truly distributed-memory runtime: each rank extracts the
//!   sub-operator over *its own* elements with compact local DOF numbering
//!   ([`UnstructuredAcoustic::from_subset`]), so per-rank memory scales with
//!   the partition, not the mesh.
//!
//! Element kernels are shared with the structured operator
//! ([`crate::kernel::scalar_stiffness`]), so contributions are
//! bitwise-identical.

use crate::compiled::{
    AcousticEngine, ElasticEngine, ElasticScratchWs, GatherCache, ScalarScratch, ScalarWs,
    FULL_LEVEL,
};
use crate::dofmap::DofMap;
use crate::elastic::Scratch;
use crate::gll::GllBasis;
use lts_core::{DofTopology, Operator, Workspace};
use lts_mesh::HexMesh;

/// Gather-list acoustic operator.
pub struct UnstructuredAcoustic {
    pub basis: GllBasis,
    /// Flattened per-element DOF lists, `(order+1)³` entries per element.
    pub elem_dofs: Vec<u32>,
    /// Per-element `(hx, hy, hz, μ)`.
    pub elem_geom: Vec<(f64, f64, f64, f64)>,
    /// Diagonal mass over the (local) DOF range.
    mass: Vec<f64>,
    /// Reciprocal mass, so the scatter multiplies instead of divides.
    inv_mass: Vec<f64>,
    npe: usize,
    ndof: usize,
}

/// Workspace slot of the gather-list acoustic operator.
struct UAcousticWs(ScalarWs);

impl UnstructuredAcoustic {
    /// Build over a subset of a structured mesh's elements, with compact
    /// local DOF numbering (ascending global order). Returns the operator
    /// and `global_of_local`: the global GLL node id of each local DOF.
    ///
    /// The local mass contains only the subset's contributions — exactly
    /// what a rank owns before the assembly exchange; pass `full_mass_of`
    /// to override with globally assembled values (what SPECFEM's ranks
    /// store after the once-per-run mass assembly).
    pub fn from_subset(
        mesh: &HexMesh,
        order: usize,
        elems: &[u32],
        full_mass_of: Option<&dyn Fn(u32) -> f64>,
    ) -> (Self, Vec<u32>) {
        let dofmap = DofMap::new(mesh, order);
        let basis = GllBasis::new(order);
        let npe = dofmap.nodes_per_elem();

        // local numbering: ascending global ids of all touched nodes
        let mut touched = Vec::with_capacity(elems.len() * npe);
        let mut buf = Vec::new();
        for &e in elems {
            dofmap.elem_nodes(e, &mut buf);
            touched.extend_from_slice(&buf);
        }
        touched.sort_unstable();
        touched.dedup();
        let global_of_local = touched;
        let mut local_of_global = std::collections::HashMap::with_capacity(global_of_local.len());
        for (l, &g) in global_of_local.iter().enumerate() {
            local_of_global.insert(g, l as u32);
        }

        let mut elem_dofs = Vec::with_capacity(elems.len() * npe);
        let mut elem_geom = Vec::with_capacity(elems.len());
        for &e in elems {
            dofmap.elem_nodes(e, &mut buf);
            for &g in &buf {
                elem_dofs.push(local_of_global[&g]);
            }
            let (ei, ej, ek) = dofmap.elem_ijk(e);
            let hx = mesh.xs[ei + 1] - mesh.xs[ei];
            let hy = mesh.ys[ej + 1] - mesh.ys[ej];
            let hz = mesh.zs[ek + 1] - mesh.zs[ek];
            let mu = mesh.density[e as usize] * mesh.velocity[e as usize].powi(2);
            elem_geom.push((hx, hy, hz, mu));
        }

        let ndof = global_of_local.len();
        let mut mass = vec![0.0; ndof];
        match full_mass_of {
            Some(f) => {
                for (l, &g) in global_of_local.iter().enumerate() {
                    mass[l] = f(g);
                }
            }
            None => {
                // assemble from the subset's own elements
                let np = basis.n_points();
                for (le, &e) in elems.iter().enumerate() {
                    let (hx, hy, hz, _) = elem_geom[le];
                    let jac = 0.125 * hx * hy * hz;
                    let rho = mesh.density[e as usize];
                    let base = le * npe;
                    let mut li = 0usize;
                    // same association order as the structured assembly so
                    // the masses agree bitwise
                    for c in 0..np {
                        for b in 0..np {
                            let wbc = basis.weights[b] * basis.weights[c];
                            for a in 0..np {
                                let l = elem_dofs[base + li] as usize;
                                mass[l] += rho * basis.weights[a] * wbc * jac;
                                li += 1;
                            }
                        }
                    }
                }
            }
        }
        let inv_mass = mass.iter().map(|&m| 1.0 / m).collect();
        (
            UnstructuredAcoustic {
                basis,
                elem_dofs,
                elem_geom,
                mass,
                inv_mass,
                npe,
                ndof,
            },
            global_of_local,
        )
    }

    /// Build over the whole mesh (local numbering == global numbering).
    pub fn from_mesh(mesh: &HexMesh, order: usize) -> Self {
        let all: Vec<u32> = (0..mesh.n_elems() as u32).collect();
        let (op, map) = Self::from_subset(mesh, order, &all, None);
        debug_assert!(map.iter().enumerate().all(|(l, &g)| l as u32 == g));
        op
    }

    /// Fetch or compile the colour-major gather entry for `(level, elems)`.
    fn compiled_entry(
        &self,
        cache: &mut GatherCache,
        key_level: u16,
        elems: &[u32],
        dof_level: Option<(&[u8], u8)>,
    ) -> usize {
        cache.get_or_build(
            key_level,
            elems,
            self.ndof,
            &mut |e, out| DofTopology::elem_dofs(self, e, out),
            &mut |order, idx, mask| {
                for &e in order {
                    let base = e as usize * self.npe;
                    let dofs = &self.elem_dofs[base..base + self.npe];
                    if let Some((lvl, k)) = dof_level {
                        for &dof in dofs {
                            mask.push(if lvl[dof as usize] == k { 1.0 } else { 0.0 });
                        }
                    }
                    idx.extend_from_slice(dofs);
                }
            },
        )
    }

    /// The shared execution engine over this operator's geometry.
    fn engine(&self) -> AcousticEngine<'_, impl Fn(u32) -> (f64, f64, f64, f64) + Sync + '_> {
        AcousticEngine {
            basis: &self.basis,
            inv_mass: &self.inv_mass,
            npe: self.npe,
            geom: move |e: u32| self.elem_geom[e as usize],
        }
    }
}

impl DofTopology for UnstructuredAcoustic {
    fn n_dofs(&self) -> usize {
        self.ndof
    }

    fn n_elems(&self) -> usize {
        self.elem_geom.len()
    }

    fn elem_dofs(&self, e: u32, out: &mut Vec<u32>) {
        out.clear();
        let base = e as usize * self.npe;
        out.extend_from_slice(&self.elem_dofs[base..base + self.npe]);
    }
}

impl Operator for UnstructuredAcoustic {
    fn ndof(&self) -> usize {
        self.ndof
    }

    fn apply_ws(&self, u: &[f64], out: &mut [f64], ws: &mut Workspace) {
        out.fill(0.0);
        let st = ws.get_or_insert_with(|| UAcousticWs(ScalarWs::new(self.npe)));
        let i = match st.0.cache.find(FULL_LEVEL, &[]) {
            Some(i) => i,
            None => {
                let all: Vec<u32> = (0..self.elem_geom.len() as u32).collect();
                self.compiled_entry(&mut st.0.cache, FULL_LEVEL, &all, None)
            }
        };
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, self.npe, 1, variant);
        st.0.serial.ensure_lanes(self.npe, variant.lanes());
        let ScalarWs { cache, serial, .. } = &mut st.0;
        self.engine().run_serial(cache.entry(i), u, serial, out);
    }

    fn apply_masked_ws(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
    ) {
        let st = ws.get_or_insert_with(|| UAcousticWs(ScalarWs::new(self.npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, self.npe, 1, variant);
        st.0.serial.ensure_lanes(self.npe, variant.lanes());
        let ScalarWs { cache, serial, .. } = &mut st.0;
        self.engine().run_serial(cache.entry(i), u, serial, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_masked_threads(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
        threads: usize,
    ) {
        if threads <= 1 {
            return self.apply_masked_ws(u, out, elems, dof_level, level, ws);
        }
        let st = ws.get_or_insert_with(|| UAcousticWs(ScalarWs::new(self.npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, self.npe, 1, variant);
        let ScalarWs { cache, par, .. } = &mut st.0;
        if par.len() < threads {
            par.resize_with(threads, || ScalarScratch::new(self.npe));
        }
        for sc in par.iter_mut() {
            sc.ensure_lanes(self.npe, variant.lanes());
        }
        self.engine()
            .run_threads(cache.entry(i), u, &mut par[..threads], out);
    }

    fn precompile_masked(&self, elems: &[u32], dof_level: &[u8], level: u8, ws: &mut Workspace) {
        let st = ws.get_or_insert_with(|| UAcousticWs(ScalarWs::new(self.npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        // warm the SIMD plan too, so no transpose happens mid-run
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, self.npe, 1, variant);
        st.0.serial.ensure_lanes(self.npe, variant.lanes());
    }

    fn mass(&self) -> &[f64] {
        &self.mass
    }
}

/// Gather-list *elastic* operator (three interleaved components per node),
/// mirroring [`UnstructuredAcoustic`]. Per-element geometry carries
/// `(hx, hy, hz, λ, μ)`.
pub struct UnstructuredElastic {
    pub basis: GllBasis,
    /// Flattened per-element *node* lists (local node ids), `(order+1)³`
    /// entries per element; DOF `= 3·node + comp`.
    pub elem_nodes: Vec<u32>,
    pub elem_geom: Vec<(f64, f64, f64, f64, f64)>,
    mass: Vec<f64>,
    /// Reciprocal mass, so the scatter multiplies instead of divides.
    inv_mass: Vec<f64>,
    npe: usize,
    n_nodes: usize,
}

/// Workspace slot of the gather-list elastic operator.
struct UElasticWs(ElasticScratchWs);

impl UnstructuredElastic {
    /// Build over a subset of elements with compact local node numbering
    /// (Poisson solid: `λ = μ`, `vs/vp = 1/√3`). Returns the operator and
    /// the global GLL node id of each local node.
    pub fn from_subset(
        mesh: &HexMesh,
        order: usize,
        elems: &[u32],
        full_mass_of: Option<&dyn Fn(u32) -> f64>,
    ) -> (Self, Vec<u32>) {
        let dofmap = DofMap::new(mesh, order);
        let basis = GllBasis::new(order);
        let npe = dofmap.nodes_per_elem();
        let mut touched = Vec::with_capacity(elems.len() * npe);
        let mut buf = Vec::new();
        for &e in elems {
            dofmap.elem_nodes(e, &mut buf);
            touched.extend_from_slice(&buf);
        }
        touched.sort_unstable();
        touched.dedup();
        let global_of_local = touched;
        let mut local_of_global = std::collections::HashMap::with_capacity(global_of_local.len());
        for (l, &g) in global_of_local.iter().enumerate() {
            local_of_global.insert(g, l as u32);
        }
        let mut elem_nodes = Vec::with_capacity(elems.len() * npe);
        let mut elem_geom = Vec::with_capacity(elems.len());
        let vs_over_vp = 1.0 / 3.0f64.sqrt();
        for &e in elems {
            dofmap.elem_nodes(e, &mut buf);
            for &g in &buf {
                elem_nodes.push(local_of_global[&g]);
            }
            let (ei, ej, ek) = dofmap.elem_ijk(e);
            let hx = mesh.xs[ei + 1] - mesh.xs[ei];
            let hy = mesh.ys[ej + 1] - mesh.ys[ej];
            let hz = mesh.zs[ek + 1] - mesh.zs[ek];
            let rho = mesh.density[e as usize];
            let vp = mesh.velocity[e as usize];
            let vs = vp * vs_over_vp;
            let mu = rho * vs * vs;
            let lam = rho * vp * vp - 2.0 * mu;
            elem_geom.push((hx, hy, hz, lam, mu));
        }
        let n_nodes = global_of_local.len();
        let mut mass = vec![0.0; 3 * n_nodes];
        match full_mass_of {
            Some(f) => {
                for (l, &g) in global_of_local.iter().enumerate() {
                    // the structured elastic mass replicates per component
                    let m = f(g);
                    mass[3 * l] = m;
                    mass[3 * l + 1] = m;
                    mass[3 * l + 2] = m;
                }
            }
            None => {
                let np = basis.n_points();
                for (le, &e) in elems.iter().enumerate() {
                    let (hx, hy, hz, _, _) = elem_geom[le];
                    let jac = 0.125 * hx * hy * hz;
                    let rho = mesh.density[e as usize];
                    let base = le * npe;
                    let mut li = 0usize;
                    for c in 0..np {
                        for b in 0..np {
                            let wbc = basis.weights[b] * basis.weights[c];
                            for a in 0..np {
                                let l = elem_nodes[base + li] as usize;
                                let m = rho * basis.weights[a] * wbc * jac;
                                mass[3 * l] += m;
                                mass[3 * l + 1] += m;
                                mass[3 * l + 2] += m;
                                li += 1;
                            }
                        }
                    }
                }
            }
        }
        let inv_mass = mass.iter().map(|&m| 1.0 / m).collect();
        (
            UnstructuredElastic {
                basis,
                elem_nodes,
                elem_geom,
                mass,
                inv_mass,
                npe,
                n_nodes,
            },
            global_of_local,
        )
    }

    /// Build over the whole mesh (local == global node numbering).
    pub fn from_mesh(mesh: &HexMesh, order: usize) -> Self {
        let all: Vec<u32> = (0..mesh.n_elems() as u32).collect();
        Self::from_subset(mesh, order, &all, None).0
    }

    /// Fetch or compile the colour-major gather entry for `(level, elems)`.
    /// `idx` holds local node ids; masks carry 3 entries per node.
    fn compiled_entry(
        &self,
        cache: &mut GatherCache,
        key_level: u16,
        elems: &[u32],
        dof_level: Option<(&[u8], u8)>,
    ) -> usize {
        cache.get_or_build(
            key_level,
            elems,
            self.n_nodes,
            &mut |e, out| {
                out.clear();
                let base = e as usize * self.npe;
                out.extend_from_slice(&self.elem_nodes[base..base + self.npe]);
            },
            &mut |order, idx, mask| {
                for &e in order {
                    let base = e as usize * self.npe;
                    let nodes = &self.elem_nodes[base..base + self.npe];
                    if let Some((lvl, k)) = dof_level {
                        for &node in nodes {
                            for comp in 0..3 {
                                let dof = 3 * node as usize + comp;
                                mask.push(if lvl[dof] == k { 1.0 } else { 0.0 });
                            }
                        }
                    }
                    idx.extend_from_slice(nodes);
                }
            },
        )
    }

    /// The shared execution engine over this operator's geometry.
    fn engine(&self) -> ElasticEngine<'_, impl Fn(u32) -> (f64, f64, f64, f64, f64) + Sync + '_> {
        ElasticEngine {
            basis: &self.basis,
            inv_mass: &self.inv_mass,
            npe: self.npe,
            geom: move |e: u32| self.elem_geom[e as usize],
        }
    }
}

impl DofTopology for UnstructuredElastic {
    fn n_dofs(&self) -> usize {
        3 * self.n_nodes
    }

    fn n_elems(&self) -> usize {
        self.elem_geom.len()
    }

    fn elem_dofs(&self, e: u32, out: &mut Vec<u32>) {
        out.clear();
        let base = e as usize * self.npe;
        for &node in &self.elem_nodes[base..base + self.npe] {
            out.push(3 * node);
            out.push(3 * node + 1);
            out.push(3 * node + 2);
        }
    }
}

impl Operator for UnstructuredElastic {
    fn ndof(&self) -> usize {
        3 * self.n_nodes
    }

    fn apply_ws(&self, u: &[f64], out: &mut [f64], ws: &mut Workspace) {
        out.fill(0.0);
        let st = ws.get_or_insert_with(|| UElasticWs(ElasticScratchWs::new(self.npe)));
        let i = match st.0.cache.find(FULL_LEVEL, &[]) {
            Some(i) => i,
            None => {
                let all: Vec<u32> = (0..self.elem_geom.len() as u32).collect();
                self.compiled_entry(&mut st.0.cache, FULL_LEVEL, &all, None)
            }
        };
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, self.npe, 3, variant);
        st.0.serial.ensure_lanes(self.npe, variant.lanes());
        let ElasticScratchWs { cache, serial, .. } = &mut st.0;
        self.engine().run_serial(cache.entry(i), u, serial, out);
    }

    fn apply_masked_ws(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
    ) {
        let st = ws.get_or_insert_with(|| UElasticWs(ElasticScratchWs::new(self.npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, self.npe, 3, variant);
        st.0.serial.ensure_lanes(self.npe, variant.lanes());
        let ElasticScratchWs { cache, serial, .. } = &mut st.0;
        self.engine().run_serial(cache.entry(i), u, serial, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_masked_threads(
        &self,
        u: &[f64],
        out: &mut [f64],
        elems: &[u32],
        dof_level: &[u8],
        level: u8,
        ws: &mut Workspace,
        threads: usize,
    ) {
        if threads <= 1 {
            return self.apply_masked_ws(u, out, elems, dof_level, level, ws);
        }
        let st = ws.get_or_insert_with(|| UElasticWs(ElasticScratchWs::new(self.npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, self.npe, 3, variant);
        let ElasticScratchWs { cache, par, .. } = &mut st.0;
        if par.len() < threads {
            par.resize_with(threads, || Scratch::new(self.npe));
        }
        for s in par.iter_mut() {
            s.ensure_lanes(self.npe, variant.lanes());
        }
        self.engine()
            .run_threads(cache.entry(i), u, &mut par[..threads], out);
    }

    fn precompile_masked(&self, elems: &[u32], dof_level: &[u8], level: u8, ws: &mut Workspace) {
        let st = ws.get_or_insert_with(|| UElasticWs(ElasticScratchWs::new(self.npe)));
        let i = self.compiled_entry(
            &mut st.0.cache,
            level as u16,
            elems,
            Some((dof_level, level)),
        );
        // warm the SIMD plan too, so no transpose happens mid-run
        let variant = crate::simd::active();
        st.0.cache.ensure_plan(i, self.npe, 3, variant);
        st.0.serial.ensure_lanes(self.npe, variant.lanes());
    }

    fn mass(&self) -> &[f64] {
        &self.mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acoustic::AcousticOperator;

    fn mesh() -> HexMesh {
        let mut m = HexMesh::uniform(4, 3, 2, 1.0, 1.2);
        m.paint_box((2, 4), (0, 3), (0, 2), 2.0, 1.2);
        m
    }

    #[test]
    fn full_mesh_matches_structured_bitwise() {
        let m = mesh();
        let order = 3;
        let s = AcousticOperator::new(&m, order);
        let u_op = UnstructuredAcoustic::from_mesh(&m, order);
        let n = Operator::ndof(&s);
        assert_eq!(Operator::ndof(&u_op), n);
        // same mass
        for i in 0..n {
            assert_eq!(s.mass()[i], u_op.mass()[i], "mass {i}");
        }
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 23) as f64) / 23.0 - 0.5)
            .collect();
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        s.apply(&u, &mut a);
        u_op.apply(&u, &mut b);
        for i in 0..n {
            assert_eq!(a[i], b[i], "dof {i}");
        }
    }

    #[test]
    fn elastic_full_mesh_matches_structured_bitwise() {
        use crate::elastic::ElasticOperator;
        let m = mesh();
        let order = 2;
        let s = ElasticOperator::poisson(&m, order);
        let u_op = UnstructuredElastic::from_mesh(&m, order);
        let n = Operator::ndof(&s);
        assert_eq!(Operator::ndof(&u_op), n);
        for i in 0..n {
            assert_eq!(s.mass()[i], u_op.mass()[i], "mass {i}");
        }
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 17 % 19) as f64) / 19.0 - 0.5)
            .collect();
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        s.apply(&u, &mut a);
        u_op.apply(&u, &mut b);
        for i in 0..n {
            assert_eq!(a[i], b[i], "dof {i}");
        }
    }

    #[test]
    fn elastic_subset_is_local() {
        let m = mesh();
        let (op, map) = UnstructuredElastic::from_subset(&m, 2, &[0, 1], None);
        // 2×1×1 patch at order 2 → 5×3×3 nodes, ×3 components
        assert_eq!(DofTopology::n_dofs(&op), 3 * 5 * 3 * 3);
        assert_eq!(map.len(), 5 * 3 * 3);
        assert!(op.mass().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn subset_operator_is_local() {
        let m = mesh();
        let order = 2;
        let elems: Vec<u32> = vec![0, 1, 4, 5]; // a 2×2 patch
        let (op, map) = UnstructuredAcoustic::from_subset(&m, order, &elems, None);
        // local DOF count: patch of 2×2×1 elements at order 2 → 5×5×3 nodes
        assert_eq!(DofTopology::n_dofs(&op), 5 * 5 * 3);
        assert_eq!(map.len(), 5 * 5 * 3);
        assert!(map.windows(2).all(|w| w[1] > w[0]), "local order ascending");
        // mass positive
        assert!(op.mass().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn subset_with_global_mass_matches_structured_rows() {
        // with the globally assembled mass, a subset apply over its own
        // elements equals the structured masked contribution
        let m = mesh();
        let order = 2;
        let s = AcousticOperator::new(&m, order);
        let elems: Vec<u32> = vec![0, 1, 2];
        let s_mass = s.mass().to_vec();
        let (op, map) =
            UnstructuredAcoustic::from_subset(&m, order, &elems, Some(&|g| s_mass[g as usize]));
        let n_global = Operator::ndof(&s);
        let u_global: Vec<f64> = (0..n_global).map(|i| (i as f64 * 0.17).sin()).collect();
        let u_local: Vec<f64> = map.iter().map(|&g| u_global[g as usize]).collect();
        let mut out_local = vec![0.0; map.len()];
        op.apply(&u_local, &mut out_local);
        // structured: accumulate only those elements
        let mut out_global = vec![0.0; n_global];
        let dof_level = vec![0u8; n_global];
        s.apply_masked(&u_global, &mut out_global, &elems, &dof_level, 0);
        for (l, &g) in map.iter().enumerate() {
            assert_eq!(
                out_local[l], out_global[g as usize],
                "local {l} / global {g}"
            );
        }
    }
}
