//! The one `unsafe` primitive of the threaded executor: a lifetime-carrying
//! shared view of an output slice whose writers promise index-disjointness.
//!
//! Everything `unsafe` in `lts-sem` funnels through [`DisjointOut`] so the
//! soundness argument lives in exactly one place. The invariant it encodes —
//! *concurrent claimants never touch the same index between two barriers* —
//! is discharged structurally by the colouring: within one colour of a
//! [`crate::compiled::CompiledGather`] no two elements share a scatter
//! target (verified by [`crate::verify::conflict_free`], re-checked by a
//! `debug_assert!` at every compile, model-checked across interleavings by
//! `tests/loom_model.rs`, and auditable offline via the `lts-check` binary).
//!
//! Safe alternatives considered and rejected:
//! * `&[Cell<f64>]` via `Cell::as_slice_of_cells` — `Cell` is not `Sync`,
//!   so it cannot cross the scoped-thread boundary.
//! * `&[AtomicU64]` — would change the generated code on the hottest loop
//!   of the whole system and forfeit bitwise identity guarantees.
//! * per-thread private buffers merged afterwards — changes the memory
//!   traffic the paper's performance model is calibrated against.
//!
//! Unlike the raw `(*mut f64, usize)` pair it replaced, [`DisjointOut`]
//! carries the lifetime of the borrowed slice, so a claimed view can never
//! outlive the buffer it aliases.

use std::marker::PhantomData;

/// A `Sync` view over a `&'a mut [f64]` that hands out aliasing `&mut`
/// slices to cooperating threads which promise disjoint index access.
pub(crate) struct DisjointOut<'a> {
    ptr: *mut f64,
    len: usize,
    /// Ties the view to the original mutable borrow: while a `DisjointOut`
    /// exists the caller cannot touch the slice through any other path.
    _borrow: PhantomData<&'a mut [f64]>,
}

// SAFETY: sharing `DisjointOut` across threads only shares the *capability*
// to call `claim`; actual aliased access is governed by `claim`'s contract
// (disjoint index sets between barriers). The wrapped pointer originates
// from an exclusive `&mut [f64]` borrow held for the view's lifetime, so no
// third party can observe the writes mid-flight.
unsafe impl Sync for DisjointOut<'_> {}

impl<'a> DisjointOut<'a> {
    /// Wrap an exclusively borrowed output slice. The borrow is held for
    /// `'a`, so all access until then goes through [`DisjointOut::claim`].
    pub(crate) fn new(out: &'a mut [f64]) -> Self {
        DisjointOut {
            ptr: out.as_mut_ptr(),
            len: out.len(),
            _borrow: PhantomData,
        }
    }

    /// Reborrow the full slice.
    ///
    /// # Safety
    ///
    /// Callers on distinct threads must write disjoint index sets between
    /// two consecutive synchronisation points (the colour barrier in
    /// [`crate::parallel::par_colored`]). In the colored executor this holds
    /// because (a) threads take disjoint position ranges of the compiled
    /// order and (b) same-colour elements share no scatter targets — the
    /// invariant `lts-check` verifies and `GatherCache::get_or_build`
    /// re-asserts in debug builds.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn claim(&self) -> &mut [f64] {
        // SAFETY: `ptr`/`len` come from a live `&'a mut [f64]` (see `new`);
        // the aliasing produced by concurrent `claim`s is harmless under the
        // caller contract above (disjoint index sets between barriers).
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}
