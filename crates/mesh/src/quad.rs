//! Minimal 2-D structured quadrilateral meshes.
//!
//! Only used to reproduce the paper's didactic figures: the per-cut
//! communication costs of Fig. 2 (a higher-order 2-D mesh with a p = 2
//! column) and the dual-graph vs. hypergraph comparison of Fig. 3 (a 2×2
//! quad mesh).

/// A structured `nx × ny` quadrilateral mesh.
#[derive(Debug, Clone)]
pub struct QuadMesh {
    pub nx: usize,
    pub ny: usize,
}

impl QuadMesh {
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx >= 1 && ny >= 1);
        QuadMesh { nx, ny }
    }

    pub fn n_elems(&self) -> usize {
        self.nx * self.ny
    }

    pub fn n_nodes(&self) -> usize {
        (self.nx + 1) * (self.ny + 1)
    }

    #[inline]
    pub fn elem_id(&self, i: usize, j: usize) -> u32 {
        debug_assert!(i < self.nx && j < self.ny);
        (i + self.nx * j) as u32
    }

    #[inline]
    pub fn node_id(&self, i: usize, j: usize) -> u32 {
        debug_assert!(i <= self.nx && j <= self.ny);
        (i + (self.nx + 1) * j) as u32
    }

    pub fn elem_ij(&self, e: u32) -> (usize, usize) {
        ((e as usize) % self.nx, (e as usize) / self.nx)
    }

    pub fn node_ij(&self, n: u32) -> (usize, usize) {
        ((n as usize) % (self.nx + 1), (n as usize) / (self.nx + 1))
    }

    /// The four corner node ids of element `e`.
    pub fn elem_corners(&self, e: u32) -> [u32; 4] {
        let (i, j) = self.elem_ij(e);
        [
            self.node_id(i, j),
            self.node_id(i + 1, j),
            self.node_id(i, j + 1),
            self.node_id(i + 1, j + 1),
        ]
    }

    /// Elements incident to node `n` (1–4 of them).
    pub fn node_elems(&self, n: u32) -> Vec<u32> {
        let (i, j) = self.node_ij(n);
        let mut out = Vec::with_capacity(4);
        for dj in 0..2usize {
            if dj > j || j - dj >= self.ny {
                continue;
            }
            for di in 0..2usize {
                if di > i || i - di >= self.nx {
                    continue;
                }
                out.push(self.elem_id(i - di, j - dj));
            }
        }
        out
    }

    /// Edge-adjacent neighbours (dual-graph edges).
    pub fn edge_neighbors(&self, e: u32) -> Vec<u32> {
        let (i, j) = self.elem_ij(e);
        let mut out = Vec::with_capacity(4);
        if i > 0 {
            out.push(self.elem_id(i - 1, j));
        }
        if i + 1 < self.nx {
            out.push(self.elem_id(i + 1, j));
        }
        if j > 0 {
            out.push(self.elem_id(i, j - 1));
        }
        if j + 1 < self.ny {
            out.push(self.elem_id(i, j + 1));
        }
        out
    }

    /// Fig. 2 cost of a vertical cut between element columns `col-1` and
    /// `col`, for a higher-order mesh with `order+1` nodes per edge and
    /// per-element sub-step counts `elem_p`: every shared interface node is
    /// exchanged `max(p_left, p_right)` times per LTS cycle.
    pub fn vertical_cut_cost(&self, col: usize, order: usize, elem_p: &[u64]) -> u64 {
        assert!(col >= 1 && col < self.nx);
        assert_eq!(elem_p.len(), self.n_elems());
        // nodes on the shared vertical line: order*ny + 1 of them
        let shared_nodes = (order * self.ny + 1) as u64;
        let mut per_node_steps = 0u64;
        for j in 0..self.ny {
            let l = elem_p[self.elem_id(col - 1, j) as usize];
            let r = elem_p[self.elem_id(col, j) as usize];
            per_node_steps = per_node_steps.max(l.max(r));
        }
        shared_nodes * per_node_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_dual_graph_edges() {
        // 2×2 mesh: dual graph is a 4-cycle (4 edges), exactly Fig. 3 left.
        let m = QuadMesh::new(2, 2);
        let mut edges = 0;
        for e in 0..m.n_elems() as u32 {
            edges += m.edge_neighbors(e).len();
        }
        assert_eq!(edges / 2, 4);
    }

    #[test]
    fn node_elems_center() {
        let m = QuadMesh::new(2, 2);
        assert_eq!(m.node_elems(m.node_id(1, 1)).len(), 4);
        assert_eq!(m.node_elems(m.node_id(0, 0)), vec![0]);
    }

    #[test]
    fn fig2_cut_costs() {
        // Fig. 2: 3-element-tall columns, 9-node (order-2) elements.
        // A cut inside/at the p=2 region costs 2 syncs per ∆t on each of the
        // (2·3+1)=7 shared nodes; a cut in the p=1 region costs 1.
        let m = QuadMesh::new(4, 3);
        let mut p = vec![1u64; m.n_elems()];
        for j in 0..3 {
            p[m.elem_id(2, j) as usize] = 2; // p=2 column
            p[m.elem_id(3, j) as usize] = 2;
        }
        let order = 2;
        // cut between columns 2 and 3 (both p=2): 7 nodes × 2 steps
        assert_eq!(m.vertical_cut_cost(3, order, &p), 14);
        // cut between columns 1 (p=1) and 2 (p=2): halo still updates twice
        assert_eq!(m.vertical_cut_cost(2, order, &p), 14);
        // cut between columns 0 and 1 (both p=1): 7 nodes × 1 step
        assert_eq!(m.vertical_cut_cost(1, order, &p), 7);
    }
}
