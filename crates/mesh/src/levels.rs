//! CFL bounds (Eq. 7), p-level assignment (Sec. II-B) and the LTS speed-up
//! model (Eq. 9).
//!
//! Levels are numbered from the coarsest: level `0` steps with the global
//! `Δt`, level `k` with `Δt / 2^k` (the paper's `P_{k+1}` with
//! `p_{k+1} = 2^k`). An element's level is the smallest `k` such that
//! `Δt / 2^k ≤ C_CFL · h_e / c_e`.

use crate::hex::HexMesh;

/// Default CFL constant used throughout; explicit Newmark on GLL grids is
/// stable for Courant numbers well below this against the *corner-node*
/// `h/c` ratio once the order-dependent GLL spacing factor is folded in.
pub const DEFAULT_CFL: f64 = 0.5;

/// Per-element LTS levels for a mesh.
#[derive(Debug, Clone)]
pub struct Levels {
    /// Level per element; `0` = coarsest.
    pub elem_level: Vec<u8>,
    /// Number of distinct levels `N` (`max(elem_level) + 1`).
    pub n_levels: usize,
    /// The global (coarsest) step `Δt`.
    pub dt_global: f64,
}

impl Levels {
    /// Assign levels from the element CFL ratios of `mesh`.
    ///
    /// `Δt` is chosen as the largest stable step (`C_CFL · max_e h_e/c_e`);
    /// elements with smaller ratios descend to finer levels, capped at
    /// `max_levels`. Elements that would need a level beyond the cap keep the
    /// finest level and the global step is *reduced* so that the finest level
    /// remains stable — mirroring how production codes cap level counts.
    pub fn assign(mesh: &HexMesh, cfl: f64, max_levels: usize) -> Self {
        assert!((1..=16).contains(&max_levels));
        let ne = mesh.n_elems();
        assert!(ne > 0);
        let ratios: Vec<f64> = (0..ne as u32).map(|e| mesh.elem_cfl_ratio(e)).collect();
        let rmax = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let rmin = ratios.iter().cloned().fold(f64::MAX, f64::min);
        // Deepest level needed if Δt = cfl * rmax:
        let needed = (rmax / rmin).log2().ceil().max(0.0) as usize;
        let n_levels_uncapped = needed + 1;
        let (dt_global, depth) = if n_levels_uncapped <= max_levels {
            (cfl * rmax, n_levels_uncapped)
        } else {
            // Cap levels: finest level must still satisfy CFL for the
            // smallest element: Δt / 2^(max_levels-1) ≤ cfl·rmin.
            (cfl * rmin * (1u64 << (max_levels - 1)) as f64, max_levels)
        };
        let mut elem_level = vec![0u8; ne];
        let mut max_seen = 0u8;
        for (e, &r) in ratios.iter().enumerate() {
            // smallest k with Δt/2^k ≤ cfl·r
            let need = dt_global / (cfl * r);
            let k = if need <= 1.0 {
                0
            } else {
                need.log2().ceil() as usize
            };
            let k = k.min(depth - 1) as u8;
            elem_level[e] = k;
            max_seen = max_seen.max(k);
        }
        let mut lv = Levels {
            elem_level,
            n_levels: max_seen as usize + 1,
            dt_global,
        };
        lv.smooth(mesh);
        lv
    }

    /// Build from an explicit per-element level map (used by the benchmark
    /// mesh painters and by tests).
    pub fn from_levels(mesh: &HexMesh, elem_level: Vec<u8>, dt_global: f64) -> Self {
        assert_eq!(elem_level.len(), mesh.n_elems());
        let n_levels = elem_level.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut lv = Levels {
            elem_level,
            n_levels,
            dt_global,
        };
        lv.smooth(mesh);
        lv
    }

    /// Enforce that face-adjacent elements differ by at most one level by
    /// *raising* coarse neighbours (raising is always stable). Iterates to a
    /// fixed point.
    fn smooth(&mut self, mesh: &HexMesh) {
        loop {
            let mut changed = false;
            for e in 0..mesh.n_elems() as u32 {
                let le = self.elem_level[e as usize];
                for nb in mesh.face_neighbors(e) {
                    let ln = self.elem_level[nb as usize];
                    if ln + 1 < le {
                        self.elem_level[nb as usize] = le - 1;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.n_levels = self.elem_level.iter().copied().max().unwrap_or(0) as usize + 1;
    }

    /// Sub-step multiplier `p = 2^level` for element `e`.
    #[inline]
    pub fn p_of(&self, e: u32) -> u64 {
        1u64 << self.elem_level[e as usize]
    }

    /// `p_max = 2^(N-1)`: the number of fine steps a non-LTS scheme must take
    /// per global `Δt`.
    #[inline]
    pub fn p_max(&self) -> u64 {
        1u64 << (self.n_levels - 1)
    }

    /// Element counts per level, coarsest first.
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.n_levels];
        for &l in &self.elem_level {
            h[l as usize] += 1;
        }
        h
    }

    /// The speed-up model of Eq. 9, generalised to multiple levels:
    /// `p_max · E / Σ_e p_e`. For two levels this reduces exactly to
    /// `p·E / (p·E_fine + E_coarse)`.
    pub fn speedup_model(&self) -> SpeedupModel {
        let e = self.elem_level.len() as f64;
        let lts_cost: u64 = self.elem_level.iter().map(|&l| 1u64 << l).sum();
        SpeedupModel {
            n_elems: self.elem_level.len(),
            n_levels: self.n_levels,
            global_cost: self.p_max() as f64 * e,
            lts_cost: lts_cost as f64,
        }
    }
}

/// The work model behind Eq. 9: element at level `k` costs `2^k`
/// element-updates per global `Δt`; a non-LTS scheme pays `p_max` for every
/// element.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupModel {
    pub n_elems: usize,
    pub n_levels: usize,
    /// `p_max · E` — element-updates per `Δt` without LTS.
    pub global_cost: f64,
    /// `Σ_e p_e` — element-updates per `Δt` with LTS.
    pub lts_cost: f64,
}

impl SpeedupModel {
    /// Theoretical LTS speed-up (Eq. 9).
    pub fn speedup(&self) -> f64 {
        self.global_cost / self.lts_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_mesh() -> HexMesh {
        // 8×2×2 cells; right half has 4× the wave speed → 4× smaller stable dt
        let mut m = HexMesh::uniform(8, 2, 2, 1.0, 1.0);
        m.paint_box((4, 8), (0, 2), (0, 2), 4.0, 1.0);
        m
    }

    #[test]
    fn two_levels_detected() {
        let m = two_region_mesh();
        let lv = Levels::assign(&m, 0.5, 8);
        // ratio 4 → levels 0 and 2, but smoothing inserts level-1 neighbours
        assert_eq!(lv.n_levels, 3);
        assert_eq!(lv.elem_level[m.elem_id(0, 0, 0) as usize], 0);
        assert_eq!(lv.elem_level[m.elem_id(7, 0, 0) as usize], 2);
        // boundary column of the coarse side got raised to 1 by smoothing
        assert_eq!(lv.elem_level[m.elem_id(3, 0, 0) as usize], 1);
    }

    #[test]
    fn uniform_mesh_single_level() {
        let m = HexMesh::uniform(4, 4, 4, 1.5, 1.0);
        let lv = Levels::assign(&m, 0.5, 8);
        assert_eq!(lv.n_levels, 1);
        assert!(lv.elem_level.iter().all(|&l| l == 0));
        assert!((lv.dt_global - 0.5 * (1.0 / 1.5)).abs() < 1e-12);
        assert!((lv.speedup_model().speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dt_global_stable_everywhere() {
        let m = two_region_mesh();
        let lv = Levels::assign(&m, 0.5, 8);
        for e in 0..m.n_elems() as u32 {
            let dt_e = lv.dt_global / lv.p_of(e) as f64;
            assert!(
                dt_e <= 0.5 * m.elem_cfl_ratio(e) + 1e-12,
                "element {e} stepped unstably"
            );
        }
    }

    #[test]
    fn level_cap_reduces_global_dt() {
        let mut m = HexMesh::uniform(8, 1, 1, 1.0, 1.0);
        m.paint_box((7, 8), (0, 1), (0, 1), 100.0, 1.0); // needs 7 levels
        let lv = Levels::assign(&m, 0.5, 3);
        assert!(lv.n_levels <= 3);
        for e in 0..m.n_elems() as u32 {
            let dt_e = lv.dt_global / lv.p_of(e) as f64;
            assert!(dt_e <= 0.5 * m.elem_cfl_ratio(e) + 1e-12);
        }
    }

    #[test]
    fn smoothing_bounds_level_jumps() {
        let m = two_region_mesh();
        let lv = Levels::assign(&m, 0.5, 8);
        for e in 0..m.n_elems() as u32 {
            for nb in m.face_neighbors(e) {
                let d =
                    (lv.elem_level[e as usize] as i32 - lv.elem_level[nb as usize] as i32).abs();
                assert!(d <= 1, "level jump {d} between {e} and {nb}");
            }
        }
    }

    #[test]
    fn eq9_two_level_form() {
        // 100 elements, 10 fine at p=2: Eq. 9 gives 2*100/(2*10+90) = 1.818…
        let mut m = HexMesh::uniform(100, 1, 1, 1.0, 1.0);
        m.paint_box((0, 10), (0, 1), (0, 1), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 8);
        assert_eq!(lv.n_levels, 2);
        let hist = lv.histogram();
        let e = 100.0;
        let expect = 2.0 * e / (2.0 * hist[1] as f64 + hist[0] as f64);
        assert!((lv.speedup_model().speedup() - expect).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_elements() {
        let m = two_region_mesh();
        let lv = Levels::assign(&m, 0.5, 8);
        assert_eq!(lv.histogram().iter().sum::<usize>(), m.n_elems());
    }
}
