//! Random heterogeneous media: smooth, seeded velocity fields for stress
//! tests and workload generation.
//!
//! Real crustal models have continuously varying wave speed; LTS levels then
//! come from the *combination* of geometry and material. This generator
//! synthesises a band-limited random field (a sum of random Fourier modes —
//! the classic von-Kármán-style synthetic media of computational
//! seismology), scaled into `[c_min, c_max]` and sampled per element.
//!
//! Deterministic given the seed; no external RNG dependency (SplitMix64).

use crate::hex::HexMesh;

/// SplitMix64 — tiny, high-quality, reproducible.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parameters of the synthetic medium.
#[derive(Debug, Clone, Copy)]
pub struct MediumConfig {
    pub c_min: f64,
    pub c_max: f64,
    /// Number of random Fourier modes.
    pub n_modes: usize,
    /// Largest wavenumber (cycles per domain extent) — controls the
    /// correlation length (smaller = smoother).
    pub max_wavenumber: f64,
    pub seed: u64,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            c_min: 1.0,
            c_max: 3.0,
            n_modes: 24,
            max_wavenumber: 3.0,
            seed: 1,
        }
    }
}

/// Overwrite `mesh.velocity` with a smooth random field.
pub fn randomize_velocity(mesh: &mut HexMesh, cfg: &MediumConfig) {
    assert!(cfg.c_max >= cfg.c_min && cfg.c_min > 0.0);
    assert!(cfg.n_modes >= 1);
    let mut rng = SplitMix64(cfg.seed ^ 0xC0FFEE);
    // random modes: amplitude ~ 1/|k| (red spectrum → smooth field)
    let two_pi = std::f64::consts::TAU;
    let (lx, ly, lz) = (
        mesh.xs[mesh.nx] - mesh.xs[0],
        mesh.ys[mesh.ny] - mesh.ys[0],
        mesh.zs[mesh.nz] - mesh.zs[0],
    );
    let modes: Vec<(f64, f64, f64, f64, f64)> = (0..cfg.n_modes)
        .map(|_| {
            let kx = (rng.next_f64() * 2.0 - 1.0) * cfg.max_wavenumber;
            let ky = (rng.next_f64() * 2.0 - 1.0) * cfg.max_wavenumber;
            let kz = (rng.next_f64() * 2.0 - 1.0) * cfg.max_wavenumber;
            let phase = rng.next_f64() * two_pi;
            let knorm = (kx * kx + ky * ky + kz * kz).sqrt().max(0.5);
            (kx, ky, kz, phase, 1.0 / knorm)
        })
        .collect();
    let mut raw = Vec::with_capacity(mesh.n_elems());
    for e in 0..mesh.n_elems() as u32 {
        let (x, y, z) = mesh.elem_center(e);
        let (fx, fy, fz) = (x / lx, y / ly, z / lz);
        let mut s = 0.0;
        for &(kx, ky, kz, phase, amp) in &modes {
            s += amp * (two_pi * (kx * fx + ky * fy + kz * fz) + phase).sin();
        }
        raw.push(s);
    }
    let lo = raw.iter().cloned().fold(f64::MAX, f64::min);
    let hi = raw.iter().cloned().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-300);
    for (v, r) in mesh.velocity.iter_mut().zip(&raw) {
        *v = cfg.c_min + (cfg.c_max - cfg.c_min) * (r - lo) / span;
    }
}

/// Build a random-media cube mesh with ~`target_elems` elements.
pub fn random_media_cube(target_elems: usize, cfg: &MediumConfig) -> HexMesh {
    let n = (target_elems as f64).cbrt().round().max(4.0) as usize;
    let mut mesh = HexMesh::uniform(n, n, n, cfg.c_min, 1.0);
    randomize_velocity(&mut mesh, cfg);
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::Levels;

    #[test]
    fn velocities_within_bounds() {
        let cfg = MediumConfig {
            c_min: 1.5,
            c_max: 4.0,
            ..Default::default()
        };
        let m = random_media_cube(2_000, &cfg);
        for &c in &m.velocity {
            assert!((1.5..=4.0).contains(&c), "c = {c}");
        }
        // the full range is actually used (min/max achieved)
        let lo = m.velocity.iter().cloned().fold(f64::MAX, f64::min);
        let hi = m.velocity.iter().cloned().fold(f64::MIN, f64::max);
        assert!((lo - 1.5).abs() < 1e-12);
        assert!((hi - 4.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = MediumConfig::default();
        let a = random_media_cube(1_000, &cfg);
        let b = random_media_cube(1_000, &cfg);
        assert_eq!(a.velocity, b.velocity);
        let c = random_media_cube(1_000, &MediumConfig { seed: 2, ..cfg });
        assert_ne!(a.velocity, c.velocity);
    }

    #[test]
    fn field_is_smooth() {
        // neighbouring elements should differ by far less than the range
        let cfg = MediumConfig {
            max_wavenumber: 2.0,
            ..Default::default()
        };
        let m = random_media_cube(8_000, &cfg);
        let mut max_jump = 0.0f64;
        for e in 0..m.n_elems() as u32 {
            for nb in m.face_neighbors(e) {
                max_jump = max_jump.max((m.velocity[e as usize] - m.velocity[nb as usize]).abs());
            }
        }
        assert!(max_jump < 0.5 * (cfg.c_max - cfg.c_min), "jump {max_jump}");
    }

    #[test]
    fn induces_multiple_lts_levels() {
        let cfg = MediumConfig {
            c_min: 1.0,
            c_max: 4.5,
            ..Default::default()
        };
        let m = random_media_cube(4_000, &cfg);
        let lv = Levels::assign(&m, 0.5, 4);
        assert!(lv.n_levels >= 3, "levels {}", lv.n_levels);
        assert!(lv.speedup_model().speedup() > 1.0);
        // smooth media → conforming levels come out naturally
        for e in 0..m.n_elems() as u32 {
            for nb in m.face_neighbors(e) {
                let d =
                    (lv.elem_level[e as usize] as i32 - lv.elem_level[nb as usize] as i32).abs();
                assert!(d <= 1);
            }
        }
    }
}
