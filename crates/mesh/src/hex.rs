//! Structured hexahedral meshes with graded coordinate planes.
//!
//! The paper's application meshes honor topography and small-scale features
//! by *squeezing* hexahedra; combined with material (wave-speed) contrasts
//! this produces the small `h_i / c_i` ratios that force small time steps
//! (Eq. 7). A structured tensor-product grid with graded planes and
//! per-element material reproduces both mechanisms while keeping exact
//! element/node indexing, which the SEM discretization and the partitioners
//! build on.

/// A structured hexahedral mesh: `nx × ny × nz` axis-aligned brick cells.
///
/// Coordinate planes (`xs`, `ys`, `zs`) may be arbitrarily graded, so element
/// dimensions vary per axis slab. Material (`velocity`, `density`) is stored
/// per element.
///
/// Element `(i, j, k)` occupies `[xs[i], xs[i+1]] × [ys[j], ys[j+1]] ×
/// [zs[k], zs[k+1]]` and has linear id `i + nx*(j + ny*k)`. Corner node
/// `(i, j, k)` (with `i ≤ nx` etc.) has linear id `i + (nx+1)*(j + (ny+1)*k)`.
#[derive(Debug, Clone)]
pub struct HexMesh {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Coordinate planes per axis; `xs.len() == nx + 1`, strictly increasing.
    pub xs: Vec<f64>,
    pub ys: Vec<f64>,
    pub zs: Vec<f64>,
    /// Per-element compressional wave speed `c_e > 0`.
    pub velocity: Vec<f64>,
    /// Per-element density `ρ_e > 0`.
    pub density: Vec<f64>,
}

impl HexMesh {
    /// Uniform unit-spacing mesh with constant material.
    pub fn uniform(nx: usize, ny: usize, nz: usize, velocity: f64, density: f64) -> Self {
        Self::graded(
            (0..=nx).map(|i| i as f64).collect(),
            (0..=ny).map(|j| j as f64).collect(),
            (0..=nz).map(|k| k as f64).collect(),
            velocity,
            density,
        )
    }

    /// Mesh from explicit coordinate planes with constant material.
    pub fn graded(xs: Vec<f64>, ys: Vec<f64>, zs: Vec<f64>, velocity: f64, density: f64) -> Self {
        assert!(
            xs.len() >= 2 && ys.len() >= 2 && zs.len() >= 2,
            "need at least one cell per axis"
        );
        for planes in [&xs, &ys, &zs] {
            assert!(
                planes.windows(2).all(|w| w[1] > w[0]),
                "coordinate planes must be strictly increasing"
            );
        }
        assert!(velocity > 0.0 && density > 0.0);
        let (nx, ny, nz) = (xs.len() - 1, ys.len() - 1, zs.len() - 1);
        let ne = nx * ny * nz;
        HexMesh {
            nx,
            ny,
            nz,
            xs,
            ys,
            zs,
            velocity: vec![velocity; ne],
            density: vec![density; ne],
        }
    }

    #[inline]
    pub fn n_elems(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    #[inline]
    pub fn n_corner_nodes(&self) -> usize {
        (self.nx + 1) * (self.ny + 1) * (self.nz + 1)
    }

    /// Number of global Gauss–Legendre–Lobatto points for polynomial order
    /// `order` — the paper's "degrees of freedom" count (its 2.5M-element
    /// meshes at order 4 report ≈ 64.5 unique GLL nodes per element).
    pub fn n_gll_nodes(&self, order: usize) -> usize {
        (order * self.nx + 1) * (order * self.ny + 1) * (order * self.nz + 1)
    }

    #[inline]
    pub fn elem_id(&self, i: usize, j: usize, k: usize) -> u32 {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (i + self.nx * (j + self.ny * k)) as u32
    }

    #[inline]
    pub fn elem_ijk(&self, e: u32) -> (usize, usize, usize) {
        let e = e as usize;
        let i = e % self.nx;
        let j = (e / self.nx) % self.ny;
        let k = e / (self.nx * self.ny);
        (i, j, k)
    }

    #[inline]
    pub fn node_id(&self, i: usize, j: usize, k: usize) -> u32 {
        debug_assert!(i <= self.nx && j <= self.ny && k <= self.nz);
        (i + (self.nx + 1) * (j + (self.ny + 1) * k)) as u32
    }

    #[inline]
    pub fn node_ijk(&self, n: u32) -> (usize, usize, usize) {
        let n = n as usize;
        let i = n % (self.nx + 1);
        let j = (n / (self.nx + 1)) % (self.ny + 1);
        let k = n / ((self.nx + 1) * (self.ny + 1));
        (i, j, k)
    }

    /// The eight corner node ids of element `e`, in lexicographic order.
    pub fn elem_corners(&self, e: u32) -> [u32; 8] {
        let (i, j, k) = self.elem_ijk(e);
        [
            self.node_id(i, j, k),
            self.node_id(i + 1, j, k),
            self.node_id(i, j + 1, k),
            self.node_id(i + 1, j + 1, k),
            self.node_id(i, j, k + 1),
            self.node_id(i + 1, j, k + 1),
            self.node_id(i, j + 1, k + 1),
            self.node_id(i + 1, j + 1, k + 1),
        ]
    }

    /// Element box dimensions `(hx, hy, hz)`.
    #[inline]
    pub fn elem_dims(&self, e: u32) -> (f64, f64, f64) {
        let (i, j, k) = self.elem_ijk(e);
        (
            self.xs[i + 1] - self.xs[i],
            self.ys[j + 1] - self.ys[j],
            self.zs[k + 1] - self.zs[k],
        )
    }

    /// Characteristic element size `h_e`: the smallest box dimension, which
    /// controls the CFL bound for axis-aligned bricks.
    #[inline]
    pub fn elem_char_size(&self, e: u32) -> f64 {
        let (hx, hy, hz) = self.elem_dims(e);
        hx.min(hy).min(hz)
    }

    /// CFL ratio `h_e / c_e` of Eq. 7; the stable step is `C_CFL · h_e/c_e`.
    #[inline]
    pub fn elem_cfl_ratio(&self, e: u32) -> f64 {
        self.elem_char_size(e) / self.velocity[e as usize]
    }

    /// Domain bounding box `((x0, x1), (y0, y1), (z0, z1))`. The coordinate
    /// plane arrays always hold `n + 1 ≥ 2` entries (asserted at
    /// construction), so the extents are total.
    pub fn domain_extent(&self) -> ((f64, f64), (f64, f64), (f64, f64)) {
        (
            (self.xs[0], self.xs[self.nx]),
            (self.ys[0], self.ys[self.ny]),
            (self.zs[0], self.zs[self.nz]),
        )
    }

    /// Element centroid.
    pub fn elem_center(&self, e: u32) -> (f64, f64, f64) {
        let (i, j, k) = self.elem_ijk(e);
        (
            0.5 * (self.xs[i] + self.xs[i + 1]),
            0.5 * (self.ys[j] + self.ys[j + 1]),
            0.5 * (self.zs[k] + self.zs[k + 1]),
        )
    }

    /// Face-adjacent neighbours of `e` (up to six), the edges of the dual graph.
    pub fn face_neighbors(&self, e: u32) -> impl Iterator<Item = u32> + '_ {
        let (i, j, k) = self.elem_ijk(e);
        let mut out = [0u32; 6];
        let mut n = 0;
        if i > 0 {
            out[n] = self.elem_id(i - 1, j, k);
            n += 1;
        }
        if i + 1 < self.nx {
            out[n] = self.elem_id(i + 1, j, k);
            n += 1;
        }
        if j > 0 {
            out[n] = self.elem_id(i, j - 1, k);
            n += 1;
        }
        if j + 1 < self.ny {
            out[n] = self.elem_id(i, j + 1, k);
            n += 1;
        }
        if k > 0 {
            out[n] = self.elem_id(i, j, k - 1);
            n += 1;
        }
        if k + 1 < self.nz {
            out[n] = self.elem_id(i, j, k + 1);
            n += 1;
        }
        out.into_iter().take(n)
    }

    /// Elements incident to corner node `n` (1–8 of them).
    pub fn node_elems(&self, n: u32) -> Vec<u32> {
        let (i, j, k) = self.node_ijk(n);
        let mut out = Vec::with_capacity(8);
        for dk in 0..2usize {
            if dk > k || k - dk >= self.nz {
                continue;
            }
            for dj in 0..2usize {
                if dj > j || j - dj >= self.ny {
                    continue;
                }
                for di in 0..2usize {
                    if di > i || i - di >= self.nx {
                        continue;
                    }
                    out.push(self.elem_id(i - di, j - dj, k - dk));
                }
            }
        }
        out
    }

    /// Set material in the axis-aligned element-index box
    /// `[i0, i1) × [j0, j1) × [k0, k1)` (clamped to the mesh).
    pub fn paint_box(
        &mut self,
        (i0, i1): (usize, usize),
        (j0, j1): (usize, usize),
        (k0, k1): (usize, usize),
        velocity: f64,
        density: f64,
    ) {
        let (i1, j1, k1) = (i1.min(self.nx), j1.min(self.ny), k1.min(self.nz));
        for k in k0..k1 {
            for j in j0..j1 {
                for i in i0..i1 {
                    let e = self.elem_id(i, j, k) as usize;
                    self.velocity[e] = velocity;
                    self.density[e] = density;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_counts() {
        let m = HexMesh::uniform(3, 4, 5, 1.0, 1.0);
        assert_eq!(m.n_elems(), 60);
        assert_eq!(m.n_corner_nodes(), 4 * 5 * 6);
        assert_eq!(m.n_gll_nodes(4), 13 * 17 * 21);
    }

    #[test]
    fn elem_id_roundtrip() {
        let m = HexMesh::uniform(3, 4, 5, 1.0, 1.0);
        for e in 0..m.n_elems() as u32 {
            let (i, j, k) = m.elem_ijk(e);
            assert_eq!(m.elem_id(i, j, k), e);
        }
    }

    #[test]
    fn node_id_roundtrip() {
        let m = HexMesh::uniform(2, 3, 4, 1.0, 1.0);
        for n in 0..m.n_corner_nodes() as u32 {
            let (i, j, k) = m.node_ijk(n);
            assert_eq!(m.node_id(i, j, k), n);
        }
    }

    #[test]
    fn corners_are_distinct_and_valid() {
        let m = HexMesh::uniform(2, 2, 2, 1.0, 1.0);
        for e in 0..m.n_elems() as u32 {
            let c = m.elem_corners(e);
            let mut s = c.to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 8);
            assert!(c.iter().all(|&n| (n as usize) < m.n_corner_nodes()));
        }
    }

    #[test]
    fn interior_element_has_six_neighbors() {
        let m = HexMesh::uniform(3, 3, 3, 1.0, 1.0);
        let e = m.elem_id(1, 1, 1);
        assert_eq!(m.face_neighbors(e).count(), 6);
        let corner = m.elem_id(0, 0, 0);
        assert_eq!(m.face_neighbors(corner).count(), 3);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let m = HexMesh::uniform(4, 3, 2, 1.0, 1.0);
        for e in 0..m.n_elems() as u32 {
            for nb in m.face_neighbors(e) {
                assert!(m.face_neighbors(nb).any(|x| x == e));
            }
        }
    }

    #[test]
    fn node_elems_counts() {
        let m = HexMesh::uniform(3, 3, 3, 1.0, 1.0);
        // interior node touches 8 elements, mesh corner node touches 1
        assert_eq!(m.node_elems(m.node_id(1, 1, 1)).len(), 8);
        assert_eq!(m.node_elems(m.node_id(0, 0, 0)).len(), 1);
        assert_eq!(m.node_elems(m.node_id(3, 3, 3)).len(), 1);
        // face-centered node on boundary touches 4
        assert_eq!(m.node_elems(m.node_id(0, 1, 1)).len(), 4);
    }

    #[test]
    fn node_elems_inverse_of_corners() {
        let m = HexMesh::uniform(3, 2, 2, 1.0, 1.0);
        for n in 0..m.n_corner_nodes() as u32 {
            for e in m.node_elems(n) {
                assert!(m.elem_corners(e).contains(&n), "node {n} claims elem {e}");
            }
        }
        for e in 0..m.n_elems() as u32 {
            for n in m.elem_corners(e) {
                assert!(m.node_elems(n).contains(&e));
            }
        }
    }

    #[test]
    fn graded_dims() {
        let m = HexMesh::graded(
            vec![0.0, 1.0, 3.0],
            vec![0.0, 0.5, 1.0],
            vec![0.0, 2.0],
            1.5,
            1.0,
        );
        let (hx, hy, hz) = m.elem_dims(m.elem_id(1, 0, 0));
        assert_eq!((hx, hy, hz), (2.0, 0.5, 2.0));
        assert_eq!(m.elem_char_size(m.elem_id(1, 0, 0)), 0.5);
        assert!((m.elem_cfl_ratio(m.elem_id(0, 0, 0)) - 0.5 / 1.5).abs() < 1e-15);
    }

    #[test]
    fn paint_box_sets_material() {
        let mut m = HexMesh::uniform(4, 4, 4, 1.0, 1.0);
        m.paint_box((1, 3), (1, 3), (1, 3), 4.0, 2.0);
        assert_eq!(m.velocity[m.elem_id(1, 1, 1) as usize], 4.0);
        assert_eq!(m.density[m.elem_id(2, 2, 2) as usize], 2.0);
        assert_eq!(m.velocity[m.elem_id(0, 0, 0) as usize], 1.0);
        assert_eq!(m.velocity[m.elem_id(3, 3, 3) as usize], 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_nonmonotone_planes() {
        HexMesh::graded(
            vec![0.0, 1.0, 0.5],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            1.0,
            1.0,
        );
    }
}
