//! The paper's benchmark meshes (Fig. 4 / Fig. 5), scalable to any size.
//!
//! | mesh       | paper size | levels | theoretical speed-up |
//! |------------|-----------:|-------:|---------------------:|
//! | trench     |      2.5 M |      4 |                 6.7× |
//! | trench-big |       26 M |      6 |                21.7× |
//! | embedding  |      1.2 M |      4 |                 7.9× |
//! | crust      |      2.9 M |      2 |                 1.9× |
//!
//! The paper's meshes obtain small elements geometrically (squeezed hexes on
//! topography). Here refinement regions are painted as *fast inclusions*
//! (velocity `2^k`), which forces the identical `h/c` CFL ratios and thus the
//! identical p-level layout on a uniform grid — the property every partition
//! and performance experiment depends on. Region sizes are calibrated so the
//! Eq. 9 speed-ups land on the paper's values.

use crate::grading::{graded_planes, uniform_planes, Band};
use crate::hex::HexMesh;
use crate::levels::{Levels, DEFAULT_CFL};

/// Which benchmark mesh of Fig. 4 / Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshKind {
    /// Long strip of refinement at the surface (two internal topographies
    /// meeting), 4 levels, ≈ 6.7× model speed-up.
    Trench,
    /// The 26M-element trench with one extra refinement layer, 6 levels,
    /// ≈ 21.7× model speed-up.
    TrenchBig,
    /// A small embedded fast feature, 4 levels, ≈ 7.9× model speed-up.
    Embedding,
    /// Topography-limited crustal model: a large fraction of small surface
    /// elements, 2 levels, ≈ 1.9× model speed-up.
    Crust,
}

impl MeshKind {
    pub fn name(self) -> &'static str {
        match self {
            MeshKind::Trench => "trench",
            MeshKind::TrenchBig => "trench-big",
            MeshKind::Embedding => "embedding",
            MeshKind::Crust => "crust",
        }
    }

    /// Paper's theoretical speed-up for the full-size mesh (Fig. 5).
    pub fn paper_speedup(self) -> f64 {
        match self {
            MeshKind::Trench => 6.7,
            MeshKind::TrenchBig => 21.7,
            MeshKind::Embedding => 7.9,
            MeshKind::Crust => 1.9,
        }
    }

    /// Paper's element count (Fig. 5).
    pub fn paper_elements(self) -> usize {
        match self {
            MeshKind::Trench => 2_500_000,
            MeshKind::TrenchBig => 26_000_000,
            MeshKind::Embedding => 1_200_000,
            MeshKind::Crust => 2_900_000,
        }
    }
}

/// A benchmark mesh with its LTS level assignment.
#[derive(Debug, Clone)]
pub struct BenchmarkMesh {
    pub kind: MeshKind,
    pub mesh: HexMesh,
    pub levels: Levels,
}

impl BenchmarkMesh {
    /// Build `kind` with approximately `target_elems` elements.
    pub fn build(kind: MeshKind, target_elems: usize) -> Self {
        assert!(target_elems >= 64, "benchmark meshes need a minimal size");
        let mesh = match kind {
            MeshKind::Trench => trench_mesh(target_elems, false),
            MeshKind::TrenchBig => trench_mesh(target_elems, true),
            MeshKind::Embedding => embedding_mesh(target_elems),
            MeshKind::Crust => crust_mesh(target_elems),
        };
        let max_levels = match kind {
            MeshKind::Trench | MeshKind::Embedding => 4,
            MeshKind::TrenchBig => 6,
            MeshKind::Crust => 2,
        };
        let levels = Levels::assign(&mesh, DEFAULT_CFL, max_levels);
        BenchmarkMesh { kind, mesh, levels }
    }

    /// Achieved Eq. 9 model speed-up.
    pub fn speedup(&self) -> f64 {
        self.levels.speedup_model().speedup()
    }

    /// The *geometric* crust: the surface elements are physically squeezed
    /// (graded coordinate planes) — the paper's actual refinement mechanism
    /// ("topography … large number of small elements on the surface").
    /// Material is uniform; the small `h_e` alone drives the two levels.
    ///
    /// (The trench's *strip* refinement needs a local y∧z squeeze that
    /// tensor-product grading cannot express without slab artifacts — the
    /// fast-inclusion builders cover that pattern; see `DESIGN.md`.)
    pub fn crust_geometric(target_elems: usize) -> Self {
        let depth = 38.0;
        let m = ((target_elems as f64 / (depth + 3.0)).sqrt().round() as usize).max(8);
        // squeeze the top ~1.5 base cells by 2× → ~3 half-height surface
        // layers: fine fraction ≈ 3/41 ⇒ Eq. 9 speed-up ≈ 1.86 (paper: 1.9)
        let band_z = Band {
            start: depth - 1.5,
            end: depth,
            squeeze: 2.0,
        };
        let xs = uniform_planes(m as f64, m);
        let ys = uniform_planes(m as f64, m);
        let zs = graded_planes(depth, 1.0, &[band_z]);
        let mesh = HexMesh::graded(xs, ys, zs, 1.0, 1.0);
        let levels = Levels::assign(&mesh, DEFAULT_CFL, 2);
        BenchmarkMesh {
            kind: MeshKind::Crust,
            mesh,
            levels,
        }
    }
}

/// Paint a nested strip along the full x-extent: cross-section half-width
/// `w` (in j) around the centre and depth `d` (in k) below the surface,
/// with velocity `2^level`.
fn paint_strip(mesh: &mut HexMesh, w: usize, d: usize, level: u8) {
    let jc = mesh.ny / 2;
    let j0 = jc.saturating_sub(w);
    let j1 = (jc + w).min(mesh.ny);
    let k0 = mesh.nz.saturating_sub(d);
    mesh.paint_box(
        (0, mesh.nx),
        (j0, j1),
        (k0, mesh.nz),
        (1u64 << level) as f64,
        1.0,
    );
}

/// Trench: a 4:1:1 box with nested refinement strips at the surface running
/// the full length of x. Cross-section area fractions are calibrated for the
/// Eq. 9 targets (6.7× with 4 levels; 21.7× with 6 for `big`).
fn trench_mesh(target_elems: usize, big: bool) -> HexMesh {
    // nx = 4n, ny = nz = n → E = 4 n³
    let n = ((target_elems as f64 / 4.0).cbrt().round() as usize).max(4);
    let mut mesh = HexMesh::uniform(4 * n, n, n, 1.0, 1.0);
    let nf = n as f64;
    if big {
        // cumulative strip cross-section fractions per level 1..=5
        // (f5=.004, f4=.007, f3=.012, f2=.03, f1=.07 → speed-up ≈ 21.7)
        let cum = [0.123f64, 0.053, 0.023, 0.011, 0.004];
        for (idx, c) in cum.iter().enumerate() {
            let level = (idx + 1) as u8;
            let s = (c.sqrt() * nf).round().max(1.0) as usize;
            // strip is 2w wide and d deep: use w = s/2 (≥1) and d = s
            paint_strip(&mut mesh, (s / 2).max(1), s.max(1), level);
        }
    } else {
        // cumulative fractions: f3=.008, f2=.022, f1=.06 → speed-up ≈ 6.8
        let cum = [0.090f64, 0.030, 0.008];
        for (idx, c) in cum.iter().enumerate() {
            let level = (idx + 1) as u8;
            let s = (c.sqrt() * nf).round().max(1.0) as usize;
            paint_strip(&mut mesh, (s / 2).max(1), s.max(1), level);
        }
    }
    mesh
}

/// Embedding: a cube with a small fast block in the middle, wrapped in two
/// transition shells. Volume fractions calibrated for ≈ 7.9×.
fn embedding_mesh(target_elems: usize) -> HexMesh {
    let n = (target_elems as f64).cbrt().round().max(6.0) as usize;
    let mut mesh = HexMesh::uniform(n, n, n, 1.0, 1.0);
    let nf = n as f64;
    // cumulative volume fractions per level 1..=3
    let cum = [0.0049f64, 0.0023, 0.0008];
    let c0 = n / 2;
    for (idx, c) in cum.iter().enumerate() {
        let level = (idx + 1) as u8;
        let b = (c.cbrt() * nf / 2.0).round().max(1.0) as usize; // half-width
        let lo = c0.saturating_sub(b);
        let hi = (c0 + b).min(n);
        mesh.paint_box((lo, hi), (lo, hi), (lo, hi), (1u64 << level) as f64, 1.0);
    }
    mesh
}

/// Crust: a wide shallow slab whose top layer(s) are fine, with a gently
/// undulating "topography" thickness (1–3 layers, mean 2). The fine fraction
/// ≈ 5.3 % yields the paper's 1.9× two-level ceiling.
fn crust_mesh(target_elems: usize) -> HexMesh {
    // nx = ny = m, nz = 38 (so that mean thickness 2 / 38 ≈ 5.3 %)
    let nz = 38usize;
    let m = ((target_elems as f64 / nz as f64).sqrt().round() as usize).max(8);
    let mut mesh = HexMesh::uniform(m, m, nz, 1.0, 1.0);
    for j in 0..m {
        for i in 0..m {
            let phase = (i as f64 * 0.37).sin() * (j as f64 * 0.23).cos();
            let t = if phase > 0.33 {
                3
            } else if phase < -0.33 {
                1
            } else {
                2
            };
            mesh.paint_box((i, i + 1), (j, j + 1), (nz - t, nz), 2.0, 1.0);
        }
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trench_speedup_near_paper() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 40_000);
        assert_eq!(b.levels.n_levels, 4, "hist {:?}", b.levels.histogram());
        let s = b.speedup();
        assert!((5.0..8.5).contains(&s), "trench speed-up {s}");
    }

    #[test]
    fn embedding_speedup_near_paper() {
        let b = BenchmarkMesh::build(MeshKind::Embedding, 125_000);
        assert_eq!(b.levels.n_levels, 4);
        let s = b.speedup();
        assert!((6.0..9.8).contains(&s), "embedding speed-up {s}");
    }

    #[test]
    fn crust_speedup_near_paper() {
        let b = BenchmarkMesh::build(MeshKind::Crust, 60_000);
        assert_eq!(b.levels.n_levels, 2);
        let s = b.speedup();
        assert!((1.6..2.0).contains(&s), "crust speed-up {s}");
    }

    #[test]
    fn trench_big_has_six_levels() {
        let b = BenchmarkMesh::build(MeshKind::TrenchBig, 500_000);
        assert_eq!(b.levels.n_levels, 6, "hist {:?}", b.levels.histogram());
        let s = b.speedup();
        assert!((14.0..26.0).contains(&s), "trench-big speed-up {s}");
    }

    #[test]
    fn element_counts_close_to_target() {
        for kind in [MeshKind::Trench, MeshKind::Embedding, MeshKind::Crust] {
            let b = BenchmarkMesh::build(kind, 50_000);
            let e = b.mesh.n_elems() as f64;
            assert!(
                (0.5..2.0).contains(&(e / 50_000.0)),
                "{}: {} elems for target 50k",
                kind.name(),
                e
            );
        }
    }

    #[test]
    fn geometric_crust_levels_from_squeezing() {
        let b = BenchmarkMesh::crust_geometric(20_000);
        assert_eq!(b.levels.n_levels, 2, "hist {:?}", b.levels.histogram());
        // fine elements form a thin surface sheet; speed-up near the paper's
        let hist = b.levels.histogram();
        assert!(hist[1] * 5 < b.mesh.n_elems(), "hist {hist:?}");
        let s = b.speedup();
        assert!((1.6..2.0).contains(&s), "speed-up {s}");
        // material is uniform: levels are purely geometric
        assert!(b.mesh.velocity.iter().all(|&c| c == 1.0));
        // the squeezed layers are ~2× thinner than the base spacing
        let hmin = (0..b.mesh.n_elems() as u32)
            .map(|e| b.mesh.elem_char_size(e))
            .fold(f64::MAX, f64::min);
        assert!(hmin < 0.75, "hmin {hmin}");
        // fine elements are all at the top
        for e in 0..b.mesh.n_elems() as u32 {
            if b.levels.elem_level[e as usize] == 1 {
                let (_, _, z) = b.mesh.elem_center(e);
                assert!(z > 30.0, "fine element at depth z = {z}");
            }
        }
    }

    #[test]
    fn levels_conform_after_build() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 20_000);
        for e in 0..b.mesh.n_elems() as u32 {
            for nb in b.mesh.face_neighbors(e) {
                let d = (b.levels.elem_level[e as usize] as i32
                    - b.levels.elem_level[nb as usize] as i32)
                    .abs();
                assert!(d <= 1);
            }
        }
    }

    #[test]
    fn fine_levels_are_minorities() {
        for kind in [MeshKind::Trench, MeshKind::Embedding] {
            let b = BenchmarkMesh::build(kind, 60_000);
            let hist = b.levels.histogram();
            assert!(
                hist[0] > b.mesh.n_elems() / 2,
                "{}: {:?}",
                kind.name(),
                hist
            );
            for w in hist.windows(2).skip(1) {
                // finer levels no larger than ~3× the next coarser
                assert!(w[1] <= w[0].max(1) * 3 + 8, "{}: {:?}", kind.name(), hist);
            }
        }
    }
}
