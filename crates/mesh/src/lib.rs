//! Hexahedral meshes for local-time-stepping (LTS) wave propagation.
//!
//! This crate provides the mesh substrate of the IPDPS'15 paper
//! *Load-Balanced Local Time Stepping for Large-Scale Wave Propagation*
//! (Rietmann, Peter, Schenk, Uçar, Grote):
//!
//! * [`HexMesh`] — structured hexahedral meshes with graded (squeezed)
//!   coordinate planes and per-element material, the mesh family SPECFEM3D
//!   Cartesian consumes;
//! * [`levels`] — CFL time-step bounds (Eq. 7) and the assignment of
//!   power-of-two p-levels (`Δt/2^k`, Sec. II-B) to elements, plus the
//!   LTS speed-up model (Eq. 9);
//! * [`dual`] — the element dual graph (face adjacency) used by graph
//!   partitioners (Sec. III-A1);
//! * [`hypergraph`] — the nodal hypergraph whose connectivity-1 cut size is
//!   exactly the MPI communication volume per LTS cycle (Sec. III-A2);
//! * [`benchmarks`] — scalable reproductions of the paper's *trench*,
//!   *embedding*, *crust* and *trench-big* benchmark meshes (Fig. 4/5);
//! * [`quad`] — small 2-D quadrilateral meshes used to reproduce the
//!   didactic Figs. 2 and 3.

#![forbid(unsafe_code)]

pub mod benchmarks;
pub mod dual;
pub mod grading;
pub mod hex;
pub mod hypergraph;
pub mod io;
pub mod levels;
pub mod quad;
pub mod random_media;

pub use benchmarks::{BenchmarkMesh, MeshKind};
pub use dual::DualGraph;
pub use hex::HexMesh;
pub use hypergraph::NodalHypergraph;
pub use levels::{Levels, SpeedupModel};
