//! Plain-text mesh, level and partition files, so meshes can be generated
//! once and partitioned/simulated in separate invocations (the
//! SPECFEM3D-style decompose → solve workflow).
//!
//! Format (line-oriented, `#` comments allowed):
//!
//! ```text
//! wave-lts-mesh v1
//! dims <nx> <ny> <nz>
//! xs <nx+1 floats>
//! ys <...>
//! zs <...>
//! velocity <ne floats>
//! density <ne floats>
//! ```
//!
//! Partition files are one part id per element line; level files one level
//! per element line.

use crate::hex::HexMesh;
use crate::levels::Levels;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Write a mesh.
pub fn write_mesh<W: Write>(w: W, mesh: &HexMesh) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "wave-lts-mesh v1")?;
    writeln!(w, "dims {} {} {}", mesh.nx, mesh.ny, mesh.nz)?;
    let floats = |w: &mut BufWriter<W>, name: &str, v: &[f64]| -> std::io::Result<()> {
        write!(w, "{name}")?;
        for x in v {
            write!(w, " {x:.17e}")?;
        }
        writeln!(w)
    };
    floats(&mut w, "xs", &mesh.xs)?;
    floats(&mut w, "ys", &mesh.ys)?;
    floats(&mut w, "zs", &mesh.zs)?;
    floats(&mut w, "velocity", &mesh.velocity)?;
    floats(&mut w, "density", &mesh.density)?;
    w.flush()
}

fn parse_floats(line: &str, name: &str) -> std::io::Result<Vec<f64>> {
    let rest = line
        .strip_prefix(name)
        .ok_or_else(|| bad(format!("expected '{name} …', got {line:.40?}")))?;
    rest.split_whitespace()
        .map(|t| {
            t.parse::<f64>()
                .map_err(|e| bad(format!("bad float {t:?}: {e}")))
        })
        .collect()
}

fn bad(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Read a mesh written by [`write_mesh`].
pub fn read_mesh<R: Read>(r: R) -> std::io::Result<HexMesh> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().filter(|l| {
        l.as_ref()
            .map_or(true, |s| !s.trim().is_empty() && !s.starts_with('#'))
    });
    let mut next = || -> std::io::Result<String> {
        lines
            .next()
            .ok_or_else(|| bad("unexpected end of mesh file".into()))?
    };
    let magic = next()?;
    if magic.trim() != "wave-lts-mesh v1" {
        return Err(bad(format!("bad magic {magic:?}")));
    }
    let dims_line = next()?;
    let dims: Vec<usize> = dims_line
        .strip_prefix("dims")
        .ok_or_else(|| bad("expected dims".into()))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| bad(format!("bad dim: {e}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(bad("dims needs 3 entries".into()));
    }
    let (nx, ny, nz) = (dims[0], dims[1], dims[2]);
    let xs = parse_floats(&next()?, "xs")?;
    let ys = parse_floats(&next()?, "ys")?;
    let zs = parse_floats(&next()?, "zs")?;
    let velocity = parse_floats(&next()?, "velocity")?;
    let density = parse_floats(&next()?, "density")?;
    if xs.len() != nx + 1 || ys.len() != ny + 1 || zs.len() != nz + 1 {
        return Err(bad("coordinate plane counts do not match dims".into()));
    }
    let ne = nx * ny * nz;
    if velocity.len() != ne || density.len() != ne {
        return Err(bad("material array length mismatch".into()));
    }
    let mut mesh = HexMesh::graded(xs, ys, zs, 1.0, 1.0);
    mesh.velocity = velocity;
    mesh.density = density;
    if mesh.velocity.iter().any(|&c| c <= 0.0) || mesh.density.iter().any(|&d| d <= 0.0) {
        return Err(bad("non-positive material".into()));
    }
    Ok(mesh)
}

/// Write an element partition (or level map), one value per line.
pub fn write_ids<W: Write>(w: W, ids: &[u32]) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    for id in ids {
        writeln!(w, "{id}")?;
    }
    w.flush()
}

/// Read a partition/level file.
pub fn read_ids<R: Read>(r: R) -> std::io::Result<Vec<u32>> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        out.push(t.parse().map_err(|e| bad(format!("bad id {t:?}: {e}")))?);
    }
    Ok(out)
}

/// Write levels (the per-element map plus the global step in a header).
pub fn write_levels<W: Write>(w: W, levels: &Levels) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "# wave-lts levels, dt_global = {:.17e}",
        levels.dt_global
    )?;
    writeln!(w, "# n_levels = {}", levels.n_levels)?;
    for &l in &levels.elem_level {
        writeln!(w, "{l}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{BenchmarkMesh, MeshKind};

    #[test]
    fn mesh_roundtrip_exact() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 500);
        let mut buf = Vec::new();
        write_mesh(&mut buf, &b.mesh).unwrap();
        let m2 = read_mesh(&buf[..]).unwrap();
        assert_eq!(m2.nx, b.mesh.nx);
        assert_eq!(m2.xs, b.mesh.xs);
        assert_eq!(m2.velocity, b.mesh.velocity);
        assert_eq!(m2.density, b.mesh.density);
    }

    #[test]
    fn graded_mesh_roundtrip_exact() {
        let b = BenchmarkMesh::crust_geometric(800);
        let mut buf = Vec::new();
        write_mesh(&mut buf, &b.mesh).unwrap();
        let m2 = read_mesh(&buf[..]).unwrap();
        assert_eq!(m2.zs, b.mesh.zs); // bit-exact floats via %.17e
    }

    #[test]
    fn ids_roundtrip() {
        let ids = vec![0u32, 5, 2, 2, 7];
        let mut buf = Vec::new();
        write_ids(&mut buf, &ids).unwrap();
        assert_eq!(read_ids(&buf[..]).unwrap(), ids);
    }

    #[test]
    fn rejects_corrupt_files() {
        assert!(read_mesh(&b"nonsense"[..]).is_err());
        assert!(read_mesh(&b"wave-lts-mesh v1\ndims 2 2\n"[..]).is_err());
        assert!(read_ids(&b"12\nnope\n"[..]).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let ids = read_ids(&b"# header\n\n1\n2\n# mid\n3\n"[..]).unwrap();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
