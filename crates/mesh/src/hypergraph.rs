//! The nodal hypergraph model (Sec. III-A2).
//!
//! Vertices are elements; each *corner node* of the mesh defines one
//! hyperedge (net) connecting every element that touches it. With the
//! paper's per-element-copy cost folded into a single net
//! (`c[h'_n] = Σ_{e ∋ n} p_e`), the connectivity-1 cut size
//! `Σ_n c[h'_n] (λ_n − 1)` equals the total MPI communication volume per LTS
//! cycle exactly.

use crate::hex::HexMesh;
use crate::levels::Levels;
use crate::quad::QuadMesh;

/// CSR hypergraph: nets → pins, plus net costs and per-vertex (element)
/// weight vectors handled by the partitioner crate.
#[derive(Debug, Clone)]
pub struct NodalHypergraph {
    /// `xpins[n]..xpins[n+1]` indexes `pins` for net `n`.
    pub xpins: Vec<u32>,
    /// Element ids touching each net.
    pub pins: Vec<u32>,
    /// Net costs `c[h'_n]`; unit per pin when built without levels, else
    /// `Σ_{e ∋ n} p_e`.
    pub netcost: Vec<u64>,
    pub n_vertices: usize,
}

impl NodalHypergraph {
    pub fn n_nets(&self) -> usize {
        self.xpins.len() - 1
    }

    pub fn pins_of(&self, net: u32) -> &[u32] {
        &self.pins[self.xpins[net as usize] as usize..self.xpins[net as usize + 1] as usize]
    }

    /// Build from a hex mesh; each corner node is a net.
    pub fn build(mesh: &HexMesh, levels: Option<&Levels>) -> Self {
        let nn = mesh.n_corner_nodes();
        let mut xpins = Vec::with_capacity(nn + 1);
        let mut pins = Vec::new();
        let mut netcost = Vec::with_capacity(nn);
        xpins.push(0u32);
        for n in 0..nn as u32 {
            let elems = mesh.node_elems(n);
            let mut cost = 0u64;
            for &e in &elems {
                cost += levels.map_or(1, |lv| lv.p_of(e));
                pins.push(e);
            }
            netcost.push(cost);
            xpins.push(pins.len() as u32);
        }
        NodalHypergraph {
            xpins,
            pins,
            netcost,
            n_vertices: mesh.n_elems(),
        }
    }

    /// Build from a 2-D quad mesh (for the Fig. 2/3 demonstrations).
    pub fn build_quad(mesh: &QuadMesh, elem_p: Option<&[u64]>) -> Self {
        let nn = mesh.n_nodes();
        let mut xpins = Vec::with_capacity(nn + 1);
        let mut pins = Vec::new();
        let mut netcost = Vec::with_capacity(nn);
        xpins.push(0u32);
        for n in 0..nn as u32 {
            let elems = mesh.node_elems(n);
            let mut cost = 0u64;
            for &e in &elems {
                cost += elem_p.map_or(1, |p| p[e as usize]);
                pins.push(e);
            }
            netcost.push(cost);
            xpins.push(pins.len() as u32);
        }
        NodalHypergraph {
            xpins,
            pins,
            netcost,
            n_vertices: mesh.n_elems(),
        }
    }

    /// Connectivity-1 cut size (Eq. 20) of a vertex partition: the exact MPI
    /// volume per LTS cycle when net costs carry p-levels.
    pub fn cut_size(&self, part: &[u32]) -> u64 {
        assert_eq!(part.len(), self.n_vertices);
        let mut seen: Vec<u32> = Vec::with_capacity(8);
        let mut total = 0u64;
        for net in 0..self.n_nets() as u32 {
            seen.clear();
            for &p in self.pins_of(net) {
                let pp = part[p as usize];
                if !seen.contains(&pp) {
                    seen.push(pp);
                }
            }
            if seen.len() > 1 {
                total += self.netcost[net as usize] * (seen.len() as u64 - 1);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_net_pin_counts() {
        let m = HexMesh::uniform(2, 2, 2, 1.0, 1.0);
        let h = NodalHypergraph::build(&m, None);
        assert_eq!(h.n_nets(), 27);
        // center node connects all 8 elements
        let center = m.node_id(1, 1, 1);
        assert_eq!(h.pins_of(center).len(), 8);
        // mesh corner connects exactly 1
        assert_eq!(h.pins_of(m.node_id(0, 0, 0)).len(), 1);
    }

    #[test]
    fn fig3_quad_example() {
        // The paper's Fig. 3: 2×2 quad mesh; the central node's net has all
        // four elements; with all four elements in distinct parts the dual
        // graph sees 4 cut edges but the hypergraph adds the λ−1 = 3 central
        // contributions.
        let m = QuadMesh::new(2, 2);
        let h = NodalHypergraph::build_quad(&m, None);
        assert_eq!(h.n_nets(), 9);
        let center = m.node_id(1, 1);
        assert_eq!(h.pins_of(center).len(), 4);
        let part = vec![0u32, 1, 2, 3];
        // 4 edge-midside nets each cut once (λ=2 → cost 2·1 each as each has
        // 2 pins with unit cost per pin) + center net cost 4 × (4−1)
        // midside nets: pins=2, cost=2, (λ−1)=1 → 2 each → 8 total
        // corner nets: single pin, uncut. center: cost 4 × 3 = 12.
        assert_eq!(h.cut_size(&part), 8 + 12);
    }

    #[test]
    fn cut_size_zero_for_single_part() {
        let m = HexMesh::uniform(3, 2, 2, 1.0, 1.0);
        let h = NodalHypergraph::build(&m, None);
        let part = vec![0u32; m.n_elems()];
        assert_eq!(h.cut_size(&part), 0);
    }

    #[test]
    fn lts_net_costs_sum_p() {
        let mut m = HexMesh::uniform(2, 1, 1, 1.0, 1.0);
        m.paint_box((1, 2), (0, 1), (0, 1), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        let h = NodalHypergraph::build(&m, Some(&lv));
        // shared face nodes touch elements with p = 1 and p = 2 → cost 3
        let shared = m.node_id(1, 0, 0);
        assert_eq!(h.netcost[shared as usize], 3);
        // the fig-2 statement: cutting between the two elements costs each
        // shared node its full Σp, i.e. communication twice per Δt for the
        // fine side and once for the coarse side.
        let part = vec![0u32, 1];
        // 4 shared nodes, each cost 3 and λ=2 → 12
        assert_eq!(h.cut_size(&part), 12);
    }
}
