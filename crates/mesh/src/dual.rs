//! The element dual graph (Sec. III-A1).
//!
//! Vertices are mesh elements; edges connect elements sharing a *face*. This
//! is what SCOTCH/MeTiS-style graph partitioners consume. Following the
//! paper, when LTS levels are attached the edge weight is
//! `max(p_u, p_v)` — an approximation of the per-cut communication cost of
//! Fig. 2 (the exact cost needs the hypergraph model).

use crate::hex::HexMesh;
use crate::levels::Levels;

/// Compressed-sparse-row dual graph of a mesh.
#[derive(Debug, Clone)]
pub struct DualGraph {
    /// `xadj[v]..xadj[v+1]` indexes `adj`/`ewgt` for vertex `v`.
    pub xadj: Vec<u32>,
    pub adj: Vec<u32>,
    /// Edge weights, aligned with `adj`. All `1` when built without levels.
    pub ewgt: Vec<u32>,
}

impl DualGraph {
    pub fn n_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    pub fn n_edges(&self) -> usize {
        self.adj.len() / 2
    }

    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.xadj[v as usize] as usize..self.xadj[v as usize + 1] as usize]
    }

    pub fn edge_weights(&self, v: u32) -> &[u32] {
        &self.ewgt[self.xadj[v as usize] as usize..self.xadj[v as usize + 1] as usize]
    }

    /// Build the face-adjacency dual graph; unit edge weights.
    pub fn build(mesh: &HexMesh) -> Self {
        Self::build_inner(mesh, None)
    }

    /// Build with LTS-aware edge weights `max(p_u, p_v)` (Sec. III-A1).
    pub fn build_weighted(mesh: &HexMesh, levels: &Levels) -> Self {
        Self::build_inner(mesh, Some(levels))
    }

    fn build_inner(mesh: &HexMesh, levels: Option<&Levels>) -> Self {
        let ne = mesh.n_elems();
        let mut xadj = Vec::with_capacity(ne + 1);
        let mut adj = Vec::new();
        let mut ewgt = Vec::new();
        xadj.push(0u32);
        for e in 0..ne as u32 {
            for nb in mesh.face_neighbors(e) {
                adj.push(nb);
                let w = match levels {
                    Some(lv) => lv.p_of(e).max(lv.p_of(nb)) as u32,
                    None => 1,
                };
                ewgt.push(w);
            }
            xadj.push(adj.len() as u32);
        }
        DualGraph { xadj, adj, ewgt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_row_is_a_path() {
        let m = HexMesh::uniform(4, 1, 1, 1.0, 1.0);
        let g = DualGraph::build(&m);
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn edge_count_matches_grid_formula() {
        let (nx, ny, nz) = (3usize, 4usize, 5usize);
        let m = HexMesh::uniform(nx, ny, nz, 1.0, 1.0);
        let g = DualGraph::build(&m);
        let expect = (nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1);
        assert_eq!(g.n_edges(), expect);
    }

    #[test]
    fn graph_is_symmetric() {
        let m = HexMesh::uniform(3, 3, 2, 1.0, 1.0);
        let g = DualGraph::build(&m);
        for v in 0..g.n_vertices() as u32 {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn lts_edge_weights_take_finer_level() {
        let mut m = HexMesh::uniform(4, 1, 1, 1.0, 1.0);
        m.paint_box((3, 4), (0, 1), (0, 1), 2.0, 1.0); // last element level 1
        let lv = Levels::assign(&m, 0.5, 4);
        let g = DualGraph::build_weighted(&m, &lv);
        // edge between elements 2 (level 0) and 3 (level 1) has weight 2
        let pos = g.neighbors(2).iter().position(|&x| x == 3).unwrap();
        assert_eq!(g.edge_weights(2)[pos], 2);
        // edge between elements 0 and 1 (both coarse) has weight 1
        let pos01 = g.neighbors(0).iter().position(|&x| x == 1).unwrap();
        assert_eq!(g.edge_weights(0)[pos01], 1);
    }
}
