//! Coordinate-plane grading: building axes with locally squeezed spacing.
//!
//! Real application meshes pinch elements where internal or external
//! topographies meet (the paper's *trench*) or pack small elements along the
//! free surface (the *crust*). These helpers build strictly increasing plane
//! sets whose local spacing drops by a chosen factor inside refinement bands,
//! with geometric transition zones so the spacing ratio between neighbouring
//! cells stays bounded.

/// A refinement band on one axis: cells whose centers fall in
/// `[start, end]` get spacing `base_h / squeeze`.
#[derive(Debug, Clone, Copy)]
pub struct Band {
    pub start: f64,
    pub end: f64,
    /// Spacing reduction factor (≥ 1). A `squeeze` of 8 produces elements
    /// eight times thinner than the base spacing inside the band.
    pub squeeze: f64,
}

/// Build graded planes covering `[0, length]` with base spacing `base_h`,
/// refined inside `bands`. Between the base spacing and a band the spacing
/// transitions geometrically with ratio ≤ 2 per cell.
///
/// The result is strictly increasing and ends exactly at `length` (the last
/// cell absorbs the rounding remainder, staying within ±50 % of its target).
pub fn graded_planes(length: f64, base_h: f64, bands: &[Band]) -> Vec<f64> {
    assert!(length > 0.0 && base_h > 0.0);
    assert!(base_h <= length, "base spacing larger than axis");
    for b in bands {
        assert!(b.squeeze >= 1.0, "squeeze must be ≥ 1");
        assert!(b.start < b.end, "empty band");
    }
    // Target spacing at coordinate x: minimum over bands (with geometric
    // transition ramps outside each band edge).
    let target = |x: f64| -> f64 {
        let mut h = base_h;
        for b in bands {
            let hb = base_h / b.squeeze;
            let inside = x >= b.start && x <= b.end;
            let d = if inside {
                0.0
            } else if x < b.start {
                b.start - x
            } else {
                x - b.end
            };
            // geometric ramp: at distance d from the band the spacing may be
            // at most d/2, so the ratio-2 descent completes *before* the
            // band edge (h, h/2, h/4, … sums to the remaining distance).
            let allowed = hb.max(0.5 * d).min(base_h);
            h = h.min(allowed);
        }
        h
    };
    let mut planes = vec![0.0];
    let mut x = 0.0;
    while x < length {
        let mut h = target(x);
        // keep the ratio with the previous cell bounded by 2
        if planes.len() >= 2 {
            let prev = planes[planes.len() - 1] - planes[planes.len() - 2];
            h = h.min(prev * 2.0).max(prev * 0.5);
        }
        x += h;
        planes.push(x);
    }
    // Snap the tail to exactly `length`.
    let n = planes.len();
    if n >= 2 {
        let overshoot = planes[n - 1] - length;
        let last_h = planes[n - 1] - planes[n - 2];
        if overshoot > 0.5 * last_h && n >= 3 {
            planes.pop();
        }
        *planes.last_mut().unwrap() = length;
    }
    assert!(
        planes.windows(2).all(|w| w[1] > w[0]),
        "grading produced non-monotone planes"
    );
    planes
}

/// Uniform planes covering `[0, length]` with `n` cells.
pub fn uniform_planes(length: f64, n: usize) -> Vec<f64> {
    assert!(n >= 1);
    (0..=n).map(|i| length * i as f64 / n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_planes_basic() {
        let p = uniform_planes(2.0, 4);
        assert_eq!(p.len(), 5);
        assert!((p[2] - 1.0).abs() < 1e-15);
        assert_eq!(*p.last().unwrap(), 2.0);
    }

    #[test]
    fn no_bands_is_roughly_uniform() {
        let p = graded_planes(10.0, 1.0, &[]);
        assert_eq!(p.len(), 11);
        for w in p.windows(2) {
            assert!((w[1] - w[0] - 1.0).abs() < 0.51);
        }
    }

    #[test]
    fn band_refines_spacing() {
        let band = Band {
            start: 4.0,
            end: 6.0,
            squeeze: 8.0,
        };
        let p = graded_planes(10.0, 1.0, &[band]);
        assert_eq!(*p.last().unwrap(), 10.0);
        // inside the band, spacing should be ≈ 1/8
        let fine: Vec<f64> = p
            .windows(2)
            .filter(|w| w[0] >= 4.4 && w[1] <= 5.6)
            .map(|w| w[1] - w[0])
            .collect();
        assert!(!fine.is_empty());
        for h in &fine {
            assert!(*h < 0.2, "band spacing {h} not refined");
        }
    }

    #[test]
    fn ratio_between_cells_bounded() {
        let band = Band {
            start: 3.0,
            end: 3.5,
            squeeze: 16.0,
        };
        let p = graded_planes(12.0, 1.0, &[band]);
        for w in p.windows(3) {
            let h0 = w[1] - w[0];
            let h1 = w[2] - w[1];
            let r = (h1 / h0).max(h0 / h1);
            assert!(r <= 2.0 + 1e-9, "spacing ratio {r} too abrupt");
        }
    }

    #[test]
    fn monotone_with_multiple_bands() {
        let bands = [
            Band {
                start: 1.0,
                end: 2.0,
                squeeze: 4.0,
            },
            Band {
                start: 7.0,
                end: 7.5,
                squeeze: 8.0,
            },
        ];
        let p = graded_planes(10.0, 1.0, &bands);
        assert!(p.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(*p.last().unwrap(), 10.0);
    }
}
