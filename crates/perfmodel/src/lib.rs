//! Cluster performance modelling for partitioned LTS runs.
//!
//! The paper's scaling experiments (Figs. 9–13) ran on Piz Daint (8-core
//! Sandy Bridge nodes + K20X GPUs, Cray Aries network). This crate replaces
//! the machine with a first-order bulk-synchronous model that captures
//! exactly the effects those figures exhibit:
//!
//! * per-**level** synchronization: an LTS cycle pays
//!   `Σ_l 2^l · max_r(T_l(r))` — per-level *imbalance* is what stalls ranks
//!   (Fig. 1), not per-cycle imbalance;
//! * kernel-launch overhead per masked product — the GPU strong-scaling
//!   falloff when fine levels shrink (Fig. 9, bottom);
//! * a working-set cache effect — the super-linear CPU scaling of the
//!   reference code (Figs. 9–11), cross-validated by the trace-driven cache
//!   simulator in [`cache`] (Fig. 12).

#![forbid(unsafe_code)]
// Indexed `for i in 0..n` loops over parallel arrays are the house idiom in
// these numerical kernels: the index couples several same-length arrays and
// mirrors the subscripts in the paper's equations, which zip chains obscure.
#![allow(clippy::needless_range_loop)]
pub mod cache;
pub mod cluster;

pub use cache::{CacheSim, CacheStats, TraceConfig};
pub use cluster::{CycleBreakdown, MachineModel, PartitionShape};
