//! The bulk-synchronous cluster model.
//!
//! For a K-way element partition the model extracts, per rank and per level,
//! (a) the masked-product element counts (work), (b) the interface corner
//! nodes by node level (communication volume), and (c) the neighbour count
//! (message latency). One LTS cycle then costs
//!
//! ```text
//! T_cycle = Σ_l 2^l · max_r [ launch + ops_l(r)·t_elem(r) + α·peers_l(r) + β·vol_l(r) ]
//! ```
//!
//! and the non-LTS reference costs `p_max · max_r[...]` with every element
//! stepped at the finest rate. Performance is reported as simulated seconds
//! per wall second (`Δt / T_cycle`), normalised by the caller.

use lts_mesh::{HexMesh, Levels};

/// First-order machine model of one rank (a CPU node or a GPU).
#[derive(Debug, Clone, Copy)]
pub struct MachineModel {
    /// Seconds per element per sub-step (out-of-cache).
    pub t_elem: f64,
    /// Seconds per masked-product invocation (kernel setup + launch).
    pub kernel_launch: f64,
    /// Seconds per message (latency).
    pub alpha: f64,
    /// Seconds per interface corner-node value exchanged.
    pub beta: f64,
    /// Speed multiplier once the rank's working set fits in cache (< 1);
    /// 1.0 disables the effect.
    pub cache_factor: f64,
    /// Working-set size, in elements, at which half the cache benefit is
    /// realised.
    pub cache_elems: f64,
    /// Overlap communication with interior computation (the SPECFEM3D
    /// asynchronous pattern): per level,
    /// `T = launch + boundary·t + max(interior·t, α·peers + β·vol)`.
    pub overlap: bool,
}

impl MachineModel {
    /// One 8-core CPU node of the paper's cluster (the 8 MPI ranks per node
    /// are absorbed into the per-node element throughput). Calibrated so the
    /// shapes of Figs. 9–11 are reproduced: visible cache super-linearity
    /// between 16 and 128 nodes on ~2.5M-element meshes.
    pub fn cpu_node() -> Self {
        MachineModel {
            t_elem: 2.0e-6,
            kernel_launch: 4.0e-6,
            alpha: 3.0e-6,
            beta: 2.0e-8,
            cache_factor: 0.60,
            cache_elems: 22_000.0,
            overlap: false,
        }
    }

    /// Enable communication/computation overlap.
    pub fn with_overlap(self) -> Self {
        MachineModel {
            overlap: true,
            ..self
        }
    }

    /// One K20X GPU: ~7× the node throughput, but tens of microseconds of
    /// kernel setup/launch per masked product and no cache super-linearity.
    pub fn gpu_node() -> Self {
        MachineModel {
            t_elem: 2.0e-6 / 7.2,
            kernel_launch: 45.0e-6,
            alpha: 5.0e-6,
            beta: 2.0e-8,
            cache_factor: 1.0,
            cache_elems: 1.0,
            overlap: false,
        }
    }

    /// Rescale the fixed overheads (launch, latency, bandwidth, cache size)
    /// for a mesh `mesh_elems` large when the paper ran `paper_elems`: the
    /// per-node work shrinks with the mesh, so shrinking the overheads by the
    /// same factor preserves the work/overhead ratio at every node count —
    /// letting laptop-scale meshes reproduce the paper-scale curves.
    pub fn scaled(self, mesh_elems: usize, paper_elems: usize) -> Self {
        let s = mesh_elems as f64 / paper_elems as f64;
        MachineModel {
            kernel_launch: self.kernel_launch * s,
            alpha: self.alpha * s,
            beta: self.beta * s,
            cache_elems: (self.cache_elems * s).max(1.0),
            ..self
        }
    }

    /// Effective per-element time for a rank holding `elems` elements.
    pub fn t_elem_eff(&self, elems: f64) -> f64 {
        if self.cache_factor >= 1.0 {
            return self.t_elem;
        }
        // logistic blend between cached and uncached throughput
        let x = (elems / self.cache_elems).ln();
        let s = 1.0 / (1.0 + (-1.6 * x).exp()); // 0 → cached, 1 → uncached
        self.t_elem * (self.cache_factor + (1.0 - self.cache_factor) * s)
    }
}

/// Per-rank, per-level shape of a partition: everything the model needs.
#[derive(Debug, Clone)]
pub struct PartitionShape {
    pub k: usize,
    pub n_levels: usize,
    /// `ops[r][l]`: elements of rank `r` in the level-`l` masked product
    /// (level-`l` elements plus coarser neighbours of the level boundary).
    pub ops: Vec<Vec<u64>>,
    /// `boundary_ops[r][l]`: the subset of `ops[r][l]` touching another
    /// rank (must be computed before sends when overlapping).
    pub boundary_ops: Vec<Vec<u64>>,
    /// `vol[r][l]`: interface corner nodes of rank `r` whose node level is
    /// `l` (each exchanged `2^l` times per cycle).
    pub vol: Vec<Vec<u64>>,
    /// `peers[r][l]`: distinct neighbour ranks at that level.
    pub peers: Vec<Vec<u64>>,
    /// Total elements per rank.
    pub elems: Vec<u64>,
}

impl PartitionShape {
    pub fn new(mesh: &HexMesh, levels: &Levels, partition: &[u32], k: usize) -> Self {
        assert_eq!(partition.len(), mesh.n_elems());
        let nl = levels.n_levels;
        // corner-node levels: max adjacent element level
        let nn = mesh.n_corner_nodes();
        let mut node_level = vec![0u8; nn];
        let mut node_ranks: Vec<Vec<u32>> = vec![Vec::new(); nn];
        for e in 0..mesh.n_elems() as u32 {
            let le = levels.elem_level[e as usize];
            let r = partition[e as usize];
            for n in mesh.elem_corners(e) {
                let ni = n as usize;
                if node_level[ni] < le {
                    node_level[ni] = le;
                }
                if !node_ranks[ni].contains(&r) {
                    node_ranks[ni].push(r);
                }
            }
        }
        let mut ops = vec![vec![0u64; nl]; k];
        let mut boundary_ops = vec![vec![0u64; nl]; k];
        let mut elems = vec![0u64; k];
        for e in 0..mesh.n_elems() as u32 {
            let r = partition[e as usize] as usize;
            elems[r] += 1;
            // levels of this element's corner nodes → membership in elems[l]
            let mut present = [false; 16];
            let mut boundary = false;
            for n in mesh.elem_corners(e) {
                present[node_level[n as usize] as usize] = true;
                if node_ranks[n as usize].len() >= 2 {
                    boundary = true;
                }
            }
            for (l, &p) in present.iter().enumerate().take(nl) {
                if p {
                    ops[r][l] += 1;
                    if boundary {
                        boundary_ops[r][l] += 1;
                    }
                }
            }
        }
        let mut vol = vec![vec![0u64; nl]; k];
        let mut peer_sets: Vec<Vec<std::collections::BTreeSet<u32>>> =
            vec![vec![std::collections::BTreeSet::new(); nl]; k];
        for n in 0..nn {
            let ranks = &node_ranks[n];
            if ranks.len() < 2 {
                continue;
            }
            let l = node_level[n] as usize;
            for &r in ranks {
                vol[r as usize][l] += (ranks.len() - 1) as u64;
                for &p in ranks {
                    if p != r {
                        peer_sets[r as usize][l].insert(p);
                    }
                }
            }
        }
        let peers = peer_sets
            .into_iter()
            .map(|per_level| per_level.into_iter().map(|s| s.len() as u64).collect())
            .collect();
        PartitionShape {
            k,
            n_levels: nl,
            ops,
            boundary_ops,
            vol,
            peers,
            elems,
        }
    }
}

/// Cycle cost breakdown.
#[derive(Debug, Clone)]
pub struct CycleBreakdown {
    /// `max_r T_l(r)` per level.
    pub level_max: Vec<f64>,
    /// Total seconds per global `Δt` (LTS).
    pub lts_cycle: f64,
    /// Total seconds per global `Δt` for the non-LTS scheme (`p_max` fine
    /// steps of the full mesh).
    pub global_cycle: f64,
}

/// Evaluate the model for one partition shape.
pub fn simulate(shape: &PartitionShape, m: &MachineModel) -> CycleBreakdown {
    let nl = shape.n_levels;
    let mut level_max = vec![0.0f64; nl];
    for l in 0..nl {
        let mut worst = 0.0f64;
        for r in 0..shape.k {
            let t_el = m.t_elem_eff(shape.elems[r] as f64);
            let comm = m.alpha * shape.peers[r][l] as f64 + m.beta * shape.vol[r][l] as f64;
            let t = if m.overlap {
                let boundary = shape.boundary_ops[r][l] as f64 * t_el;
                let interior = (shape.ops[r][l] - shape.boundary_ops[r][l]) as f64 * t_el;
                m.kernel_launch + boundary + interior.max(comm)
            } else {
                m.kernel_launch + shape.ops[r][l] as f64 * t_el + comm
            };
            worst = worst.max(t);
        }
        level_max[l] = worst;
    }
    let lts_cycle: f64 = level_max
        .iter()
        .enumerate()
        .map(|(l, &t)| (1u64 << l) as f64 * t)
        .sum();

    // non-LTS: p_max fine steps; every rank steps all its elements and
    // exchanges all its interface nodes each fine step
    let p_max = 1u64 << (nl - 1);
    let mut worst = 0.0f64;
    for r in 0..shape.k {
        let t_el = m.t_elem_eff(shape.elems[r] as f64);
        let all_vol: u64 = shape.vol[r].iter().sum();
        let all_peers = shape.peers[r].iter().copied().max().unwrap_or(0);
        let comm = m.alpha * all_peers as f64 + m.beta * all_vol as f64;
        let t = if m.overlap {
            let boundary: u64 = shape.boundary_ops[r].iter().max().copied().unwrap_or(0);
            let b = boundary as f64 * t_el;
            let interior = (shape.elems[r] as f64 - boundary as f64).max(0.0) * t_el;
            m.kernel_launch + b + interior.max(comm)
        } else {
            m.kernel_launch + shape.elems[r] as f64 * t_el + comm
        };
        worst = worst.max(t);
    }
    let global_cycle = p_max as f64 * worst;
    CycleBreakdown {
        level_max,
        lts_cycle,
        global_cycle,
    }
}

/// Performance in simulated-seconds per wall-second for a step `dt`.
pub fn performance(dt: f64, cycle_seconds: f64) -> f64 {
    dt / cycle_seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_mesh::{BenchmarkMesh, MeshKind};
    use lts_partition::{partition_mesh, Strategy};

    fn trench_shape(k: usize, strategy: Strategy) -> (BenchmarkMesh, PartitionShape) {
        let b = BenchmarkMesh::build(MeshKind::Trench, 6_000);
        let part = partition_mesh(&b.mesh, &b.levels, k, strategy, 1);
        let shape = PartitionShape::new(&b.mesh, &b.levels, &part, k);
        (b, shape)
    }

    #[test]
    fn ops_cover_all_elements_at_level0() {
        let (b, shape) = trench_shape(4, Strategy::ScotchP);
        // level-0 ops should count most elements exactly once across ranks
        let total0: u64 = shape.ops.iter().map(|o| o[0]).sum();
        let hist = b.levels.histogram();
        assert!(total0 >= hist[0] as u64);
        let total_elems: u64 = shape.elems.iter().sum();
        assert_eq!(total_elems, b.mesh.n_elems() as u64);
    }

    #[test]
    fn lts_cycle_beats_global_cycle() {
        let (_, shape) = trench_shape(8, Strategy::ScotchP);
        let m = MachineModel::cpu_node();
        let r = simulate(&shape, &m);
        assert!(
            r.lts_cycle < r.global_cycle,
            "LTS {} vs global {}",
            r.lts_cycle,
            r.global_cycle
        );
    }

    #[test]
    fn level_balanced_partition_beats_baseline() {
        let (_, sp) = trench_shape(8, Strategy::ScotchP);
        let (_, base) = trench_shape(8, Strategy::ScotchBaseline);
        let m = MachineModel::cpu_node();
        let t_sp = simulate(&sp, &m).lts_cycle;
        let t_base = simulate(&base, &m).lts_cycle;
        assert!(
            t_sp < t_base,
            "SCOTCH-P {t_sp} should beat level-oblivious baseline {t_base}"
        );
    }

    #[test]
    fn gpu_suffers_at_high_rank_counts() {
        // with tiny per-rank fine levels, GPU launch overhead dominates and
        // LTS efficiency falls — the Fig. 9 (bottom) falloff
        let b = BenchmarkMesh::build(MeshKind::Trench, 6_000);
        let gpu = MachineModel::gpu_node();
        let mut eff = Vec::new();
        for k in [2usize, 16] {
            let part = partition_mesh(&b.mesh, &b.levels, k, Strategy::ScotchP, 1);
            let shape = PartitionShape::new(&b.mesh, &b.levels, &part, k);
            let r = simulate(&shape, &gpu);
            // per-rank efficiency: speedup vs k × single-rank-share
            let t1 = r.global_cycle; // same-machine non-LTS
            eff.push((t1 / r.lts_cycle) / 1.0);
            let _ = t1;
        }
        // LTS speedup factor shrinks as k grows (launch-bound fine levels)
        assert!(eff[1] < eff[0] * 1.02, "{eff:?}");
    }

    #[test]
    fn cache_effect_speeds_small_partitions() {
        let m = MachineModel::cpu_node();
        assert!(m.t_elem_eff(1_000.0) < m.t_elem_eff(1_000_000.0));
        assert!(m.t_elem_eff(1_000.0) >= m.t_elem * m.cache_factor * 0.99);
        let g = MachineModel::gpu_node();
        assert_eq!(g.t_elem_eff(10.0), g.t_elem);
    }

    #[test]
    fn volumes_symmetric_across_ranks() {
        let (_, shape) = trench_shape(2, Strategy::ScotchBaseline);
        // with two ranks every interface node contributes 1 to each side
        for l in 0..shape.n_levels {
            assert_eq!(shape.vol[0][l], shape.vol[1][l], "level {l}");
        }
    }
}
