//! Trace-driven two-level set-associative cache simulation (Fig. 12).
//!
//! The paper measured D1+D2 (L1+L2 data cache) hits with craypat and saw
//! (a) hits per node grow as partitions shrink — the super-linear scaling of
//! the reference code — and (b) the LTS version utilise cache even better,
//! because the small fine levels are revisited `2^l` times per cycle while
//! still resident. This module reproduces the measurement: it generates the
//! actual DOF access stream of a rank's cycle (gather/scatter of `u`, `f`
//! and the mass) and drives an L1+L2 LRU simulator with it.

use lts_mesh::{HexMesh, Levels};

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    n_sets: usize,
    assoc: usize,
    /// tags[set * assoc + way]; u64::MAX = empty.
    tags: Vec<u64>,
    /// LRU stamps, larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

impl CacheSim {
    pub fn new(capacity_bytes: u64, line_bytes: u64, assoc: usize) -> Self {
        let n_lines = (capacity_bytes / line_bytes) as usize;
        assert!(assoc >= 1 && n_lines >= assoc);
        let n_sets = (n_lines / assoc).max(1);
        CacheSim {
            line_bytes,
            n_sets,
            assoc,
            tags: vec![u64::MAX; n_sets * assoc],
            stamps: vec![0; n_sets * assoc],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access a byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.n_sets;
        let tag = line;
        self.clock += 1;
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // evict LRU
        let mut victim = 0;
        for way in 1..self.assoc {
            if self.stamps[base + way] < self.stamps[base + victim] {
                victim = way;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        false
    }
}

/// Aggregate D1+D2 statistics of one simulated rank cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub accesses: u64,
    pub d1_hits: u64,
    pub d2_hits: u64,
}

impl CacheStats {
    /// Combined D1+D2 hits (craypat's metric in Fig. 12).
    pub fn d1d2_hits(&self) -> u64 {
        self.d1_hits + self.d2_hits
    }

    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.d1d2_hits() as f64 / self.accesses as f64
        }
    }
}

/// Trace generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// GLL nodes per element edge (order + 1); 5 for SPECFEM's order 4.
    pub nodes_per_edge: usize,
    /// D1: 32 KiB, 8-way, 64-B lines (Sandy Bridge).
    pub d1_bytes: u64,
    /// D2: 256 KiB, 8-way.
    pub d2_bytes: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            nodes_per_edge: 5,
            d1_bytes: 32 * 1024,
            d2_bytes: 256 * 1024,
        }
    }
}

/// Per-rank local numbering: like a production MPI code, each rank stores
/// its DOFs in compact local arrays (first-touch order), so the cache
/// footprint is the rank's working set, not the global address space.
struct LocalIds {
    map: std::collections::HashMap<u64, u64>,
    next: u64,
}

impl LocalIds {
    fn new() -> Self {
        LocalIds {
            map: std::collections::HashMap::new(),
            next: 0,
        }
    }

    fn get(&mut self, global: u64) -> u64 {
        *self.map.entry(global).or_insert_with(|| {
            let id = self.next;
            self.next += 1;
            id
        })
    }
}

/// Corner-node-level proxy of the per-element gather/scatter stream: each
/// element touches its GLL nodes' `u`, `f` and mass arrays, addressed by the
/// rank-local compact numbering.
#[allow(clippy::too_many_arguments)]
fn touch_element(
    mesh: &HexMesh,
    e: u32,
    cfg: &TraceConfig,
    ids: &mut LocalIds,
    array_stride: u64,
    d1: &mut CacheSim,
    d2: &mut CacheSim,
    stats: &mut CacheStats,
) {
    let npe = cfg.nodes_per_edge as u64;
    let (i, j, k) = mesh.elem_ijk(e);
    let gx = (mesh.nx as u64) * (npe - 1) + 1;
    let gy = (mesh.ny as u64) * (npe - 1) + 1;
    for c in 0..npe {
        for b in 0..npe {
            for a in 0..npe {
                let global = (i as u64 * (npe - 1) + a)
                    + gx * ((j as u64 * (npe - 1) + b) + gy * (k as u64 * (npe - 1) + c));
                let node = ids.get(global);
                for arr in 0..3u64 {
                    let addr = arr * array_stride + node * 8;
                    stats.accesses += 1;
                    if d1.access(addr) {
                        stats.d1_hits += 1;
                    } else if d2.access(addr) {
                        stats.d2_hits += 1;
                    }
                }
            }
        }
    }
}

/// Upper bound on a rank's local array length (bytes), used to place the
/// three arrays at non-overlapping local base addresses.
fn local_stride(cfg: &TraceConfig, n_elems: usize) -> u64 {
    let npe = cfg.nodes_per_edge as u64;
    (n_elems as u64 + 1) * npe * npe * npe * 8
}

/// Simulate one rank's **non-LTS** cycle: `p_max` passes over all its
/// elements.
pub fn simulate_global_cycle(
    mesh: &HexMesh,
    levels: &Levels,
    my_elems: &[u32],
    cfg: &TraceConfig,
) -> CacheStats {
    let mut d1 = CacheSim::new(cfg.d1_bytes, 64, 8);
    let mut d2 = CacheSim::new(cfg.d2_bytes, 64, 8);
    let mut stats = CacheStats::default();
    let mut ids = LocalIds::new();
    let stride = local_stride(cfg, my_elems.len());
    let p_max = 1u64 << (levels.n_levels - 1);
    for _ in 0..p_max {
        for &e in my_elems {
            touch_element(mesh, e, cfg, &mut ids, stride, &mut d1, &mut d2, &mut stats);
        }
    }
    stats
}

/// Simulate one rank's **LTS** cycle: level `l`'s elements visited `2^l`
/// times, grouped by level (the paper groups DOFs by p-level, improving
/// locality further).
pub fn simulate_lts_cycle(
    mesh: &HexMesh,
    levels: &Levels,
    my_elems: &[u32],
    cfg: &TraceConfig,
) -> CacheStats {
    let mut d1 = CacheSim::new(cfg.d1_bytes, 64, 8);
    let mut d2 = CacheSim::new(cfg.d2_bytes, 64, 8);
    let mut stats = CacheStats::default();
    let mut ids = LocalIds::new();
    let stride = local_stride(cfg, my_elems.len());
    let nl = levels.n_levels;
    let by_level: Vec<Vec<u32>> = (0..nl)
        .map(|l| {
            my_elems
                .iter()
                .copied()
                .filter(|&e| levels.elem_level[e as usize] == l as u8)
                .collect()
        })
        .collect();
    // the recursive order: level l is swept 2^l times per cycle, interleaved
    // as in the recursion (innermost most often, consecutively)
    #[allow(clippy::too_many_arguments)]
    fn sweep(
        l: usize,
        nl: usize,
        by_level: &[Vec<u32>],
        mesh: &HexMesh,
        cfg: &TraceConfig,
        ids: &mut LocalIds,
        stride: u64,
        d1: &mut CacheSim,
        d2: &mut CacheSim,
        stats: &mut CacheStats,
    ) {
        for &e in &by_level[l] {
            touch_element(mesh, e, cfg, ids, stride, d1, d2, stats);
        }
        if l + 1 < nl {
            for _ in 0..2 {
                sweep(l + 1, nl, by_level, mesh, cfg, ids, stride, d1, d2, stats);
            }
        }
    }
    sweep(
        0, nl, &by_level, mesh, cfg, &mut ids, stride, &mut d1, &mut d2, &mut stats,
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_mesh::{BenchmarkMesh, MeshKind};

    #[test]
    fn lru_basic_hits_and_misses() {
        let mut c = CacheSim::new(1024, 64, 2); // 16 lines, 8 sets × 2 ways
        assert!(!c.access(0));
        assert!(c.access(8)); // same line
        assert!(!c.access(64));
        assert!(c.access(0));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // direct-mapped-ish: capacity 128 B = 2 lines, 1 set × 2 ways
        let mut c = CacheSim::new(128, 64, 2);
        c.access(0); // line 0
        c.access(64); // line 1
        c.access(128); // evicts line 0 (LRU)
        assert!(!c.access(0), "line 0 should have been evicted");
        assert!(c.access(128) || c.access(64)); // something survived
    }

    #[test]
    fn smaller_partitions_hit_more() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 4_000);
        let cfg = TraceConfig::default();
        let all: Vec<u32> = (0..b.mesh.n_elems() as u32).collect();
        let big = simulate_global_cycle(&b.mesh, &b.levels, &all, &cfg);
        let small = simulate_global_cycle(&b.mesh, &b.levels, &all[..all.len() / 8], &cfg);
        assert!(
            small.hit_rate() > big.hit_rate(),
            "small {} vs big {}",
            small.hit_rate(),
            big.hit_rate()
        );
    }

    #[test]
    fn lts_cycle_hits_more_than_global() {
        // Fig. 12: the LTS sweep revisits small fine levels while resident
        let b = BenchmarkMesh::build(MeshKind::Trench, 4_000);
        let cfg = TraceConfig::default();
        let all: Vec<u32> = (0..b.mesh.n_elems() as u32).collect();
        let chunk = &all[..all.len() / 4];
        let lts = simulate_lts_cycle(&b.mesh, &b.levels, chunk, &cfg);
        let global = simulate_global_cycle(&b.mesh, &b.levels, chunk, &cfg);
        assert!(
            lts.hit_rate() >= global.hit_rate() * 0.98,
            "LTS {} vs global {}",
            lts.hit_rate(),
            global.hit_rate()
        );
    }

    #[test]
    fn stats_add_up() {
        let b = BenchmarkMesh::build(MeshKind::Embedding, 1_000);
        let cfg = TraceConfig::default();
        let all: Vec<u32> = (0..b.mesh.n_elems() as u32).collect();
        let s = simulate_global_cycle(&b.mesh, &b.levels, &all, &cfg);
        assert!(s.accesses > 0);
        assert!(s.d1d2_hits() <= s.accesses);
        let p_max = 1u64 << (b.levels.n_levels - 1);
        let npe = 5u64 * 5 * 5;
        assert_eq!(s.accesses, p_max * all.len() as u64 * npe * 3);
    }
}
