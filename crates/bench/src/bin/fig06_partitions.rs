//! Fig. 6 — all four partitioners on the trench mesh with 4 parts.
//!
//! The paper's point: SCOTCH (single-constraint) balances only the work per
//! LTS cycle, while SCOTCH-P / MeTiS / PaToH balance each level. The
//! per-part-per-level table and an ASCII surface view make the difference
//! visible.

use lts_bench::{build_mesh, Args, Table};
use lts_mesh::MeshKind;
use lts_partition::{load_imbalance, partition_mesh, Strategy};

/// Write a coloured PPM of the top-surface partition (the paper colours each
/// part; digits only go so far). Files land in `target/fig06/`.
fn write_partition_ppm(b: &lts_mesh::BenchmarkMesh, part: &[u32], name: &str) {
    use std::io::Write;
    let palette: [(u8, u8, u8); 8] = [
        (230, 80, 60),
        (70, 130, 200),
        (90, 180, 90),
        (240, 200, 60),
        (160, 90, 200),
        (80, 200, 200),
        (230, 140, 50),
        (140, 140, 140),
    ];
    let dir = std::path::Path::new("target/fig06");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let fname = dir.join(format!("{}.ppm", name.replace([' ', '.'], "_")));
    let Ok(mut f) = std::fs::File::create(&fname) else {
        return;
    };
    let (w, h) = (b.mesh.nx, b.mesh.ny);
    let kz = b.mesh.nz - 1;
    let _ = writeln!(f, "P6\n{w} {h}\n255");
    let mut buf = Vec::with_capacity(3 * w * h);
    for j in (0..h).rev() {
        for i in 0..w {
            let e = b.mesh.elem_id(i, j, kz) as usize;
            let (r, g, bl) = palette[(part[e] as usize) % palette.len()];
            // darken by level so the refinement strip shows through
            let lvl = b.levels.elem_level[e] as u16;
            let dim = |c: u8| ((c as u16 * (4 + 4u16.saturating_sub(lvl))) / 8) as u8;
            buf.extend_from_slice(&[dim(r), dim(g), dim(bl)]);
        }
    }
    let _ = f.write_all(&buf);
    println!("(wrote {})", fname.display());
}

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 20_000);
    let k: usize = args.get("parts", 4);
    let seed: u64 = args.get("seed", 1);
    let b = build_mesh(MeshKind::Trench, elements);

    let strategies = [
        Strategy::Patoh { final_imbal: 0.01 },
        Strategy::MetisMc,
        Strategy::ScotchBaseline,
        Strategy::ScotchP,
    ];
    for s in strategies {
        let part = partition_mesh(&b.mesh, &b.levels, k, s, seed);
        let rep = load_imbalance(&b.levels, &part, k);
        println!("\n=== {} ===", s.name());
        let mut t = Table::new(&["part", "total load", "lvl0", "lvl1", "lvl2", "lvl3"]);
        for p in 0..k {
            let mut row = vec![p.to_string(), rep.part_load[p].to_string()];
            for l in 0..4 {
                row.push(
                    rep.level_counts
                        .get(l)
                        .map(|lc| lc[p].to_string())
                        .unwrap_or_else(|| "-".into()),
                );
            }
            t.row(row);
        }
        t.print();
        println!(
            "total imbalance {:.0}%, per-level {:?}",
            rep.total_pct,
            rep.per_level_pct
                .iter()
                .map(|p| format!("{p:.0}%"))
                .collect::<Vec<_>>()
        );
        // surface view (top layer, part id per element)
        println!("surface view (top z-layer, one char per element = part id):");
        let kz = b.mesh.nz - 1;
        for j in (0..b.mesh.ny).rev() {
            let mut line = String::new();
            for i in 0..b.mesh.nx.min(100) {
                let e = b.mesh.elem_id(i, j, kz) as usize;
                line.push(char::from_digit(part[e] % 36, 36).unwrap());
            }
            println!("{line}");
        }
        write_partition_ppm(&b, &part, &s.name());
    }
    println!(
        "\npaper: SCOTCH (incorrectly) balances only the cycle total; the rest balance every level"
    );
}
