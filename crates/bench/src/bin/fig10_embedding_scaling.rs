//! Fig. 10 — CPU strong scaling on the embedding mesh (7.9× theoretical
//! speed-up), 16 → 128 nodes: LTS ideal, SCOTCH-P, PaToH 0.01/0.05, non-LTS.
//!
//! Paper shape: SCOTCH-P reaches ~95 % of the 7.9× model speed-up at 16
//! nodes and scales at 93 %; the reference code scales super-linearly
//! (123 %) from improving cache locality.

use lts_bench::{build_mesh, scaling, Args};
use lts_mesh::MeshKind;
use lts_partition::Strategy;
use lts_perfmodel::cluster::MachineModel;

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 100_000);
    let seed: u64 = args.get("seed", 1);
    let nodes = args.get_list("nodes", &[16, 32, 64, 128]);
    let b = build_mesh(MeshKind::Embedding, elements);
    let paper = MeshKind::Embedding.paper_elements();
    let strategies = [
        Strategy::ScotchP,
        Strategy::Patoh { final_imbal: 0.01 },
        Strategy::Patoh { final_imbal: 0.05 },
    ];
    let cpu = scaling::run(
        &b,
        &nodes,
        &strategies,
        &MachineModel::cpu_node().scaled(b.mesh.n_elems(), paper),
        seed,
    );
    scaling::print(&cpu, "Fig. 10 — CPU performance, embedding mesh");
    println!("\npaper: SCOTCH-P 93% of LTS ideal; non-LTS CPU 123% (super-linear, cache)");
}
