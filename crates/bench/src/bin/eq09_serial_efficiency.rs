//! Eq. 9 check — single-core LTS efficiency.
//!
//! The paper reports > 90 % single-threaded efficiency of the LTS
//! implementation relative to the ideal speed-up model. Here both are
//! measured on the real SEM operator: wall-clock LTS vs non-LTS (at
//! `Δt/p_max`), compared with the Eq. 9 model and with the masked-work
//! element-operation counts.

use lts_bench::{Args, Table};
use lts_core::{LtsNewmark, LtsSetup, Newmark};
use lts_mesh::{BenchmarkMesh, MeshKind};
use lts_sem::AcousticOperator;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 3_000);
    let order: usize = args.get("order", 4);
    let cycles: usize = args.get("cycles", 3);
    let grouped: bool = args.get("grouped", true);
    let b = BenchmarkMesh::build(MeshKind::Trench, elements);
    let mut op = AcousticOperator::new(&b.mesh, order);
    let mut setup = LtsSetup::new(&op, &b.levels.elem_level);
    if grouped {
        // the paper's Sec. IV-D optimization: group DOFs by p-level
        let perm = setup.grouping_permutation();
        op.set_permutation(&perm);
        setup = LtsSetup::new(&op, &b.levels.elem_level);
    }
    let ndof = op.dofmap.n_nodes();
    eprintln!(
        "# trench {} elements, order {} → {} DOF, {} levels, p-level grouping {}",
        b.mesh.n_elems(),
        order,
        ndof,
        setup.n_levels,
        if grouped { "ON" } else { "OFF" }
    );

    let u0: Vec<f64> = (0..ndof).map(|i| ((i as f64) * 0.37).sin()).collect();
    let model = b.levels.speedup_model();
    let p_max = 1usize << (setup.n_levels - 1);
    let dt = b.levels.dt_global * lts_sem::gll::cfl_dt_scale(order, 3);

    // LTS: `cycles` global steps
    let mut u = u0.clone();
    let mut v = vec![0.0; ndof];
    let mut lts = LtsNewmark::new(&op, &setup, dt);
    let t0 = Instant::now();
    lts.run(&mut u, &mut v, 0.0, cycles, &[]);
    let t_lts = t0.elapsed().as_secs_f64();

    // non-LTS: the same simulated time at Δt/p_max
    let mut u = u0.clone();
    let mut v = vec![0.0; ndof];
    let mut nm = Newmark::new(&op, dt / p_max as f64);
    let t0 = Instant::now();
    nm.run(&mut u, &mut v, 0.0, cycles * p_max, &[]);
    let t_global = t0.elapsed().as_secs_f64();

    let measured = t_global / t_lts;
    let ideal = model.speedup();
    let op_ratio = setup.global_elem_ops() as f64 / setup.lts_elem_ops() as f64;

    let mut t = Table::new(&["quantity", "value"]);
    t.row(vec!["Eq. 9 model speed-up".into(), format!("{ideal:.2}x")]);
    t.row(vec![
        "masked-work op-count speed-up".into(),
        format!("{op_ratio:.2}x"),
    ]);
    t.row(vec![
        "measured wall-clock speed-up".into(),
        format!("{measured:.2}x"),
    ]);
    t.row(vec![
        "single-core LTS efficiency".into(),
        format!("{:.0}%", 100.0 * measured / ideal),
    ]);
    t.row(vec![
        "masked-op overhead (halo elements)".into(),
        format!("{:.0}%", 100.0 * (ideal / op_ratio - 1.0)),
    ]);
    println!("Eq. 9 — single-core LTS efficiency (paper: > 90%)");
    t.print();
}
