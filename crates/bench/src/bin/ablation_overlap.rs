//! Ablation: blocking vs. overlapped communication (the paper's SPECFEM3D
//! baseline uses asynchronous MPI overlapping; this quantifies how much of
//! the LTS scaling depends on it).

use lts_bench::{build_mesh, scaling, Args};
use lts_mesh::MeshKind;
use lts_partition::Strategy;
use lts_perfmodel::cluster::MachineModel;

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 60_000);
    let seed: u64 = args.get("seed", 1);
    let nodes = args.get_list("nodes", &[16, 32, 64, 128, 256]);
    let b = build_mesh(MeshKind::Trench, elements);
    let paper = MeshKind::Trench.paper_elements();
    let strategies = [Strategy::ScotchP];

    let blocking = MachineModel::cpu_node().scaled(b.mesh.n_elems(), paper);
    let overlapped = blocking.with_overlap();

    let f1 = scaling::run(&b, &nodes, &strategies, &blocking, seed);
    scaling::print(&f1, "Ablation — blocking communication (SCOTCH-P, trench)");
    println!();
    let f2 = scaling::run(&b, &nodes, &strategies, &overlapped, seed);
    scaling::print(
        &f2,
        "Ablation — overlapped communication (compute interior while messages fly)",
    );

    println!("\nrelative gain from overlapping at each node count:");
    for (i, &n) in f1.nodes.iter().enumerate() {
        // curve 1 is SCOTCH-P in both figures (curve 0 is the ideal)
        let a = f1.curves[1].values[i];
        let o = f2.curves[1].values[i];
        println!("  {n:>5} nodes: {:+.1}%", 100.0 * (o / a - 1.0));
    }
    println!("\nexpected shape: the gain grows with node count — at strong-scaling limits the");
    println!("exchange latency is a growing share of each sub-step, and overlap hides it.");
}
