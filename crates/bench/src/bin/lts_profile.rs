//! `lts-profile` — the performance-regression harness (see
//! `lts_bench::profile` and DESIGN.md §"Performance regression workflow").
//!
//! Modes (`--mode`):
//!
//! * `run` (default) — execute the scenario matrix and write a BENCH
//!   document. `--smoke true` runs the CI subset; `--out` picks the path
//!   (default `BENCH_lts.json`).
//! * `validate` — structural check of `--file <path>`; exit 1 on failure.
//! * `compare` — the `bench-compare` gate: `--baseline` vs `--current`.
//!   Counters must match exactly; wall-clock may regress up to `--tol`
//!   (relative, default 0.5) unless `--timings false` skips timing checks
//!   (use on CI, where hosts differ). Exit 1 on any failure.

use lts_bench::profile::{
    compare_bench, host_mismatch, kernel_variant_mismatch, run_suite, validate_bench,
};
use lts_bench::{Args, Table};
use lts_obs::Json;
use lts_sem::simd;

fn read_doc(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("lts-profile: cannot read {path}: {e}");
        std::process::exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("lts-profile: {path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args = Args::parse();
    let mode: String = args.get("mode", "run".to_string());
    match mode.as_str() {
        "run" => {
            let smoke: bool = args.get("smoke", false);
            let out: String = args.get("out", "BENCH_lts.json".to_string());
            let doc = run_suite(smoke);
            validate_bench(&doc).expect("generated document must validate");
            println!(
                "kernel: {} (features: {})",
                simd::active().name(),
                simd::cpu_features()
            );
            let mut table = Table::new(&[
                "scenario",
                "kernel",
                "elem_ops",
                "dofs_sent",
                "wall_s",
                "elem_ops/s",
                "λ_wm",
                "windows",
            ]);
            if let Some(scenarios) = doc.get("scenarios").and_then(|s| s.as_arr()) {
                for sc in scenarios {
                    let get_u = |path: &str, key: &str| {
                        sc.get(path)
                            .and_then(|o| o.get(key))
                            .and_then(|v| v.as_u64())
                            .unwrap_or(0)
                    };
                    // worst per-level λ watermark the stall monitor saw
                    let lambda_wm = sc
                        .get("stall")
                        .and_then(|s| s.get("lambda_wm"))
                        .and_then(|v| v.as_arr())
                        .map(|arr| {
                            arr.iter()
                                .filter_map(|e| e.get("lambda_wm").and_then(|v| v.as_f64()))
                                .fold(0.0f64, f64::max)
                        })
                        .unwrap_or(0.0);
                    table.row(vec![
                        sc.get("id")
                            .and_then(|v| v.as_str())
                            .unwrap_or("?")
                            .to_string(),
                        simd::active().name().to_string(),
                        get_u("counters", "elem_ops").to_string(),
                        get_u("counters", "dofs_sent").to_string(),
                        format!(
                            "{:.4}",
                            sc.get("timings")
                                .and_then(|t| t.get("wall_s"))
                                .and_then(|v| v.as_f64())
                                .unwrap_or(0.0)
                        ),
                        format!(
                            "{:.0}",
                            sc.get("timings")
                                .and_then(|t| t.get("elem_ops_per_sec"))
                                .and_then(|v| v.as_f64())
                                .unwrap_or(0.0)
                        ),
                        format!("{lambda_wm:.2}"),
                        get_u("stall", "windows").to_string(),
                    ]);
                }
            }
            table.print();
            match std::fs::write(&out, doc.render_pretty()) {
                Ok(()) => println!("wrote {out}"),
                Err(e) => {
                    eprintln!("lts-profile: cannot write {out}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "validate" => {
            let file: String = args.get("file", "BENCH_lts.json".to_string());
            match validate_bench(&read_doc(&file)) {
                Ok(n) => println!("{file}: valid ({n} scenarios)"),
                Err(e) => {
                    eprintln!("lts-profile: {file} invalid: {e}");
                    std::process::exit(1);
                }
            }
        }
        "compare" => {
            let baseline: String = args.get("baseline", "BENCH_lts.json".to_string());
            let current: String = args.get("current", "BENCH_lts.json".to_string());
            let timings: bool = args.get("timings", true);
            let tol: f64 = args.get("tol", 0.5);
            let base_doc = read_doc(&baseline);
            let cur_doc = read_doc(&current);
            if timings {
                if let Some(m) = host_mismatch(&base_doc, &cur_doc) {
                    eprintln!(
                        "bench-compare: warning: {m}; wall-clock gates are \
                         meaningless across hosts (use --timings false)"
                    );
                }
                if let Some(m) = kernel_variant_mismatch(&base_doc, &cur_doc) {
                    eprintln!(
                        "bench-compare: warning: {m}; timings were produced \
                         by different SIMD kernels (regenerate the baseline \
                         or use --timings false)"
                    );
                }
            }
            let failures = compare_bench(&base_doc, &cur_doc, tol, timings);
            if failures.is_empty() {
                println!("bench-compare: OK ({current} vs {baseline}, counters exact)");
            } else {
                for f in &failures {
                    eprintln!("bench-compare: FAIL {f}");
                }
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("lts-profile: unknown --mode {other:?} (run | validate | compare)");
            std::process::exit(2);
        }
    }
}
