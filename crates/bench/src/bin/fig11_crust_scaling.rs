//! Fig. 11 — CPU strong scaling on the crust mesh, whose surface refinement
//! caps the theoretical LTS speed-up at 1.9×. The paper's point: even with
//! little headroom, the level-balanced partitions (SCOTCH-P / PaToH 0.01)
//! scale at 96 % and deliver the full 1.9×.

use lts_bench::{build_mesh, scaling, Args};
use lts_mesh::MeshKind;
use lts_partition::Strategy;
use lts_perfmodel::cluster::MachineModel;

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 120_000);
    let seed: u64 = args.get("seed", 1);
    let nodes = args.get_list("nodes", &[16, 32, 64, 128]);
    let b = build_mesh(MeshKind::Crust, elements);
    let paper = MeshKind::Crust.paper_elements();
    let strategies = [
        Strategy::ScotchP,
        Strategy::Patoh { final_imbal: 0.01 },
        Strategy::Patoh { final_imbal: 0.05 },
    ];
    let cpu = scaling::run(
        &b,
        &nodes,
        &strategies,
        &MachineModel::cpu_node().scaled(b.mesh.n_elems(), paper),
        seed,
    );
    scaling::print(&cpu, "Fig. 11 — CPU performance, crust mesh (1.9x ceiling)");
    println!("\npaper: SCOTCH-P / PaToH 0.01 at 96% scaling efficiency; non-LTS 101%");
}
