//! Fig. 7 — total work-load imbalance (Eq. 21) of MeTiS, PaToH
//! (final_imbal = 0.05 / 0.01) and SCOTCH-P on the trench mesh, for
//! K = 16 / 32 / 64 parts.
//!
//! Paper values (2.5M elements): MeTiS 34/88/89 %, PaToH.05 11/17/19 %,
//! PaToH.01 2/5/7 %, SCOTCH-P 6/6/7 %.

use lts_bench::{build_mesh, Args, Table};
use lts_mesh::MeshKind;
use lts_obs::{registry_to_csv, MetricsRegistry};
use lts_partition::{load_imbalance, partition_mesh, partition_mesh_observed, Strategy};

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 100_000);
    let seed: u64 = args.get("seed", 1);
    let parts = args.get_list("parts", &[16, 32, 64]);
    let csv_path: String = args.get("csv", "fig07_metrics.csv".to_string());
    let b = build_mesh(MeshKind::Trench, elements);

    let strategies = [
        Strategy::MetisMc,
        Strategy::Patoh { final_imbal: 0.05 },
        Strategy::Patoh { final_imbal: 0.01 },
        Strategy::ScotchP,
    ];
    let mut t = Table::new(&[
        "# of parts",
        "MeTiS",
        "PaToH 0.05",
        "PaToH 0.01",
        "SCOTCH-P",
    ]);
    for &k in &parts {
        let mut row = vec![k.to_string()];
        for s in strategies {
            let part = partition_mesh(&b.mesh, &b.levels, k, s, seed);
            let rep = load_imbalance(&b.levels, &part, k);
            row.push(format!("{:.0}%", rep.total_pct));
        }
        t.row(row);
    }
    println!("Fig. 7 — total work-load imbalance (Eq. 21), trench mesh");
    t.print();
    println!("\npaper (2.5M elements):  16: 34% / 11% / 2% / 6%   32: 88% / 17% / 5% / 6%   64: 89% / 19% / 7% / 7%");

    // per-level detail for the largest K, recorded through the observability
    // layer: phase timers, V-cycle/FM engine counters and the Eq. 21 gauges
    // land in one registry per strategy, flattened into a single CSV.
    let k = *parts.last().unwrap();
    println!("\nper-level imbalance at K = {k}:");
    let mut t2 = Table::new(&["strategy", "level 0", "level 1", "level 2", "level 3"]);
    let mut csv = String::new();
    for s in strategies {
        let mut reg = MetricsRegistry::new();
        let part = partition_mesh_observed(&b.mesh, &b.levels, k, s, seed, &mut reg);
        let rep = load_imbalance(&b.levels, &part, k);
        let mut row = vec![s.name()];
        for l in 0..4 {
            row.push(
                rep.per_level_pct
                    .get(l)
                    .map(|p| format!("{p:.0}%"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t2.row(row);
        // prefix every exporter row with the strategy so the four registries
        // share one file
        for (i, line) in registry_to_csv(&reg).lines().enumerate() {
            if i == 0 {
                if csv.is_empty() {
                    csv.push_str(&format!("strategy,{line}\n"));
                }
            } else {
                csv.push_str(&format!("{},{line}\n", s.name()));
            }
        }
    }
    t2.print();
    match std::fs::write(&csv_path, csv) {
        Ok(()) => println!("\nwrote partitioner metrics (K = {k}) to {csv_path}"),
        Err(e) => eprintln!("\ncould not write {csv_path}: {e}"),
    }
}
