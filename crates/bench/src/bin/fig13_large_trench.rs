//! Fig. 13 — the 26M-element trench-big mesh (6 levels, 21.7× theoretical
//! speed-up) from 128 to 1024 nodes with SCOTCH-P.
//!
//! Paper shape: LTS scaling starts near 100 % of ideal and holds to 512
//! nodes, dropping to 67 % at 1024 nodes (8192 processors) as the finest
//! levels starve; non-LTS scales at 93 %.

use lts_bench::{build_mesh, scaling, Args};
use lts_mesh::MeshKind;
use lts_partition::Strategy;
use lts_perfmodel::cluster::MachineModel;

fn main() {
    let args = Args::parse();
    // 1/50th of paper scale by default; --elements 26000000 for full size
    let elements: usize = args.get("elements", 520_000);
    let seed: u64 = args.get("seed", 1);
    let nodes = args.get_list("nodes", &[128, 256, 512, 1024]);
    let b = build_mesh(MeshKind::TrenchBig, elements);
    let paper = MeshKind::TrenchBig.paper_elements();
    let strategies = [Strategy::ScotchP];
    let cpu = scaling::run(
        &b,
        &nodes,
        &strategies,
        &MachineModel::cpu_node().scaled(b.mesh.n_elems(), paper),
        seed,
    );
    scaling::print(
        &cpu,
        "Fig. 13 — CPU performance, large trench mesh, SCOTCH-P",
    );
    println!("\npaper: SCOTCH-P holds ~100% of ideal to 512 nodes, 67% at 1024; non-LTS 93%");
}
