//! Ablation: the rejected alternative. Gödel et al. (paper ref. \[7\])
//! restrict partition cuts to coarse elements so sub-steps need no MPI at
//! all; the paper rejects this because refined clusters bound the smallest
//! partition from below ("an artificially high lower limit on the number of
//! elements per partition"). This binary shows that limit happening.

use lts_bench::{build_mesh, Args, Table};
use lts_mesh::MeshKind;
use lts_partition::metrics::load_imbalance;
use lts_partition::restricted::{largest_cluster_work, partition_coarse_restricted};
use lts_partition::{partition_mesh, Strategy};

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 30_000);
    let seed: u64 = args.get("seed", 1);
    let parts = args.get_list("parts", &[4, 16, 64, 256]);
    let b = build_mesh(MeshKind::Trench, elements);

    let total: u64 = (0..b.mesh.n_elems() as u32).map(|e| b.levels.p_of(e)).sum();
    let cluster = largest_cluster_work(&b.mesh, &b.levels);
    println!(
        "largest refined cluster carries {cluster} work units of {total} total → balance impossible beyond K ≈ {}\n",
        total / cluster.max(1)
    );

    let mut t = Table::new(&[
        "K",
        "coarse-restricted imbalance",
        "SCOTCH-P imbalance",
        "lower bound",
    ]);
    for &k in &parts {
        let pr = partition_coarse_restricted(&b.mesh, &b.levels, k, seed);
        let ps = partition_mesh(&b.mesh, &b.levels, k, Strategy::ScotchP, seed);
        let rr = load_imbalance(&b.levels, &pr, k);
        let rs = load_imbalance(&b.levels, &ps, k);
        // analytic lower bound: max load ≥ max(cluster, total/K)
        let ideal = total as f64 / k as f64;
        let bound = if (cluster as f64) > ideal {
            100.0 * (1.0 - ideal / cluster as f64)
        } else {
            0.0
        };
        t.row(vec![
            k.to_string(),
            format!("{:.0}%", rr.total_pct),
            format!("{:.0}%", rs.total_pct),
            format!("{bound:.0}%"),
        ]);
    }
    println!("Ablation — coarse-restricted partitioning (ref. [7]) vs SCOTCH-P");
    t.print();
    println!(
        "\nthe restricted scheme needs zero sub-step communication but stops scaling once the"
    );
    println!("refined clusters dominate — the paper's reason for the p-level balanced approach.");
}
