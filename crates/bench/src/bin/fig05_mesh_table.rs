//! Fig. 5 — benchmark meshes in detail: elements, DOF (global GLL nodes at
//! order 4), theoretical LTS speed-up (Eq. 9), number of levels.
//!
//! `--scale f` multiplies every mesh's default element count (1.0 ≈ 1/25th
//! of paper scale; `--scale 25` regenerates the paper sizes, which needs a
//! few GB of RAM for trench-big).

use lts_bench::{Args, Table};
use lts_mesh::{BenchmarkMesh, MeshKind};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale", 1.0);
    let kinds = [
        MeshKind::Trench,
        MeshKind::TrenchBig,
        MeshKind::Embedding,
        MeshKind::Crust,
    ];
    let mut t = Table::new(&[
        "Mesh",
        "# elements",
        "# DOF",
        "Theor. LTS speedup",
        "# of levels",
        "paper speedup",
    ]);
    for kind in kinds {
        let target = ((kind.paper_elements() as f64 / 25.0) * scale) as usize;
        let b = BenchmarkMesh::build(kind, target);
        let dof = b.mesh.n_gll_nodes(4);
        t.row(vec![
            kind.name().to_string(),
            format!("{:.1}M", b.mesh.n_elems() as f64 / 1e6),
            format!("{:.0}M", dof as f64 / 1e6),
            format!("{:.1}", b.speedup()),
            format!("{}", b.levels.n_levels),
            format!("{:.1}", kind.paper_speedup()),
        ]);
    }
    println!("Fig. 5 — benchmark meshes in detail (scale {scale}, paper sizes / 25 by default)");
    t.print();
    println!("\nlevel histograms (coarsest first):");
    for kind in kinds {
        let target = ((kind.paper_elements() as f64 / 25.0) * scale) as usize;
        let b = BenchmarkMesh::build(kind, target);
        println!("  {:<11} {:?}", kind.name(), b.levels.histogram());
    }
}
