//! Ablation: two-level vs. multi-level LTS (Sec. II-B: "this two-level
//! restriction limits the total efficiency of an LTS algorithm").
//!
//! The same mesh is assigned levels with caps N = 1…6; the Eq. 9 model
//! speed-up and the serial masked-work speed-up show how much each extra
//! level buys. On the trench-big geometry the jump from 2 to 6 levels is
//! the difference between ~2× and ~22×.

use lts_bench::{Args, Table};
use lts_mesh::levels::{Levels, DEFAULT_CFL};
use lts_mesh::{BenchmarkMesh, MeshKind};

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 120_000);
    // build once with the full level budget to fix the mesh
    let b = BenchmarkMesh::build(MeshKind::TrenchBig, elements);
    println!(
        "trench-big mesh: {} elements, natural level count {}\n",
        b.mesh.n_elems(),
        b.levels.n_levels
    );
    let mut t = Table::new(&[
        "max levels",
        "achieved levels",
        "global Δt",
        "Eq.9 speed-up",
        "histogram",
    ]);
    for cap in 1..=6usize {
        let lv = Levels::assign(&b.mesh, DEFAULT_CFL, cap);
        t.row(vec![
            cap.to_string(),
            lv.n_levels.to_string(),
            format!("{:.4}", lv.dt_global),
            format!("{:.2}x", lv.speedup_model().speedup()),
            format!("{:?}", lv.histogram()),
        ]);
    }
    println!("Ablation — level-count cap vs LTS efficiency (Eq. 9)");
    t.print();
    println!(
        "\nwith a 2-level cap the whole refinement hierarchy is forced onto one fine rate and"
    );
    println!("the global Δt shrinks with it; each extra level recovers a factor until the");
    println!("hierarchy is fully resolved — the paper's motivation for the recursive scheme.");
}
