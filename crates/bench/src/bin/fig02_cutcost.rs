//! Figs. 2 and 3 — the didactic communication-cost examples.
//!
//! Fig. 2: a 2-D higher-order mesh with a p = 2 column; a cut across black
//! (p = 2) or gray (halo) nodes costs 2 synchronizations per ∆t on every
//! shared node, a cut in the p = 1 region costs 1.
//!
//! Fig. 3: the 2×2 quad mesh whose dual graph under-counts the 4-way corner
//! split while the nodal hypergraph charges it exactly.

use lts_mesh::hypergraph::NodalHypergraph;
use lts_mesh::quad::QuadMesh;

fn main() {
    // ---- Fig. 2: 4 columns × 1 row, order-2 (9-node) elements; the right
    // two columns are p = 2.
    let m = QuadMesh::new(4, 1);
    let mut p = vec![1u64; m.n_elems()];
    p[2] = 2;
    p[3] = 2;
    let order = 2;
    println!("Fig. 2 — per-cut communication cost (order-2 elements, right half p = 2):");
    for col in 1..4 {
        let cost = m.vertical_cut_cost(col, order, &p);
        let side = if col <= 1 {
            "p=1 region"
        } else if col == 2 {
            "p=1 | p=2 interface (gray halo)"
        } else {
            "p=2 region"
        };
        println!(
            "  cut between columns {} and {}: cost = {}  ({} shared nodes × {} steps/∆t)  [{}]",
            col - 1,
            col,
            cost,
            order * m.ny + 1,
            cost / (order as u64 * m.ny as u64 + 1),
            side
        );
    }
    println!("  paper: cost 6 / 6 / 3 — cuts touching p=2 or halo nodes pay double\n");

    // ---- Fig. 3: 2×2 mesh, dual graph vs hypergraph
    let q = QuadMesh::new(2, 2);
    let mut dual_edges = 0;
    for e in 0..q.n_elems() as u32 {
        dual_edges += q.edge_neighbors(e).len();
    }
    dual_edges /= 2;
    let h = NodalHypergraph::build_quad(&q, None);
    let four_way = vec![0u32, 1, 2, 3];
    println!("Fig. 3 — dual graph vs hypergraph on the 2×2 quad mesh:");
    println!(
        "  dual graph: {} vertices, {} edges (the 4-cycle)",
        q.n_elems(),
        dual_edges
    );
    println!(
        "  hypergraph: {} vertices, {} nets (one per mesh node)",
        q.n_elems(),
        h.n_nets()
    );
    let center = q.node_id(1, 1);
    println!(
        "  central node's net connects {} elements; all-4-way split: dual counts {} cut edges, hypergraph cut = {} (λ−1 on every net)",
        h.pins_of(center).len(),
        dual_edges,
        h.cut_size(&four_way)
    );
    println!("  → the hypergraph charges the 4-way corner exchange the dual graph misses");
}
