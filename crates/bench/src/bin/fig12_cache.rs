//! Fig. 12 — D1+D2 cache hits for the non-LTS and LTS versions on the
//! trench mesh, 16 → 128 nodes.
//!
//! The paper's craypat measurement shows hits *per node* growing as
//! partitions shrink (driving the super-linear CPU scaling) and the LTS
//! version utilising cache even better (fine levels revisited while
//! resident, DOFs grouped by p-level). Here the trace-driven cache
//! simulator replays rank 0's actual gather/scatter stream for one cycle of
//! each scheme.

use lts_bench::{build_mesh, Args, Table};
use lts_mesh::MeshKind;
use lts_partition::{partition_mesh, Strategy};
use lts_perfmodel::cache::{simulate_global_cycle, simulate_lts_cycle, TraceConfig};

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 60_000);
    let seed: u64 = args.get("seed", 1);
    let nodes = args.get_list("nodes", &[16, 32, 64, 128]);
    let b = build_mesh(MeshKind::Trench, elements);
    let cfg = TraceConfig::default();

    let mut t = Table::new(&[
        "nodes",
        "elems/rank",
        "non-LTS hit-rate",
        "LTS hit-rate",
        "non-LTS hits/miss",
        "LTS hits/miss",
    ]);
    for &n in &nodes {
        let part = partition_mesh(&b.mesh, &b.levels, n, Strategy::ScotchP, seed);
        // rank 0's elements, in mesh order (the traversal order of the code)
        let mine: Vec<u32> = (0..b.mesh.n_elems() as u32)
            .filter(|&e| part[e as usize] == 0)
            .collect();
        let global = simulate_global_cycle(&b.mesh, &b.levels, &mine, &cfg);
        let lts = simulate_lts_cycle(&b.mesh, &b.levels, &mine, &cfg);
        let ratio = |r: f64| r / (1.0 - r).max(1e-9);
        t.row(vec![
            n.to_string(),
            mine.len().to_string(),
            format!("{:.3}", global.hit_rate()),
            format!("{:.3}", lts.hit_rate()),
            format!("{:.0}", ratio(global.hit_rate())),
            format!("{:.0}", ratio(lts.hit_rate())),
        ]);
    }
    println!("Fig. 12 — D1+D2 cache utilisation (trace-driven simulation, rank 0, one cycle)");
    t.print();
    println!("\npaper (craypat, hits metric): non-LTS grows 22→60 from 16→128 nodes; LTS higher still (→115)");
    println!(
        "shape to check: utilisation grows as partitions shrink; in the plotted 16–128-node range"
    );
    println!("LTS sits above non-LTS (the revisited fine levels stay resident). Far deeper in the");
    println!(
        "strong-scaling regime (≥ 256 nodes here) the non-LTS working set itself drops into D2"
    );
    println!("and its whole-sweep reuse overtakes — outside the paper's plotted range.");
}
