//! Fig. 8 — weighted graph cut and total MPI communication volume per LTS
//! cycle for MeTiS, PaToH (0.05 / 0.01) and SCOTCH-P on the trench mesh,
//! K = 16 / 32 / 64.
//!
//! Paper values (2.5M): e.g. K = 64: MeTiS cut 3.5e6 / vol 3.0e7,
//! PaToH.05 4.2e6 / 2.6e7, SCOTCH-P 4.7e6 / 3.3e7, PaToH.01 3.4e6 / 2.3e7.

use lts_bench::{build_mesh, sci, Args, Table};
use lts_mesh::MeshKind;
use lts_partition::{edge_cut, mpi_volume, partition_mesh, Strategy};

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 100_000);
    let seed: u64 = args.get("seed", 1);
    let parts = args.get_list("parts", &[16, 32, 64]);
    let b = build_mesh(MeshKind::Trench, elements);

    let strategies = [
        Strategy::MetisMc,
        Strategy::Patoh { final_imbal: 0.05 },
        Strategy::ScotchP,
        Strategy::Patoh { final_imbal: 0.01 },
    ];
    let mut t = Table::new(&["# of parts", "strategy", "Graph cut", "MPI volume"]);
    for &k in &parts {
        for s in strategies {
            let part = partition_mesh(&b.mesh, &b.levels, k, s, seed);
            t.row(vec![
                k.to_string(),
                s.name(),
                sci(edge_cut(&b.mesh, &b.levels, &part) as f64),
                sci(mpi_volume(&b.mesh, &b.levels, &part) as f64),
            ]);
        }
    }
    println!("Fig. 8 — communication cost metrics, trench mesh");
    t.print();
    println!(
        "\npaper (2.5M, K=64): MeTiS 3.5e6/3.0e7  PaToH.05 4.2e6/2.6e7  SCOTCH-P 4.7e6/3.3e7  PaToH.01 3.4e6/2.3e7"
    );
    println!("(hypergraph cut = exact MPI volume per LTS cycle; graph partitioners optimise only the edge-cut upper bound)");
}
