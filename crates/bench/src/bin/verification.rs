//! Numerical verification tables: convergence order and stability margins of
//! the LTS-Newmark implementation (the properties the companion paper \[15\]
//! proves; here they are measured).

use lts_bench::{Args, Table};
use lts_core::spectral::{exact_stable_dt, is_stable_at};
use lts_core::{Chain1d, LtsNewmark, LtsSetup, Newmark, TwoLevelLts};
use lts_obs::{registry_to_json, MetricsRegistry};

/// Exporter keys: the refinement index / config index / sub-step count `p`
/// rides in the key's `level` slot.
mod names {
    pub const MAX_ERROR: &str = "verify.max_error";
    pub const OBSERVED_ORDER: &str = "verify.observed_order";
    pub const ELEM_OPS: &str = "verify.elem_ops";
    pub const DT_MAX: &str = "verify.dt_max";
    pub const STABLE_BELOW: &str = "verify.stable_below";
    pub const UNSTABLE_ABOVE: &str = "verify.unstable_above";
    pub const P_SWEEP_NORM: &str = "verify.p_sweep_norm";
}

fn convergence_table(reg: &mut MetricsRegistry) {
    // three-level chain; error vs a resolved reference at matching times
    let mut vel = vec![1.0; 24];
    for (i, v) in vel.iter_mut().enumerate() {
        if i >= 20 {
            *v = 4.0;
        } else if i >= 17 {
            *v = 2.0;
        }
    }
    let c = Chain1d::with_velocities(vel, 1.0);
    let (lv, dt0) = c.assign_levels(0.4, 3);
    let setup = LtsSetup::new(&c, &lv);
    let n = 25;
    let u0: Vec<f64> = (0..n)
        .map(|i| (-((i as f64 - 8.0) / 2.5f64).powi(2)).exp())
        .collect();
    let t_end = 8.0 * dt0;

    // resolved reference
    let fine_dt = dt0 / 128.0;
    let mut u_ref = u0.clone();
    let mut v_ref = vec![0.0; n];
    Newmark::stagger_velocity(&c, fine_dt, &u_ref, &mut v_ref, &[]);
    let mut nm = Newmark::new(&c, fine_dt);
    nm.run(
        &mut u_ref,
        &mut v_ref,
        0.0,
        (t_end / fine_dt).round() as usize,
        &[],
    );

    let mut t = Table::new(&["Δt", "steps", "max error", "observed order"]);
    let mut prev: Option<f64> = None;
    for halvings in 0..5 {
        let dt = dt0 / (1 << halvings) as f64;
        let steps = (t_end / dt).round() as usize;
        let mut u = u0.clone();
        let mut v = vec![0.0; n];
        Newmark::stagger_velocity(&c, dt, &u, &mut v, &[]);
        let mut lts = LtsNewmark::new(&c, &setup, dt);
        lts.run(&mut u, &mut v, 0.0, steps, &[]);
        let err: f64 = (0..n).map(|i| (u[i] - u_ref[i]).abs()).fold(0.0, f64::max);
        let order = prev.map(|p: f64| (p / err).log2());
        reg.set_gauge_level(names::MAX_ERROR, halvings as u8, err);
        if let Some(o) = order {
            reg.set_gauge_level(names::OBSERVED_ORDER, halvings as u8, o);
        }
        reg.inc_level(names::ELEM_OPS, halvings as u8, lts.stats.elem_ops);
        t.row(vec![
            format!("{dt:.5}"),
            steps.to_string(),
            format!("{err:.3e}"),
            order.map_or("-".into(), |o| format!("{o:.2}")),
        ]);
        prev = Some(err);
    }
    println!("Convergence of multi-level LTS-Newmark (3 levels, 1-D chain, T = {t_end:.2}):");
    t.print();
    println!("expected order: 2 (Diaz & Grote 2009 / companion paper [15])\n");
}

fn stability_table(reg: &mut MetricsRegistry) {
    let mut t = Table::new(&["system", "exact Δt_max", "probe 0.95×", "probe 1.05×"]);
    let configs: Vec<(&str, Chain1d)> = vec![
        ("uniform chain", Chain1d::uniform(24, 1.0, 1.0)),
        (
            "two-speed chain",
            Chain1d::with_velocities(
                (0..24).map(|i| if i >= 18 { 3.0 } else { 1.0 }).collect(),
                1.0,
            ),
        ),
    ];
    for (i, (name, c)) in configs.into_iter().enumerate() {
        let dt_max = exact_stable_dt(&c, 500);
        let below = is_stable_at(&c, 0.95 * dt_max, 3_000, 1e3);
        let above = is_stable_at(&c, 1.05 * dt_max, 3_000, 1e3);
        reg.set_gauge_level(names::DT_MAX, i as u8, dt_max);
        reg.set_gauge_level(names::STABLE_BELOW, i as u8, f64::from(u8::from(below)));
        reg.set_gauge_level(names::UNSTABLE_ABOVE, i as u8, f64::from(u8::from(!above)));
        t.row(vec![
            name.into(),
            format!("{dt_max:.4}"),
            if below { "stable" } else { "UNSTABLE" }.into(),
            if above { "STABLE?!" } else { "unstable" }.into(),
        ]);
    }
    println!("Explicit-Newmark stability boundary (power iteration vs empirical probe):");
    t.print();
    println!();
}

fn two_level_p_sweep(reg: &mut MetricsRegistry) {
    // ratio-3 refinement: the general-p two-level scheme runs p = 3 exactly,
    // while restricting to powers of two forces p = 4 (extra work)
    let mut vel = vec![1.0; 20];
    for v in vel.iter_mut().skip(14) {
        *v = 3.0;
    }
    let c = Chain1d::with_velocities(vel, 1.0);
    let lv: Vec<u8> = (0..20).map(|e| u8::from(e >= 14)).collect();
    let setup = LtsSetup::new(&c, &lv);
    let dt = 0.85;
    let n = 21;
    let mut t = Table::new(&["p", "fine products/Δt", "stable?"]);
    for p in 1..=4usize {
        let mut u: Vec<f64> = (0..n)
            .map(|i| (-((i as f64 - 7.0) / 2.0f64).powi(2)).exp())
            .collect();
        let mut v = vec![0.0; n];
        let mut two = TwoLevelLts::new(&c, &setup, dt, p);
        two.run(&mut u, &mut v, 0.0, 500, &[]);
        let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        reg.set_gauge_level(names::P_SWEEP_NORM, p as u8, norm);
        t.row(vec![
            p.to_string(),
            (p * setup.elems[1].len()).to_string(),
            if norm.is_finite() && norm < 100.0 {
                "stable".into()
            } else {
                format!("unstable (‖u‖={norm:.1e})")
            },
        ]);
    }
    println!("Two-level LTS with general p (velocity ratio 3, Δt = {dt}):");
    t.print();
    println!("p = 3 matches the refinement ratio exactly — the power-of-two restriction of the");
    println!("multi-level scheme would over-step (p = 4) at 33% extra fine work.");
}

fn main() {
    let args = Args::parse();
    let json_path: String = args.get("json", "verification_metrics.json".to_string());
    let mut reg = MetricsRegistry::new();
    convergence_table(&mut reg);
    stability_table(&mut reg);
    two_level_p_sweep(&mut reg);
    match std::fs::write(&json_path, registry_to_json(&reg).render_pretty()) {
        Ok(()) => println!("\nwrote verification metrics to {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
