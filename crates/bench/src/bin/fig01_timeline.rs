//! Fig. 1 — the load-imbalance stall: a 1-D mesh with a fine region, two
//! ranks. A standard (work-balanced but level-oblivious) partition gives
//! processor A three times the fine elements of processor B, so B stalls at
//! every fine sub-step; a per-level (SCOTCH-P-style) split removes the stall.
//!
//! Runs the *real* threaded message-passing runtime with amplified
//! per-element work and prints measured busy/stall bars.

use lts_bench::Args;
use lts_core::{Chain1d, LtsSetup};
use lts_obs::Json;
use lts_runtime::stats::{ascii_timeline, chrome_trace, lambda_from_stats, profile_json};
use lts_runtime::{run_distributed, DistributedConfig, MonitorConfig};

fn main() {
    let args = Args::parse();
    let steps: usize = args.get("steps", 60);
    let amplify: u32 = args.get("amplify", 1_500_000);
    let threads: usize = args.get("threads", 1);
    let profile_path: String = args.get("profile", "fig01_profile.json".to_string());
    let trace_path: String = args.get("trace-out", String::new());

    // Fig. 1 geometry: a fine region Ω_f (4 elements, p = 2) next to a
    // coarse region Ω_c (4 elements, p = 1), embedded in a longer chain.
    let mut vel = vec![1.0; 16];
    for v in vel.iter_mut().take(12).skip(4) {
        *v = 2.0; // 8 fine elements in the middle
    }
    let c = Chain1d::with_velocities(vel, 1.0);
    let (lv, dt) = c.assign_levels(0.5, 2);
    let setup = LtsSetup::new(&c, &lv);
    let fine: Vec<usize> = (0..16).filter(|&e| lv[e] == 1).collect();
    println!("chain: 16 elements, fine (p=2) elements at {fine:?}, Δt = {dt}");

    let u0: Vec<f64> = (0..17)
        .map(|i| (-((i as f64 - 8.0) / 2.0f64).powi(2)).exp())
        .collect();
    let v0 = vec![0.0; 17];

    // (a) standard partition: geometric split — rank 0 gets 6 of 8 fine
    // elements (the paper's 3:1 fine imbalance)
    let naive: Vec<u32> = (0..16).map(|e| u32::from(e >= 10)).collect();
    // (b) per-level balanced split: each rank gets half of each level
    let balanced: Vec<u32> = (0..16)
        .map(|e| {
            let lvl = lv[e as usize];
            let peers: Vec<usize> = (0..16).filter(|&x| lv[x] == lvl).collect();
            let pos = peers.iter().position(|&x| x == e as usize).unwrap();
            u32::from(pos >= peers.len() / 2)
        })
        .collect();

    let cfg = DistributedConfig {
        record_timeline: true,
        work_amplify: amplify,
        // live stall detection: warn when a rank waits through half a window
        stall_monitor: Some(MonitorConfig::default()),
        threads_per_rank: threads.max(1),
        ..DistributedConfig::new(2)
    };
    let mut runs: Vec<Json> = Vec::new();
    let mut traced: Vec<(String, Vec<lts_runtime::RankStats>)> = Vec::new();
    for (name, part) in [
        ("standard partition (level-oblivious)", &naive),
        ("p-level balanced partition", &balanced),
    ] {
        let fine_per_rank: Vec<usize> = (0..2)
            .map(|r| (0..16).filter(|&e| part[e] == r && lv[e] == 1).count())
            .collect();
        let (_, _, stats) = run_distributed(&c, &setup, part, dt, &u0, &v0, steps, &cfg)
            .expect("distributed run failed");
        println!("\n== {name} (fine elements per rank: {fine_per_rank:?}) ==");
        print!("{}", ascii_timeline(&stats, 48));
        let worst = stats
            .iter()
            .map(|s| s.wait_fraction())
            .fold(0.0f64, f64::max);
        println!("worst stall fraction: {:.0}%", 100.0 * worst);
        for (l, lam) in lambda_from_stats(&stats) {
            println!("  level {l}: Eq. 21 λ = {:.2}", lam);
        }
        runs.push(Json::Obj(vec![
            ("partition".to_string(), Json::str(name)),
            (
                "fine_per_rank".to_string(),
                Json::Arr(
                    fine_per_rank
                        .iter()
                        .map(|&n| Json::UInt(n as u64))
                        .collect(),
                ),
            ),
            ("profile".to_string(), profile_json(&stats)),
        ]));
        traced.push((name.to_string(), stats));
    }
    let doc = Json::Obj(vec![
        ("figure".to_string(), Json::str("fig01_timeline")),
        ("steps".to_string(), Json::UInt(steps as u64)),
        ("runs".to_string(), Json::Arr(runs)),
    ]);
    match std::fs::write(&profile_path, doc.render_pretty()) {
        Ok(()) => {
            println!("\nwrote per-rank per-level busy/wait/exchange profile to {profile_path}")
        }
        Err(e) => eprintln!("\ncould not write {profile_path}: {e}"),
    }
    if !trace_path.is_empty() {
        let borrowed: Vec<(&str, &[lts_runtime::RankStats])> = traced
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_slice()))
            .collect();
        match std::fs::write(&trace_path, chrome_trace(&borrowed).render()) {
            Ok(()) => println!("wrote Chrome trace (chrome://tracing, Perfetto) to {trace_path}"),
            Err(e) => eprintln!("could not write {trace_path}: {e}"),
        }
    }
    println!(
        "\npaper's Fig. 1: the level-oblivious split stalls one processor at every ∆τ sub-step;"
    );
    println!("balancing each p-level separately removes the stall — the motivation for SCOTCH-P.");
    println!("(on single-core hosts both ranks additionally show a symmetric time-sharing wait;");
    println!(" the signature of the Fig. 1 pathology is the *asymmetry* between the ranks)");
}
