//! Fig. 9 — CPU (top) and GPU (bottom) strong scaling on the trench mesh,
//! 16 → 128 nodes: LTS ideal, SCOTCH-P, PaToH 0.01, PaToH 0.05, non-LTS.
//! All values normalised to the non-LTS **CPU** run at the first node count.
//!
//! Paper shape: CPU LTS starts at ~6.7× and scales at ~97 % of LTS-ideal
//! (slightly super-linear from cache effects); GPU non-LTS is 6.9× the CPU
//! reference and scales at 94 %, while GPU LTS starts at ~84 % LTS
//! efficiency and falls toward 45 % as kernel-launch overhead dominates the
//! shrinking fine levels.

use lts_bench::{build_mesh, scaling, Args};
use lts_mesh::MeshKind;
use lts_partition::Strategy;
use lts_perfmodel::cluster::MachineModel;

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 100_000);
    let seed: u64 = args.get("seed", 1);
    let nodes = args.get_list("nodes", &[16, 32, 64, 128]);
    let b = build_mesh(MeshKind::Trench, elements);
    let paper = MeshKind::Trench.paper_elements();
    let strategies = [
        Strategy::ScotchP,
        Strategy::Patoh { final_imbal: 0.01 },
        Strategy::Patoh { final_imbal: 0.05 },
    ];

    let cpu = scaling::run(
        &b,
        &nodes,
        &strategies,
        &MachineModel::cpu_node().scaled(b.mesh.n_elems(), paper),
        seed,
    );
    scaling::print(
        &cpu,
        "Fig. 9 (top) — CPU performance, trench mesh (normalized to non-LTS CPU at first point)",
    );

    println!();
    let gpu = scaling::run(
        &b,
        &nodes,
        &strategies,
        &MachineModel::gpu_node().scaled(b.mesh.n_elems(), paper),
        seed,
    );
    scaling::print(
        &gpu,
        "Fig. 9 (bottom) — GPU performance, trench mesh (same normalization)",
    );
    println!("\npaper: CPU LTS 97% of ideal; GPU non-LTS 6.9x reference at 94%; GPU LTS (SCOTCH-P) falls to 45%");
}
