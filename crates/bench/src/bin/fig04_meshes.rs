//! Fig. 4 — the benchmark meshes with their p-levels, rendered as ASCII
//! cross-sections (the paper colours the smallest elements red, mid gray,
//! largest blue; here digits are the level, '.' is the coarsest).

use lts_bench::{build_mesh, Args};
use lts_mesh::{BenchmarkMesh, MeshKind};

fn slice_y(b: &BenchmarkMesh) -> String {
    // vertical (x–z) slice through the mesh centre: shows trench depth
    let j = b.mesh.ny / 2;
    let mut s = String::new();
    for k in (0..b.mesh.nz).rev() {
        for i in 0..b.mesh.nx.min(100) {
            let e = b.mesh.elem_id(i, j, k) as usize;
            let l = b.levels.elem_level[e];
            s.push(if l == 0 {
                '.'
            } else {
                char::from_digit(l as u32, 10).unwrap()
            });
        }
        s.push('\n');
    }
    s
}

fn slice_x(b: &BenchmarkMesh) -> String {
    // cross-section (y–z) at mid-x: shows the strip / block / sheet shape
    let i = b.mesh.nx / 2;
    let mut s = String::new();
    for k in (0..b.mesh.nz).rev() {
        for j in 0..b.mesh.ny.min(100) {
            let e = b.mesh.elem_id(i, j, k) as usize;
            let l = b.levels.elem_level[e];
            s.push(if l == 0 {
                '.'
            } else {
                char::from_digit(l as u32, 10).unwrap()
            });
        }
        s.push('\n');
    }
    s
}

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 30_000);
    for kind in [MeshKind::Trench, MeshKind::Embedding, MeshKind::Crust] {
        let b = build_mesh(kind, elements);
        println!(
            "\n=== {} === (digits = p-level, '.' = coarsest)",
            kind.name()
        );
        println!("cross-section (y–z) at mid-x:");
        print!("{}", slice_x(&b));
        if kind == MeshKind::Trench {
            println!("vertical slice (x–z) at mid-y (strip runs the full length):");
            print!("{}", slice_y(&b));
        }
        println!("level histogram: {:?}", b.levels.histogram());
        println!("model speed-up (Eq. 9): {:.2}x", b.speedup());
    }
}
