//! Ablation: SCOTCH-P part-to-processor coupling — the paper's greedy
//! max-affinity rule vs. optimal weighted matching (auction algorithm),
//! the improvement the paper leaves as future work.

use lts_bench::{build_mesh, Args, Table};
use lts_mesh::MeshKind;
use lts_partition::metrics::{edge_cut, load_imbalance, mpi_volume};
use lts_partition::scotch_p::{partition_scotch_p_with, MappingMethod};

fn main() {
    let args = Args::parse();
    let elements: usize = args.get("elements", 40_000);
    let seed: u64 = args.get("seed", 1);
    let parts = args.get_list("parts", &[8, 16, 32, 64]);
    let b = build_mesh(MeshKind::Trench, elements);

    let mut t = Table::new(&[
        "K",
        "greedy cut",
        "auction cut",
        "greedy volume",
        "auction volume",
        "Δ volume",
    ]);
    for &k in &parts {
        let g = partition_scotch_p_with(&b.mesh, &b.levels, k, seed, MappingMethod::Greedy);
        let a = partition_scotch_p_with(&b.mesh, &b.levels, k, seed, MappingMethod::Auction);
        let (vg, va) = (
            mpi_volume(&b.mesh, &b.levels, &g),
            mpi_volume(&b.mesh, &b.levels, &a),
        );
        // per-level balance identical by construction (same per-level parts,
        // mappings only permute them); totals may differ slightly
        let (rg, ra) = (
            load_imbalance(&b.levels, &g, k),
            load_imbalance(&b.levels, &a, k),
        );
        for (lg, la) in rg.per_level_pct.iter().zip(&ra.per_level_pct) {
            assert!((lg - la).abs() < 1e-9, "per-level balance changed");
        }
        t.row(vec![
            k.to_string(),
            edge_cut(&b.mesh, &b.levels, &g).to_string(),
            edge_cut(&b.mesh, &b.levels, &a).to_string(),
            vg.to_string(),
            va.to_string(),
            format!("{:+.1}%", 100.0 * (va as f64 / vg as f64 - 1.0)),
        ]);
    }
    println!(
        "Ablation — SCOTCH-P coupling: greedy (paper) vs auction matching (paper's future work)"
    );
    t.print();
    println!(
        "\nthe matching maximises per-level affinity exactly; the volume gain is typically a few"
    );
    println!("percent — consistent with the paper's remark that the simple greedy already 'works");
    println!("extremely well' on these meshes.");
}
