//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the index) and accepts `--elements N` to change the mesh
//! scale (defaults are laptop-sized; paper-scale runs are a flag away).

#![forbid(unsafe_code)]

pub mod profile;
pub mod scaling;

use lts_mesh::{BenchmarkMesh, MeshKind};

/// Minimal flag parser: `--key value` pairs.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                if i + 1 < argv.len() {
                    pairs.push((key.to_string(), argv[i + 1].clone()));
                    i += 2;
                    continue;
                }
            }
            eprintln!("ignoring argument {:?}", argv[i]);
            i += 1;
        }
        Args { pairs }
    }

    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated list (e.g. `--parts 16,32,64`).
    pub fn get_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
            .unwrap_or_else(|| default.to_vec())
    }
}

/// Build a benchmark mesh and print its headline stats.
pub fn build_mesh(kind: MeshKind, elements: usize) -> BenchmarkMesh {
    let b = BenchmarkMesh::build(kind, elements);
    eprintln!(
        "# {} mesh: {} elements ({} requested), {} levels, model speed-up {:.2}x (paper: {:.1}x at {}M elements)",
        kind.name(),
        b.mesh.n_elems(),
        elements,
        b.levels.n_levels,
        b.speedup(),
        kind.paper_speedup(),
        kind.paper_elements() / 1_000_000,
    );
    b
}

/// Fixed-width table printer.
pub struct Table {
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!("{:>width$}  ", c, width = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.header);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Engineering formatter: 1.4e6 → "1.4e6"-style short scientific.
pub fn sci(x: f64) -> String {
    // lint: allow(float-eq) — exact-zero guard before log10 (±0 → "0")
    if x == 0.0 {
        return "0".into();
    }
    let mut exp = x.abs().log10().floor() as i32;
    let mut mant = x / 10f64.powi(exp);
    if format!("{mant:.1}").parse::<f64>().unwrap().abs() >= 10.0 {
        mant /= 10.0;
        exp += 1;
    }
    format!("{mant:.1}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats() {
        assert_eq!(sci(1.4e6), "1.4e6");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(3.0e7), "3.0e7");
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        t.print();
    }
}
