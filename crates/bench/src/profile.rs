//! The `lts-profile` performance-regression harness.
//!
//! Runs a fixed scenario matrix — graded benchmark meshes × partition
//! strategies × rank counts — through the real threaded runtime and writes a
//! `BENCH_lts.json` document: **deterministic counters** (element operations,
//! messages, DOF volumes, exchanges — exact integers, independent of timing),
//! p50/p95/p99 busy/wait histograms, per-level Eq. 21 λ, and host metadata.
//!
//! [`compare_bench`] is the `bench-compare` gate: counters must match a
//! baseline *exactly* (any drift is a correctness regression in disguise),
//! while wall-clock timings are held to a relative tolerance and can be
//! skipped entirely on cross-machine CI (`--timings false`).
//!
//! The smoke matrix is a strict subset of the full matrix with identical
//! per-scenario parameters, so a smoke run compares cleanly against a
//! committed full baseline (scenarios are intersected by id).

use lts_core::{Operator, Source};
use lts_mesh::{BenchmarkMesh, MeshKind};
use lts_obs::{Histogram, Json, MetricsRegistry};
use lts_partition::{partition_mesh, Strategy};
use lts_runtime::stats::{lambda_from_stats, names};
use lts_runtime::{run_distributed_local_acoustic_observed, DistributedConfig, MonitorConfig};
use lts_sem::gll::cfl_dt_scale;
use lts_sem::simd;
use lts_sem::AcousticOperator;

pub const SCHEMA: &str = "lts-bench/1";

/// One cell of the benchmark matrix. Parameters are part of the identity:
/// two documents may only compare counters for scenarios whose parameters
/// (encoded in the fixed matrix) agree.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Mesh key: `"trench"` (graded surface strip), `"trench-big"` (one
    /// extra refinement layer, 6 levels), `"embedding"` (small fast block)
    /// or `"crust"` (geometric crust grading).
    pub mesh: &'static str,
    /// Strategy key: `"scotch"`, `"scotch-p"`, `"metis"` or `"patoh"`.
    pub strategy: &'static str,
    pub ranks: usize,
    pub elements: usize,
    pub steps: usize,
    pub order: usize,
    pub seed: u64,
    /// Communication/computation overlap: boundary partials are sent
    /// before the interior apply instead of after the full apply.
    pub overlap: bool,
}

impl Scenario {
    pub fn id(&self) -> String {
        // The order is part of the identity only when it differs from the
        // historical default (1), so legacy baseline ids stay stable.
        let p = if self.order > 1 {
            format!("__p{}", self.order)
        } else {
            String::new()
        };
        let ov = if self.overlap { "__ov" } else { "" };
        format!("{}__{}__r{}{p}{ov}", self.mesh, self.strategy, self.ranks)
    }

    pub fn strategy_enum(&self) -> Strategy {
        match self.strategy {
            "scotch" => Strategy::ScotchBaseline,
            "scotch-p" => Strategy::ScotchP,
            "metis" => Strategy::MetisMc,
            "patoh" => Strategy::Patoh { final_imbal: 0.05 },
            other => panic!("unknown strategy key {other:?}"),
        }
    }

    pub fn build_mesh(&self) -> BenchmarkMesh {
        match self.mesh {
            "trench" => BenchmarkMesh::build(MeshKind::Trench, self.elements),
            "trench-big" => BenchmarkMesh::build(MeshKind::TrenchBig, self.elements),
            "embedding" => BenchmarkMesh::build(MeshKind::Embedding, self.elements),
            "crust" => BenchmarkMesh::crust_geometric(self.elements),
            other => panic!("unknown mesh key {other:?}"),
        }
    }
}

/// Shared per-scenario parameters — identical in the full and smoke
/// matrices so smoke runs compare against full baselines.
const ELEMENTS: usize = 256;
const STEPS: usize = 4;
const ORDER: usize = 1;
const SEED: u64 = 1;
/// The paper's production polynomial order. Order-4 scenarios exercise the
/// SIMD stiffness batch at its real arithmetic intensity; steps are capped
/// at 2 so the smoke run stays fast despite the ~60× heavier elements.
const P4_ORDER: usize = 4;
const P4_STEPS: usize = 2;

fn scenario(mesh: &'static str, strategy: &'static str, ranks: usize) -> Scenario {
    Scenario {
        mesh,
        strategy,
        ranks,
        elements: ELEMENTS,
        steps: STEPS,
        order: ORDER,
        seed: SEED,
        overlap: false,
    }
}

fn scenario_ov(mesh: &'static str, strategy: &'static str, ranks: usize) -> Scenario {
    Scenario {
        overlap: true,
        ..scenario(mesh, strategy, ranks)
    }
}

fn scenario_p4(mesh: &'static str, strategy: &'static str, ranks: usize) -> Scenario {
    Scenario {
        order: P4_ORDER,
        steps: P4_STEPS,
        ..scenario(mesh, strategy, ranks)
    }
}

fn scenario_p4_ov(mesh: &'static str, strategy: &'static str, ranks: usize) -> Scenario {
    Scenario {
        overlap: true,
        ..scenario_p4(mesh, strategy, ranks)
    }
}

/// The scenario matrix: `smoke` selects the CI subset (four scenarios),
/// the full matrix is 2 meshes × 4 strategies × {2, 4, 8} ranks, plus an
/// overlap twin of every r8 scenario so the wait-time reduction from
/// comm/compute overlap is tracked by the bench gate, not claimed.
///
/// On top of that, every one of the four benchmark meshes gets an order-4
/// (`__p4`) block — r2, r8 and an r8 overlap twin under the default
/// partitioner — so the SIMD stiffness batch runs at the paper's real
/// polynomial order inside the gated matrix, not only in microbenches.
pub fn matrix(smoke: bool) -> Vec<Scenario> {
    if smoke {
        return vec![
            scenario("trench", "scotch", 2),
            scenario("trench", "scotch-p", 2),
            scenario_ov("trench", "scotch", 8),
            scenario_p4("trench", "scotch", 2),
        ];
    }
    let mut out = Vec::new();
    for mesh in ["trench", "crust"] {
        for strategy in ["scotch", "scotch-p", "metis", "patoh"] {
            for ranks in [2, 4, 8] {
                out.push(scenario(mesh, strategy, ranks));
            }
            out.push(scenario_ov(mesh, strategy, 8));
        }
    }
    for mesh in ["trench", "trench-big", "embedding", "crust"] {
        out.push(scenario_p4(mesh, "scotch", 2));
        out.push(scenario_p4(mesh, "scotch", 8));
        out.push(scenario_p4_ov(mesh, "scotch", 8));
    }
    out
}

fn quantile_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        ("count".to_string(), Json::UInt(h.count)),
        ("sum_s".to_string(), Json::Num(h.sum)),
        ("p50".to_string(), Json::Num(h.p50())),
        ("p95".to_string(), Json::Num(h.p95())),
        ("p99".to_string(), Json::Num(h.p99())),
    ])
}

/// Run one scenario and return its result object. `wall_s` is measured by
/// the caller-visible clock; every counter in `"counters"` is deterministic.
pub fn run_scenario(sc: &Scenario) -> Json {
    let b = sc.build_mesh();
    let part = partition_mesh(&b.mesh, &b.levels, sc.ranks, sc.strategy_enum(), sc.seed);
    let op_dt = b.levels.dt_global * cfl_dt_scale(sc.order, 3);
    let ndof = Operator::ndof(&AcousticOperator::new(&b.mesh, sc.order));
    let sources = vec![Source::ricker(0, 0.3, 1.0, 1.0)];
    let cfg = DistributedConfig {
        stall_monitor: Some(MonitorConfig {
            log_warnings: false,
            ..MonitorConfig::default()
        }),
        overlap: sc.overlap,
        ..DistributedConfig::new(sc.ranks)
    };
    let zero = vec![0.0; ndof];
    let mut host = MetricsRegistry::new();
    let started = std::time::Instant::now();
    let (_, _, stats) = run_distributed_local_acoustic_observed(
        &b.mesh, &b.levels, sc.order, &part, op_dt, &zero, &zero, sc.steps, &cfg, &sources,
        &mut host,
    )
    .expect("distributed run failed");
    let wall_s = started.elapsed().as_secs_f64();

    let n_levels = b.levels.n_levels;
    let sum_counter =
        |name: &str| -> u64 { stats.iter().map(|s| s.registry.counter_total(name)).sum() };
    let mut busy = Histogram::default();
    let mut wait = Histogram::default();
    for s in &stats {
        for level in std::iter::once(None).chain((0..n_levels as u8).map(Some)) {
            if let Some(h) = s.registry.histogram(names::BUSY, level) {
                busy.merge(h);
            }
            if let Some(h) = s.registry.histogram(names::WAIT, level) {
                wait.merge(h);
            }
        }
    }
    let lambda = Json::Arr(
        lambda_from_stats(&stats)
            .into_iter()
            .map(|(l, lam)| {
                Json::Obj(vec![
                    ("level".to_string(), Json::UInt(l as u64)),
                    ("lambda".to_string(), Json::Num(lam)),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("id".to_string(), Json::str(sc.id())),
        ("mesh".to_string(), Json::str(sc.mesh)),
        ("strategy".to_string(), Json::str(sc.strategy)),
        ("ranks".to_string(), Json::UInt(sc.ranks as u64)),
        ("elements".to_string(), Json::UInt(b.mesh.n_elems() as u64)),
        ("steps".to_string(), Json::UInt(sc.steps as u64)),
        ("order".to_string(), Json::UInt(sc.order as u64)),
        ("seed".to_string(), Json::UInt(sc.seed)),
        ("overlap".to_string(), Json::Bool(sc.overlap)),
        ("n_levels".to_string(), Json::UInt(n_levels as u64)),
        (
            "counters".to_string(),
            Json::Obj(vec![
                (
                    "elem_ops".to_string(),
                    Json::UInt(sum_counter(names::ELEM_OPS)),
                ),
                (
                    "msgs_sent".to_string(),
                    Json::UInt(sum_counter(names::MSGS_SENT)),
                ),
                (
                    "dofs_sent".to_string(),
                    Json::UInt(sum_counter(names::DOFS_SENT)),
                ),
                (
                    "exchanges".to_string(),
                    Json::UInt(sum_counter(names::EXCHANGES)),
                ),
            ]),
        ),
        ("lambda".to_string(), lambda),
        (
            // Run-long stall-monitor summary: the per-level λ watermark (the
            // worst imbalance any window saw, not just the final snapshot)
            // and how many observation windows the monitor closed. Window
            // counts are exchange-derived and deterministic; the watermark is
            // timing-derived — the whole block sits outside "counters" so the
            // exact-match gate never sees it.
            "stall".to_string(),
            Json::Obj(vec![
                (
                    "lambda_wm".to_string(),
                    Json::Arr(
                        (0..n_levels as u8)
                            .map(|l| {
                                let wm = stats
                                    .iter()
                                    .filter_map(|s| {
                                        s.registry.gauge(names::STALL_LAMBDA_WM, Some(l))
                                    })
                                    .fold(0.0f64, f64::max);
                                Json::Obj(vec![
                                    ("level".to_string(), Json::UInt(l as u64)),
                                    ("lambda_wm".to_string(), Json::Num(wm)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "windows".to_string(),
                    Json::UInt(sum_counter(names::STALL_WINDOWS)),
                ),
            ]),
        ),
        (
            "timings".to_string(),
            Json::Obj(vec![
                ("wall_s".to_string(), Json::Num(wall_s)),
                ("busy".to_string(), quantile_json(&busy)),
                ("wait".to_string(), quantile_json(&wait)),
                // Throughput view of the counters: aggregate and the
                // per-rank `elem_ops_per_sec` gauges stamped by RankStats.
                // Timing-derived, so deliberately *not* under "counters".
                (
                    "elem_ops_per_sec".to_string(),
                    Json::Num(if busy.sum > 0.0 {
                        sum_counter(names::ELEM_OPS) as f64 / busy.sum
                    } else {
                        0.0
                    }),
                ),
                (
                    "elem_ops_per_sec_per_rank".to_string(),
                    Json::Arr(
                        stats
                            .iter()
                            .map(|s| {
                                Json::Num(
                                    s.registry
                                        .gauge(names::ELEM_OPS_PER_SEC, None)
                                        .unwrap_or(0.0),
                                )
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn host_json() -> Json {
    Json::Obj(vec![
        ("os".to_string(), Json::str(std::env::consts::OS)),
        ("arch".to_string(), Json::str(std::env::consts::ARCH)),
        (
            "cpus".to_string(),
            Json::UInt(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(0),
            ),
        ),
        // SIMD provenance: which vector extensions the host advertises and
        // which stiffness-kernel variant was actually dispatched for this
        // document. Timings produced by different kernels are not
        // comparable even on identical hardware (e.g. `LTS_SIMD=scalar`).
        ("features".to_string(), Json::str(simd::cpu_features())),
        (
            "kernel_variant".to_string(),
            Json::str(simd::active().name()),
        ),
    ])
}

/// Run the matrix and build the `BENCH_lts.json` document.
pub fn run_suite(smoke: bool) -> Json {
    let scenarios = matrix(smoke);
    let mut out = Vec::with_capacity(scenarios.len());
    for sc in &scenarios {
        eprintln!("# lts-profile: {}", sc.id());
        out.push(run_scenario(sc));
    }
    Json::Obj(vec![
        ("schema".to_string(), Json::str(SCHEMA)),
        ("smoke".to_string(), Json::Bool(smoke)),
        ("host".to_string(), host_json()),
        ("scenarios".to_string(), Json::Arr(out)),
    ])
}

const COUNTER_KEYS: [&str; 4] = ["elem_ops", "msgs_sent", "dofs_sent", "exchanges"];

/// Structural check of a BENCH document. Returns the scenario count.
pub fn validate_bench(doc: &Json) -> Result<usize, String> {
    if doc.get("schema").and_then(|s| s.as_str()) != Some(SCHEMA) {
        return Err(format!("schema field missing or not {SCHEMA:?}"));
    }
    doc.get("host")
        .and_then(|h| h.get("os"))
        .and_then(|o| o.as_str())
        .ok_or("missing host.os")?;
    let scenarios = doc
        .get("scenarios")
        .and_then(|s| s.as_arr())
        .ok_or("missing scenarios array")?;
    if scenarios.is_empty() {
        return Err("scenarios array is empty".to_string());
    }
    for (i, sc) in scenarios.iter().enumerate() {
        let id = sc
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("scenario {i}: missing id"))?;
        for key in ["ranks", "elements", "steps", "n_levels"] {
            sc.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("scenario {id}: missing {key}"))?;
        }
        let counters = sc
            .get("counters")
            .ok_or_else(|| format!("scenario {id}: missing counters"))?;
        for key in COUNTER_KEYS {
            counters
                .get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("scenario {id}: missing counter {key}"))?;
        }
        sc.get("lambda")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("scenario {id}: missing lambda array"))?;
        let timings = sc
            .get("timings")
            .ok_or_else(|| format!("scenario {id}: missing timings"))?;
        timings
            .get("wall_s")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("scenario {id}: missing timings.wall_s"))?;
        for h in ["busy", "wait"] {
            let hist = timings
                .get(h)
                .ok_or_else(|| format!("scenario {id}: missing timings.{h}"))?;
            for q in ["p50", "p95", "p99"] {
                hist.get(q)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("scenario {id}: missing timings.{h}.{q}"))?;
            }
        }
    }
    Ok(scenarios.len())
}

/// Describe a host mismatch between two BENCH documents, if any. Counters
/// stay comparable across hosts, wall-clock does not — the `compare` CLI
/// warns with this so a stale or foreign host record is surfaced instead
/// of silently gating timings against an incomparable machine.
pub fn host_mismatch(baseline: &Json, current: &Json) -> Option<String> {
    let field = |doc: &Json, key: &str| -> String {
        doc.get("host")
            .and_then(|h| h.get(key))
            .map(|v| v.render())
            .unwrap_or_else(|| "?".to_string())
    };
    for key in ["os", "arch", "cpus"] {
        let b = field(baseline, key);
        let c = field(current, key);
        if b != c {
            return Some(format!("host.{key} differs: baseline {b}, current {c}"));
        }
    }
    None
}

/// Describe a SIMD kernel-variant mismatch between two BENCH documents, if
/// any. Like [`host_mismatch`] this only invalidates wall-clock gates —
/// counters are variant-independent by the bitwise-identity contract — but
/// a baseline recorded with `avx512f` must not gate timings of a `scalar`
/// run (or vice versa), and a baseline predating the `kernel_variant`
/// field should be flagged as stale rather than silently trusted.
pub fn kernel_variant_mismatch(baseline: &Json, current: &Json) -> Option<String> {
    let field = |doc: &Json, key: &str| -> String {
        doc.get("host")
            .and_then(|h| h.get(key))
            .map(|v| v.render())
            .unwrap_or_else(|| "?".to_string())
    };
    for key in ["kernel_variant", "features"] {
        let b = field(baseline, key);
        let c = field(current, key);
        if b != c {
            return Some(format!("host.{key} differs: baseline {b}, current {c}"));
        }
    }
    None
}

fn index_by_id(doc: &Json) -> Vec<(&str, &Json)> {
    doc.get("scenarios")
        .and_then(|s| s.as_arr())
        .map(|arr| {
            arr.iter()
                .filter_map(|sc| sc.get("id").and_then(|v| v.as_str()).map(|id| (id, sc)))
                .collect()
        })
        .unwrap_or_default()
}

/// `bench-compare`: check `current` against `baseline`. Scenarios are
/// intersected by id; counters must match **exactly**, `wall_s` may regress
/// by at most `timing_tol` (relative) when `check_timings` is set. Returns
/// the list of failures — empty means the gate passes.
pub fn compare_bench(
    baseline: &Json,
    current: &Json,
    timing_tol: f64,
    check_timings: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    let base = index_by_id(baseline);
    let cur = index_by_id(current);
    let mut compared = 0usize;
    for (id, c) in &cur {
        let Some((_, b)) = base.iter().find(|(bid, _)| bid == id) else {
            continue;
        };
        compared += 1;
        for key in ["elements", "steps", "n_levels"] {
            let bv = b.get(key).and_then(|v| v.as_u64());
            let cv = c.get(key).and_then(|v| v.as_u64());
            if bv != cv {
                failures.push(format!("{id}: {key} changed {bv:?} -> {cv:?}"));
            }
        }
        for key in COUNTER_KEYS {
            let bv = b
                .get("counters")
                .and_then(|o| o.get(key))
                .and_then(|v| v.as_u64());
            let cv = c
                .get("counters")
                .and_then(|o| o.get(key))
                .and_then(|v| v.as_u64());
            if bv != cv {
                failures.push(format!(
                    "{id}: counter {key} drifted {} -> {}",
                    bv.map_or("missing".to_string(), |v| v.to_string()),
                    cv.map_or("missing".to_string(), |v| v.to_string()),
                ));
            }
        }
        if check_timings {
            let bw = b
                .get("timings")
                .and_then(|t| t.get("wall_s"))
                .and_then(|v| v.as_f64());
            let cw = c
                .get("timings")
                .and_then(|t| t.get("wall_s"))
                .and_then(|v| v.as_f64());
            if let (Some(bw), Some(cw)) = (bw, cw) {
                if cw > bw * (1.0 + timing_tol) {
                    failures.push(format!(
                        "{id}: wall_s regressed {bw:.4}s -> {cw:.4}s (tol {:.0}%)",
                        100.0 * timing_tol
                    ));
                }
            } else {
                failures.push(format!("{id}: wall_s missing on one side"));
            }
        }
    }
    if compared == 0 {
        failures.push("no common scenario ids between baseline and current".to_string());
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            mesh: "trench",
            strategy: "scotch",
            ranks: 2,
            elements: 64,
            steps: 2,
            order: 1,
            seed: 1,
            overlap: false,
        }
    }

    fn tiny_doc() -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            ("smoke".to_string(), Json::Bool(true)),
            ("host".to_string(), host_json()),
            (
                "scenarios".to_string(),
                Json::Arr(vec![run_scenario(&tiny())]),
            ),
        ])
    }

    #[test]
    fn smoke_matrix_is_subset_of_full() {
        let full = matrix(false);
        let smoke = matrix(true);
        // 2 meshes × 4 strategies × {2,4,8} ranks, plus one r8 overlap
        // twin per mesh × strategy, plus the order-4 block (r2/r8/r8-ov)
        // on each of the four benchmark meshes
        assert_eq!(full.len(), 2 * 4 * 3 + 2 * 4 + 4 * 3);
        assert!(full.iter().any(|s| s.overlap && s.ranks == 8));
        // every benchmark mesh has order-4 coverage, including an overlap
        // twin, and the order is encoded in the id before the __ov suffix
        for mesh in ["trench", "trench-big", "embedding", "crust"] {
            assert!(full
                .iter()
                .any(|s| s.mesh == mesh && s.order == 4 && !s.overlap));
            let ov = full
                .iter()
                .find(|s| s.mesh == mesh && s.order == 4 && s.overlap)
                .expect("p4 overlap twin");
            assert_eq!(ov.id(), format!("{mesh}__scotch__r8__p4__ov"));
            assert_eq!(ov.steps, P4_STEPS, "p4 scenarios cap steps");
        }
        assert!(
            smoke.iter().any(|s| s.order == 4),
            "smoke must exercise the order-4 SIMD path"
        );
        assert!(!smoke.is_empty());
        for sc in &smoke {
            let twin = full
                .iter()
                .find(|f| f.id() == sc.id())
                .expect("smoke scenario present in full matrix");
            assert_eq!(twin, sc, "smoke parameters must match the full matrix");
        }
        let mut ids: Vec<String> = full.iter().map(|s| s.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), full.len(), "scenario ids must be unique");
    }

    #[test]
    fn scenario_reports_stall_watermark_and_windows() {
        let a = run_scenario(&tiny());
        let stall = a.get("stall").expect("stall block");
        let wm = stall.get("lambda_wm").and_then(|v| v.as_arr()).unwrap();
        assert!(!wm.is_empty());
        for e in wm {
            assert!(e.get("level").and_then(|v| v.as_u64()).is_some());
            let v = e.get("lambda_wm").and_then(|v| v.as_f64()).unwrap();
            assert!(v.is_finite() && v >= 0.0);
        }
        // window count is exchange-derived: identical across reruns
        let b = run_scenario(&tiny());
        assert_eq!(
            stall.get("windows").and_then(|v| v.as_u64()),
            b.get("stall")
                .unwrap()
                .get("windows")
                .and_then(|v| v.as_u64())
        );
        assert!(stall.get("windows").and_then(|v| v.as_u64()).unwrap() > 0);
    }

    #[test]
    fn counters_are_deterministic_across_runs() {
        let a = run_scenario(&tiny());
        let b = run_scenario(&tiny());
        for key in COUNTER_KEYS {
            let av = a.get("counters").unwrap().get(key).unwrap().as_u64();
            let bv = b.get("counters").unwrap().get(key).unwrap().as_u64();
            assert_eq!(av, bv, "counter {key} must be timing-independent");
            assert!(av.unwrap() > 0 || key == "dofs_sent", "counter {key} zero");
        }
    }

    #[test]
    fn generated_document_validates_and_compares_clean() {
        let doc = tiny_doc();
        let n = validate_bench(&doc).expect("valid");
        assert_eq!(n, 1);
        // round-trip through the renderer + parser, as bench-compare does
        let reparsed = Json::parse(&doc.render_pretty()).expect("round-trip");
        assert_eq!(validate_bench(&reparsed), Ok(1));
        let failures = compare_bench(&doc, &reparsed, 0.0, false);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn compare_detects_counter_drift_and_timing_regression() {
        let doc = tiny_doc();
        let mut tampered = Json::parse(&doc.render()).unwrap();
        // bump elem_ops by one in the reparsed copy
        if let Json::Obj(fields) = &mut tampered {
            let scenarios = fields.iter_mut().find(|(k, _)| k == "scenarios").unwrap();
            if let Json::Arr(arr) = &mut scenarios.1 {
                if let Json::Obj(sc) = &mut arr[0] {
                    let counters = sc.iter_mut().find(|(k, _)| k == "counters").unwrap();
                    if let Json::Obj(cs) = &mut counters.1 {
                        let eo = cs.iter_mut().find(|(k, _)| k == "elem_ops").unwrap();
                        if let Json::UInt(v) = &mut eo.1 {
                            *v += 1;
                        }
                    }
                    let timings = sc.iter_mut().find(|(k, _)| k == "timings").unwrap();
                    if let Json::Obj(ts) = &mut timings.1 {
                        let w = ts.iter_mut().find(|(k, _)| k == "wall_s").unwrap();
                        w.1 = Json::Num(1e9);
                    }
                }
            }
        }
        let drift_only = compare_bench(&doc, &tampered, 0.5, false);
        assert_eq!(drift_only.len(), 1, "{drift_only:?}");
        assert!(drift_only[0].contains("elem_ops"), "{drift_only:?}");
        let with_timings = compare_bench(&doc, &tampered, 0.5, true);
        assert_eq!(with_timings.len(), 2, "{with_timings:?}");
        assert!(with_timings[1].contains("regressed"), "{with_timings:?}");
    }

    #[test]
    fn host_block_records_simd_and_variant_mismatch_is_detected() {
        let doc = tiny_doc();
        let host = doc.get("host").unwrap();
        assert!(host.get("features").and_then(|v| v.as_str()).is_some());
        assert_eq!(
            host.get("kernel_variant").and_then(|v| v.as_str()),
            Some(simd::active().name())
        );
        assert!(kernel_variant_mismatch(&doc, &doc).is_none());
        // a baseline recorded under a different (e.g. forced-scalar) kernel
        // must be flagged against the current run
        let mut tampered = Json::parse(&doc.render()).unwrap();
        if let Json::Obj(fields) = &mut tampered {
            let host = fields.iter_mut().find(|(k, _)| k == "host").unwrap();
            if let Json::Obj(hs) = &mut host.1 {
                let kv = hs.iter_mut().find(|(k, _)| k == "kernel_variant").unwrap();
                kv.1 = Json::str("some-other-kernel");
            }
        }
        let m = kernel_variant_mismatch(&tampered, &doc).expect("mismatch");
        assert!(m.contains("kernel_variant"), "{m}");
        // a legacy baseline predating the field reads as stale, not equal
        if let Json::Obj(fields) = &mut tampered {
            let host = fields.iter_mut().find(|(k, _)| k == "host").unwrap();
            if let Json::Obj(hs) = &mut host.1 {
                hs.retain(|(k, _)| k != "kernel_variant" && k != "features");
            }
        }
        assert!(kernel_variant_mismatch(&tampered, &doc).is_some());
    }

    #[test]
    fn compare_fails_on_disjoint_documents() {
        let doc = tiny_doc();
        let empty = Json::Obj(vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            ("scenarios".to_string(), Json::Arr(vec![])),
        ]);
        let failures = compare_bench(&doc, &empty, 0.5, false);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("no common scenario"), "{failures:?}");
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_bench(&Json::Obj(vec![])).is_err());
        let wrong_schema = Json::Obj(vec![("schema".to_string(), Json::str("nope"))]);
        assert!(validate_bench(&wrong_schema).is_err());
        let mut doc = tiny_doc();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "host");
        }
        assert!(validate_bench(&doc).unwrap_err().contains("host"));
    }
}
