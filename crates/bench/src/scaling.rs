//! Shared driver for the strong-scaling figures (Figs. 9, 10, 11, 13).
//!
//! For each node count the mesh is partitioned per strategy, the cluster
//! model evaluates the LTS cycle time, and performance is normalised to the
//! non-LTS run at the first node count — exactly the paper's presentation
//! ("normalized performance" = total speed-up over the reference code).

use lts_mesh::BenchmarkMesh;
use lts_partition::{partition_mesh, Strategy};
use lts_perfmodel::cluster::{simulate, MachineModel, PartitionShape};

/// One scaling curve: normalized performance per node count.
#[derive(Debug, Clone)]
pub struct Curve {
    pub label: String,
    pub values: Vec<f64>,
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct ScalingFigure {
    pub nodes: Vec<usize>,
    pub curves: Vec<Curve>,
    /// Baseline (non-LTS at `nodes[0]`) cycle seconds, for reference.
    pub baseline_cycle: f64,
}

/// Run the experiment. `machine` evaluates the strategies; the baseline for
/// normalisation is always the **CPU** non-LTS run at `nodes[0]` (as in the
/// paper, where even GPU results are shown relative to the CPU reference).
pub fn run(
    b: &BenchmarkMesh,
    nodes: &[usize],
    strategies: &[Strategy],
    machine: &MachineModel,
    seed: u64,
) -> ScalingFigure {
    // the CPU reference is scaled to the same mesh as `machine`
    let cpu = MachineModel::cpu_node().scaled(b.mesh.n_elems(), b.kind.paper_elements());
    // baseline: non-LTS CPU at the first node count with the work-balanced
    // (SCOTCH) partition
    let base_part = partition_mesh(&b.mesh, &b.levels, nodes[0], Strategy::ScotchBaseline, seed);
    let base_shape = PartitionShape::new(&b.mesh, &b.levels, &base_part, nodes[0]);
    let baseline_cycle = simulate(&base_shape, &cpu).global_cycle;

    let mut curves: Vec<Curve> = Vec::new();
    // ideal LTS: model speed-up × linear scaling, anchored at this machine's
    // own non-LTS performance at the first node count (as in the paper's GPU
    // panel, where the ideal curve starts at the GPU reference)
    let speedup = b.levels.speedup_model().speedup();
    let anchor_part = partition_mesh(&b.mesh, &b.levels, nodes[0], Strategy::ScotchBaseline, seed);
    let anchor_shape = PartitionShape::new(&b.mesh, &b.levels, &anchor_part, nodes[0]);
    let anchor = baseline_cycle / simulate(&anchor_shape, machine).global_cycle;
    curves.push(Curve {
        label: "LTS ideal".into(),
        values: nodes
            .iter()
            .map(|&n| anchor * speedup * n as f64 / nodes[0] as f64)
            .collect(),
    });
    for &s in strategies {
        let mut values = Vec::with_capacity(nodes.len());
        for &n in nodes {
            let part = partition_mesh(&b.mesh, &b.levels, n, s, seed);
            let shape = PartitionShape::new(&b.mesh, &b.levels, &part, n);
            let r = simulate(&shape, machine);
            values.push(baseline_cycle / r.lts_cycle);
        }
        curves.push(Curve {
            label: s.name(),
            values,
        });
    }
    // non-LTS curve on the same machine
    let mut values = Vec::with_capacity(nodes.len());
    for &n in nodes {
        let part = partition_mesh(&b.mesh, &b.levels, n, Strategy::ScotchBaseline, seed);
        let shape = PartitionShape::new(&b.mesh, &b.levels, &part, n);
        let r = simulate(&shape, machine);
        values.push(baseline_cycle / r.global_cycle);
    }
    curves.push(Curve {
        label: "non-LTS".into(),
        values,
    });
    ScalingFigure {
        nodes: nodes.to_vec(),
        curves,
        baseline_cycle,
    }
}

/// Print the figure as a table plus scaling efficiencies.
pub fn print(fig: &ScalingFigure, title: &str) {
    println!("{title}");
    let mut header = vec!["nodes".to_string()];
    header.extend(fig.curves.iter().map(|c| c.label.clone()));
    let mut widths: Vec<usize> = header.iter().map(|h| h.len().max(9)).collect();
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(widths) {
            s.push_str(&format!("{:>width$}  ", c, width = w));
        }
        println!("{}", s.trim_end());
    };
    line(&header, &widths);
    for (i, &n) in fig.nodes.iter().enumerate() {
        let mut row = vec![n.to_string()];
        row.extend(fig.curves.iter().map(|c| format!("{:.1}", c.values[i])));
        line(&row, &widths);
        let _ = &mut widths;
    }
    // scaling efficiency: value at last node count vs linear scaling of the
    // first point (and vs LTS-ideal for LTS curves)
    println!(
        "\nscaling efficiencies ({} → {} nodes):",
        fig.nodes[0],
        *fig.nodes.last().unwrap()
    );
    let factor = *fig.nodes.last().unwrap() as f64 / fig.nodes[0] as f64;
    let ideal_last = fig.curves[0].values.last().unwrap();
    for c in &fig.curves {
        let first = c.values[0];
        let last = *c.values.last().unwrap();
        if c.label == "LTS ideal" {
            continue;
        }
        let self_eff = 100.0 * last / (first * factor);
        let vs_ideal = 100.0 * last / ideal_last;
        println!(
            "  {:<12} self-relative {:>5.0}%   vs LTS-ideal {:>5.0}%",
            c.label, self_eff, vs_ideal
        );
    }
}
