//! Ablation bench for the paper's Sec. IV-D optimization: grouping the nodal
//! DOFs by p-level. The grouped layout turns every per-level index set into
//! a contiguous run, so sub-step updates stream through memory instead of
//! striding through the global numbering.

use criterion::{criterion_group, criterion_main, Criterion};
use lts_core::{LtsNewmark, LtsSetup};
use lts_mesh::{BenchmarkMesh, MeshKind};
use lts_sem::gll::cfl_dt_scale;
use lts_sem::AcousticOperator;
use std::hint::black_box;

fn bench_grouping(c: &mut Criterion) {
    let b = BenchmarkMesh::build(MeshKind::Trench, 4_000);
    let order = 4;
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);

    let op0 = AcousticOperator::new(&b.mesh, order);
    let setup0 = LtsSetup::new(&op0, &b.levels.elem_level);
    let n = op0.dofmap.n_nodes();

    let mut op1 = AcousticOperator::new(&b.mesh, order);
    let perm = setup0.grouping_permutation();
    op1.set_permutation(&perm);
    let setup1 = LtsSetup::new(&op1, &b.levels.elem_level);

    let u0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.003).sin()).collect();

    let mut g = c.benchmark_group("plevel_grouping");
    g.sample_size(10);
    g.bench_function("ungrouped", |bch| {
        let mut u = u0.clone();
        let mut v = vec![0.0; n];
        let mut lts = LtsNewmark::new(&op0, &setup0, dt);
        bch.iter(|| lts.step(black_box(&mut u), &mut v, 0.0, &[]))
    });
    g.bench_function("grouped", |bch| {
        let mut u: Vec<f64> = vec![0.0; n];
        for (old, &new) in perm.iter().enumerate() {
            u[new as usize] = u0[old];
        }
        let mut v = vec![0.0; n];
        let mut lts = LtsNewmark::new(&op1, &setup1, dt);
        bch.iter(|| lts.step(black_box(&mut u), &mut v, 0.0, &[]))
    });
    g.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
