//! Criterion benches: partitioner throughput per strategy (the cost a user
//! pays once per mesh, amortised over the whole simulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lts_mesh::{BenchmarkMesh, MeshKind};
use lts_partition::{partition_mesh, Strategy};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let b = BenchmarkMesh::build(MeshKind::Trench, 10_000);
    let k = 8;
    let mut g = c.benchmark_group("partition_10k_k8");
    g.sample_size(10);
    let mut strategies = Strategy::paper_set();
    strategies.push(Strategy::ScotchBaseline);
    for s in strategies {
        g.bench_with_input(BenchmarkId::new("strategy", s.name()), &s, |bch, &s| {
            bch.iter(|| black_box(partition_mesh(&b.mesh, &b.levels, k, s, 1)))
        });
    }
    g.finish();
}

fn bench_part_counts(c: &mut Criterion) {
    let b = BenchmarkMesh::build(MeshKind::Trench, 10_000);
    let mut g = c.benchmark_group("scotch_p_by_k");
    g.sample_size(10);
    for k in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |bch, &k| {
            bch.iter(|| black_box(partition_mesh(&b.mesh, &b.levels, k, Strategy::ScotchP, 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_part_counts);
criterion_main!(benches);
