//! Criterion benches: SEM operator applications (full and masked) — the
//! inner kernels whose cost the Eq. 9 model counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lts_core::{LtsSetup, Operator};
use lts_mesh::{BenchmarkMesh, MeshKind};
use lts_sem::{AcousticOperator, ElasticOperator};
use std::hint::black_box;

fn bench_acoustic_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("acoustic_apply");
    g.sample_size(20);
    for order in [2usize, 4] {
        let b = BenchmarkMesh::build(MeshKind::Trench, 1_000);
        let op = AcousticOperator::new(&b.mesh, order);
        let n = op.dofmap.n_nodes();
        let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut out = vec![0.0; n];
        g.bench_with_input(BenchmarkId::new("order", order), &order, |bch, _| {
            bch.iter(|| {
                op.apply(black_box(&u), &mut out);
                black_box(&out);
            })
        });
    }
    g.finish();
}

fn bench_masked_vs_full(c: &mut Criterion) {
    // the masked product over the fine levels should cost proportionally to
    // the fine element counts, not the mesh size
    let b = BenchmarkMesh::build(MeshKind::Trench, 2_000);
    let op = AcousticOperator::new(&b.mesh, 4);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let n = op.dofmap.n_nodes();
    let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut out = vec![0.0; n];
    let mut g = c.benchmark_group("masked_apply");
    g.sample_size(20);
    g.bench_function("full", |bch| {
        bch.iter(|| {
            op.apply(black_box(&u), &mut out);
            black_box(&out);
        })
    });
    for l in 0..setup.n_levels {
        g.bench_with_input(BenchmarkId::new("level", l), &l, |bch, &l| {
            bch.iter(|| {
                op.apply_masked(
                    black_box(&u),
                    &mut out,
                    &setup.elems[l],
                    &setup.dof_level,
                    l as u8,
                );
                black_box(&out);
            })
        });
    }
    g.finish();
}

fn bench_elastic_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("elastic_apply");
    g.sample_size(15);
    let b = BenchmarkMesh::build(MeshKind::Crust, 600);
    let op = ElasticOperator::poisson(&b.mesh, 4);
    let n = 3 * op.dofmap.n_nodes();
    let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut out = vec![0.0; n];
    g.bench_function("order4", |bch| {
        bch.iter(|| {
            op.apply(black_box(&u), &mut out);
            black_box(&out);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_acoustic_apply,
    bench_masked_vs_full,
    bench_elastic_apply
);
criterion_main!(benches);
