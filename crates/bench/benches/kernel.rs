//! Criterion microbenches of the allocation-free SEM hot path: the
//! sum-factorized element stiffness kernel across orders, the masked
//! product serial vs the colored `apply_masked_threads` at 2 and 4 workers,
//! and the paper's Sec. V cache-utilization sweep — element throughput of
//! the scalar vs batched-SIMD stiffness product at orders 1–4
//! (`simd_stiffness/p{order}/{variant}`, reported in elements/second).
//!
//! Every threaded or vectorized variant is asserted **bitwise identical**
//! to the serial scalar path before the first timed iteration — a
//! wrong-but-fast kernel never gets a number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lts_core::{LtsSetup, Operator, Workspace};
use lts_mesh::{BenchmarkMesh, Levels, MeshKind};
use lts_sem::gll::GllBasis;
use lts_sem::kernel::scalar_stiffness;
use lts_sem::simd::{cpu_features, supported_variants, ForceVariant, KernelVariant};
use lts_sem::{AcousticOperator, ElasticOperator};
use std::hint::black_box;

fn bench_scalar_stiffness(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalar_stiffness");
    g.sample_size(30);
    for order in [2usize, 4, 6] {
        let basis = GllBasis::new(order);
        let npe = (order + 1).pow(3);
        let loc: Vec<f64> = (0..npe).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut tmp = vec![0.0; npe];
        let mut der = vec![0.0; npe];
        g.bench_with_input(BenchmarkId::new("order", order), &order, |bch, _| {
            bch.iter(|| {
                scalar_stiffness(
                    &basis,
                    1.0,
                    0.9,
                    1.1,
                    2.0,
                    black_box(&loc),
                    &mut tmp,
                    &mut der,
                );
                black_box(&der);
            })
        });
    }
    g.finish();
}

fn bench_masked_threads(c: &mut Criterion) {
    let b = BenchmarkMesh::build(MeshKind::Trench, 2_000);
    let op = AcousticOperator::new(&b.mesh, 4);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let n = Operator::ndof(&op);
    let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    // the busiest masked product: the level with the most elements
    let level = (0..setup.n_levels)
        .max_by_key(|&l| setup.elems[l].len())
        .unwrap();
    let elems = &setup.elems[level];

    let mut reference = vec![0.0; n];
    let mut ws_serial = Workspace::new();
    op.apply_masked_ws(
        &u,
        &mut reference,
        elems,
        &setup.dof_level,
        level as u8,
        &mut ws_serial,
    );

    let mut g = c.benchmark_group("masked_apply_threads");
    g.sample_size(20);
    for threads in [1usize, 2, 4] {
        let mut ws = Workspace::new();
        let mut out = vec![0.0; n];
        op.apply_masked_threads(
            &u,
            &mut out,
            elems,
            &setup.dof_level,
            level as u8,
            &mut ws,
            threads,
        );
        for i in 0..n {
            assert_eq!(
                out[i].to_bits(),
                reference[i].to_bits(),
                "threads={threads} must be bitwise identical before timing"
            );
        }
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bch, &t| {
            bch.iter(|| {
                op.apply_masked_threads(
                    black_box(&u),
                    &mut out,
                    elems,
                    &setup.dof_level,
                    level as u8,
                    &mut ws,
                    t,
                );
                black_box(&out);
            })
        });
    }
    g.finish();
}

/// Sec. V cache-utilization sweep: serial masked stiffness product over a
/// single-level trench mesh at orders 1–4, once per kernel variant the
/// host supports. Criterion's `Throughput::Elements` turns the measured
/// time directly into `elem_ops_per_sec`; the acceptance target is the
/// widest variant reaching ≥5× the scalar throughput at p=4.
fn bench_simd_stiffness(c: &mut Criterion) {
    let b = BenchmarkMesh::build(MeshKind::Trench, 1_000);
    // one level: the sweep times raw element throughput, not LTS masking
    let levels = Levels::assign(&b.mesh, 0.5, 1);
    eprintln!("# host features: {}", cpu_features());
    let mut g = c.benchmark_group("simd_stiffness");
    g.sample_size(20);
    for order in 1usize..=4 {
        let op = AcousticOperator::new(&b.mesh, order);
        let setup = LtsSetup::new(&op, &levels.elem_level);
        let elems = &setup.elems[0];
        let n = Operator::ndof(&op);
        let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut reference = vec![0.0; n];
        {
            let _sc = ForceVariant::new(KernelVariant::Scalar);
            let mut ws = Workspace::new();
            op.apply_masked_ws(&u, &mut reference, elems, &setup.dof_level, 0, &mut ws);
        }
        g.throughput(Throughput::Elements(elems.len() as u64));
        for v in supported_variants() {
            let _force = ForceVariant::new(v);
            let mut ws = Workspace::new();
            let mut out = vec![0.0; n];
            op.apply_masked_ws(&u, &mut out, elems, &setup.dof_level, 0, &mut ws);
            for i in 0..n {
                assert_eq!(
                    out[i].to_bits(),
                    reference[i].to_bits(),
                    "{} must be bitwise identical to scalar before timing",
                    v.name()
                );
            }
            g.bench_with_input(
                BenchmarkId::new(format!("p{order}"), v.name()),
                &order,
                |bch, _| {
                    bch.iter(|| {
                        op.apply_masked_ws(
                            black_box(&u),
                            &mut out,
                            elems,
                            &setup.dof_level,
                            0,
                            &mut ws,
                        );
                        black_box(&out);
                    })
                },
            );
        }
    }
    g.finish();
}

/// The elastic sibling at the paper's production order (p=4) only — the
/// elastic batch moves 3 fields + 9 gradients per node, so this is the
/// memory-heaviest point of the sweep.
fn bench_simd_elastic(c: &mut Criterion) {
    let b = BenchmarkMesh::build(MeshKind::Trench, 500);
    let levels = Levels::assign(&b.mesh, 0.5, 1);
    let op = ElasticOperator::poisson(&b.mesh, 4);
    let setup = LtsSetup::new(&op, &levels.elem_level);
    let elems = &setup.elems[0];
    let n = Operator::ndof(&op);
    let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut reference = vec![0.0; n];
    {
        let _sc = ForceVariant::new(KernelVariant::Scalar);
        let mut ws = Workspace::new();
        op.apply_masked_ws(&u, &mut reference, elems, &setup.dof_level, 0, &mut ws);
    }
    let mut g = c.benchmark_group("simd_stiffness_elastic");
    g.sample_size(20);
    g.throughput(Throughput::Elements(elems.len() as u64));
    for v in supported_variants() {
        let _force = ForceVariant::new(v);
        let mut ws = Workspace::new();
        let mut out = vec![0.0; n];
        op.apply_masked_ws(&u, &mut out, elems, &setup.dof_level, 0, &mut ws);
        for i in 0..n {
            assert_eq!(
                out[i].to_bits(),
                reference[i].to_bits(),
                "elastic {} must be bitwise identical to scalar before timing",
                v.name()
            );
        }
        g.bench_with_input(BenchmarkId::new("p4", v.name()), &v, |bch, _| {
            bch.iter(|| {
                op.apply_masked_ws(black_box(&u), &mut out, elems, &setup.dof_level, 0, &mut ws);
                black_box(&out);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scalar_stiffness,
    bench_masked_threads,
    bench_simd_stiffness,
    bench_simd_elastic
);
criterion_main!(benches);
