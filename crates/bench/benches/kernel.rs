//! Criterion microbenches of the allocation-free SEM hot path: the
//! sum-factorized element stiffness kernel across orders, and the masked
//! product serial vs the colored `apply_masked_threads` at 2 and 4 workers.
//!
//! Every threaded variant is asserted **bitwise identical** to the serial
//! path before the first timed iteration — a wrong-but-fast kernel never
//! gets a number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lts_core::{LtsSetup, Operator, Workspace};
use lts_mesh::{BenchmarkMesh, MeshKind};
use lts_sem::gll::GllBasis;
use lts_sem::kernel::scalar_stiffness;
use lts_sem::AcousticOperator;
use std::hint::black_box;

fn bench_scalar_stiffness(c: &mut Criterion) {
    let mut g = c.benchmark_group("scalar_stiffness");
    g.sample_size(30);
    for order in [2usize, 4, 6] {
        let basis = GllBasis::new(order);
        let npe = (order + 1).pow(3);
        let loc: Vec<f64> = (0..npe).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut tmp = vec![0.0; npe];
        let mut der = vec![0.0; npe];
        g.bench_with_input(BenchmarkId::new("order", order), &order, |bch, _| {
            bch.iter(|| {
                scalar_stiffness(
                    &basis,
                    1.0,
                    0.9,
                    1.1,
                    2.0,
                    black_box(&loc),
                    &mut tmp,
                    &mut der,
                );
                black_box(&der);
            })
        });
    }
    g.finish();
}

fn bench_masked_threads(c: &mut Criterion) {
    let b = BenchmarkMesh::build(MeshKind::Trench, 2_000);
    let op = AcousticOperator::new(&b.mesh, 4);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let n = Operator::ndof(&op);
    let u: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    // the busiest masked product: the level with the most elements
    let level = (0..setup.n_levels)
        .max_by_key(|&l| setup.elems[l].len())
        .unwrap();
    let elems = &setup.elems[level];

    let mut reference = vec![0.0; n];
    let mut ws_serial = Workspace::new();
    op.apply_masked_ws(
        &u,
        &mut reference,
        elems,
        &setup.dof_level,
        level as u8,
        &mut ws_serial,
    );

    let mut g = c.benchmark_group("masked_apply_threads");
    g.sample_size(20);
    for threads in [1usize, 2, 4] {
        let mut ws = Workspace::new();
        let mut out = vec![0.0; n];
        op.apply_masked_threads(
            &u,
            &mut out,
            elems,
            &setup.dof_level,
            level as u8,
            &mut ws,
            threads,
        );
        for i in 0..n {
            assert_eq!(
                out[i].to_bits(),
                reference[i].to_bits(),
                "threads={threads} must be bitwise identical before timing"
            );
        }
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bch, &t| {
            bch.iter(|| {
                op.apply_masked_threads(
                    black_box(&u),
                    &mut out,
                    elems,
                    &setup.dof_level,
                    level as u8,
                    &mut ws,
                    t,
                );
                black_box(&out);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scalar_stiffness, bench_masked_threads);
criterion_main!(benches);
