//! Criterion benches: cost of one *simulated time unit* — LTS-Newmark at the
//! coarse `Δt` vs classic Newmark at `Δt/p_max` (the paper's performance
//! metric is wall-clock per simulated second).

use criterion::{criterion_group, criterion_main, Criterion};
use lts_core::{LtsNewmark, LtsSetup, Newmark};
use lts_mesh::{BenchmarkMesh, MeshKind};
use lts_sem::gll::cfl_dt_scale;
use lts_sem::AcousticOperator;
use std::hint::black_box;

fn bench_per_simulated_time(c: &mut Criterion) {
    let b = BenchmarkMesh::build(MeshKind::Trench, 2_000);
    let order = 4;
    let op = AcousticOperator::new(&b.mesh, order);
    let setup = LtsSetup::new(&op, &b.levels.elem_level);
    let n = op.dofmap.n_nodes();
    let dt = b.levels.dt_global * cfl_dt_scale(order, 3);
    let p_max = 1usize << (setup.n_levels - 1);
    let u0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.002).sin()).collect();

    let mut g = c.benchmark_group("per_global_dt");
    g.sample_size(10);
    g.bench_function("lts_newmark", |bch| {
        let mut u = u0.clone();
        let mut v = vec![0.0; n];
        let mut lts = LtsNewmark::new(&op, &setup, dt);
        bch.iter(|| {
            lts.step(black_box(&mut u), &mut v, 0.0, &[]);
        })
    });
    g.bench_function("newmark_at_dt_over_pmax", |bch| {
        let mut u = u0.clone();
        let mut v = vec![0.0; n];
        let mut nm = Newmark::new(&op, dt / p_max as f64);
        bch.iter(|| {
            for _ in 0..p_max {
                nm.step(black_box(&mut u), &mut v, 0.0, &[]);
            }
        })
    });
    g.finish();
}

fn bench_chain_step(c: &mut Criterion) {
    // pure time-stepping overhead without the SEM kernel cost
    use lts_core::Chain1d;
    let mut vel = vec![1.0; 4096];
    for v in vel.iter_mut().skip(3500) {
        *v = 4.0;
    }
    let chain = Chain1d::with_velocities(vel, 1.0);
    let (lv, dt) = chain.assign_levels(0.5, 3);
    let setup = LtsSetup::new(&chain, &lv);
    let n = 4097;
    let u0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut g = c.benchmark_group("chain1d_step");
    g.bench_function("lts", |bch| {
        let mut u = u0.clone();
        let mut v = vec![0.0; n];
        let mut lts = LtsNewmark::new(&chain, &setup, dt);
        bch.iter(|| lts.step(black_box(&mut u), &mut v, 0.0, &[]))
    });
    g.bench_function("newmark_fine", |bch| {
        let mut u = u0.clone();
        let mut v = vec![0.0; n];
        let mut nm = Newmark::new(&chain, dt / 4.0);
        bch.iter(|| {
            for _ in 0..4 {
                nm.step(black_box(&mut u), &mut v, 0.0, &[]);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_per_simulated_time, bench_chain_step);
criterion_main!(benches);
