//! Property-based tests of the partition quality metrics (Eq. 21) and the
//! deterministic exchange oracle.

use lts_mesh::{HexMesh, Levels};
use lts_partition::{exchange_oracle, load_imbalance};
use proptest::prelude::*;

/// Random synthetic level assignments (no mesh needed: Eq. 21 only reads
/// `elem_level`).
fn levels_strategy() -> impl Strategy<Value = Levels> {
    prop::collection::vec(0u8..4, 4..64).prop_map(|elem_level| {
        let n_levels = *elem_level.iter().max().unwrap() as usize + 1;
        Levels {
            elem_level,
            n_levels,
            dt_global: 1.0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 21 is a percentage: always within [0, 100], total and per level.
    #[test]
    fn imbalance_is_a_percentage(lv in levels_strategy(), seed in 0u64..1000) {
        let k = 2 + (seed as usize % 3);
        let part: Vec<u32> = (0..lv.elem_level.len())
            .map(|e| (((e as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed) % k as u64) as u32)
            .collect();
        let rep = load_imbalance(&lv, &part, k);
        prop_assert!((0.0..=100.0).contains(&rep.total_pct), "{}", rep.total_pct);
        for (l, &pct) in rep.per_level_pct.iter().enumerate() {
            prop_assert!((0.0..=100.0).contains(&pct), "level {}: {}", l, pct);
        }
    }

    /// Parts with element-for-element identical level multisets have exactly
    /// zero imbalance, total and per level.
    #[test]
    fn imbalance_zero_for_identical_parts(base in prop::collection::vec(0u8..4, 2..24),
                                          k in 2usize..5) {
        let mut elem_level = Vec::new();
        let mut part = Vec::new();
        for p in 0..k {
            elem_level.extend_from_slice(&base);
            part.extend(std::iter::repeat_n(p as u32, base.len()));
        }
        let n_levels = *base.iter().max().unwrap() as usize + 1;
        let lv = Levels { elem_level, n_levels, dt_global: 1.0 };
        let rep = load_imbalance(&lv, &part, k);
        prop_assert_eq!(rep.total_pct, 0.0);
        prop_assert!(rep.per_level_pct.iter().all(|&p| p == 0.0),
                     "{:?}", rep.per_level_pct);
        prop_assert!(rep.part_load.windows(2).all(|w| w[0] == w[1]));
    }

    /// The exchange oracle reports no traffic for an unsplit mesh, and its
    /// work terms match the LTS closed form `calls[l] = 2^l`.
    #[test]
    fn oracle_consistent_on_random_meshes(nx in 2usize..6, ny in 2usize..5, nz in 1usize..4,
                                          paint in 0usize..3) {
        let mut m = HexMesh::uniform(nx, ny, nz, 1.0, 1.0);
        if paint > 0 {
            let i1 = (paint).min(nx);
            m.paint_box((0, i1), (0, ny), (0, nz), 2.0, 1.0);
        }
        let lv = Levels::assign(&m, 0.5, 4);
        let single = vec![0u32; m.n_elems()];
        let o = exchange_oracle(&m, &lv, &single);
        prop_assert_eq!(o.total_dofs_sent(), 0);
        prop_assert_eq!(o.total_msgs_sent(), 0);
        for (l, &c) in o.calls.iter().enumerate() {
            prop_assert_eq!(c, 1u64 << l);
            prop_assert_eq!(o.elem_ops[l], c * o.elems[l]);
        }
        // splitting in two can only add traffic, never element work
        let split: Vec<u32> = (0..m.n_elems() as u32).map(|e| e % 2).collect();
        let o2 = exchange_oracle(&m, &lv, &split);
        prop_assert!(o2.total_dofs_sent() > 0);
        prop_assert_eq!(o2.elem_ops, o.elem_ops);
    }
}
