//! The multilevel hypergraph partitioner — the PaToH analogue.
//!
//! Heavy-connectivity matching coarsening, greedy initial bisections, FM
//! refinement with connectivity-1 gains and per-constraint balance, an
//! explicit rebalancing phase honouring the `final_imbal` tolerance, and
//! recursive bisection with net splitting for K parts.

use crate::hgraph::HGraph;
use crate::multilevel::names as vnames;
use crate::refine::{record_fm_pass, FmPassOutcome};
use lts_obs::MetricsRegistry;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;

/// Configuration of the hypergraph engine. `final_imbal` plays the role of
/// PaToH's parameter of the same name in the paper (0.05 / 0.01).
#[derive(Debug, Clone, Copy)]
pub struct HPartitionConfig {
    pub final_imbal: f64,
    pub seed: u64,
    pub n_inits: usize,
}

impl Default for HPartitionConfig {
    fn default() -> Self {
        HPartitionConfig {
            final_imbal: 0.05,
            seed: 1,
            n_inits: 4,
        }
    }
}

const COARSEST_N: usize = 240;
const MIN_SHRINK: f64 = 0.92;

/// Partition into `k` parts; `part[v] ∈ 0..k`.
pub fn hpartition_kway(h: &HGraph, k: usize, cfg: &HPartitionConfig) -> Vec<u32> {
    hpartition_kway_observed(h, k, cfg, &mut MetricsRegistry::new())
}

/// [`hpartition_kway`], recording V-cycle phase timers and FM counters into
/// `reg` (metric level = V-cycle coarsening depth).
pub fn hpartition_kway_observed(
    h: &HGraph,
    k: usize,
    cfg: &HPartitionConfig,
    reg: &mut MetricsRegistry,
) -> Vec<u32> {
    assert!(k >= 1 && k <= h.n_vertices());
    // split the K-way tolerance across ~log2(k) nested bisections
    let depth_levels = (k as f64).log2().ceil().max(1.0);
    let eps_b = (1.0 + cfg.final_imbal).powf(1.0 / depth_levels) - 1.0;
    let mut part = vec![0u32; h.n_vertices()];
    recurse(
        h,
        k,
        0,
        eps_b,
        cfg,
        0,
        &mut part,
        &(0..h.n_vertices() as u32).collect::<Vec<_>>(),
        reg,
    );
    part
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    h: &HGraph,
    k: usize,
    first: u32,
    eps: f64,
    cfg: &HPartitionConfig,
    depth: u64,
    out: &mut [u32],
    global_ids: &[u32],
    reg: &mut MetricsRegistry,
) {
    if k == 1 {
        for &v in global_ids {
            out[v as usize] = first;
        }
        return;
    }
    let k_left = k / 2;
    let f_left = k_left as f64 / k as f64;
    reg.inc(vnames::BISECTIONS, 1);
    let side = bisect_multilevel(h, f_left, eps, cfg, depth, 0, reg);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (v, &s) in side.iter().enumerate() {
        if s == 0 {
            left.push(v as u32);
        } else {
            right.push(v as u32);
        }
    }
    if left.is_empty() || right.is_empty() {
        let all: Vec<u32> = (0..h.n_vertices() as u32).collect();
        let (l, r) = all.split_at(k_left.max(1).min(all.len() - 1));
        left = l.to_vec();
        right = r.to_vec();
    }
    let hl = h.induced(&left);
    let hr = h.induced(&right);
    let gl: Vec<u32> = left.iter().map(|&l| global_ids[l as usize]).collect();
    let gr: Vec<u32> = right.iter().map(|&l| global_ids[l as usize]).collect();
    recurse(&hl, k_left, first, eps, cfg, 2 * depth + 1, out, &gl, reg);
    recurse(
        &hr,
        k - k_left,
        first + k_left as u32,
        eps,
        cfg,
        2 * depth + 2,
        out,
        &gr,
        reg,
    );
}

fn limits(tot: &[u64], f_left: f64, eps: f64) -> Vec<[u64; 2]> {
    tot.iter()
        .map(|&t| {
            let l = ((1.0 + eps) * f_left * t as f64).ceil() as u64;
            let r = ((1.0 + eps) * (1.0 - f_left) * t as f64).ceil() as u64;
            [l.max(1), r.max(1)]
        })
        .collect()
}

fn side_weights(h: &HGraph, side: &[u8]) -> Vec<[u64; 2]> {
    let mut sw = vec![[0u64; 2]; h.ncon];
    for v in 0..h.n_vertices() {
        for c in 0..h.ncon {
            sw[c][side[v] as usize] += h.vwgt[v * h.ncon + c] as u64;
        }
    }
    sw
}

fn violation(sw: &[[u64; 2]], lim: &[[u64; 2]]) -> f64 {
    let mut worst = 0.0f64;
    for (c, s) in sw.iter().enumerate() {
        for k in 0..2 {
            if s[k] > lim[c][k] {
                worst = worst.max((s[k] - lim[c][k]) as f64 / lim[c][k].max(1) as f64);
            }
        }
    }
    worst
}

#[allow(clippy::too_many_arguments)]
fn bisect_multilevel(
    h: &HGraph,
    f_left: f64,
    eps: f64,
    cfg: &HPartitionConfig,
    depth: u64,
    vdepth: u8,
    reg: &mut MetricsRegistry,
) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_mul(0xD1B54A32D192ED03) ^ depth);
    if h.n_vertices() <= COARSEST_N {
        let mut span = reg.start_span(vnames::VCYCLE_INITIAL, Some(vdepth));
        return initial_bisection(h, f_left, eps, cfg, &mut rng, span.registry());
    }
    let coarsen = reg.start_span(vnames::VCYCLE_COARSEN, Some(vdepth));
    let (match_of, n_coarse) = heavy_connectivity_matching(h, &mut rng);
    if n_coarse as f64 > MIN_SHRINK * h.n_vertices() as f64 {
        coarsen.cancel();
        reg.inc(vnames::COARSEN_STALLS, 1);
        let mut span = reg.start_span(vnames::VCYCLE_INITIAL, Some(vdepth));
        return initial_bisection(h, f_left, eps, cfg, &mut rng, span.registry());
    }
    let (coarse, cmap) = contract(h, &match_of, n_coarse);
    drop(coarsen);
    let cside = bisect_multilevel(
        &coarse,
        f_left,
        eps,
        cfg,
        depth.wrapping_add(0x2545F491),
        vdepth.saturating_add(1),
        reg,
    );
    let mut side = vec![0u8; h.n_vertices()];
    for v in 0..h.n_vertices() {
        side[v] = cside[cmap[v] as usize];
    }
    let mut refine = reg.start_span(vnames::VCYCLE_REFINE, Some(vdepth));
    let reg = refine.registry();
    let lim = limits(&h.total_weights(), f_left, eps);
    let mut sw = side_weights(h, &side);
    rebalance(h, &mut side, &mut sw, &lim);
    for _ in 0..4 {
        let out = fm_pass(h, &mut side, &mut sw, &lim);
        record_fm_pass(reg, Some(vdepth), out);
        if out.gain == 0 {
            break;
        }
    }
    rebalance(h, &mut side, &mut sw, &lim);
    side
}

fn initial_bisection(
    h: &HGraph,
    f_left: f64,
    eps: f64,
    cfg: &HPartitionConfig,
    rng: &mut ChaCha8Rng,
    reg: &mut MetricsRegistry,
) -> Vec<u8> {
    let tot = h.total_weights();
    let lim = limits(&tot, f_left, eps);
    let mut best: Option<(f64, u64, Vec<u8>)> = None;
    for _ in 0..cfg.n_inits.max(1) {
        let mut side = grow_initial(h, f_left, eps, rng);
        let mut sw = side_weights(h, &side);
        rebalance(h, &mut side, &mut sw, &lim);
        for _ in 0..8 {
            let out = fm_pass(h, &mut side, &mut sw, &lim);
            record_fm_pass(reg, None, out);
            if out.gain == 0 {
                break;
            }
        }
        rebalance(h, &mut side, &mut sw, &lim);
        let viol = violation(&sw, &lim);
        let part: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let cut = h.cut(&part);
        if best
            .as_ref()
            .is_none_or(|(bv, bc, _)| (viol, cut) < (*bv, *bc))
        {
            best = Some((viol, cut, side));
        }
    }
    best.unwrap().2
}

/// BFS growing over the hypergraph (neighbours through shared nets).
fn grow_initial(h: &HGraph, f_left: f64, eps: f64, rng: &mut ChaCha8Rng) -> Vec<u8> {
    let n = h.n_vertices();
    let tot = h.total_weights();
    let goals: Vec<u64> = tot
        .iter()
        .map(|&t| (f_left * t as f64).round() as u64)
        .collect();
    let mut side = vec![1u8; n];
    let mut w0 = vec![0u64; h.ncon];
    let seed = rng.gen_range(0..n) as u32;
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(seed);
    seen[seed as usize] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &net in h.nets_of(v) {
            for &u in h.pins_of(net) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    let mut rest: Vec<u32> = (0..n as u32).filter(|&v| !seen[v as usize]).collect();
    rest.shuffle(rng);
    order.extend(rest);

    let mut slack = 1.0 + eps;
    for _ in 0..4 {
        for &v in &order {
            let vi = v as usize;
            if side[vi] == 0 {
                continue;
            }
            if (0..h.ncon).all(|c| w0[c] >= goals[c]) {
                break;
            }
            let helps = (0..h.ncon).any(|c| h.vwgt[vi * h.ncon + c] > 0 && w0[c] < goals[c]);
            if !helps {
                continue;
            }
            let ok = (0..h.ncon).all(|c| {
                let w = h.vwgt[vi * h.ncon + c] as u64;
                w == 0 || w0[c] + w <= (slack * goals[c] as f64).ceil() as u64 + 1
            });
            if ok {
                side[vi] = 0;
                for c in 0..h.ncon {
                    w0[c] += h.vwgt[vi * h.ncon + c] as u64;
                }
            }
        }
        if (0..h.ncon).all(|c| w0[c] >= goals[c]) {
            break;
        }
        slack *= 1.5;
    }
    for c in 0..h.ncon {
        if w0[c] >= goals[c] {
            continue;
        }
        for &v in &order {
            let vi = v as usize;
            if side[vi] == 1 && h.vwgt[vi * h.ncon + c] > 0 {
                side[vi] = 0;
                for cc in 0..h.ncon {
                    w0[cc] += h.vwgt[vi * h.ncon + cc] as u64;
                }
                if w0[c] >= goals[c] {
                    break;
                }
            }
        }
    }
    side
}

/// FM gain of moving `v` to the other side under the connectivity-1 metric:
/// nets where `v` is the sole pin on its side become internal (+cost); nets
/// entirely on `v`'s side become cut (−cost).
fn gain_of(h: &HGraph, v: u32, side: &[u8], net_side: &[[u32; 2]]) -> i64 {
    let s = side[v as usize] as usize;
    let mut g = 0i64;
    for &net in h.nets_of(v) {
        let [a, b] = net_side[net as usize];
        let (mine, other) = if s == 0 { (a, b) } else { (b, a) };
        if mine == 1 {
            g += h.netcost[net as usize] as i64;
        }
        if other == 0 {
            g -= h.netcost[net as usize] as i64;
        }
    }
    g
}

fn net_sides(h: &HGraph, side: &[u8]) -> Vec<[u32; 2]> {
    let mut ns = vec![[0u32; 2]; h.n_nets()];
    for net in 0..h.n_nets() as u32 {
        for &p in h.pins_of(net) {
            ns[net as usize][side[p as usize] as usize] += 1;
        }
    }
    ns
}

fn apply_move(
    h: &HGraph,
    v: usize,
    side: &mut [u8],
    sw: &mut [[u64; 2]],
    net_side: &mut [[u32; 2]],
) {
    let from = side[v] as usize;
    let to = 1 - from;
    for c in 0..h.ncon {
        let w = h.vwgt[v * h.ncon + c] as u64;
        sw[c][from] -= w;
        sw[c][to] += w;
    }
    for &net in h.nets_of(v as u32) {
        net_side[net as usize][from] -= 1;
        net_side[net as usize][to] += 1;
    }
    side[v] = to as u8;
}

fn move_feasible(h: &HGraph, v: usize, to: usize, sw: &[[u64; 2]], lim: &[[u64; 2]]) -> bool {
    for c in 0..h.ncon {
        let w = h.vwgt[v * h.ncon + c] as u64;
        if w > 0 && sw[c][to] + w > lim[c][to] {
            return false;
        }
    }
    true
}

fn fm_pass(h: &HGraph, side: &mut [u8], sw: &mut [[u64; 2]], lim: &[[u64; 2]]) -> FmPassOutcome {
    let n = h.n_vertices();
    let mut net_side = net_sides(h, side);
    let mut gain = vec![0i64; n];
    let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
    let mut moved = vec![false; n];
    for v in 0..n as u32 {
        let boundary = h.nets_of(v).iter().any(|&net| {
            let [a, b] = net_side[net as usize];
            a > 0 && b > 0
        });
        if boundary {
            gain[v as usize] = gain_of(h, v, side, &net_side);
            heap.push((gain[v as usize], v));
        }
    }
    let mut seq: Vec<u32> = Vec::new();
    let mut delta = 0i64;
    let mut best_delta = 0i64;
    let mut best_len = 0usize;
    let allowance = (n / 8).max(8);
    let mut since_best = 0usize;
    while let Some((gv, v)) = heap.pop() {
        let vi = v as usize;
        if moved[vi] || gv != gain[vi] {
            continue;
        }
        let to = 1 - side[vi] as usize;
        let from_count = side.iter().filter(|&&s| s as usize == 1 - to).count();
        if from_count <= 1 || !move_feasible(h, vi, to, sw, lim) {
            continue;
        }
        apply_move(h, vi, side, sw, &mut net_side);
        moved[vi] = true;
        seq.push(v);
        delta -= gv;
        if delta < best_delta {
            best_delta = delta;
            best_len = seq.len();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best > allowance {
                break;
            }
        }
        for &net in h.nets_of(v) {
            for &u in h.pins_of(net) {
                let ui = u as usize;
                if !moved[ui] {
                    gain[ui] = gain_of(h, u, side, &net_side);
                    heap.push((gain[ui], u));
                }
            }
        }
    }
    for &v in seq[best_len..].iter().rev() {
        apply_move(h, v as usize, side, sw, &mut net_side);
    }
    FmPassOutcome {
        gain: (-best_delta) as u64,
        moves: seq.len() as u64,
        rolled_back: (seq.len() - best_len) as u64,
    }
}

/// Move vertices out of overloaded (constraint, side) pairs, preferring
/// least cut damage, until the `final_imbal` limits hold or no move helps.
fn rebalance(h: &HGraph, side: &mut [u8], sw: &mut [[u64; 2]], lim: &[[u64; 2]]) {
    let mut net_side = net_sides(h, side);
    for _ in 0..4 * h.n_vertices() {
        let mut worst: Option<(usize, usize)> = None;
        let mut worst_over = 0.0f64;
        for c in 0..h.ncon {
            for s in 0..2 {
                if sw[c][s] > lim[c][s] {
                    let over = (sw[c][s] - lim[c][s]) as f64 / lim[c][s].max(1) as f64;
                    if over > worst_over {
                        worst_over = over;
                        worst = Some((c, s));
                    }
                }
            }
        }
        let Some((c, s)) = worst else { break };
        let mut best: Option<(i64, u32)> = None;
        for v in 0..h.n_vertices() as u32 {
            let vi = v as usize;
            if side[vi] as usize != s || h.vwgt[vi * h.ncon + c] == 0 {
                continue;
            }
            let gv = gain_of(h, v, side, &net_side);
            if best.is_none_or(|(bg, _)| gv > bg) {
                best = Some((gv, v));
            }
        }
        let Some((_, v)) = best else { break };
        apply_move(h, v as usize, side, sw, &mut net_side);
    }
}

fn heavy_connectivity_matching(h: &HGraph, rng: &mut ChaCha8Rng) -> (Vec<u32>, usize) {
    let n = h.n_vertices();
    let tot = h.total_weights();
    let cap: Vec<u64> = tot
        .iter()
        .map(|&t| ((1.5 * t as f64 / COARSEST_N as f64).ceil() as u64).max(4))
        .collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut match_of: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut n_coarse = 0usize;
    // scatter accumulator for connectivity scores
    let mut score = vec![0u64; n];
    let mut touched: Vec<u32> = Vec::new();
    for &v in &order {
        let vi = v as usize;
        if matched[vi] {
            continue;
        }
        touched.clear();
        for &net in h.nets_of(v) {
            let pins = h.pins_of(net);
            if pins.len() > 16 {
                continue; // skip huge nets for matching speed
            }
            let w = h.netcost[net as usize] / (pins.len() as u64 - 1).max(1);
            for &u in pins {
                if u == v || matched[u as usize] {
                    continue;
                }
                if score[u as usize] == 0 {
                    touched.push(u);
                }
                score[u as usize] += w.max(1);
            }
        }
        let mut best: Option<(u64, u32)> = None;
        for &u in &touched {
            let s = score[u as usize];
            score[u as usize] = 0;
            let ui = u as usize;
            let fits = (0..h.ncon)
                .all(|c| h.vwgt[vi * h.ncon + c] as u64 + h.vwgt[ui * h.ncon + c] as u64 <= cap[c]);
            if fits && best.is_none_or(|(bs, _)| s > bs) {
                best = Some((s, u));
            }
        }
        matched[vi] = true;
        if let Some((_, u)) = best {
            matched[u as usize] = true;
            match_of[vi] = u;
            match_of[u as usize] = v;
        }
        n_coarse += 1;
    }
    (match_of, n_coarse)
}

fn contract(h: &HGraph, match_of: &[u32], n_coarse: usize) -> (HGraph, Vec<u32>) {
    let n = h.n_vertices();
    let mut cmap = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if cmap[v as usize] != u32::MAX {
            continue;
        }
        cmap[v as usize] = next;
        let u = match_of[v as usize];
        if u != v {
            cmap[u as usize] = next;
        }
        next += 1;
    }
    debug_assert_eq!(next as usize, n_coarse);
    let mut vwgt = vec![0u32; n_coarse * h.ncon];
    for v in 0..n {
        for c in 0..h.ncon {
            vwgt[cmap[v] as usize * h.ncon + c] += h.vwgt[v * h.ncon + c];
        }
    }
    let nets = (0..h.n_nets() as u32).map(|net| {
        let p: Vec<u32> = h.pins_of(net).iter().map(|&v| cmap[v as usize]).collect();
        (p, h.netcost[net as usize])
    });
    (HGraph::from_nets(n_coarse, nets, h.ncon, vwgt), cmap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_mesh::{HexMesh, Levels};

    fn mesh_hgraph(nx: usize, ny: usize, nz: usize) -> HGraph {
        let m = HexMesh::uniform(nx, ny, nz, 1.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        HGraph::lts_model(&m, &lv)
    }

    #[test]
    fn kway_covers_all_parts() {
        let h = mesh_hgraph(6, 6, 4);
        let cfg = HPartitionConfig::default();
        for k in [2usize, 4, 8] {
            let part = hpartition_kway(&h, k, &cfg);
            let mut counts = vec![0usize; k];
            for &p in &part {
                counts[p as usize] += 1;
            }
            assert!(counts.iter().all(|&c| c > 0), "k={k}: {counts:?}");
        }
    }

    #[test]
    fn kway_respects_final_imbal() {
        let h = mesh_hgraph(8, 8, 4);
        for imbal in [0.05, 0.01] {
            let cfg = HPartitionConfig {
                final_imbal: imbal,
                ..Default::default()
            };
            let part = hpartition_kway(&h, 4, &cfg);
            let pw = h.part_weights(&part, 4);
            let tot = h.total_weights()[0] as f64;
            for p in 0..4 {
                let w = pw[p] as f64;
                // generous envelope: recursive bisection keeps parts within
                // ~2× the per-bisection tolerance
                assert!(
                    w <= (1.0 + imbal) * (1.0 + imbal) * tot / 4.0 + 2.0,
                    "imbal {imbal}: part {p} weight {w} of {tot}"
                );
            }
        }
    }

    #[test]
    fn bisection_cut_sane_on_grid() {
        // 8×8×1 voxel grid: an ideal bisection cuts one column of nets
        let h = mesh_hgraph(8, 8, 1);
        let cfg = HPartitionConfig::default();
        let part = hpartition_kway(&h, 2, &cfg);
        let cut = h.cut(&part);
        // straight cut: 9 corner nodes × 2 rows of pins... measured optimum
        // ≈ 2×(8+1) pin-cost; allow 3× slack
        assert!(cut <= 3 * 2 * 9 * 2, "cut {cut}");
    }

    #[test]
    fn contraction_preserves_totals() {
        let h = mesh_hgraph(6, 6, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (m, nc) = heavy_connectivity_matching(&h, &mut rng);
        let (coarse, cmap) = contract(&h, &m, nc);
        assert_eq!(coarse.total_weights(), h.total_weights());
        assert!(coarse.n_vertices() < h.n_vertices());
        assert_eq!(cmap.len(), h.n_vertices());
    }

    #[test]
    fn deterministic_given_seed() {
        let h = mesh_hgraph(5, 5, 3);
        let cfg = HPartitionConfig::default();
        assert_eq!(hpartition_kway(&h, 4, &cfg), hpartition_kway(&h, 4, &cfg));
    }

    #[test]
    fn fm_gain_matches_cut_delta() {
        let h = mesh_hgraph(4, 4, 1);
        let side: Vec<u8> = (0..h.n_vertices()).map(|v| (v % 2) as u8).collect();
        let ns = net_sides(&h, &side);
        for v in 0..h.n_vertices() as u32 {
            let g = gain_of(&h, v, &side, &ns);
            let before: Vec<u32> = side.iter().map(|&s| s as u32).collect();
            let mut after = before.clone();
            after[v as usize] = 1 - after[v as usize];
            let delta = h.cut(&before) as i64 - h.cut(&after) as i64;
            assert_eq!(g, delta, "vertex {v}");
        }
    }
}
