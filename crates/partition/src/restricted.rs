//! Coarse-restricted partitioning — the Gödel et al. two-level strategy the
//! paper discusses and *rejects* (Sec. III): the partitioner may only cut
//! across coarse (p = 1) elements, so MPI synchronization happens once per
//! `Δt` and never inside sub-steps. Each connected cluster of refined
//! elements is contracted into one indivisible super-vertex before
//! partitioning.
//!
//! The paper's objection, reproducible with
//! `cargo run -p lts-bench --bin ablation_coarse_restricted`: the refined
//! clusters put a floor on the smallest achievable partition, so the load
//! imbalance explodes once `K` approaches (total work)/(largest cluster
//! work) — "an artificially high lower limit on the number of elements per
//! partition".

use crate::graph::Graph;
use crate::multilevel::{partition_kway, PartitionConfig};
use lts_mesh::{DualGraph, HexMesh, Levels};

/// Partition with cuts restricted to coarse elements. Returns the element →
/// part map.
pub fn partition_coarse_restricted(
    mesh: &HexMesh,
    levels: &Levels,
    k: usize,
    seed: u64,
) -> Vec<u32> {
    let ne = mesh.n_elems();
    assert!(k >= 1 && k <= ne);
    let dual = DualGraph::build_weighted(mesh, levels);

    // connected components of fine (level ≥ 1) elements
    let mut cmap = vec![u32::MAX; ne];
    let mut next = 0u32;
    for e in 0..ne as u32 {
        if levels.elem_level[e as usize] == 0 || cmap[e as usize] != u32::MAX {
            continue;
        }
        // BFS one fine cluster
        let cluster = next;
        next += 1;
        let mut queue = vec![e];
        cmap[e as usize] = cluster;
        while let Some(v) = queue.pop() {
            let start = dual.xadj[v as usize] as usize;
            let end = dual.xadj[v as usize + 1] as usize;
            for &nb in &dual.adj[start..end] {
                if levels.elem_level[nb as usize] >= 1 && cmap[nb as usize] == u32::MAX {
                    cmap[nb as usize] = cluster;
                    queue.push(nb);
                }
            }
        }
    }
    // coarse elements become their own vertices
    for e in 0..ne as u32 {
        if cmap[e as usize] == u32::MAX {
            cmap[e as usize] = next;
            next += 1;
        }
    }
    let nc = next as usize;

    // contracted graph: vertex weight = Σ p over constituents
    let mut vwgt = vec![0u32; nc];
    for e in 0..ne {
        vwgt[cmap[e] as usize] += levels.p_of(e as u32) as u32;
    }
    let mut xadj = vec![0u32];
    let mut adj: Vec<u32> = Vec::new();
    let mut ewgt: Vec<u32> = Vec::new();
    // accumulate with a stamp array
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); nc];
    for e in 0..ne as u32 {
        members[cmap[e as usize] as usize].push(e);
    }
    let mut stamp = vec![u32::MAX; nc];
    let mut slot = vec![0u32; nc];
    for cv in 0..nc as u32 {
        for &v in &members[cv as usize] {
            let start = dual.xadj[v as usize] as usize;
            let end = dual.xadj[v as usize + 1] as usize;
            for (off, &u) in dual.adj[start..end].iter().enumerate() {
                let cu = cmap[u as usize];
                if cu == cv {
                    continue;
                }
                let w = dual.ewgt[start + off];
                if stamp[cu as usize] == cv {
                    ewgt[slot[cu as usize] as usize] += w;
                } else {
                    stamp[cu as usize] = cv;
                    slot[cu as usize] = adj.len() as u32;
                    adj.push(cu);
                    ewgt.push(w);
                }
            }
        }
        xadj.push(adj.len() as u32);
    }
    let g = Graph {
        xadj,
        adj,
        ewgt,
        ncon: 1,
        vwgt,
    };
    let cfg = PartitionConfig {
        eps: 0.05,
        seed,
        active_rebalance: true,
        n_inits: 4,
        adjust_eps: true,
    };
    let k_eff = k.min(g.n_vertices());
    let cpart = partition_kway(&g, k_eff, &cfg);
    (0..ne).map(|e| cpart[cmap[e] as usize]).collect()
}

/// The smallest number of elements any partition can reach under the
/// restriction: the work of the largest fine cluster bounds `max load` from
/// below, hence bounds achievable K (the paper's scalability objection).
pub fn largest_cluster_work(mesh: &HexMesh, levels: &Levels) -> u64 {
    let dual = DualGraph::build_weighted(mesh, levels);
    let ne = mesh.n_elems();
    let mut seen = vec![false; ne];
    let mut largest = 0u64;
    for e in 0..ne as u32 {
        if levels.elem_level[e as usize] == 0 || seen[e as usize] {
            continue;
        }
        let mut work = 0u64;
        let mut queue = vec![e];
        seen[e as usize] = true;
        while let Some(v) = queue.pop() {
            work += levels.p_of(v);
            let start = dual.xadj[v as usize] as usize;
            let end = dual.xadj[v as usize + 1] as usize;
            for &nb in &dual.adj[start..end] {
                if levels.elem_level[nb as usize] >= 1 && !seen[nb as usize] {
                    seen[nb as usize] = true;
                    queue.push(nb);
                }
            }
        }
        largest = largest.max(work);
    }
    largest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::load_imbalance;
    use lts_mesh::{BenchmarkMesh, MeshKind};

    #[test]
    fn fine_clusters_are_never_cut() {
        let b = BenchmarkMesh::build(MeshKind::Embedding, 4_000);
        let part = partition_coarse_restricted(&b.mesh, &b.levels, 8, 1);
        // any dual edge between two fine elements must be internal
        for e in 0..b.mesh.n_elems() as u32 {
            if b.levels.elem_level[e as usize] == 0 {
                continue;
            }
            for nb in b.mesh.face_neighbors(e) {
                if b.levels.elem_level[nb as usize] >= 1 {
                    assert_eq!(part[e as usize], part[nb as usize], "fine cut {e}–{nb}");
                }
            }
        }
    }

    #[test]
    fn valid_partition_at_small_k() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 4_000);
        let k = 4;
        let part = partition_coarse_restricted(&b.mesh, &b.levels, k, 1);
        let mut counts = vec![0usize; k];
        for &p in &part {
            assert!((p as usize) < k);
            counts[p as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn imbalance_explodes_at_high_k() {
        // the paper's scalability objection: once K exceeds
        // total_work / largest_cluster_work, balance is unachievable
        let b = BenchmarkMesh::build(MeshKind::Trench, 4_000);
        let total: u64 = (0..b.mesh.n_elems() as u32).map(|e| b.levels.p_of(e)).sum();
        let cluster = largest_cluster_work(&b.mesh, &b.levels);
        let k_limit = (total / cluster.max(1)) as usize;
        let k_over = (2 * k_limit).max(8).min(b.mesh.n_elems() / 4);
        let part = partition_coarse_restricted(&b.mesh, &b.levels, k_over, 1);
        let rep = load_imbalance(&b.levels, &part, k_over);
        assert!(
            rep.total_pct > 40.0,
            "expected imbalance beyond K ≈ {k_limit}; got {:.0}% at K = {k_over}",
            rep.total_pct
        );
    }

    #[test]
    fn cluster_work_positive_when_fine_exists() {
        let b = BenchmarkMesh::build(MeshKind::Crust, 3_000);
        assert!(largest_cluster_work(&b.mesh, &b.levels) > 0);
        let u = BenchmarkMesh::build(MeshKind::Trench, 1_000);
        assert!(largest_cluster_work(&u.mesh, &u.levels) > 0);
    }
}
