//! SCOTCH-P (Sec. III-B-b): partition each p-level separately into K parts
//! with the standard single-constraint partitioner, then greedily couple one
//! part from every level onto each processor, maximising the dual-graph
//! connectivity between co-located parts to keep communication local.

use crate::assignment::{auction_assignment, greedy_assignment};
use crate::graph::Graph;
use crate::multilevel::{partition_kway, PartitionConfig};
use lts_mesh::{DualGraph, HexMesh, Levels};

/// How the per-level parts are coupled onto processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingMethod {
    /// The paper's greedy max-affinity coupling.
    Greedy,
    /// Optimal weighted matching (auction algorithm) — the paper's stated
    /// future work.
    Auction,
}

/// Partition `mesh` into `k` parts, balancing every p-level exactly by
/// construction (greedy coupling, as in the paper).
pub fn partition_scotch_p(mesh: &HexMesh, levels: &Levels, k: usize, seed: u64) -> Vec<u32> {
    partition_scotch_p_with(mesh, levels, k, seed, MappingMethod::Greedy)
}

/// [`partition_scotch_p`] with a selectable part-to-processor coupling.
pub fn partition_scotch_p_with(
    mesh: &HexMesh,
    levels: &Levels,
    k: usize,
    seed: u64,
    mapping: MappingMethod,
) -> Vec<u32> {
    partition_scotch_p_full(mesh, levels, None, k, seed, mapping)
}

/// SCOTCH-P with per-element costs (heterogeneous physics, Sec. III-A1).
pub fn partition_scotch_p_costed(
    mesh: &HexMesh,
    levels: &Levels,
    costs: &[u32],
    k: usize,
    seed: u64,
) -> Vec<u32> {
    partition_scotch_p_full(mesh, levels, Some(costs), k, seed, MappingMethod::Greedy)
}

fn partition_scotch_p_full(
    mesh: &HexMesh,
    levels: &Levels,
    costs: Option<&[u32]>,
    k: usize,
    seed: u64,
    mapping: MappingMethod,
) -> Vec<u32> {
    assert!(k >= 1);
    let ne = mesh.n_elems();
    assert!(k <= ne);
    let dual = DualGraph::build_weighted(mesh, levels);
    let vwgt: Vec<u32> = match costs {
        Some(c) => {
            assert_eq!(c.len(), ne);
            c.to_vec()
        }
        None => vec![1; ne],
    };
    let full = Graph {
        xadj: dual.xadj.clone(),
        adj: dual.adj.clone(),
        ewgt: dual.ewgt.clone(),
        ncon: 1,
        vwgt,
    };

    let mut assignment = vec![u32::MAX; ne];
    for level in 0..levels.n_levels as u8 {
        let members: Vec<u32> = (0..ne as u32)
            .filter(|&e| levels.elem_level[e as usize] == level)
            .collect();
        if members.is_empty() {
            continue;
        }
        // per-level partition into k parts (round-robin when tiny)
        let level_part: Vec<u32> = if members.len() <= k {
            (0..members.len() as u32).collect()
        } else {
            let (sub, _) = full.induced_subgraph(&members);
            let cfg = PartitionConfig {
                eps: 0.03,
                seed: seed.wrapping_add(level as u64),
                active_rebalance: true,
                n_inits: 4,
                adjust_eps: true,
            };
            partition_kway(&sub, k, &cfg)
        };

        if level == 0 && members.len() > k {
            // identity mapping for the coarsest level
            for (i, &e) in members.iter().enumerate() {
                assignment[e as usize] = level_part[i];
            }
            continue;
        }

        // affinity[part][proc] = dual edge weight between this level's part
        // and elements already assigned to proc; padded to a square k×k
        // matrix (dummy parts have zero affinity everywhere)
        let nparts = level_part
            .iter()
            .map(|&p| p as usize + 1)
            .max()
            .unwrap_or(0)
            .max(1);
        assert!(nparts <= k);
        let mut affinity = vec![0i64; k * k];
        for (i, &e) in members.iter().enumerate() {
            let p = level_part[i] as usize;
            for (idx, &nb) in dual_neighbors(&dual, e).iter().enumerate() {
                let proc = assignment[nb as usize];
                if proc != u32::MAX {
                    let w = dual_weights(&dual, e)[idx] as i64;
                    affinity[p * k + proc as usize] += w;
                }
            }
        }
        let part_to_proc = match mapping {
            MappingMethod::Greedy => greedy_assignment(&affinity, k),
            MappingMethod::Auction => auction_assignment(&affinity, k),
        };
        for (i, &e) in members.iter().enumerate() {
            assignment[e as usize] = part_to_proc[level_part[i] as usize];
        }
    }
    debug_assert!(assignment.iter().all(|&a| a != u32::MAX));
    assignment
}

fn dual_neighbors(d: &DualGraph, v: u32) -> &[u32] {
    &d.adj[d.xadj[v as usize] as usize..d.xadj[v as usize + 1] as usize]
}

fn dual_weights(d: &DualGraph, v: u32) -> &[u32] {
    &d.ewgt[d.xadj[v as usize] as usize..d.xadj[v as usize + 1] as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::load_imbalance;
    use lts_mesh::{BenchmarkMesh, MeshKind};

    #[test]
    fn every_level_balanced() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 4_000);
        let k = 8;
        let part = partition_scotch_p(&b.mesh, &b.levels, k, 1);
        let rep = load_imbalance(&b.levels, &part, k);
        // per-construction balance: every level within a loose envelope
        for (lvl, &imb) in rep.per_level_pct.iter().enumerate() {
            let count = b.levels.histogram()[lvl];
            if count >= 4 * k {
                assert!(imb < 35.0, "level {lvl} imbalance {imb}% (count {count})");
            }
        }
    }

    #[test]
    fn all_parts_used() {
        let b = BenchmarkMesh::build(MeshKind::Embedding, 3_000);
        let k = 4;
        let part = partition_scotch_p(&b.mesh, &b.levels, k, 2);
        let mut counts = vec![0usize; k];
        for &p in &part {
            counts[p as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn deterministic() {
        let b = BenchmarkMesh::build(MeshKind::Crust, 2_000);
        let a = partition_scotch_p(&b.mesh, &b.levels, 4, 7);
        let c = partition_scotch_p(&b.mesh, &b.levels, 4, 7);
        assert_eq!(a, c);
    }

    #[test]
    fn tiny_levels_spread_across_procs() {
        // fewer fine elements than parts: they must land on distinct procs
        let b = BenchmarkMesh::build(MeshKind::Embedding, 1_000);
        let hist = b.levels.histogram();
        let k = 8;
        let part = partition_scotch_p(&b.mesh, &b.levels, k, 3);
        let finest = (b.levels.n_levels - 1) as u8;
        if hist[finest as usize] <= k {
            let mut procs: Vec<u32> = (0..b.mesh.n_elems())
                .filter(|&e| b.levels.elem_level[e] == finest)
                .map(|e| part[e])
                .collect();
            let n = procs.len();
            procs.sort_unstable();
            procs.dedup();
            assert_eq!(procs.len(), n, "finest-level elements share a proc");
        }
    }
}
