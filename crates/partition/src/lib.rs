//! Multilevel graph and hypergraph partitioning for LTS load balancing.
//!
//! This crate implements, from scratch, the four partitioning strategies
//! compared in Sec. III-B of the paper:
//!
//! * [`Strategy::ScotchBaseline`] — single-constraint graph partitioning with
//!   vertex weight `p_e` (work per LTS cycle). Balanced per cycle, unbalanced
//!   per level — the baseline that Fig. 1 shows stalling.
//! * [`Strategy::ScotchP`] — each p-level partitioned separately into K parts,
//!   then one part per level greedily mapped onto each processor
//!   (the paper's best performer).
//! * [`Strategy::MetisMc`] — multi-constraint graph partitioning: one balance
//!   constraint per level, `max(p_u, p_v)` edge weights.
//! * [`Strategy::Patoh`] — multi-constraint **hypergraph** partitioning whose
//!   connectivity-1 cut (Eq. 20) equals the exact MPI volume per LTS cycle,
//!   with the `final_imbal` balance/cut trade-off knob.
//!
//! The engines are classical multilevel partitioners: heavy-edge (resp.
//! heavy-connectivity) matching coarsening, greedy growing initial
//! bisections, Fiduccia–Mattheyses boundary refinement with per-constraint
//! balance, and recursive bisection for K parts.

#![forbid(unsafe_code)]
// Indexed `for i in 0..n` loops over parallel arrays are the house idiom in
// these numerical kernels: the index couples several same-length arrays and
// mirrors the subscripts in the paper's equations, which zip chains obscure.
#![allow(clippy::needless_range_loop)]
pub mod assignment;
pub mod costed;
pub mod graph;
pub mod hgraph;
pub mod hmultilevel;
pub mod kway;
pub mod metrics;
pub mod multilevel;
pub mod refine;
pub mod restricted;
pub mod scotch_p;
pub mod strategy;

pub use graph::Graph;
pub use hgraph::HGraph;
pub use metrics::{
    edge_cut, exchange_oracle, load_imbalance, mpi_volume, ExchangeOracle, ImbalanceReport,
};
pub use strategy::{partition_mesh, partition_mesh_observed, Strategy};
