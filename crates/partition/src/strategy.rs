//! The four partitioning strategies compared in the paper (Sec. III-B) behind
//! one entry point, [`partition_mesh`].

use crate::graph::Graph;
use crate::hgraph::HGraph;
use crate::hmultilevel::{hpartition_kway_observed, HPartitionConfig};
use crate::kway::{kway_refine_graph, kway_refine_hgraph};
use crate::metrics::load_imbalance;
use crate::multilevel::{partition_kway_observed, PartitionConfig};
use crate::scotch_p::partition_scotch_p;
use lts_mesh::{HexMesh, Levels};
use lts_obs::MetricsRegistry;

/// Metric names of the strategy dispatch layer.
pub mod names {
    /// Histogram: time building the graph/hypergraph model.
    pub const BUILD_MODEL: &str = "strategy.build_model";
    /// Histogram: time in the core multilevel engine.
    pub const PARTITION: &str = "strategy.partition";
    /// Histogram: time in the direct K-way refinement pass.
    pub const KWAY_REFINE: &str = "strategy.kway_refine";
    /// Gauge: Eq. 21 imbalance of the produced partition, percent
    /// (level-less = total, per level = that level's element-count balance).
    pub const IMBALANCE_PCT: &str = "imbalance_pct";
}

/// Which partitioner to run (paper names in quotes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// "SCOTCH": single-constraint graph partition with `p_e` vertex
    /// weights — balanced per LTS cycle, unbalanced per level.
    ScotchBaseline,
    /// "SCOTCH-P": per-level partitions greedily coupled onto processors.
    ScotchP,
    /// "MeTiS": multi-constraint graph partition with weighted edges.
    MetisMc,
    /// "PaToH": multi-constraint hypergraph partition minimising the exact
    /// MPI volume, with the `final_imbal` balance tolerance.
    Patoh { final_imbal: f64 },
}

impl Strategy {
    pub fn name(&self) -> String {
        match self {
            Strategy::ScotchBaseline => "SCOTCH".into(),
            Strategy::ScotchP => "SCOTCH-P".into(),
            Strategy::MetisMc => "MeTiS".into(),
            Strategy::Patoh { final_imbal } => format!("PaToH {final_imbal}"),
        }
    }

    /// The four configurations compared in Figs. 7–11.
    pub fn paper_set() -> Vec<Strategy> {
        vec![
            Strategy::MetisMc,
            Strategy::Patoh { final_imbal: 0.05 },
            Strategy::Patoh { final_imbal: 0.01 },
            Strategy::ScotchP,
        ]
    }
}

/// Partition `mesh` into `k` parts with `strategy`. Returns the element →
/// part map.
pub fn partition_mesh(
    mesh: &HexMesh,
    levels: &Levels,
    k: usize,
    strategy: Strategy,
    seed: u64,
) -> Vec<u32> {
    partition_mesh_observed(mesh, levels, k, strategy, seed, &mut MetricsRegistry::new())
}

/// [`partition_mesh`], recording phase timers, the engines' V-cycle/FM
/// metrics, and the resulting Eq. 21 imbalance gauges into `reg`.
pub fn partition_mesh_observed(
    mesh: &HexMesh,
    levels: &Levels,
    k: usize,
    strategy: Strategy,
    seed: u64,
    reg: &mut MetricsRegistry,
) -> Vec<u32> {
    let part = match strategy {
        Strategy::ScotchBaseline => {
            let build = reg.start_span(names::BUILD_MODEL, None);
            let g = Graph::scotch_baseline(mesh, levels);
            drop(build);
            let cfg = PartitionConfig {
                eps: 0.03,
                seed,
                active_rebalance: true,
                n_inits: 4,
                adjust_eps: true,
            };
            let mut span = reg.start_span(names::PARTITION, None);
            let mut part = partition_kway_observed(&g, k, &cfg, span.registry());
            drop(span);
            let refine = reg.start_span(names::KWAY_REFINE, None);
            kway_refine_graph(&g, &mut part, k, 0.03, 3, seed);
            drop(refine);
            part
        }
        Strategy::ScotchP => {
            let span = reg.start_span(names::PARTITION, None);
            let part = partition_scotch_p(mesh, levels, k, seed);
            drop(span);
            part
        }
        Strategy::MetisMc => {
            let build = reg.start_span(names::BUILD_MODEL, None);
            let g = Graph::multi_constraint(mesh, levels);
            drop(build);
            // MeTiS only *constrains* balance during refinement (no explicit
            // rebalancing phase) and compounds its tolerance across the
            // recursive bisections — the source of its imbalance in Fig. 7.
            let cfg = PartitionConfig {
                eps: 0.05,
                seed,
                active_rebalance: false,
                n_inits: 4,
                adjust_eps: false,
            };
            let mut span = reg.start_span(names::PARTITION, None);
            let mut part = partition_kway_observed(&g, k, &cfg, span.registry());
            drop(span);
            // MeTiS does k-way refinement too — under its own (compounded)
            // tolerance, so the imbalance it arrived with persists
            let refine = reg.start_span(names::KWAY_REFINE, None);
            kway_refine_graph(
                &g,
                &mut part,
                k,
                0.05_f64 * k.ilog2().max(1) as f64,
                3,
                seed,
            );
            drop(refine);
            part
        }
        Strategy::Patoh { final_imbal } => {
            let build = reg.start_span(names::BUILD_MODEL, None);
            let h = HGraph::lts_model(mesh, levels);
            drop(build);
            let cfg = HPartitionConfig {
                final_imbal,
                seed,
                n_inits: 4,
            };
            let mut span = reg.start_span(names::PARTITION, None);
            let mut part = hpartition_kway_observed(&h, k, &cfg, span.registry());
            drop(span);
            let refine = reg.start_span(names::KWAY_REFINE, None);
            kway_refine_hgraph(&h, &mut part, k, final_imbal, 3, seed);
            drop(refine);
            part
        }
    };
    let rep = load_imbalance(levels, &part, k);
    reg.set_gauge(names::IMBALANCE_PCT, rep.total_pct);
    for (l, &pct) in rep.per_level_pct.iter().enumerate() {
        reg.set_gauge_level(names::IMBALANCE_PCT, l as u8, pct);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{load_imbalance, mpi_volume};
    use lts_mesh::{BenchmarkMesh, MeshKind};

    #[test]
    fn all_strategies_produce_valid_partitions() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 4_000);
        let k = 4;
        let mut strategies = Strategy::paper_set();
        strategies.push(Strategy::ScotchBaseline);
        for s in strategies {
            let part = partition_mesh(&b.mesh, &b.levels, k, s, 1);
            assert_eq!(part.len(), b.mesh.n_elems());
            let mut counts = vec![0usize; k];
            for &p in &part {
                assert!((p as usize) < k, "{}: part {p}", s.name());
                counts[p as usize] += 1;
            }
            assert!(counts.iter().all(|&c| c > 0), "{}: {counts:?}", s.name());
        }
    }

    #[test]
    fn level_aware_strategies_beat_baseline_on_level_balance() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 6_000);
        let k = 8;
        let base = partition_mesh(&b.mesh, &b.levels, k, Strategy::ScotchBaseline, 1);
        let sp = partition_mesh(&b.mesh, &b.levels, k, Strategy::ScotchP, 1);
        let rb = load_imbalance(&b.levels, &base, k);
        let rs = load_imbalance(&b.levels, &sp, k);
        // the baseline leaves the finest level essentially unbalanced
        let finest = b.levels.n_levels - 1;
        assert!(
            rs.per_level_pct[finest] < rb.per_level_pct[finest] + 1e-9,
            "SCOTCH-P {}% vs baseline {}% at finest level",
            rs.per_level_pct[finest],
            rb.per_level_pct[finest]
        );
    }

    #[test]
    fn patoh_tightens_balance_with_smaller_imbal() {
        let b = BenchmarkMesh::build(MeshKind::Trench, 6_000);
        let k = 8;
        let p05 = partition_mesh(
            &b.mesh,
            &b.levels,
            k,
            Strategy::Patoh { final_imbal: 0.05 },
            1,
        );
        let p01 = partition_mesh(
            &b.mesh,
            &b.levels,
            k,
            Strategy::Patoh { final_imbal: 0.01 },
            1,
        );
        let r05 = load_imbalance(&b.levels, &p05, k);
        let r01 = load_imbalance(&b.levels, &p01, k);
        // tighter knob → no worse total balance (paper Fig. 7), cut may grow
        assert!(
            r01.total_pct <= r05.total_pct + 10.0,
            "PaToH .01 {}% vs .05 {}%",
            r01.total_pct,
            r05.total_pct
        );
        let _ = (
            mpi_volume(&b.mesh, &b.levels, &p05),
            mpi_volume(&b.mesh, &b.levels, &p01),
        );
    }
}
