//! Direct K-way refinement: greedy boundary moves after recursive bisection,
//! crossing bisection boundaries that RB alone can never fix.
//!
//! Both production libraries the paper compares do this (MeTiS's k-way
//! refinement, PaToH's boundary FM); here a greedy positive-gain pass with
//! per-constraint balance limits is run a few times to a fixed point.

use crate::graph::Graph;
use crate::hgraph::HGraph;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-part per-constraint upper bounds `(1+ε)·W_c/K`.
fn limits(tot: &[u64], k: usize, eps: f64) -> Vec<u64> {
    tot.iter()
        .map(|&t| (((1.0 + eps) * t as f64 / k as f64).ceil() as u64).max(1))
        .collect()
}

/// Greedy K-way cut refinement on a graph partition (in place). Returns the
/// number of moves applied.
pub fn kway_refine_graph(
    g: &Graph,
    part: &mut [u32],
    k: usize,
    eps: f64,
    passes: usize,
    seed: u64,
) -> usize {
    let tot = g.total_weights();
    let lim = limits(&tot, k, eps);
    let mut pw = g.part_weights(part, k);
    let mut part_count = vec![0u64; k];
    for &p in part.iter() {
        part_count[p as usize] += 1;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut moves = 0usize;
    let mut order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    for _ in 0..passes {
        order.shuffle(&mut rng);
        let mut moved_this_pass = 0usize;
        for &v in &order {
            let vi = v as usize;
            let p = part[vi] as usize;
            if part_count[p] <= 1 {
                continue;
            }
            // connectivity to each neighbouring part
            let mut w_to: Vec<(u32, i64)> = Vec::with_capacity(6);
            let mut w_own = 0i64;
            for (idx, &u) in g.neighbors(v).iter().enumerate() {
                let q = part[u as usize];
                let w = g.edge_weights(v)[idx] as i64;
                if q as usize == p {
                    w_own += w;
                } else {
                    match w_to.iter_mut().find(|(qq, _)| *qq == q) {
                        Some((_, acc)) => *acc += w,
                        None => w_to.push((q, w)),
                    }
                }
            }
            let mut best: Option<(i64, u32)> = None;
            for &(q, wq) in &w_to {
                let gain = wq - w_own;
                if gain <= 0 {
                    continue;
                }
                let fits = (0..g.ncon).all(|c| {
                    let w = g.vwgt[vi * g.ncon + c] as u64;
                    w == 0 || pw[q as usize * g.ncon + c] + w <= lim[c]
                });
                if fits && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, q));
                }
            }
            if let Some((_, q)) = best {
                for c in 0..g.ncon {
                    let w = g.vwgt[vi * g.ncon + c] as u64;
                    pw[p * g.ncon + c] -= w;
                    pw[q as usize * g.ncon + c] += w;
                }
                part_count[p] -= 1;
                part_count[q as usize] += 1;
                part[vi] = q;
                moved_this_pass += 1;
            }
        }
        moves += moved_this_pass;
        if moved_this_pass == 0 {
            break;
        }
    }
    moves
}

/// Greedy K-way connectivity-1 refinement on a hypergraph partition
/// (in place). Returns the number of moves applied.
pub fn kway_refine_hgraph(
    h: &HGraph,
    part: &mut [u32],
    k: usize,
    eps: f64,
    passes: usize,
    seed: u64,
) -> usize {
    let tot = h.total_weights();
    let lim = limits(&tot, k, eps);
    let mut pw = h.part_weights(part, k);
    let mut part_count = vec![0u64; k];
    for &p in part.iter() {
        part_count[p as usize] += 1;
    }
    // per-net pin counts per part, stored sparsely: net → Vec<(part, count)>
    let mut net_parts: Vec<Vec<(u32, u32)>> = vec![Vec::new(); h.n_nets()];
    for net in 0..h.n_nets() as u32 {
        for &pin in h.pins_of(net) {
            let p = part[pin as usize];
            let list = &mut net_parts[net as usize];
            match list.iter_mut().find(|(q, _)| *q == p) {
                Some((_, c)) => *c += 1,
                None => list.push((p, 1)),
            }
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
    let mut order: Vec<u32> = (0..h.n_vertices() as u32).collect();
    let mut moves = 0usize;
    for _ in 0..passes {
        order.shuffle(&mut rng);
        let mut moved_this_pass = 0usize;
        for &v in &order {
            let vi = v as usize;
            let p = part[vi];
            if part_count[p as usize] <= 1 {
                continue;
            }
            // candidate parts: those sharing a net with v
            let mut cands: Vec<u32> = Vec::new();
            for &net in h.nets_of(v) {
                for &(q, _) in &net_parts[net as usize] {
                    if q != p && !cands.contains(&q) {
                        cands.push(q);
                    }
                }
            }
            let mut best: Option<(i64, u32)> = None;
            for &q in &cands {
                let mut gain = 0i64;
                for &net in h.nets_of(v) {
                    let list = &net_parts[net as usize];
                    let cp = list.iter().find(|(r, _)| *r == p).map_or(0, |(_, c)| *c);
                    let cq = list.iter().find(|(r, _)| *r == q).map_or(0, |(_, c)| *c);
                    let cost = h.netcost[net as usize] as i64;
                    if cp == 1 {
                        gain += cost; // net leaves part p entirely
                    }
                    if cq == 0 {
                        gain -= cost; // net newly spreads into q
                    }
                }
                if gain <= 0 {
                    continue;
                }
                let fits = (0..h.ncon).all(|c| {
                    let w = h.vwgt[vi * h.ncon + c] as u64;
                    w == 0 || pw[q as usize * h.ncon + c] + w <= lim[c]
                });
                if fits && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, q));
                }
            }
            if let Some((_, q)) = best {
                for c in 0..h.ncon {
                    let w = h.vwgt[vi * h.ncon + c] as u64;
                    pw[p as usize * h.ncon + c] -= w;
                    pw[q as usize * h.ncon + c] += w;
                }
                part_count[p as usize] -= 1;
                part_count[q as usize] += 1;
                for &net in h.nets_of(v) {
                    let list = &mut net_parts[net as usize];
                    if let Some(pos) = list.iter().position(|(r, _)| *r == p) {
                        list[pos].1 -= 1;
                        if list[pos].1 == 0 {
                            list.swap_remove(pos);
                        }
                    }
                    match list.iter_mut().find(|(r, _)| *r == q) {
                        Some((_, c)) => *c += 1,
                        None => list.push((q, 1)),
                    }
                }
                part[vi] = q;
                moved_this_pass += 1;
            }
        }
        moves += moved_this_pass;
        if moved_this_pass == 0 {
            break;
        }
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_mesh::{HexMesh, Levels};

    fn grid_graph() -> Graph {
        let m = HexMesh::uniform(8, 8, 1, 1.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 2);
        Graph::scotch_baseline(&m, &lv)
    }

    #[test]
    fn graph_refinement_reduces_cut() {
        let g = grid_graph();
        // a deliberately bad partition: checkerboard-ish by vertex parity
        let mut part: Vec<u32> = (0..g.n_vertices() as u32).map(|v| v % 2).collect();
        let before = g.cut(&part);
        let moves = kway_refine_graph(&g, &mut part, 2, 0.10, 8, 1);
        let after = g.cut(&part);
        assert!(moves > 0);
        assert!(after < before, "cut {before} → {after}");
        // balance held
        let pw = g.part_weights(&part, 2);
        let tot = g.total_weights()[0] as f64;
        assert!(pw[0] as f64 <= 1.10 * tot / 2.0 + 1.0);
        assert!(pw[1] as f64 <= 1.10 * tot / 2.0 + 1.0);
    }

    #[test]
    fn graph_refinement_never_increases_cut() {
        let g = grid_graph();
        let mut part: Vec<u32> = (0..g.n_vertices() as u32)
            .map(|v| u32::from(v >= 32))
            .collect();
        let before = g.cut(&part);
        kway_refine_graph(&g, &mut part, 2, 0.05, 4, 7);
        assert!(g.cut(&part) <= before);
    }

    #[test]
    fn hgraph_refinement_fixes_stray_elements() {
        // left/right split with two stray elements deep inside the wrong
        // half: moving them back is a clear positive-gain move
        let m = HexMesh::uniform(6, 6, 1, 1.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 2);
        let h = HGraph::lts_model(&m, &lv);
        let mut part: Vec<u32> = (0..m.n_elems() as u32)
            .map(|e| u32::from(m.elem_ijk(e).0 >= 3))
            .collect();
        part[m.elem_id(1, 1, 0) as usize] = 1; // stray
        part[m.elem_id(4, 4, 0) as usize] = 0; // stray
        let before = h.cut(&part);
        let moves = kway_refine_hgraph(&h, &mut part, 2, 0.25, 8, 1);
        let after = h.cut(&part);
        assert!(moves >= 2, "strays not fixed ({moves} moves)");
        assert!(after < before, "cut {before} → {after}");
        assert_eq!(part[m.elem_id(1, 1, 0) as usize], 0);
        assert_eq!(part[m.elem_id(4, 4, 0) as usize], 1);
    }

    #[test]
    fn refinement_keeps_parts_nonempty() {
        let g = grid_graph();
        let mut part: Vec<u32> = vec![0; g.n_vertices()];
        part[0] = 1; // almost everything on part 0
        kway_refine_graph(&g, &mut part, 2, 0.05, 4, 3);
        assert!(part.contains(&1), "part 1 emptied");
    }

    #[test]
    fn hgraph_gain_bookkeeping_consistent() {
        // after refinement, rebuilding net_parts from scratch matches the
        // incremental state (indirectly: cut recomputed == claimed decrease)
        let m = HexMesh::uniform(5, 5, 2, 1.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 2);
        let h = HGraph::lts_model(&m, &lv);
        let mut part: Vec<u32> = (0..h.n_vertices() as u32).map(|v| (v * 7) % 4).collect();
        for _ in 0..3 {
            let before = h.cut(&part);
            kway_refine_hgraph(&h, &mut part, 4, 0.30, 1, 11);
            assert!(h.cut(&part) <= before);
        }
    }
}
