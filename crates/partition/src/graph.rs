//! CSR graphs with multi-constraint vertex weights.
//!
//! The multi-constraint formulation follows Sec. III-A: each vertex carries a
//! weight *vector* `w[v, i]`, `i = 1..P`, and a K-way partition must satisfy
//! the balance criterion (Eq. 19) for every `i` simultaneously. For LTS the
//! constraints are the p-levels: a level-`k` element has weight 1 in slot `k`
//! and 0 elsewhere, so per-slot balance is per-sub-step balance.

use lts_mesh::{DualGraph, HexMesh, Levels};

/// An undirected graph in CSR form with `ncon` weights per vertex and
/// weighted edges.
#[derive(Debug, Clone)]
pub struct Graph {
    pub xadj: Vec<u32>,
    pub adj: Vec<u32>,
    /// Edge weights aligned with `adj`.
    pub ewgt: Vec<u32>,
    /// Number of balance constraints.
    pub ncon: usize,
    /// Vertex weights, `ncon` consecutive entries per vertex.
    pub vwgt: Vec<u32>,
}

impl Graph {
    pub fn n_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.xadj[v as usize] as usize..self.xadj[v as usize + 1] as usize]
    }

    #[inline]
    pub fn edge_weights(&self, v: u32) -> &[u32] {
        &self.ewgt[self.xadj[v as usize] as usize..self.xadj[v as usize + 1] as usize]
    }

    #[inline]
    pub fn weight_of(&self, v: u32) -> &[u32] {
        &self.vwgt[v as usize * self.ncon..(v as usize + 1) * self.ncon]
    }

    /// Column sums of the vertex weight matrix: total weight per constraint.
    pub fn total_weights(&self) -> Vec<u64> {
        let mut tot = vec![0u64; self.ncon];
        for v in 0..self.n_vertices() {
            for c in 0..self.ncon {
                tot[c] += self.vwgt[v * self.ncon + c] as u64;
            }
        }
        tot
    }

    /// Single-constraint graph for the SCOTCH baseline: vertex weight is the
    /// element's work per LTS cycle (`p_e`), edges weighted `max(p_u, p_v)`.
    pub fn scotch_baseline(mesh: &HexMesh, levels: &Levels) -> Self {
        let dual = DualGraph::build_weighted(mesh, levels);
        let vwgt = (0..mesh.n_elems() as u32)
            .map(|e| levels.p_of(e) as u32)
            .collect();
        Graph {
            xadj: dual.xadj,
            adj: dual.adj,
            ewgt: dual.ewgt,
            ncon: 1,
            vwgt,
        }
    }

    /// Multi-constraint graph for the MeTiS strategy: one unit-weight slot
    /// per level (Sec. III-A1), `max(p_u, p_v)` edge weights.
    pub fn multi_constraint(mesh: &HexMesh, levels: &Levels) -> Self {
        let dual = DualGraph::build_weighted(mesh, levels);
        let ncon = levels.n_levels;
        let mut vwgt = vec![0u32; mesh.n_elems() * ncon];
        for e in 0..mesh.n_elems() {
            vwgt[e * ncon + levels.elem_level[e] as usize] = 1;
        }
        Graph {
            xadj: dual.xadj,
            adj: dual.adj,
            ewgt: dual.ewgt,
            ncon,
            vwgt,
        }
    }

    /// Unweighted single-constraint graph over a vertex subset (used by
    /// SCOTCH-P to partition one p-level at a time). Returns the subgraph and
    /// the mapping from subgraph vertex to original vertex.
    pub fn induced_subgraph(&self, keep: &[u32]) -> (Graph, Vec<u32>) {
        let mut global_to_local = vec![u32::MAX; self.n_vertices()];
        for (local, &g) in keep.iter().enumerate() {
            global_to_local[g as usize] = local as u32;
        }
        let mut xadj = Vec::with_capacity(keep.len() + 1);
        let mut adj = Vec::new();
        let mut ewgt = Vec::new();
        let mut vwgt = Vec::with_capacity(keep.len() * self.ncon);
        xadj.push(0u32);
        for &g in keep {
            for (idx, &u) in self.neighbors(g).iter().enumerate() {
                let lu = global_to_local[u as usize];
                if lu != u32::MAX {
                    adj.push(lu);
                    ewgt.push(self.edge_weights(g)[idx]);
                }
            }
            xadj.push(adj.len() as u32);
            vwgt.extend_from_slice(self.weight_of(g));
        }
        (
            Graph {
                xadj,
                adj,
                ewgt,
                ncon: self.ncon,
                vwgt,
            },
            keep.to_vec(),
        )
    }

    /// Weighted edge cut of a partition.
    pub fn cut(&self, part: &[u32]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.n_vertices() as u32 {
            for (idx, &u) in self.neighbors(v).iter().enumerate() {
                if u > v && part[u as usize] != part[v as usize] {
                    cut += self.edge_weights(v)[idx] as u64;
                }
            }
        }
        cut
    }

    /// Part weights: `k × ncon` matrix (row-major).
    pub fn part_weights(&self, part: &[u32], k: usize) -> Vec<u64> {
        let mut w = vec![0u64; k * self.ncon];
        for v in 0..self.n_vertices() {
            let p = part[v] as usize;
            for c in 0..self.ncon {
                w[p * self.ncon + c] += self.vwgt[v * self.ncon + c] as u64;
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut xadj = vec![0u32];
        let mut adj = Vec::new();
        for v in 0..n as u32 {
            if v > 0 {
                adj.push(v - 1);
            }
            if (v as usize) + 1 < n {
                adj.push(v + 1);
            }
            xadj.push(adj.len() as u32);
        }
        let ewgt = vec![1; adj.len()];
        Graph {
            xadj,
            adj,
            ewgt,
            ncon: 1,
            vwgt: vec![1; n],
        }
    }

    #[test]
    fn cut_of_path_split() {
        let g = path_graph(6);
        let part = vec![0, 0, 0, 1, 1, 1];
        assert_eq!(g.cut(&part), 1);
        let part2 = vec![0, 1, 0, 1, 0, 1];
        assert_eq!(g.cut(&part2), 5);
    }

    #[test]
    fn scotch_baseline_weights_are_p() {
        let mut m = HexMesh::uniform(4, 1, 1, 1.0, 1.0);
        m.paint_box((3, 4), (0, 1), (0, 1), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        let g = Graph::scotch_baseline(&m, &lv);
        assert_eq!(g.ncon, 1);
        assert_eq!(g.weight_of(0), &[1]);
        assert_eq!(g.weight_of(3), &[2]);
    }

    #[test]
    fn multi_constraint_one_hot() {
        let mut m = HexMesh::uniform(4, 1, 1, 1.0, 1.0);
        m.paint_box((3, 4), (0, 1), (0, 1), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        let g = Graph::multi_constraint(&m, &lv);
        assert_eq!(g.ncon, 2);
        assert_eq!(g.weight_of(0), &[1, 0]);
        assert_eq!(g.weight_of(3), &[0, 1]);
        let tot = g.total_weights();
        assert_eq!(tot.iter().sum::<u64>(), 4);
    }

    #[test]
    fn induced_subgraph_of_path() {
        let g = path_graph(6);
        // keep vertices 1,2,3: path of 3 with 2 edges
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.n_vertices(), 3);
        assert_eq!(sub.adj.len(), 4); // 2 undirected edges
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(sub.neighbors(1), &[0, 2]);
    }

    #[test]
    fn part_weights_sum_to_totals() {
        let m = HexMesh::uniform(3, 3, 1, 1.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        let g = Graph::multi_constraint(&m, &lv);
        let part: Vec<u32> = (0..9).map(|v| (v % 3) as u32).collect();
        let pw = g.part_weights(&part, 3);
        let tot = g.total_weights();
        for c in 0..g.ncon {
            let s: u64 = (0..3).map(|p| pw[p * g.ncon + c]).sum();
            assert_eq!(s, tot[c]);
        }
    }
}
