//! Hypergraphs for partitioning (Sec. III-A2).
//!
//! Vertices are mesh elements with multi-constraint weights; nets are mesh
//! nodes with costs `c[h'_n] = Σ_{e ∋ n} p_e`, so the connectivity-1 cut
//! size (Eq. 20) of a partition equals the exact MPI communication volume
//! per LTS cycle.

use lts_mesh::{HexMesh, Levels, NodalHypergraph};

/// A hypergraph in dual CSR form (net→pins and vertex→nets) with net costs
/// and `ncon` weights per vertex.
#[derive(Debug, Clone)]
pub struct HGraph {
    pub xpins: Vec<u32>,
    pub pins: Vec<u32>,
    pub xnets: Vec<u32>,
    pub vnets: Vec<u32>,
    pub netcost: Vec<u64>,
    pub ncon: usize,
    pub vwgt: Vec<u32>,
}

impl HGraph {
    pub fn n_vertices(&self) -> usize {
        self.xnets.len() - 1
    }

    pub fn n_nets(&self) -> usize {
        self.xpins.len() - 1
    }

    #[inline]
    pub fn pins_of(&self, net: u32) -> &[u32] {
        &self.pins[self.xpins[net as usize] as usize..self.xpins[net as usize + 1] as usize]
    }

    #[inline]
    pub fn nets_of(&self, v: u32) -> &[u32] {
        &self.vnets[self.xnets[v as usize] as usize..self.xnets[v as usize + 1] as usize]
    }

    #[inline]
    pub fn weight_of(&self, v: u32) -> &[u32] {
        &self.vwgt[v as usize * self.ncon..(v as usize + 1) * self.ncon]
    }

    pub fn total_weights(&self) -> Vec<u64> {
        let mut tot = vec![0u64; self.ncon];
        for v in 0..self.n_vertices() {
            for c in 0..self.ncon {
                tot[c] += self.vwgt[v * self.ncon + c] as u64;
            }
        }
        tot
    }

    /// Build from parallel arrays of nets (pins per net) and weights; nets
    /// with fewer than two pins are dropped (they can never be cut) and
    /// *identical* nets are merged with summed costs (the standard PaToH
    /// simplification — Sec. III-A2 notes the same collapse for the
    /// per-element-copy hyperedges).
    pub fn from_nets(
        n_vertices: usize,
        nets: impl IntoIterator<Item = (Vec<u32>, u64)>,
        ncon: usize,
        vwgt: Vec<u32>,
    ) -> Self {
        assert_eq!(vwgt.len(), n_vertices * ncon);
        let mut merged: std::collections::HashMap<Vec<u32>, u64> = std::collections::HashMap::new();
        let mut order: Vec<Vec<u32>> = Vec::new();
        for (mut p, cost) in nets {
            p.sort_unstable();
            p.dedup();
            if p.len() < 2 {
                continue;
            }
            assert!(p.iter().all(|&v| (v as usize) < n_vertices));
            match merged.entry(p) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    *e.get_mut() += cost;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(e.key().clone());
                    e.insert(cost);
                }
            }
        }
        let mut xpins = vec![0u32];
        let mut pins: Vec<u32> = Vec::new();
        let mut netcost = Vec::new();
        for p in order {
            let cost = merged[&p];
            pins.extend_from_slice(&p);
            xpins.push(pins.len() as u32);
            netcost.push(cost);
        }
        let (xnets, vnets) = invert_pins(n_vertices, &xpins, &pins);
        HGraph {
            xpins,
            pins,
            xnets,
            vnets,
            netcost,
            ncon,
            vwgt,
        }
    }

    /// The paper's LTS hypergraph: one net per mesh corner node with cost
    /// `Σ_{e ∋ n} p_e`, one-hot per-level vertex weights.
    pub fn lts_model(mesh: &HexMesh, levels: &Levels) -> Self {
        let nh = NodalHypergraph::build(mesh, Some(levels));
        let ncon = levels.n_levels;
        let mut vwgt = vec![0u32; mesh.n_elems() * ncon];
        for e in 0..mesh.n_elems() {
            vwgt[e * ncon + levels.elem_level[e] as usize] = 1;
        }
        let nets =
            (0..nh.n_nets() as u32).map(|n| (nh.pins_of(n).to_vec(), nh.netcost[n as usize]));
        Self::from_nets(mesh.n_elems(), nets, ncon, vwgt)
    }

    /// Connectivity-1 cut size (Eq. 20).
    pub fn cut(&self, part: &[u32]) -> u64 {
        let mut seen: Vec<u32> = Vec::with_capacity(8);
        let mut total = 0u64;
        for net in 0..self.n_nets() as u32 {
            seen.clear();
            for &p in self.pins_of(net) {
                let pp = part[p as usize];
                if !seen.contains(&pp) {
                    seen.push(pp);
                }
            }
            if seen.len() > 1 {
                total += self.netcost[net as usize] * (seen.len() as u64 - 1);
            }
        }
        total
    }

    pub fn part_weights(&self, part: &[u32], k: usize) -> Vec<u64> {
        let mut w = vec![0u64; k * self.ncon];
        for v in 0..self.n_vertices() {
            for c in 0..self.ncon {
                w[part[v] as usize * self.ncon + c] += self.vwgt[v * self.ncon + c] as u64;
            }
        }
        w
    }

    /// Sub-hypergraph induced by `keep`, with net splitting: nets keep only
    /// surviving pins and are dropped when fewer than two remain.
    pub fn induced(&self, keep: &[u32]) -> HGraph {
        let mut g2l = vec![u32::MAX; self.n_vertices()];
        for (l, &g) in keep.iter().enumerate() {
            g2l[g as usize] = l as u32;
        }
        let mut vwgt = Vec::with_capacity(keep.len() * self.ncon);
        for &g in keep {
            vwgt.extend_from_slice(self.weight_of(g));
        }
        let nets = (0..self.n_nets() as u32).filter_map(|n| {
            let p: Vec<u32> = self
                .pins_of(n)
                .iter()
                .filter_map(|&v| {
                    let l = g2l[v as usize];
                    (l != u32::MAX).then_some(l)
                })
                .collect();
            (p.len() >= 2).then_some((p, self.netcost[n as usize]))
        });
        HGraph::from_nets(keep.len(), nets, self.ncon, vwgt)
    }
}

fn invert_pins(n_vertices: usize, xpins: &[u32], pins: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut deg = vec![0u32; n_vertices];
    for &p in pins {
        deg[p as usize] += 1;
    }
    let mut xnets = vec![0u32; n_vertices + 1];
    for v in 0..n_vertices {
        xnets[v + 1] = xnets[v] + deg[v];
    }
    let mut cursor = xnets[..n_vertices].to_vec();
    let mut vnets = vec![0u32; pins.len()];
    for net in 0..xpins.len() - 1 {
        for i in xpins[net]..xpins[net + 1] {
            let v = pins[i as usize] as usize;
            vnets[cursor[v] as usize] = net as u32;
            cursor[v] += 1;
        }
    }
    (xnets, vnets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HGraph {
        // 4 vertices; nets: {0,1} cost 2, {1,2,3} cost 3, {0,3} cost 1
        HGraph::from_nets(
            4,
            vec![(vec![0, 1], 2), (vec![1, 2, 3], 3), (vec![0, 3], 1)],
            1,
            vec![1; 4],
        )
    }

    #[test]
    fn inversion_consistent() {
        let h = tiny();
        assert_eq!(h.n_nets(), 3);
        for v in 0..h.n_vertices() as u32 {
            for &n in h.nets_of(v) {
                assert!(h.pins_of(n).contains(&v));
            }
        }
        for n in 0..h.n_nets() as u32 {
            for &v in h.pins_of(n) {
                assert!(h.nets_of(v).contains(&n));
            }
        }
    }

    #[test]
    fn cut_connectivity_minus_one() {
        let h = tiny();
        // part {0,1 | 2,3}: net0 internal, net1 spans both (λ=2 → 3),
        // net2 spans both (λ=2 → 1) → 4
        assert_eq!(h.cut(&[0, 0, 1, 1]), 4);
        // all separate: net0 λ=2 → 2; net1 λ=3 → 6; net2 λ=2 → 1 → 9
        assert_eq!(h.cut(&[0, 1, 2, 3]), 9);
        assert_eq!(h.cut(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn single_pin_nets_dropped() {
        let h = HGraph::from_nets(3, vec![(vec![0], 5), (vec![1, 2], 1)], 1, vec![1; 3]);
        assert_eq!(h.n_nets(), 1);
    }

    #[test]
    fn induced_splits_nets() {
        let h = tiny();
        let sub = h.induced(&[1, 2, 3]);
        // net {0,1} → {1} dropped; net {1,2,3} → {0,1,2} kept; {0,3} → {3}→ dropped
        assert_eq!(sub.n_nets(), 1);
        assert_eq!(sub.pins_of(0), &[0, 1, 2]);
        assert_eq!(sub.netcost[0], 3);
    }

    #[test]
    fn lts_model_matches_mesh_volume() {
        let mut m = HexMesh::uniform(4, 2, 2, 1.0, 1.0);
        m.paint_box((3, 4), (0, 2), (0, 2), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        let h = HGraph::lts_model(&m, &lv);
        let nh = NodalHypergraph::build(&m, Some(&lv));
        // cut sizes agree with the mesh-level model for a column split
        let part: Vec<u32> = (0..m.n_elems() as u32)
            .map(|e| u32::from(m.elem_ijk(e).0 >= 2))
            .collect();
        assert_eq!(h.cut(&part), nh.cut_size(&part));
    }

    #[test]
    fn duplicate_pins_removed() {
        let h = HGraph::from_nets(2, vec![(vec![0, 1, 1, 0], 1)], 1, vec![1; 2]);
        assert_eq!(h.pins_of(0), &[0, 1]);
    }

    #[test]
    fn identical_nets_merged_with_summed_costs() {
        let h = HGraph::from_nets(
            3,
            vec![(vec![0, 1], 2), (vec![1, 0], 3), (vec![1, 2], 1)],
            1,
            vec![1; 3],
        );
        assert_eq!(h.n_nets(), 2);
        assert_eq!(h.netcost[0], 5); // merged {0,1}
                                     // cut semantics unchanged: splitting 0|1 costs the summed 5
        assert_eq!(h.cut(&[0, 1, 1]), 5);
    }
}
