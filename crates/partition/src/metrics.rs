//! Partition quality metrics of Sec. IV-B: the load imbalance of Eq. 21
//! (total and per p-level), the weighted dual-graph edge cut, and the exact
//! MPI communication volume per LTS cycle (hypergraph connectivity-1 cut).

use lts_mesh::{DualGraph, HexMesh, Levels, NodalHypergraph};

/// Load-imbalance report (Eq. 21): `(max − min) / max × 100` where the load
/// of a part is the sum of its elements' `p`-weights.
#[derive(Debug, Clone)]
pub struct ImbalanceReport {
    /// Total work-load imbalance, in percent.
    pub total_pct: f64,
    /// Per-level imbalance (element counts per level), in percent.
    pub per_level_pct: Vec<f64>,
    /// Total p-weighted load per part.
    pub part_load: Vec<u64>,
    /// Element counts per (level, part), row-major by level.
    pub level_counts: Vec<Vec<u64>>,
}

/// Compute Eq. 21 for a K-way element partition.
pub fn load_imbalance(levels: &Levels, part: &[u32], k: usize) -> ImbalanceReport {
    assert_eq!(part.len(), levels.elem_level.len());
    let nl = levels.n_levels;
    let mut part_load = vec![0u64; k];
    let mut level_counts = vec![vec![0u64; k]; nl];
    for (e, &p) in part.iter().enumerate() {
        assert!((p as usize) < k, "part id {p} out of range");
        let lvl = levels.elem_level[e] as usize;
        part_load[p as usize] += 1u64 << lvl;
        level_counts[lvl][p as usize] += 1;
    }
    let pct = |vals: &[u64]| -> f64 {
        let max = *vals.iter().max().unwrap_or(&0);
        let min = *vals.iter().min().unwrap_or(&0);
        if max == 0 {
            0.0
        } else {
            (max - min) as f64 / max as f64 * 100.0
        }
    };
    let total_pct = pct(&part_load);
    let per_level_pct = level_counts.iter().map(|lc| pct(lc)).collect();
    ImbalanceReport { total_pct, per_level_pct, part_load, level_counts }
}

/// Weighted dual-graph edge cut (the "graph cut" column of Fig. 8).
pub fn edge_cut(mesh: &HexMesh, levels: &Levels, part: &[u32]) -> u64 {
    let dual = DualGraph::build_weighted(mesh, levels);
    let mut cut = 0u64;
    for v in 0..dual.n_vertices() as u32 {
        let start = dual.xadj[v as usize] as usize;
        for (off, &u) in dual.neighbors(v).iter().enumerate() {
            if u > v && part[u as usize] != part[v as usize] {
                cut += dual.ewgt[start + off] as u64;
            }
        }
    }
    cut
}

/// Total MPI communication volume per LTS cycle (the "MPI volume" column of
/// Fig. 8): the connectivity-1 cut of the nodal hypergraph with
/// `Σ p` net costs — exact by Sec. III-A2.
pub fn mpi_volume(mesh: &HexMesh, levels: &Levels, part: &[u32]) -> u64 {
    NodalHypergraph::build(mesh, Some(levels)).cut_size(part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_mesh::HexMesh;

    fn two_level_row() -> (HexMesh, Levels) {
        let mut m = HexMesh::uniform(8, 1, 1, 1.0, 1.0);
        m.paint_box((6, 8), (0, 1), (0, 1), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        (m, lv)
    }

    #[test]
    fn perfect_balance_is_zero() {
        let (_, lv) = two_level_row();
        // parts: {0,1,2,6},{3,4,5,7}: each has 3 coarse + 1 fine
        let part = vec![0, 0, 0, 1, 1, 1, 0, 1];
        let rep = load_imbalance(&lv, &part, 2);
        assert_eq!(rep.total_pct, 0.0);
        assert!(rep.per_level_pct.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn fig1_style_imbalance() {
        let (_, lv) = two_level_row();
        // naive split: left part all coarse, right part coarse+all fine
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let rep = load_imbalance(&lv, &part, 2);
        // loads: part0 = 4, part1 = 2 + 2·2 = 6 → (6−4)/6 ≈ 33 %
        assert!((rep.total_pct - 100.0 * 2.0 / 6.0).abs() < 1e-9);
        // fine level entirely on part 1 → 100 % imbalance at that level
        assert_eq!(rep.per_level_pct[1], 100.0);
    }

    #[test]
    fn edge_cut_counts_weighted_faces() {
        let (m, lv) = two_level_row();
        // cut between elements 5 (level ≥... ) and 6
        let part = vec![0, 0, 0, 0, 0, 0, 1, 1];
        let cut = edge_cut(&m, &lv, &part);
        // edge (5,6): weight max(p5, p6) = 2 (element 5 was raised by
        // smoothing to level 1? check: smoothing raises neighbours of level-1
        // to ≥ 0 — here levels are 0 and 1 only, so no raise; p6 = 2)
        assert_eq!(cut, lv.p_of(5).max(lv.p_of(6)));
    }

    #[test]
    fn mpi_volume_matches_manual_count() {
        let (m, lv) = two_level_row();
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        // interface between elements 3|4 (both level 0 after paint at 6..8):
        // 4 shared corner nodes, each with cost p3 + p4
        let expect: u64 = 4 * (lv.p_of(3) + lv.p_of(4));
        assert_eq!(mpi_volume(&m, &lv, &part), expect);
    }

    #[test]
    fn volume_zero_when_unsplit() {
        let (m, lv) = two_level_row();
        let part = vec![0u32; 8];
        assert_eq!(mpi_volume(&m, &lv, &part), 0);
        assert_eq!(edge_cut(&m, &lv, &part), 0);
    }
}
