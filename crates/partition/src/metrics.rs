//! Partition quality metrics of Sec. IV-B: the load imbalance of Eq. 21
//! (total and per p-level), the weighted dual-graph edge cut, and the exact
//! MPI communication volume per LTS cycle (hypergraph connectivity-1 cut).

use lts_mesh::{DualGraph, HexMesh, Levels, NodalHypergraph};

/// Load-imbalance report (Eq. 21): `(max − min) / max × 100` where the load
/// of a part is the sum of its elements' `p`-weights.
#[derive(Debug, Clone)]
pub struct ImbalanceReport {
    /// Total work-load imbalance, in percent.
    pub total_pct: f64,
    /// Per-level imbalance (element counts per level), in percent.
    pub per_level_pct: Vec<f64>,
    /// Total p-weighted load per part.
    pub part_load: Vec<u64>,
    /// Element counts per (level, part), row-major by level.
    pub level_counts: Vec<Vec<u64>>,
}

/// Compute Eq. 21 for a K-way element partition.
pub fn load_imbalance(levels: &Levels, part: &[u32], k: usize) -> ImbalanceReport {
    assert_eq!(part.len(), levels.elem_level.len());
    let nl = levels.n_levels;
    let mut part_load = vec![0u64; k];
    let mut level_counts = vec![vec![0u64; k]; nl];
    for (e, &p) in part.iter().enumerate() {
        assert!((p as usize) < k, "part id {p} out of range");
        let lvl = levels.elem_level[e] as usize;
        part_load[p as usize] += 1u64 << lvl;
        level_counts[lvl][p as usize] += 1;
    }
    let pct = |vals: &[u64]| -> f64 {
        let max = *vals.iter().max().unwrap_or(&0);
        let min = *vals.iter().min().unwrap_or(&0);
        if max == 0 {
            0.0
        } else {
            (max - min) as f64 / max as f64 * 100.0
        }
    };
    let total_pct = pct(&part_load);
    let per_level_pct = level_counts.iter().map(|lc| pct(lc)).collect();
    ImbalanceReport {
        total_pct,
        per_level_pct,
        part_load,
        level_counts,
    }
}

/// Weighted dual-graph edge cut (the "graph cut" column of Fig. 8).
pub fn edge_cut(mesh: &HexMesh, levels: &Levels, part: &[u32]) -> u64 {
    let dual = DualGraph::build_weighted(mesh, levels);
    let mut cut = 0u64;
    for v in 0..dual.n_vertices() as u32 {
        let start = dual.xadj[v as usize] as usize;
        for (off, &u) in dual.neighbors(v).iter().enumerate() {
            if u > v && part[u as usize] != part[v as usize] {
                cut += dual.ewgt[start + off] as u64;
            }
        }
    }
    cut
}

/// Total MPI communication volume per LTS cycle (the "MPI volume" column of
/// Fig. 8): the connectivity-1 cut of the nodal hypergraph with
/// `Σ p` net costs — exact by Sec. III-A2.
pub fn mpi_volume(mesh: &HexMesh, levels: &Levels, part: &[u32]) -> u64 {
    NodalHypergraph::build(mesh, Some(levels)).cut_size(part)
}

/// Closed-form per-level prediction of what the runtime's deterministic
/// counters must read after one global step, computed from mesh topology,
/// levels and the element partition alone.
///
/// The runtime's exchange (`lts-runtime/src/exchange.rs`) sends, for every
/// `force_level(l)` call and every interface DOF in `touched[l]` shared by
/// `λ ≥ 2` ranks, one partial value along each *ordered* rank pair — so a
/// single shared DOF contributes `λ(λ−1)` sent values per call. That is a
/// redundant-assembly volume, deliberately *not* the connectivity-1 cut of
/// [`mpi_volume`] (which counts `λ−1` per DOF with `Σ p` net costs).
///
/// Exact when the discretisation's DOFs coincide with the mesh corner nodes,
/// i.e. polynomial order 1 — the integration tests run at that order and
/// assert bitwise equality with the runtime registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeOracle {
    /// `force_level(l)` calls per global step: `2^l`.
    pub calls: Vec<u64>,
    /// `|elems[l]|` — elements applied per `force_level(l)` call.
    pub elems: Vec<u64>,
    /// Masked element applications per global step: `calls[l] · |elems[l]|`.
    pub elem_ops: Vec<u64>,
    /// DOF values sent per global step at level `l`:
    /// `calls[l] · Σ_{d ∈ touched[l], λ_d ≥ 2} λ_d(λ_d − 1)`.
    pub dofs_sent: Vec<u64>,
    /// Point-to-point messages per global step at level `l`:
    /// `calls[l] · 2 · #{unordered rank pairs sharing a touched[l] DOF}`.
    pub msgs_sent: Vec<u64>,
}

impl ExchangeOracle {
    pub fn total_elem_ops(&self) -> u64 {
        self.elem_ops.iter().sum()
    }

    pub fn total_dofs_sent(&self) -> u64 {
        self.dofs_sent.iter().sum()
    }

    pub fn total_msgs_sent(&self) -> u64 {
        self.msgs_sent.iter().sum()
    }
}

/// Predict the runtime's per-level exchange counters for one global step.
///
/// Replays `LtsSetup`'s set definitions on the corner nodes: a node's level
/// is the max level of its adjacent elements, `elems[k]` are the elements
/// containing at least one node of level exactly `k`, and `touched[k]` is
/// the union of those elements' nodes.
pub fn exchange_oracle(mesh: &HexMesh, levels: &Levels, part: &[u32]) -> ExchangeOracle {
    assert_eq!(part.len(), mesh.n_elems());
    assert_eq!(part.len(), levels.elem_level.len());
    let nl = levels.n_levels;
    let n_nodes = mesh.n_corner_nodes();

    // Node adjacency, node levels, and the inverse element → node lists.
    let mut node_level = vec![0u8; n_nodes];
    let mut node_elems: Vec<Vec<u32>> = Vec::with_capacity(n_nodes);
    let mut elem_nodes: Vec<Vec<u32>> = vec![Vec::new(); mesh.n_elems()];
    for n in 0..n_nodes as u32 {
        let es = mesh.node_elems(n);
        node_level[n as usize] = es
            .iter()
            .map(|&e| levels.elem_level[e as usize])
            .max()
            .expect("corner node adjacent to no element");
        for &e in &es {
            elem_nodes[e as usize].push(n);
        }
        node_elems.push(es);
    }

    // The set of ranks owning each node, sorted and deduplicated once.
    let node_ranks: Vec<Vec<u32>> = node_elems
        .iter()
        .map(|es| {
            let mut rs: Vec<u32> = es.iter().map(|&e| part[e as usize]).collect();
            rs.sort_unstable();
            rs.dedup();
            rs
        })
        .collect();

    // elems[k]: elements containing ≥ 1 node of level exactly k.
    let mut elems_k: Vec<Vec<u32>> = vec![Vec::new(); nl];
    let mut level_seen = vec![false; nl];
    for (e, ns) in elem_nodes.iter().enumerate() {
        level_seen.iter_mut().for_each(|s| *s = false);
        for &n in ns {
            level_seen[node_level[n as usize] as usize] = true;
        }
        for (k, &seen) in level_seen.iter().enumerate() {
            if seen {
                elems_k[k].push(e as u32);
            }
        }
    }

    let mut calls = vec![0u64; nl];
    let mut elems = vec![0u64; nl];
    let mut elem_ops = vec![0u64; nl];
    let mut dofs_sent = vec![0u64; nl];
    let mut msgs_sent = vec![0u64; nl];
    // Stamp array dedups touched[k] node traversal without re-allocating.
    let mut stamp = vec![usize::MAX; n_nodes];
    for k in 0..nl {
        calls[k] = 1u64 << k;
        elems[k] = elems_k[k].len() as u64;
        elem_ops[k] = calls[k] * elems[k];
        let mut lambda_sum = 0u64;
        let mut pairs = std::collections::BTreeSet::new();
        for &e in &elems_k[k] {
            for &n in &elem_nodes[e as usize] {
                if stamp[n as usize] == k {
                    continue;
                }
                stamp[n as usize] = k;
                let rs = &node_ranks[n as usize];
                let lambda = rs.len() as u64;
                if lambda >= 2 {
                    lambda_sum += lambda * (lambda - 1);
                    for i in 0..rs.len() {
                        for j in i + 1..rs.len() {
                            pairs.insert((rs[i], rs[j]));
                        }
                    }
                }
            }
        }
        dofs_sent[k] = calls[k] * lambda_sum;
        msgs_sent[k] = calls[k] * 2 * pairs.len() as u64;
    }
    ExchangeOracle {
        calls,
        elems,
        elem_ops,
        dofs_sent,
        msgs_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_mesh::HexMesh;

    fn two_level_row() -> (HexMesh, Levels) {
        let mut m = HexMesh::uniform(8, 1, 1, 1.0, 1.0);
        m.paint_box((6, 8), (0, 1), (0, 1), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        (m, lv)
    }

    #[test]
    fn perfect_balance_is_zero() {
        let (_, lv) = two_level_row();
        // parts: {0,1,2,6},{3,4,5,7}: each has 3 coarse + 1 fine
        let part = vec![0, 0, 0, 1, 1, 1, 0, 1];
        let rep = load_imbalance(&lv, &part, 2);
        assert_eq!(rep.total_pct, 0.0);
        assert!(rep.per_level_pct.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn fig1_style_imbalance() {
        let (_, lv) = two_level_row();
        // naive split: left part all coarse, right part coarse+all fine
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let rep = load_imbalance(&lv, &part, 2);
        // loads: part0 = 4, part1 = 2 + 2·2 = 6 → (6−4)/6 ≈ 33 %
        assert!((rep.total_pct - 100.0 * 2.0 / 6.0).abs() < 1e-9);
        // fine level entirely on part 1 → 100 % imbalance at that level
        assert_eq!(rep.per_level_pct[1], 100.0);
    }

    #[test]
    fn edge_cut_counts_weighted_faces() {
        let (m, lv) = two_level_row();
        // cut between elements 5 (level ≥... ) and 6
        let part = vec![0, 0, 0, 0, 0, 0, 1, 1];
        let cut = edge_cut(&m, &lv, &part);
        // edge (5,6): weight max(p5, p6) = 2 (element 5 was raised by
        // smoothing to level 1? check: smoothing raises neighbours of level-1
        // to ≥ 0 — here levels are 0 and 1 only, so no raise; p6 = 2)
        assert_eq!(cut, lv.p_of(5).max(lv.p_of(6)));
    }

    #[test]
    fn mpi_volume_matches_manual_count() {
        let (m, lv) = two_level_row();
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        // interface between elements 3|4 (both level 0 after paint at 6..8):
        // 4 shared corner nodes, each with cost p3 + p4
        let expect: u64 = 4 * (lv.p_of(3) + lv.p_of(4));
        assert_eq!(mpi_volume(&m, &lv, &part), expect);
    }

    #[test]
    fn volume_zero_when_unsplit() {
        let (m, lv) = two_level_row();
        let part = vec![0u32; 8];
        assert_eq!(mpi_volume(&m, &lv, &part), 0);
        assert_eq!(edge_cut(&m, &lv, &part), 0);
    }

    #[test]
    fn imbalance_report_hand_computed() {
        let (_, lv) = two_level_row();
        // 2 parts, 2 levels: part 0 = elems 0–3 (all coarse), part 1 =
        // elems 4,5 (coarse) + 6,7 (fine, p = 2)
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let rep = load_imbalance(&lv, &part, 2);
        assert_eq!(rep.part_load, vec![4, 2 + 2 * 2]);
        assert_eq!(rep.level_counts, vec![vec![4, 2], vec![0, 2]]);
        // level 0: (4 − 2)/4 → 50 %; level 1: all on part 1 → 100 %
        assert!((rep.per_level_pct[0] - 50.0).abs() < 1e-12);
        assert_eq!(rep.per_level_pct[1], 100.0);
        assert!((rep.total_pct - 100.0 * 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_zero_for_identical_parts() {
        // Synthetic levels whose two parts are element-for-element identical.
        let lv = Levels {
            elem_level: vec![0, 1, 1, 2, 0, 1, 1, 2],
            n_levels: 3,
            dt_global: 1.0,
        };
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let rep = load_imbalance(&lv, &part, 2);
        assert_eq!(rep.total_pct, 0.0);
        assert!(rep.per_level_pct.iter().all(|&p| p == 0.0));
        assert_eq!(rep.part_load[0], rep.part_load[1]);
    }

    // --- exchange_oracle -------------------------------------------------
    //
    // two_level_row geometry: 8 elements in a row, elems 6,7 at level 1.
    // Corner-node slices i = 0..=8 hold 4 nodes each; slice i touches elems
    // i−1 and i. Node level = max adjacent elem level, so slices 6,7,8 are
    // level 1. elems[0] = {0..5} (elem 5's slice-5 nodes are level 0),
    // elems[1] = {5,6,7}; touched[0] = slices 0..=6, touched[1] = slices
    // 5..=8. calls = [1, 2].

    #[test]
    fn oracle_structure_on_two_level_row() {
        let (m, lv) = two_level_row();
        let part = vec![0u32; 8];
        let o = exchange_oracle(&m, &lv, &part);
        assert_eq!(o.calls, vec![1, 2]);
        assert_eq!(o.elems, vec![6, 3]);
        assert_eq!(o.elem_ops, vec![6, 6]);
        // single part → nothing crosses
        assert_eq!(o.total_dofs_sent(), 0);
        assert_eq!(o.total_msgs_sent(), 0);
    }

    #[test]
    fn oracle_cut_in_coarse_region() {
        let (m, lv) = two_level_row();
        // cut between elems 3 | 4: the 4 shared slice-4 nodes are level 0
        // and lie only in touched[0]
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let o = exchange_oracle(&m, &lv, &part);
        // 4 nodes × λ(λ−1) = 2, 1 call at level 0
        assert_eq!(o.dofs_sent, vec![8, 0]);
        // one rank pair → 2 messages per call
        assert_eq!(o.msgs_sent, vec![2, 0]);
    }

    #[test]
    fn oracle_cut_in_fine_region_pays_per_call() {
        let (m, lv) = two_level_row();
        // cut between elems 6 | 7: the 4 shared slice-7 nodes are level 1
        // and lie only in touched[1], exchanged on each of the 2 calls
        let part = vec![0, 0, 0, 0, 0, 0, 0, 1];
        let o = exchange_oracle(&m, &lv, &part);
        assert_eq!(o.dofs_sent, vec![0, 16]);
        assert_eq!(o.msgs_sent, vec![0, 4]);
    }

    #[test]
    fn oracle_counts_multi_rank_corners() {
        // 2×2×1 uniform mesh, one element per part: the 2 centre nodes are
        // shared by all 4 ranks (λ = 4 → 12 values each), the 8 edge-mid
        // nodes by 2 ranks (2 values each)
        let m = HexMesh::uniform(2, 2, 1, 1.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        assert_eq!(lv.n_levels, 1);
        let part = vec![0, 1, 2, 3];
        let o = exchange_oracle(&m, &lv, &part);
        assert_eq!(o.dofs_sent, vec![2 * 12 + 8 * 2]);
        // all 6 unordered rank pairs share a centre node
        assert_eq!(o.msgs_sent, vec![2 * 6]);
        assert_eq!(o.elem_ops, vec![4]);
    }
}
