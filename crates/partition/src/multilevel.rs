//! The multilevel K-way graph partitioner: heavy-edge matching coarsening,
//! greedy initial bisections at the coarsest level, FM refinement during
//! uncoarsening, and recursive bisection for K parts.
//!
//! With `ncon = 1` and `p_e` vertex weights this reproduces the paper's
//! SCOTCH baseline; with one constraint per p-level it reproduces the MeTiS
//! multi-constraint strategy.

use crate::graph::Graph;
use crate::refine::{
    grow_initial, refine_bisection_observed, side_weights, violation, BisectTarget,
};
use lts_obs::MetricsRegistry;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Metric names of the multilevel V-cycle (level = coarsening depth).
pub mod names {
    /// Histogram: time coarsening one V-cycle level (matching + contraction).
    pub const VCYCLE_COARSEN: &str = "vcycle.coarsen";
    /// Histogram: time solving the coarsest-level initial bisection.
    pub const VCYCLE_INITIAL: &str = "vcycle.initial";
    /// Histogram: time refining after projection back to one V-cycle level.
    pub const VCYCLE_REFINE: &str = "vcycle.refine";
    /// Counter: bisections performed (one per recursive split).
    pub const BISECTIONS: &str = "vcycle.bisections";
    /// Counter: coarsening attempts abandoned for shrinking too slowly.
    pub const COARSEN_STALLS: &str = "vcycle.coarsen_stalls";
}

/// Tuning knobs of the multilevel engine.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Allowed relative imbalance ε of Eq. 19 (per bisection).
    pub eps: f64,
    /// RNG seed; identical seeds give identical partitions.
    pub seed: u64,
    /// Run the explicit rebalancing pass around FM (the PaToH-style
    /// "final_imbal enforcement"); `false` mimics MeTiS, which only
    /// *constrains* balance during refinement.
    pub active_rebalance: bool,
    /// Initial bisections tried at the coarsest level.
    pub n_inits: usize,
    /// Split `eps` across the ~log2(K) nested bisections so the compounded
    /// K-way imbalance stays within `eps`. Modern practice; 2015-era MeTiS
    /// multi-constraint effectively compounded the tolerance instead, which
    /// is the behaviour the paper's Fig. 7 exposes — set `false` to mimic it.
    pub adjust_eps: bool,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            eps: 0.05,
            seed: 1,
            active_rebalance: true,
            n_inits: 4,
            adjust_eps: true,
        }
    }
}

const COARSEST_N: usize = 240;
const MIN_SHRINK: f64 = 0.92;

/// Partition `g` into `k` parts. Returns `part[v] ∈ 0..k`.
pub fn partition_kway(g: &Graph, k: usize, cfg: &PartitionConfig) -> Vec<u32> {
    partition_kway_observed(g, k, cfg, &mut MetricsRegistry::new())
}

/// [`partition_kway`], recording V-cycle phase timers and FM counters into
/// `reg` (metric level = V-cycle coarsening depth).
pub fn partition_kway_observed(
    g: &Graph,
    k: usize,
    cfg: &PartitionConfig,
    reg: &mut MetricsRegistry,
) -> Vec<u32> {
    assert!(k >= 1);
    assert!(
        k <= g.n_vertices(),
        "cannot split {} vertices into {k} parts",
        g.n_vertices()
    );
    let mut part = vec![0u32; g.n_vertices()];
    let ids: Vec<u32> = (0..g.n_vertices() as u32).collect();
    // split the K-way tolerance across the ~log2(k) nested bisections so the
    // compounded imbalance stays within cfg.eps
    let depth_levels = (k as f64).log2().ceil().max(1.0);
    let eps_b = if cfg.adjust_eps {
        (1.0 + cfg.eps).powf(1.0 / depth_levels) - 1.0
    } else {
        cfg.eps
    };
    let cfg_b = PartitionConfig { eps: eps_b, ..*cfg };
    recurse(g, &ids, k, 0, &cfg_b, 0, &mut part, reg);
    part
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    g: &Graph,
    global_ids: &[u32],
    k: usize,
    first_part: u32,
    cfg: &PartitionConfig,
    depth: u64,
    out: &mut [u32],
    reg: &mut MetricsRegistry,
) {
    if k == 1 {
        for &v in global_ids {
            out[v as usize] = first_part;
        }
        return;
    }
    let k_left = k / 2;
    let target = BisectTarget {
        f_left: k_left as f64 / k as f64,
        eps: cfg.eps,
    };
    reg.inc(names::BISECTIONS, 1);
    let side = bisect_inner(g, &target, cfg, depth, 0, reg);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (v, &s) in side.iter().enumerate() {
        if s == 0 {
            left.push(v as u32);
        } else {
            right.push(v as u32);
        }
    }
    // guard against degenerate sides (can only happen on pathological graphs)
    if left.is_empty() || right.is_empty() {
        let all: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let (l, r) = all.split_at(k_left.max(1).min(all.len() - 1));
        left = l.to_vec();
        right = r.to_vec();
    }
    let (g_left, map_left) = g.induced_subgraph(&left);
    let (g_right, map_right) = g.induced_subgraph(&right);
    let gl_ids: Vec<u32> = map_left.iter().map(|&l| global_ids[l as usize]).collect();
    let gr_ids: Vec<u32> = map_right.iter().map(|&l| global_ids[l as usize]).collect();
    recurse(
        &g_left,
        &gl_ids,
        k_left,
        first_part,
        cfg,
        2 * depth + 1,
        out,
        reg,
    );
    recurse(
        &g_right,
        &gr_ids,
        k - k_left,
        first_part + k_left as u32,
        cfg,
        2 * depth + 2,
        out,
        reg,
    );
}

/// Multilevel bisection of `g`.
pub fn bisect_multilevel(
    g: &Graph,
    target: &BisectTarget,
    cfg: &PartitionConfig,
    depth: u64,
) -> Vec<u8> {
    bisect_inner(g, target, cfg, depth, 0, &mut MetricsRegistry::new())
}

fn bisect_inner(
    g: &Graph,
    target: &BisectTarget,
    cfg: &PartitionConfig,
    depth: u64,
    vdepth: u8,
    reg: &mut MetricsRegistry,
) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ depth);
    if g.n_vertices() <= COARSEST_N {
        let mut span = reg.start_span(names::VCYCLE_INITIAL, Some(vdepth));
        return initial_bisection(g, target, cfg, &mut rng, span.registry());
    }
    let coarsen = reg.start_span(names::VCYCLE_COARSEN, Some(vdepth));
    let (matched, n_coarse) = heavy_edge_matching(g, &mut rng);
    if n_coarse as f64 > MIN_SHRINK * g.n_vertices() as f64 {
        // coarsening stalled — solve directly
        coarsen.cancel();
        reg.inc(names::COARSEN_STALLS, 1);
        let mut span = reg.start_span(names::VCYCLE_INITIAL, Some(vdepth));
        return initial_bisection(g, target, cfg, &mut rng, span.registry());
    }
    let (coarse, cmap) = contract(g, &matched, n_coarse);
    drop(coarsen);
    let coarse_side = bisect_inner(
        &coarse,
        target,
        cfg,
        depth.wrapping_add(0x5bd1e995),
        vdepth.saturating_add(1),
        reg,
    );
    // project and refine
    let mut side = vec![0u8; g.n_vertices()];
    for v in 0..g.n_vertices() {
        side[v] = coarse_side[cmap[v] as usize];
    }
    let mut refine = reg.start_span(names::VCYCLE_REFINE, Some(vdepth));
    refine_bisection_observed(
        g,
        &mut side,
        target,
        4,
        cfg.active_rebalance,
        Some(vdepth),
        refine.registry(),
    );
    side
}

fn initial_bisection(
    g: &Graph,
    target: &BisectTarget,
    cfg: &PartitionConfig,
    rng: &mut ChaCha8Rng,
    reg: &mut MetricsRegistry,
) -> Vec<u8> {
    let tot = g.total_weights();
    let limits = target.limits(&tot);
    let mut best: Option<(f64, u64, Vec<u8>)> = None;
    for _ in 0..cfg.n_inits.max(1) {
        let mut side = grow_initial(g, target, rng);
        refine_bisection_observed(g, &mut side, target, 8, true, None, reg);
        let sw = side_weights(g, &side);
        let viol = violation(&sw, &limits);
        let part: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let cut = g.cut(&part);
        let better = match &best {
            None => true,
            Some((bv, bc, _)) => (viol, cut) < (*bv, *bc),
        };
        if better {
            best = Some((viol, cut, side));
        }
    }
    best.unwrap().2
}

/// Heavy-edge matching. Returns `match_of[v]` (partner or self) and the
/// number of coarse vertices.
fn heavy_edge_matching(g: &Graph, rng: &mut ChaCha8Rng) -> (Vec<u32>, usize) {
    let n = g.n_vertices();
    let tot = g.total_weights();
    // cap coarse vertex weights so constraints stay spreadable
    let cap: Vec<u64> = tot
        .iter()
        .map(|&t| ((1.5 * t as f64 / COARSEST_N as f64).ceil() as u64).max(4))
        .collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut match_of: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut n_coarse = 0usize;
    for &v in &order {
        let vi = v as usize;
        if matched[vi] {
            continue;
        }
        let mut best: Option<(u32, u32)> = None; // (ewgt, u)
        for (idx, &u) in g.neighbors(v).iter().enumerate() {
            let ui = u as usize;
            if matched[ui] || u == v {
                continue;
            }
            let w = g.edge_weights(v)[idx];
            let fits = (0..g.ncon)
                .all(|c| g.vwgt[vi * g.ncon + c] as u64 + g.vwgt[ui * g.ncon + c] as u64 <= cap[c]);
            if fits && best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, u));
            }
        }
        matched[vi] = true;
        if let Some((_, u)) = best {
            matched[u as usize] = true;
            match_of[vi] = u;
            match_of[u as usize] = v;
        }
        n_coarse += 1;
    }
    (match_of, n_coarse)
}

/// Contract matched pairs into a coarse graph. Returns the coarse graph and
/// the fine→coarse vertex map.
fn contract(g: &Graph, match_of: &[u32], n_coarse: usize) -> (Graph, Vec<u32>) {
    let n = g.n_vertices();
    let mut cmap = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let vi = v as usize;
        if cmap[vi] != u32::MAX {
            continue;
        }
        cmap[vi] = next;
        let u = match_of[vi];
        if u != v {
            cmap[u as usize] = next;
        }
        next += 1;
    }
    debug_assert_eq!(next as usize, n_coarse);

    let mut vwgt = vec![0u32; n_coarse * g.ncon];
    for v in 0..n {
        let cv = cmap[v] as usize;
        for c in 0..g.ncon {
            vwgt[cv * g.ncon + c] += g.vwgt[v * g.ncon + c];
        }
    }

    // accumulate coarse adjacency with a timestamped scatter array
    let mut xadj = Vec::with_capacity(n_coarse + 1);
    let mut adj: Vec<u32> = Vec::with_capacity(g.adj.len() / 2);
    let mut ewgt: Vec<u32> = Vec::with_capacity(g.adj.len() / 2);
    let mut stamp = vec![u32::MAX; n_coarse];
    let mut slot = vec![0u32; n_coarse];
    xadj.push(0u32);
    // iterate coarse vertices in id order; find their constituents
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_coarse];
    for v in 0..n as u32 {
        members[cmap[v as usize] as usize].push(v);
    }
    for cv in 0..n_coarse as u32 {
        let start = adj.len();
        for &v in &members[cv as usize] {
            for (idx, &u) in g.neighbors(v).iter().enumerate() {
                let cu = cmap[u as usize];
                if cu == cv {
                    continue;
                }
                let w = g.edge_weights(v)[idx];
                if stamp[cu as usize] == cv {
                    ewgt[slot[cu as usize] as usize] += w;
                } else {
                    stamp[cu as usize] = cv;
                    slot[cu as usize] = adj.len() as u32;
                    adj.push(cu);
                    ewgt.push(w);
                }
            }
        }
        let _ = start;
        xadj.push(adj.len() as u32);
    }
    (
        Graph {
            xadj,
            adj,
            ewgt,
            ncon: g.ncon,
            vwgt,
        },
        cmap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_mesh::{HexMesh, Levels};

    fn mesh_graph(nx: usize, ny: usize, nz: usize) -> Graph {
        let m = HexMesh::uniform(nx, ny, nz, 1.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        Graph::scotch_baseline(&m, &lv)
    }

    #[test]
    fn kway_covers_all_parts() {
        let g = mesh_graph(8, 8, 4);
        let cfg = PartitionConfig::default();
        for k in [2usize, 3, 4, 7, 8, 16] {
            let part = partition_kway(&g, k, &cfg);
            let mut counts = vec![0usize; k];
            for &p in &part {
                assert!((p as usize) < k);
                counts[p as usize] += 1;
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "k={k}: empty part {counts:?}"
            );
        }
    }

    #[test]
    fn kway_balanced_single_constraint() {
        let g = mesh_graph(8, 8, 8);
        let cfg = PartitionConfig::default();
        let k = 8;
        let part = partition_kway(&g, k, &cfg);
        let pw = g.part_weights(&part, k);
        let tot: u64 = g.total_weights()[0];
        let target = tot as f64 / k as f64;
        for p in 0..k {
            let w = pw[p] as f64;
            assert!(
                (w / target - 1.0).abs() < 0.25,
                "part {p} weight {w} vs target {target}"
            );
        }
    }

    #[test]
    fn kway_cut_reasonable_on_cube() {
        // 8³ cube into 8 parts: ideal cut = 3 internal planes of 64 faces
        // each × ... recursive bisection should stay within a small factor.
        let g = mesh_graph(8, 8, 8);
        let cfg = PartitionConfig::default();
        let part = partition_kway(&g, 8, &cfg);
        let cut = g.cut(&part);
        // perfect: 3 × 64 = 192 cut faces (each unit weight)
        assert!(cut <= 192 * 2, "cut {cut} too far from optimal 192");
    }

    #[test]
    fn contraction_preserves_totals() {
        let g = mesh_graph(6, 6, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (m, nc) = heavy_edge_matching(&g, &mut rng);
        let (coarse, cmap) = contract(&g, &m, nc);
        assert_eq!(coarse.total_weights(), g.total_weights());
        assert!(coarse.n_vertices() < g.n_vertices());
        assert_eq!(cmap.len(), g.n_vertices());
        // coarse graph is symmetric
        for v in 0..coarse.n_vertices() as u32 {
            for &u in coarse.neighbors(v) {
                assert!(coarse.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn multiconstraint_kway_balances_levels() {
        let mut m = HexMesh::uniform(12, 12, 2, 1.0, 1.0);
        m.paint_box((4, 8), (4, 8), (0, 2), 2.0, 1.0);
        let lv = Levels::assign(&m, 0.5, 4);
        let g = Graph::multi_constraint(&m, &lv);
        let cfg = PartitionConfig {
            eps: 0.15,
            ..Default::default()
        };
        let k = 4;
        let part = partition_kway(&g, k, &cfg);
        let pw = g.part_weights(&part, k);
        let tot = g.total_weights();
        for c in 0..g.ncon {
            let target = tot[c] as f64 / k as f64;
            for p in 0..k {
                let w = pw[p * g.ncon + c] as f64;
                assert!(
                    w <= 2.0 * target + 2.0,
                    "level {c} part {p}: {w} vs {target} ({pw:?})"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = mesh_graph(6, 6, 6);
        let cfg = PartitionConfig::default();
        let a = partition_kway(&g, 4, &cfg);
        let b = partition_kway(&g, 4, &cfg);
        assert_eq!(a, b);
    }
}
