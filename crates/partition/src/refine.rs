//! Bisection machinery shared by the multilevel graph partitioner:
//! balance bookkeeping (Eq. 19), greedy-growing initial bisections,
//! Fiduccia–Mattheyses boundary refinement with rollback, and an explicit
//! rebalancing pass.

use crate::graph::Graph;
use lts_obs::MetricsRegistry;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;

/// Metric names recorded by the refinement machinery (level = V-cycle depth).
pub mod names {
    /// Counter: FM passes executed.
    pub const FM_PASSES: &str = "fm.passes";
    /// Counter: total cut improvement kept across FM passes.
    pub const FM_GAIN: &str = "fm.gain";
    /// Counter: vertex moves applied during FM passes (before rollback).
    pub const FM_MOVES: &str = "fm.moves";
    /// Counter: moves undone when rolling back to the best prefix.
    pub const FM_ROLLBACK: &str = "fm.rollback";
}

/// Target of one bisection step: side 0 should receive the fraction
/// `f_left` of every constraint, within relative tolerance `eps`.
#[derive(Debug, Clone, Copy)]
pub struct BisectTarget {
    pub f_left: f64,
    pub eps: f64,
}

impl BisectTarget {
    pub fn even(eps: f64) -> Self {
        BisectTarget { f_left: 0.5, eps }
    }

    /// Per-side, per-constraint weight limits `(1+ε) f_side Σw`.
    pub fn limits(&self, tot: &[u64]) -> Vec<[u64; 2]> {
        tot.iter()
            .map(|&t| {
                let l = ((1.0 + self.eps) * self.f_left * t as f64).ceil() as u64;
                let r = ((1.0 + self.eps) * (1.0 - self.f_left) * t as f64).ceil() as u64;
                // always allow at least one unit of headroom so single-vertex
                // constraints are placeable
                [l.max(1), r.max(1)]
            })
            .collect()
    }
}

/// Side weights: `sw[c][side]`.
pub fn side_weights(g: &Graph, side: &[u8]) -> Vec<[u64; 2]> {
    let mut sw = vec![[0u64; 2]; g.ncon];
    for v in 0..g.n_vertices() {
        let s = side[v] as usize;
        for c in 0..g.ncon {
            sw[c][s] += g.vwgt[v * g.ncon + c] as u64;
        }
    }
    sw
}

/// Worst normalized overload of any (constraint, side) against `limits`,
/// as a ratio (0 = feasible).
pub fn violation(sw: &[[u64; 2]], limits: &[[u64; 2]]) -> f64 {
    let mut worst = 0.0f64;
    for (c, s) in sw.iter().enumerate() {
        for side in 0..2 {
            if s[side] > limits[c][side] {
                let over = (s[side] - limits[c][side]) as f64 / limits[c][side].max(1) as f64;
                worst = worst.max(over);
            }
        }
    }
    worst
}

#[inline]
fn move_feasible(g: &Graph, v: usize, to: usize, sw: &[[u64; 2]], limits: &[[u64; 2]]) -> bool {
    for c in 0..g.ncon {
        let w = g.vwgt[v * g.ncon + c] as u64;
        if w > 0 && sw[c][to] + w > limits[c][to] {
            return false;
        }
    }
    true
}

fn apply_move(g: &Graph, v: usize, side: &mut [u8], sw: &mut [[u64; 2]]) {
    let from = side[v] as usize;
    let to = 1 - from;
    for c in 0..g.ncon {
        let w = g.vwgt[v * g.ncon + c] as u64;
        sw[c][from] -= w;
        sw[c][to] += w;
    }
    side[v] = to as u8;
}

/// FM gain of moving `v` to the other side: (external − internal) edge weight.
fn gain_of(g: &Graph, v: u32, side: &[u8]) -> i64 {
    let mut gain = 0i64;
    let s = side[v as usize];
    for (idx, &u) in g.neighbors(v).iter().enumerate() {
        let w = g.edge_weights(v)[idx] as i64;
        if side[u as usize] == s {
            gain -= w;
        } else {
            gain += w;
        }
    }
    gain
}

/// Greedy-growing initial bisection: BFS from a random seed fills side 0
/// until every constraint reaches its target, with adaptively loosened caps,
/// then a forced fill guarantees no constraint is left starved.
pub fn grow_initial(g: &Graph, target: &BisectTarget, rng: &mut ChaCha8Rng) -> Vec<u8> {
    let n = g.n_vertices();
    let tot = g.total_weights();
    let goals: Vec<u64> = tot
        .iter()
        .map(|&t| (target.f_left * t as f64).round() as u64)
        .collect();
    let mut side = vec![1u8; n];
    let mut w0 = vec![0u64; g.ncon];

    // BFS order from a random seed (deterministic given the rng).
    let seed = rng.gen_range(0..n) as u32;
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(seed);
    seen[seed as usize] = true;
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    // disconnected leftovers, in random order
    let mut rest: Vec<u32> = (0..n as u32).filter(|&v| !seen[v as usize]).collect();
    rest.shuffle(rng);
    order.extend(rest);

    // Pass 1..: add along BFS order while any constraint is under target and
    // the vertex does not overshoot a cap; loosen caps if stuck.
    let mut slack = 1.0 + target.eps;
    for _attempt in 0..4 {
        for &v in &order {
            if side[v as usize] == 0 {
                continue;
            }
            if (0..g.ncon).all(|c| w0[c] >= goals[c]) {
                break;
            }
            let vi = v as usize;
            let helps = (0..g.ncon).any(|c| g.vwgt[vi * g.ncon + c] > 0 && w0[c] < goals[c]);
            if !helps {
                continue;
            }
            let ok = (0..g.ncon).all(|c| {
                let w = g.vwgt[vi * g.ncon + c] as u64;
                w == 0 || w0[c] + w <= (slack * goals[c] as f64).ceil() as u64 + 1
            });
            if ok {
                side[vi] = 0;
                for c in 0..g.ncon {
                    w0[c] += g.vwgt[vi * g.ncon + c] as u64;
                }
            }
        }
        if (0..g.ncon).all(|c| w0[c] >= goals[c]) {
            break;
        }
        slack *= 1.5;
    }
    // Forced fill for any constraint still starved (overshoot permitted; the
    // rebalance/FM phases clean it up).
    for c in 0..g.ncon {
        if w0[c] >= goals[c] {
            continue;
        }
        for &v in &order {
            let vi = v as usize;
            if side[vi] == 1 && g.vwgt[vi * g.ncon + c] > 0 {
                side[vi] = 0;
                for cc in 0..g.ncon {
                    w0[cc] += g.vwgt[vi * g.ncon + cc] as u64;
                }
                if w0[c] >= goals[c] {
                    break;
                }
            }
        }
    }
    side
}

/// Record one FM pass outcome under `vcycle_level` (shared by the graph and
/// hypergraph engines).
pub fn record_fm_pass(reg: &mut MetricsRegistry, vcycle_level: Option<u8>, out: FmPassOutcome) {
    let key = |name| lts_obs::Key {
        name,
        level: vcycle_level,
        label: None,
    };
    reg.inc_key(key(names::FM_PASSES), 1);
    reg.inc_key(key(names::FM_GAIN), out.gain);
    reg.inc_key(key(names::FM_MOVES), out.moves);
    reg.inc_key(key(names::FM_ROLLBACK), out.rolled_back);
}

/// What one FM pass did: the kept cut improvement, the moves it tried, and
/// how many of those were rolled back past the best prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmPassOutcome {
    pub gain: u64,
    pub moves: u64,
    pub rolled_back: u64,
}

/// One FM pass with rollback: vertices move at most once, the best prefix of
/// the move sequence is kept. Returns the cut improvement (≥ 0).
pub fn fm_pass(g: &Graph, side: &mut [u8], sw: &mut [[u64; 2]], limits: &[[u64; 2]]) -> u64 {
    fm_pass_observed(g, side, sw, limits).gain
}

/// [`fm_pass`], reporting its move accounting for the observability layer.
pub fn fm_pass_observed(
    g: &Graph,
    side: &mut [u8],
    sw: &mut [[u64; 2]],
    limits: &[[u64; 2]],
) -> FmPassOutcome {
    let n = g.n_vertices();
    let mut gain = vec![0i64; n];
    let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
    let mut moved = vec![false; n];
    for v in 0..n as u32 {
        let is_boundary = g
            .neighbors(v)
            .iter()
            .any(|&u| side[u as usize] != side[v as usize]);
        if is_boundary {
            gain[v as usize] = gain_of(g, v, side);
            heap.push((gain[v as usize], v));
        }
    }
    let mut seq: Vec<u32> = Vec::new();
    let mut delta = 0i64; // cumulative cut change (negative = better)
    let mut best_delta = 0i64;
    let mut best_len = 0usize;
    let negative_allowance = (n / 8).max(8);
    let mut since_best = 0usize;

    while let Some((gv, v)) = heap.pop() {
        let vi = v as usize;
        if moved[vi] || gv != gain[vi] {
            continue; // stale entry
        }
        let to = 1 - side[vi] as usize;
        // never empty a side
        let from_count = side.iter().filter(|&&s| s as usize == 1 - to).count();
        if from_count <= 1 {
            continue;
        }
        if !move_feasible(g, vi, to, sw, limits) {
            continue;
        }
        apply_move(g, vi, side, sw);
        moved[vi] = true;
        seq.push(v);
        delta -= gv;
        if delta < best_delta {
            best_delta = delta;
            best_len = seq.len();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best > negative_allowance {
                break;
            }
        }
        // refresh neighbour gains
        for &u in g.neighbors(v) {
            let ui = u as usize;
            if !moved[ui] {
                gain[ui] = gain_of(g, u, side);
                heap.push((gain[ui], u));
            }
        }
    }
    // roll back past the best prefix
    for &v in seq[best_len..].iter().rev() {
        apply_move(g, v as usize, side, sw);
    }
    FmPassOutcome {
        gain: (-best_delta) as u64,
        moves: seq.len() as u64,
        rolled_back: (seq.len() - best_len) as u64,
    }
}

/// Explicit rebalancing: while a (constraint, side) exceeds its limit, move
/// the overloaded-side vertex with the least cut damage that reduces the
/// violation. Used by the hypergraph-style engines and to make infeasible
/// coarse solutions feasible.
pub fn rebalance(g: &Graph, side: &mut [u8], sw: &mut [[u64; 2]], limits: &[[u64; 2]]) {
    for _ in 0..4 * g.n_vertices() {
        // find worst violation
        let mut worst: Option<(usize, usize)> = None;
        let mut worst_over = 0.0f64;
        for c in 0..g.ncon {
            for s in 0..2 {
                if sw[c][s] > limits[c][s] {
                    let over = (sw[c][s] - limits[c][s]) as f64 / limits[c][s].max(1) as f64;
                    if over > worst_over {
                        worst_over = over;
                        worst = Some((c, s));
                    }
                }
            }
        }
        let Some((c, s)) = worst else { break };
        // best vertex to evict: carries weight in c, on side s, max gain
        let mut best: Option<(i64, u32)> = None;
        for v in 0..g.n_vertices() as u32 {
            let vi = v as usize;
            if side[vi] as usize != s || g.vwgt[vi * g.ncon + c] == 0 {
                continue;
            }
            let gv = gain_of(g, v, side);
            if best.is_none_or(|(bg, _)| gv > bg) {
                best = Some((gv, v));
            }
        }
        let Some((_, v)) = best else { break };
        apply_move(g, v as usize, side, sw);
    }
}

/// Full bisection refinement: FM passes to a fixed point (≤ `max_passes`).
pub fn refine_bisection(
    g: &Graph,
    side: &mut [u8],
    target: &BisectTarget,
    max_passes: usize,
    active_rebalance: bool,
) {
    refine_bisection_observed(
        g,
        side,
        target,
        max_passes,
        active_rebalance,
        None,
        &mut MetricsRegistry::new(),
    );
}

/// [`refine_bisection`], recording pass/gain/move/rollback counters under
/// `vcycle_level` into `reg`.
pub fn refine_bisection_observed(
    g: &Graph,
    side: &mut [u8],
    target: &BisectTarget,
    max_passes: usize,
    active_rebalance: bool,
    vcycle_level: Option<u8>,
    reg: &mut MetricsRegistry,
) {
    let tot = g.total_weights();
    let limits = target.limits(&tot);
    let mut sw = side_weights(g, side);
    if active_rebalance {
        rebalance(g, side, &mut sw, &limits);
    }
    for _ in 0..max_passes {
        let out = fm_pass_observed(g, side, &mut sw, &limits);
        record_fm_pass(reg, vcycle_level, out);
        if out.gain == 0 {
            break;
        }
    }
    if active_rebalance {
        rebalance(g, side, &mut sw, &limits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// 2×n grid graph, unit weights.
    fn grid_graph(nx: usize, ny: usize) -> Graph {
        let id = |i: usize, j: usize| (i + nx * j) as u32;
        let n = nx * ny;
        let mut xadj = vec![0u32];
        let mut adj = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                if i > 0 {
                    adj.push(id(i - 1, j));
                }
                if i + 1 < nx {
                    adj.push(id(i + 1, j));
                }
                if j > 0 {
                    adj.push(id(i, j - 1));
                }
                if j + 1 < ny {
                    adj.push(id(i, j + 1));
                }
                xadj.push(adj.len() as u32);
            }
        }
        let ewgt = vec![1; adj.len()];
        Graph {
            xadj,
            adj,
            ewgt,
            ncon: 1,
            vwgt: vec![1; n],
        }
    }

    #[test]
    fn grow_initial_hits_target() {
        let g = grid_graph(8, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let t = BisectTarget::even(0.05);
        let side = grow_initial(&g, &t, &mut rng);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((24..=40).contains(&w0), "side0 = {w0}");
    }

    #[test]
    fn fm_finds_straight_cut_on_grid() {
        // an 8×8 grid bisected optimally has cut 8
        let g = grid_graph(8, 8);
        let t = BisectTarget::even(0.05);
        let mut best = u64::MAX;
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut side = grow_initial(&g, &t, &mut rng);
            refine_bisection(&g, &mut side, &t, 10, true);
            let part: Vec<u32> = side.iter().map(|&s| s as u32).collect();
            best = best.min(g.cut(&part));
        }
        assert!(best <= 10, "grid cut {best} far from optimal 8");
    }

    #[test]
    fn refinement_never_breaks_balance() {
        let g = grid_graph(10, 6);
        let t = BisectTarget::even(0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut side = grow_initial(&g, &t, &mut rng);
        refine_bisection(&g, &mut side, &t, 10, true);
        let sw = side_weights(&g, &side);
        let limits = t.limits(&g.total_weights());
        assert_eq!(violation(&sw, &limits), 0.0, "sw {:?}", sw);
    }

    #[test]
    fn multiconstraint_bisection_balances_each_slot() {
        // 8×4 grid with two one-hot constraints: left half slot 0, right half slot 1
        let mut g = grid_graph(8, 4);
        g.ncon = 2;
        let mut vwgt = vec![0u32; g.n_vertices() * 2];
        for j in 0..4 {
            for i in 0..8 {
                let v = i + 8 * j;
                vwgt[v * 2 + usize::from(i >= 4)] = 1;
            }
        }
        g.vwgt = vwgt;
        let t = BisectTarget::even(0.10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut side = grow_initial(&g, &t, &mut rng);
        refine_bisection(&g, &mut side, &t, 10, true);
        let sw = side_weights(&g, &side);
        for c in 0..2 {
            assert!(
                (sw[c][0] as i64 - sw[c][1] as i64).abs() <= 2,
                "constraint {c} unbalanced: {:?}",
                sw
            );
        }
    }

    #[test]
    fn rebalance_fixes_overload() {
        let g = grid_graph(6, 6);
        let mut side = vec![0u8; 36];
        side[35] = 1; // everything on side 0
        let t = BisectTarget::even(0.05);
        let limits = t.limits(&g.total_weights());
        let mut sw = side_weights(&g, &side);
        rebalance(&g, &mut side, &mut sw, &limits);
        assert_eq!(violation(&sw, &limits), 0.0);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((12..=24).contains(&w0));
    }
}
