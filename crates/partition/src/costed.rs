//! Heterogeneous per-element costs (Sec. III-A1): "Existing graph
//! partitioning tools can balance work between partitions by weighting the
//! graph vertices, which can be used to balance cheaper acoustic domains
//! with more expensive elastic ones."
//!
//! An element's work per sub-step is `cost_e` (≈ 1 for acoustic, ≈ 3–4 for
//! elastic: three coupled components); its work per LTS cycle is
//! `cost_e · p_e`. These builders fold the cost into the balance constraints
//! of every strategy.

use crate::graph::Graph;
use crate::hgraph::HGraph;
use crate::hmultilevel::{hpartition_kway, HPartitionConfig};
use crate::kway::{kway_refine_graph, kway_refine_hgraph};
use crate::multilevel::{partition_kway, PartitionConfig};
use crate::strategy::Strategy;
use lts_mesh::{DualGraph, HexMesh, Levels, NodalHypergraph};

/// Relative per-sub-step cost of an elastic vs an acoustic element: three
/// displacement components with 9 gradient + 6 stress contractions vs one
/// component with 3 — the factor SPECFEM-style codes observe is ≈ 3.5.
pub const ELASTIC_COST: u32 = 4;
pub const ACOUSTIC_COST: u32 = 1;

/// Per-element costs for a mesh with an elastic sub-region.
pub fn elastic_region_costs(mesh: &HexMesh, is_elastic: impl Fn(u32) -> bool) -> Vec<u32> {
    (0..mesh.n_elems() as u32)
        .map(|e| {
            if is_elastic(e) {
                ELASTIC_COST
            } else {
                ACOUSTIC_COST
            }
        })
        .collect()
}

/// Partition with per-element costs folded into every balance constraint.
pub fn partition_mesh_costed(
    mesh: &HexMesh,
    levels: &Levels,
    costs: &[u32],
    k: usize,
    strategy: Strategy,
    seed: u64,
) -> Vec<u32> {
    assert_eq!(costs.len(), mesh.n_elems());
    assert!(costs.iter().all(|&c| c >= 1));
    match strategy {
        Strategy::ScotchBaseline => {
            let dual = DualGraph::build_weighted(mesh, levels);
            let vwgt = (0..mesh.n_elems() as u32)
                .map(|e| costs[e as usize] * levels.p_of(e) as u32)
                .collect();
            let g = Graph {
                xadj: dual.xadj,
                adj: dual.adj,
                ewgt: dual.ewgt,
                ncon: 1,
                vwgt,
            };
            let cfg = PartitionConfig {
                eps: 0.03,
                seed,
                active_rebalance: true,
                n_inits: 4,
                adjust_eps: true,
            };
            let mut part = partition_kway(&g, k, &cfg);
            kway_refine_graph(&g, &mut part, k, 0.03, 3, seed);
            part
        }
        Strategy::MetisMc => {
            let dual = DualGraph::build_weighted(mesh, levels);
            let ncon = levels.n_levels;
            let mut vwgt = vec![0u32; mesh.n_elems() * ncon];
            for e in 0..mesh.n_elems() {
                vwgt[e * ncon + levels.elem_level[e] as usize] = costs[e];
            }
            let g = Graph {
                xadj: dual.xadj,
                adj: dual.adj,
                ewgt: dual.ewgt,
                ncon,
                vwgt,
            };
            let cfg = PartitionConfig {
                eps: 0.05,
                seed,
                active_rebalance: false,
                n_inits: 4,
                adjust_eps: false,
            };
            let mut part = partition_kway(&g, k, &cfg);
            kway_refine_graph(&g, &mut part, k, 0.05 * k.ilog2().max(1) as f64, 3, seed);
            part
        }
        Strategy::Patoh { final_imbal } => {
            let nh = NodalHypergraph::build(mesh, Some(levels));
            let ncon = levels.n_levels;
            let mut vwgt = vec![0u32; mesh.n_elems() * ncon];
            for e in 0..mesh.n_elems() {
                vwgt[e * ncon + levels.elem_level[e] as usize] = costs[e];
            }
            let nets =
                (0..nh.n_nets() as u32).map(|n| (nh.pins_of(n).to_vec(), nh.netcost[n as usize]));
            let h = HGraph::from_nets(mesh.n_elems(), nets, ncon, vwgt);
            let cfg = HPartitionConfig {
                final_imbal,
                seed,
                n_inits: 4,
            };
            let mut part = hpartition_kway(&h, k, &cfg);
            kway_refine_hgraph(&h, &mut part, k, final_imbal, 3, seed);
            part
        }
        Strategy::ScotchP => {
            // per-level subgraphs with cost vertex weights, then the usual
            // greedy coupling — reuse the graph engine per level
            crate::scotch_p::partition_scotch_p_costed(mesh, levels, costs, k, seed)
        }
    }
}

/// Eq. 21 with per-element costs: load = `Σ cost_e · p_e` per part.
pub fn costed_imbalance(levels: &Levels, costs: &[u32], part: &[u32], k: usize) -> f64 {
    let mut load = vec![0u64; k];
    for (e, &p) in part.iter().enumerate() {
        load[p as usize] += costs[e] as u64 * levels.p_of(e as u32);
    }
    let max = *load.iter().max().unwrap_or(&0);
    let min = *load.iter().min().unwrap_or(&0);
    if max == 0 {
        0.0
    } else {
        (max - min) as f64 / max as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_mesh::{BenchmarkMesh, MeshKind};

    /// Trench with the left half elastic.
    fn mixed_mesh() -> (BenchmarkMesh, Vec<u32>) {
        let b = BenchmarkMesh::build(MeshKind::Trench, 4_000);
        let half = b.mesh.nx / 2;
        let costs = elastic_region_costs(&b.mesh, |e| b.mesh.elem_ijk(e).0 < half);
        (b, costs)
    }

    #[test]
    fn costed_partitions_balance_costed_load() {
        let (b, costs) = mixed_mesh();
        let k = 8;
        for s in [
            Strategy::ScotchBaseline,
            Strategy::Patoh { final_imbal: 0.05 },
            Strategy::ScotchP,
        ] {
            let part = partition_mesh_costed(&b.mesh, &b.levels, &costs, k, s, 1);
            let imb = costed_imbalance(&b.levels, &costs, &part, k);
            assert!(imb < 25.0, "{}: costed imbalance {imb}%", s.name());
        }
    }

    #[test]
    fn uncosted_partition_is_worse_under_costed_metric() {
        let (b, costs) = mixed_mesh();
        let k = 8;
        let plain =
            crate::strategy::partition_mesh(&b.mesh, &b.levels, k, Strategy::ScotchBaseline, 1);
        let costed =
            partition_mesh_costed(&b.mesh, &b.levels, &costs, k, Strategy::ScotchBaseline, 1);
        let imb_plain = costed_imbalance(&b.levels, &costs, &plain, k);
        let imb_costed = costed_imbalance(&b.levels, &costs, &costed, k);
        assert!(
            imb_costed < imb_plain,
            "costed {imb_costed}% should beat uncosted {imb_plain}%"
        );
        // the uncosted partition really is lopsided on the mixed mesh
        assert!(imb_plain > 20.0, "uncosted imbalance only {imb_plain}%");
    }

    #[test]
    fn unit_costs_reduce_to_plain_metric() {
        let b = BenchmarkMesh::build(MeshKind::Embedding, 2_000);
        let costs = vec![1u32; b.mesh.n_elems()];
        let part = crate::strategy::partition_mesh(&b.mesh, &b.levels, 4, Strategy::ScotchP, 1);
        let rep = crate::metrics::load_imbalance(&b.levels, &part, 4);
        let imb = costed_imbalance(&b.levels, &costs, &part, 4);
        assert!((imb - rep.total_pct).abs() < 1e-9);
    }
}
