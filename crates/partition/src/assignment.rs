//! Maximum-benefit assignment via the auction algorithm (Bertsekas) with
//! ε-scaling — the "more efficient mapping methods (based on weighted graph
//! matchings)" the paper leaves as future work for SCOTCH-P's
//! part-to-processor coupling.
//!
//! Given an `n × n` benefit matrix, finds a perfect assignment maximising the
//! total benefit; with integer benefits and final `ε < 1/n` the result is
//! optimal.

/// Solve the assignment problem for a row-major `n × n` benefit matrix.
/// Returns `assign[person] = object` maximising `Σ benefit[p][assign[p]]`.
pub fn auction_assignment(benefit: &[i64], n: usize) -> Vec<u32> {
    assert_eq!(benefit.len(), n * n);
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    // scale benefits by (n+1) so integer ε-scaling terminates at ε = 1 with
    // a guaranteed-optimal assignment
    let scale = (n as i64) + 1;
    let b = |p: usize, q: usize| benefit[p * n + q] * scale;

    let bmax = benefit.iter().copied().max().unwrap_or(0).max(1);
    let mut eps = (bmax * scale / 2).max(1);
    let mut price = vec![0i64; n];
    let mut assign: Vec<i64> = vec![-1; n]; // person → object
    let mut owner: Vec<i64> = vec![-1; n]; // object → person

    loop {
        assign.fill(-1);
        owner.fill(-1);
        // auction rounds at this ε
        let mut unassigned: Vec<usize> = (0..n).collect();
        while let Some(p) = unassigned.pop() {
            // best and second-best net value for person p
            let mut best_q = 0usize;
            let mut best_v = i64::MIN;
            let mut second_v = i64::MIN;
            for q in 0..n {
                let v = b(p, q) - price[q];
                if v > best_v {
                    second_v = best_v;
                    best_v = v;
                    best_q = q;
                } else if v > second_v {
                    second_v = v;
                }
            }
            // bid: raise the price by the value margin + ε
            let raise = best_v - second_v + eps;
            price[best_q] += raise;
            if owner[best_q] >= 0 {
                let evicted = owner[best_q] as usize;
                assign[evicted] = -1;
                unassigned.push(evicted);
            }
            owner[best_q] = p as i64;
            assign[p] = best_q as i64;
        }
        if eps <= 1 {
            break;
        }
        eps = (eps / 4).max(1);
    }
    assign.into_iter().map(|q| q as u32).collect()
}

/// Total benefit of an assignment.
pub fn assignment_benefit(benefit: &[i64], n: usize, assign: &[u32]) -> i64 {
    (0..n).map(|p| benefit[p * n + assign[p] as usize]).sum()
}

/// The greedy max-affinity coupling the paper uses (sort all pairs, take
/// greedily) — kept for comparison.
pub fn greedy_assignment(benefit: &[i64], n: usize) -> Vec<u32> {
    let mut entries: Vec<(i64, u32, u32)> = Vec::with_capacity(n * n);
    for p in 0..n {
        for q in 0..n {
            entries.push((benefit[p * n + q], p as u32, q as u32));
        }
    }
    entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
    let mut assign = vec![u32::MAX; n];
    let mut used = vec![false; n];
    let mut done = 0;
    for &(_, p, q) in &entries {
        if assign[p as usize] != u32::MAX || used[q as usize] {
            continue;
        }
        assign[p as usize] = q;
        used[q as usize] = true;
        done += 1;
        if done == n {
            break;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn brute_force(benefit: &[i64], n: usize) -> i64 {
        fn rec(benefit: &[i64], n: usize, p: usize, used: &mut Vec<bool>) -> i64 {
            if p == n {
                return 0;
            }
            let mut best = i64::MIN;
            for q in 0..n {
                if !used[q] {
                    used[q] = true;
                    best = best.max(benefit[p * n + q] + rec(benefit, n, p + 1, used));
                    used[q] = false;
                }
            }
            best
        }
        rec(benefit, n, 0, &mut vec![false; n])
    }

    #[test]
    fn auction_is_optimal_small_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for n in 2..=7 {
            for _ in 0..10 {
                let benefit: Vec<i64> = (0..n * n).map(|_| rng.gen_range(0..100)).collect();
                let a = auction_assignment(&benefit, n);
                // valid permutation
                let mut seen = vec![false; n];
                for &q in &a {
                    assert!(!seen[q as usize]);
                    seen[q as usize] = true;
                }
                assert_eq!(
                    assignment_benefit(&benefit, n, &a),
                    brute_force(&benefit, n),
                    "n = {n}, benefit {benefit:?}"
                );
            }
        }
    }

    #[test]
    fn auction_at_least_as_good_as_greedy() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let n = 20;
            let benefit: Vec<i64> = (0..n * n).map(|_| rng.gen_range(0..1000)).collect();
            let a = auction_assignment(&benefit, n);
            let g = greedy_assignment(&benefit, n);
            assert!(assignment_benefit(&benefit, n, &a) >= assignment_benefit(&benefit, n, &g));
        }
    }

    #[test]
    fn greedy_beaten_on_adversarial_case() {
        // classic greedy trap: taking the single largest entry forces a bad
        // completion
        //   [10  9]
        //   [ 9  0]
        let benefit = vec![10, 9, 9, 0];
        let g = greedy_assignment(&benefit, 2);
        let a = auction_assignment(&benefit, 2);
        assert_eq!(assignment_benefit(&benefit, 2, &g), 10); // picks (0,0),(1,1)
        assert_eq!(assignment_benefit(&benefit, 2, &a), 18); // optimal cross
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(auction_assignment(&[], 0), Vec::<u32>::new());
        assert_eq!(auction_assignment(&[5], 1), vec![0]);
    }

    #[test]
    fn handles_uniform_benefits() {
        let benefit = vec![3i64; 16];
        let a = auction_assignment(&benefit, 4);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
