//! Post-mortem crash reports built from drained flight-recorder rings.
//!
//! When a distributed run dies — an injected fault, a peer disconnect, a
//! forced recv timeout — or when a stall warning crosses the operator's
//! threshold, the runtime drains every rank's [`lts_obs::FlightRecorder`]
//! ring and hands the recordings here. A [`CrashReport`] bundles them with
//! the failure reason and the last known per-level Eq. 21 λ, and writes
//! three artifacts next to each other:
//!
//! * `PATH` — the JSON document (schema [`SCHEMA`]), machine-parseable and
//!   re-readable via [`read_report`];
//! * `PATH.txt` — a human-readable rendering: causal-merge verdict, the
//!   critical-path attribution (per-(rank, level) compute vs. wait, top
//!   cross-rank wait edges), and the last events on every rank;
//! * `PATH.trace.json` — a Chrome trace (`chrome://tracing` / Perfetto) of
//!   the merged recordings via [`lts_obs::flight_chrome_trace`].
//!
//! Everything here is allocation-happy cold-path code that runs once, after
//! the run is already dead; the *recording* side stays allocation-free (see
//! [`lts_obs::flight`]).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use lts_obs::{
    critical_path, flight_chrome_trace, merge_recordings, Json, RankRecording, NO_LEVEL, NO_PEER,
};

/// Schema tag stamped into (and required from) every report document.
pub const SCHEMA: &str = "wave-lts-crash/1";

/// A self-contained post-mortem: the failure reason plus every rank's
/// drained flight ring.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashReport {
    /// Short machine-oriented cause: `"runtime-error"`, `"stall"`,
    /// `"signal"`, or `"inspect"` for an explicit healthy-run dump.
    pub reason: String,
    /// Human detail — typically the [`crate::RuntimeError`] display.
    pub detail: String,
    /// Per-level Eq. 21 λ at dump time; empty when the run died before any
    /// stats existed.
    pub lambda: Vec<(u8, f64)>,
    /// One drained ring per rank, index-aligned with rank ids.
    pub recordings: Vec<RankRecording>,
}

impl CrashReport {
    pub fn new(
        reason: impl Into<String>,
        detail: impl Into<String>,
        recordings: Vec<RankRecording>,
    ) -> CrashReport {
        CrashReport {
            reason: reason.into(),
            detail: detail.into(),
            lambda: Vec::new(),
            recordings,
        }
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("reason".into(), Json::str(&self.reason)),
            ("detail".into(), Json::str(&self.detail)),
            (
                "lambda".into(),
                Json::Arr(
                    self.lambda
                        .iter()
                        .map(|&(l, v)| {
                            Json::Obj(vec![
                                ("level".into(), Json::UInt(u64::from(l))),
                                ("lambda".into(), Json::Num(v)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ranks".into(),
                Json::Arr(self.recordings.iter().map(RankRecording::to_json).collect()),
            ),
        ])
    }

    /// Parse a document produced by [`CrashReport::to_json`]. Rejects
    /// unknown schemas so older tooling fails loudly instead of
    /// misreading.
    pub fn from_json(doc: &Json) -> Result<CrashReport, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let reason = doc
            .get("reason")
            .and_then(Json::as_str)
            .ok_or("missing \"reason\"")?
            .to_string();
        let detail = doc
            .get("detail")
            .and_then(Json::as_str)
            .ok_or("missing \"detail\"")?
            .to_string();
        let mut lambda = Vec::new();
        for item in doc
            .get("lambda")
            .and_then(Json::as_arr)
            .ok_or("missing \"lambda\"")?
        {
            let l = item
                .get("level")
                .and_then(Json::as_u64)
                .ok_or("lambda entry missing \"level\"")?;
            let v = item
                .get("lambda")
                .and_then(Json::as_f64)
                .ok_or("lambda entry missing \"lambda\"")?;
            if l > u64::from(u8::MAX) {
                return Err(format!("lambda level {l} out of range"));
            }
            lambda.push((l as u8, v));
        }
        let mut recordings = Vec::new();
        for r in doc
            .get("ranks")
            .and_then(Json::as_arr)
            .ok_or("missing \"ranks\"")?
        {
            recordings.push(RankRecording::from_json(r)?);
        }
        Ok(CrashReport {
            reason,
            detail,
            lambda,
            recordings,
        })
    }

    /// Render the human-readable report: header, causal-merge verdict,
    /// λ table, critical-path attribution, and each rank's tail events.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let events: usize = self.recordings.iter().map(|r| r.events.len()).sum();
        let dropped: u64 = self.recordings.iter().map(|r| r.dropped).sum();
        let _ = writeln!(out, "== wave-lts crash report ({SCHEMA}) ==");
        let _ = writeln!(out, "reason : {}", self.reason);
        let _ = writeln!(out, "detail : {}", self.detail);
        let _ = writeln!(
            out,
            "ranks  : {} ({events} events, {dropped} evicted from rings)",
            self.recordings.len()
        );
        out.push('\n');

        match merge_recordings(&self.recordings) {
            Ok(merged) => {
                let _ = writeln!(
                    out,
                    "causal merge : OK — {} events totally ordered (happens-before \
                     via matched send/recv seqs)",
                    merged.len()
                );
            }
            Err(e) => {
                let _ = writeln!(out, "causal merge : FAILED — {e}");
            }
        }

        if !self.lambda.is_empty() {
            out.push('\n');
            let _ = writeln!(out, "per-level imbalance (Eq. 21):");
            for &(l, v) in &self.lambda {
                let _ = writeln!(out, "  level {l} : lambda = {v:.3}");
            }
        }

        match critical_path(&self.recordings) {
            Ok(cp) if cp.total_ns > 0 => {
                out.push('\n');
                let total = cp.total_ns as f64;
                let _ = writeln!(
                    out,
                    "critical path : {} = compute {} ({:.0}%) + wait {} ({:.0}%)",
                    fmt_ns(cp.total_ns),
                    fmt_ns(cp.compute_ns()),
                    100.0 * cp.compute_ns() as f64 / total,
                    fmt_ns(cp.wait_ns()),
                    100.0 * cp.wait_ns() as f64 / total,
                );
                let _ = writeln!(out, "  rank level    compute       wait    share");
                for &((rank, level), (c, w)) in cp.by_rank_level.iter().take(8) {
                    let _ = writeln!(
                        out,
                        "  {:>4} {:>5} {:>10} {:>10}   {:>5.1}%",
                        rank,
                        fmt_level(level),
                        fmt_ns(c),
                        fmt_ns(w),
                        100.0 * (c + w) as f64 / total,
                    );
                }
                if !cp.edges.is_empty() {
                    let _ = writeln!(out, "top wait edges (receiver bound by sender):");
                    for e in cp.edges.iter().take(8) {
                        let _ = writeln!(
                            out,
                            "  rank {} -> rank {}  level {}  {}",
                            e.from_rank,
                            e.to_rank,
                            fmt_level(e.level),
                            fmt_ns(e.wait_ns),
                        );
                    }
                }
            }
            Ok(_) => {}
            Err(e) => {
                let _ = writeln!(out, "critical path : unavailable — {e}");
            }
        }

        out.push('\n');
        let _ = writeln!(out, "last events per rank (oldest → newest):");
        for rec in &self.recordings {
            let tail = rec.events.len().saturating_sub(6);
            let _ = writeln!(
                out,
                "  rank {} ({} events, {} evicted):",
                rec.rank,
                rec.events.len(),
                rec.dropped
            );
            for ev in &rec.events[tail..] {
                let _ = writeln!(
                    out,
                    "    t+{:<12} step {:<6} level {:<3} {:<14} peer {:<4} seq {}",
                    fmt_ns(ev.t_ns),
                    ev.step,
                    fmt_level(ev.level),
                    ev.kind.name(),
                    fmt_peer(ev.peer),
                    ev.seq,
                );
            }
        }
        out
    }

    /// Write the three artifacts: `path` (JSON), `path.txt` (text),
    /// `path.trace.json` (Chrome trace). Returns the paths written.
    pub fn write(&self, path: &Path) -> Result<[PathBuf; 3], String> {
        let json_path = path.to_path_buf();
        let txt_path = sibling(path, ".txt");
        let trace_path = sibling(path, ".trace.json");
        std::fs::write(&json_path, self.to_json().render_pretty())
            .map_err(|e| format!("write {}: {e}", json_path.display()))?;
        std::fs::write(&txt_path, self.render_text())
            .map_err(|e| format!("write {}: {e}", txt_path.display()))?;
        std::fs::write(&trace_path, flight_chrome_trace(&self.recordings).render())
            .map_err(|e| format!("write {}: {e}", trace_path.display()))?;
        Ok([json_path, txt_path, trace_path])
    }
}

/// Read and parse a crash-report JSON written by [`CrashReport::write`].
pub fn read_report(path: &Path) -> Result<CrashReport, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc = Json::parse(&s).map_err(|e| format!("{}: {e}", path.display()))?;
    CrashReport::from_json(&doc)
}

/// `report.json` + `.txt` → `report.json.txt` (suffix appended, never
/// replacing the extension, so the JSON stays openable by name).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

fn fmt_level(level: u8) -> String {
    if level == NO_LEVEL {
        "-".to_string()
    } else {
        level.to_string()
    }
}

fn fmt_peer(peer: u32) -> String {
    if peer == NO_PEER {
        "-".to_string()
    } else {
        peer.to_string()
    }
}

/// Human duration: ns under 10 µs, µs under 10 ms, else ms.
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{:.1}ms", ns as f64 / 1e6)
    }
}

/// Classify a runtime error into the short `reason` tag. Lives here (not on
/// the error) so the tag set stays next to the schema it feeds.
pub fn reason_for(e: &crate::RuntimeError) -> &'static str {
    use crate::RuntimeError::*;
    match e {
        FaultInjected { .. } => "fault-injected",
        ExchangeTimeout { .. } => "exchange-timeout",
        PeerDisconnected { .. } | ChannelClosed { .. } => "peer-lost",
        RankPanicked { .. } => "rank-panicked",
        TransportIo { .. } => "transport-io",
        _ => "runtime-error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_obs::{EventKind, FlightRecorder};
    use std::time::Instant;

    fn sample_report() -> CrashReport {
        let epoch = Instant::now();
        let mut a = FlightRecorder::with_epoch(64, epoch);
        let mut b = FlightRecorder::with_epoch(64, epoch);
        a.record(EventKind::StepBegin, NO_LEVEL, 0, NO_PEER, 0);
        a.record(EventKind::Send, 1, 0, 1, 0);
        b.record(EventKind::StepBegin, NO_LEVEL, 0, NO_PEER, 0);
        b.record(EventKind::ExchangeBegin, 1, 0, NO_PEER, 0);
        b.record(EventKind::Recv, 1, 0, 0, 0);
        b.record(EventKind::ExchangeEnd, 1, 0, NO_PEER, 0);
        b.record(EventKind::Fault, 1, 0, 0, 0);
        let mut rep = CrashReport::new(
            "fault-injected",
            "rank 1: injected fault fired during level-1 exchange",
            vec![a.snapshot(0), b.snapshot(1)],
        );
        rep.lambda = vec![(0, 0.12), (1, 0.47)];
        rep
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let rep = sample_report();
        let rendered = rep.to_json().render_pretty();
        let back = CrashReport::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut doc = sample_report().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::str("wave-lts-crash/99");
        }
        let err = CrashReport::from_json(&doc).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn render_text_reports_merge_and_tail() {
        let text = sample_report().render_text();
        assert!(text.contains("reason : fault-injected"), "{text}");
        assert!(text.contains("causal merge : OK"), "{text}");
        assert!(text.contains("lambda = 0.470"), "{text}");
        assert!(text.contains("fault"), "{text}");
    }

    #[test]
    fn write_and_read_round_trip() {
        let dir = std::env::temp_dir().join(format!("wlts-pm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let rep = sample_report();
        let written = rep.write(&path).unwrap();
        assert_eq!(written[1], dir.join("report.json.txt"));
        let back = read_report(&path).unwrap();
        assert_eq!(back, rep);
        // The Chrome trace must be valid per the exporter's own checker.
        let trace = std::fs::read_to_string(&written[2]).unwrap();
        lts_obs::validate_trace(&trace).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
